/// \file reorder.hpp
/// \brief Static variable reordering by transfer-based sifting.
///
/// This module searches for a good *placement* of a function's support
/// variables and rebuilds the BDD under it in a scratch manager: greedy
/// sifting — every support variable is tried at every position, keeping the
/// best. O(n² · |BDD|) per round, intended for the ≤ 24-variable functions
/// this project handles. Since the in-place dynamic reorderer landed
/// (Manager::reorder_sift, sift.cpp) this rebuild-based path serves as its
/// determinism oracle: node_count_under_order must agree, level for level,
/// with the sizes the in-place sifter reports for the same order — the
/// rebuilt DAG and the swapped-in-place DAG are the same canonical ROBDD.

#pragma once

#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::bdd {

struct ReorderResult {
  /// order[level] = source variable placed at that level (support vars only,
  /// topmost first).
  std::vector<int> order;
  std::size_t initial_nodes = 0;
  std::size_t final_nodes = 0;
  int rounds_used = 0;
};

/// Sifts f's support variables into a smaller order. Deterministic.
ReorderResult sift_order(Manager& mgr, const Bdd& f, int max_rounds = 2);

/// Number of nodes f would have if its support were placed in \p order
/// (order[level] = source variable).
std::size_t node_count_under_order(Manager& mgr, const Bdd& f,
                                   const std::vector<int>& order);

/// Rebuilds f in \p target with order[level] mapped to target variable
/// base + level.
Bdd apply_order(const Bdd& f, Manager& target, const std::vector<int>& order,
                int base = 0);

}  // namespace hyde::bdd
