#include "bdd/transfer.hpp"

#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace hyde::bdd {

Bdd transfer_compose(const Bdd& f, Manager& target,
                     const std::vector<Bdd>& subst) {
  std::unordered_map<std::uint32_t, Bdd> memo;
  std::function<Bdd(const Bdd&)> rec = [&](const Bdd& g) -> Bdd {
    if (g.is_zero()) return target.zero();
    if (g.is_one()) return target.one();
    if (auto it = memo.find(g.id()); it != memo.end()) return it->second;
    const int v = g.top_var();
    if (v >= static_cast<int>(subst.size()) ||
        !subst[static_cast<std::size_t>(v)].is_valid()) {
      throw std::invalid_argument("transfer_compose: variable not substituted");
    }
    const Bdd lo = rec(g.low());
    const Bdd hi = rec(g.high());
    Bdd result = target.ite(subst[static_cast<std::size_t>(v)], hi, lo);
    memo.emplace(g.id(), result);
    return result;
  };
  return rec(f);
}

Bdd transfer(const Bdd& f, Manager& target, const std::vector<int>& var_map) {
  std::vector<Bdd> subst(var_map.size());
  for (std::size_t v = 0; v < var_map.size(); ++v) {
    if (var_map[v] >= 0) {
      target.ensure_vars(var_map[v] + 1);
      subst[v] = target.var(var_map[v]);
    }
  }
  return transfer_compose(f, target, subst);
}

}  // namespace hyde::bdd
