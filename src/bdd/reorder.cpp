#include "bdd/reorder.hpp"

#include <algorithm>
#include <stdexcept>

#include "bdd/transfer.hpp"

namespace hyde::bdd {

Bdd apply_order(const Bdd& f, Manager& target, const std::vector<int>& order,
                int base) {
  const int max_source =
      order.empty() ? 0 : *std::max_element(order.begin(), order.end());
  std::vector<int> var_map(static_cast<std::size_t>(max_source) + 1, -1);
  for (std::size_t level = 0; level < order.size(); ++level) {
    var_map[static_cast<std::size_t>(order[level])] =
        base + static_cast<int>(level);
  }
  return transfer(f, target, var_map);
}

std::size_t node_count_under_order(Manager& mgr, const Bdd& f,
                                   const std::vector<int>& order) {
  mgr.check_owned(f);
  Manager scratch(std::max(1, static_cast<int>(order.size())));
  const Bdd moved = apply_order(f, scratch, order, 0);
  return scratch.node_count(moved);
}

ReorderResult sift_order(Manager& mgr, const Bdd& f, int max_rounds) {
  mgr.check_owned(f);
  ReorderResult result;
  result.order = mgr.support(f);
  result.initial_nodes = node_count_under_order(mgr, f, result.order);
  result.final_nodes = result.initial_nodes;
  const std::size_t n = result.order.size();
  if (n < 3) return result;

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    ++result.rounds_used;
    // Sift variables one by one, biggest-impact-first heuristic replaced by
    // simple index order (deterministic and adequate at this scale).
    for (std::size_t pick = 0; pick < n; ++pick) {
      const int var = result.order[pick];
      std::vector<int> best_order = result.order;
      std::size_t best_nodes = result.final_nodes;
      std::vector<int> without = result.order;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(pick));
      for (std::size_t pos = 0; pos <= without.size(); ++pos) {
        std::vector<int> candidate = without;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                         var);
        if (candidate == result.order) continue;
        const std::size_t nodes = node_count_under_order(mgr, f, candidate);
        if (nodes < best_nodes) {
          best_nodes = nodes;
          best_order = std::move(candidate);
        }
      }
      if (best_nodes < result.final_nodes) {
        result.final_nodes = best_nodes;
        result.order = std::move(best_order);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace hyde::bdd
