#include "bdd/pool.hpp"

#include <stdexcept>
#include <utility>

namespace hyde::bdd {

std::unique_ptr<Manager> ManagerPool::acquire(int num_vars) {
  std::unique_ptr<Manager> mgr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    if (!pool_.empty()) {
      ++hits_;
      mgr = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (mgr) {
    // Parked managers are already reset; only the variable space differs.
    mgr->ensure_vars(num_vars);
    return mgr;
  }
  return std::make_unique<Manager>(num_vars);
}

void ManagerPool::release(std::unique_ptr<Manager> mgr) {
  if (!mgr) return;
  try {
    mgr->reset(/*num_vars=*/0);
  } catch (const std::logic_error&) {
    // Outstanding handles: recycling would hand live state to a stranger,
    // and destroying the manager would dangle those handles. Condemn it.
    std::lock_guard<std::mutex> lock(mutex_);
    ++discards_;
    condemned_.push_back(std::move(mgr));
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.size() >= max_pooled_) {
    ++discards_;
    return;
  }
  pool_.push_back(std::move(mgr));
}

ManagerPoolStats ManagerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ManagerPoolStats s;
  s.acquires = acquires_;
  s.hits = hits_;
  s.discards = discards_;
  s.pooled = pool_.size();
  return s;
}

}  // namespace hyde::bdd
