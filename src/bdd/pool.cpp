#include "bdd/pool.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

namespace hyde::bdd {

ManagerPool::ManagerPool(std::size_t max_pooled, std::size_t slots)
    : max_pooled_(max_pooled) {
  slots_.resize(std::max<std::size_t>(1, slots));
}

std::size_t ManagerPool::slot_index() const {
  // Thread ids are stable for a thread's lifetime, so the hash pins each
  // worker to one slot; unrelated threads may share a slot, which only
  // dilutes affinity, never correctness.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         slots_.size();
}

std::size_t ManagerPool::total_pooled() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) n += slot.size();
  return n;
}

std::unique_ptr<Manager> ManagerPool::acquire(int num_vars) {
  std::unique_ptr<Manager> mgr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    const std::size_t mine = slot_index();
    if (!slots_[mine].empty()) {
      ++hits_;
      ++slot_hits_;
      mgr = std::move(slots_[mine].back());
      slots_[mine].pop_back();
    } else {
      // Affinity miss: take the deepest other slot's most recently parked
      // manager rather than cold-starting.
      std::size_t best = mine;
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (slots_[s].empty()) continue;
        if (best == mine || slots_[s].size() > slots_[best].size()) best = s;
      }
      if (best != mine) {
        ++hits_;
        mgr = std::move(slots_[best].back());
        slots_[best].pop_back();
      }
    }
  }
  if (mgr) {
    // Parked managers are already reset; only the variable space differs.
    mgr->ensure_vars(num_vars);
    return mgr;
  }
  return std::make_unique<Manager>(num_vars);
}

void ManagerPool::release(std::unique_ptr<Manager> mgr) {
  if (!mgr) return;
  try {
    mgr->reset(/*num_vars=*/0);
  } catch (const std::logic_error&) {
    // Outstanding handles: recycling would hand live state to a stranger,
    // and destroying the manager would dangle those handles. Condemn it.
    std::lock_guard<std::mutex> lock(mutex_);
    ++discards_;
    condemned_.push_back(std::move(mgr));
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_pooled() >= max_pooled_) {
    ++discards_;
    return;
  }
  slots_[slot_index()].push_back(std::move(mgr));
}

ManagerPoolStats ManagerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ManagerPoolStats s;
  s.acquires = acquires_;
  s.hits = hits_;
  s.slot_hits = slot_hits_;
  s.discards = discards_;
  s.pooled = total_pooled();
  return s;
}

}  // namespace hyde::bdd
