#include "bdd/bdd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "bdd/bdd_internal.hpp"

namespace hyde::bdd {

using namespace internal;

namespace {
constexpr std::size_t kCacheInitialEntries = std::size_t{1} << 12;
constexpr std::size_t kCacheMinEntries = std::size_t{1} << 10;
/// kAuto never fires below this many live nodes — reordering a tiny manager
/// costs more than it can ever save.
constexpr std::size_t kAutoReorderFloor = std::size_t{1} << 12;

std::uint64_t next_manager_serial() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, std::uint32_t id) : mgr_(mgr), id_(id) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
#ifdef HYDE_CHECKED
  if (mgr_ != nullptr) mgr_serial_ = mgr_->serial_;
#endif
}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
#ifdef HYDE_CHECKED
  mgr_serial_ = other.mgr_serial_;
#endif
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = 0;
#ifdef HYDE_CHECKED
  mgr_serial_ = other.mgr_serial_;
  other.mgr_serial_ = 0;
#endif
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->inc_ref(other.id_);
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
#ifdef HYDE_CHECKED
  mgr_serial_ = other.mgr_serial_;
#endif
  return *this;
}

// NOLINTNEXTLINE(bugprone-exception-escape): dec_ref throws only on refcount
// underflow, i.e. a corrupted table; terminating beats unwinding over it.
Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = 0;
#ifdef HYDE_CHECKED
  mgr_serial_ = other.mgr_serial_;
  other.mgr_serial_ = 0;
#endif
  return *this;
}

// NOLINTNEXTLINE(bugprone-exception-escape): same contract as move-assign —
// an underflow throw out of a destructor should terminate, not unwind.
Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
}

bool Bdd::is_zero() const { return mgr_ != nullptr && id_ == kZero; }
bool Bdd::is_one() const { return mgr_ != nullptr && id_ == kOne; }

int Bdd::top_var() const {
  if (!is_valid() || id_ <= kOne) {
    throw std::logic_error("Bdd::top_var on constant or null BDD");
  }
  return mgr_->nodes_[id_].var;
}

Bdd Bdd::low() const {
  if (!is_valid() || id_ <= kOne) {
    throw std::logic_error("Bdd::low on constant or null BDD");
  }
  return Bdd(mgr_, mgr_->nodes_[id_].lo);
}

Bdd Bdd::high() const {
  if (!is_valid() || id_ <= kOne) {
    throw std::logic_error("Bdd::high on constant or null BDD");
  }
  return Bdd(mgr_, mgr_->nodes_[id_].hi);
}

Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->bdd_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->bdd_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->bdd_xor(*this, rhs); }
Bdd Bdd::operator~() const { return mgr_->bdd_not(*this); }
bool Bdd::implies(const Bdd& rhs) const { return mgr_->implies(*this, rhs); }

// ---------------------------------------------------------------------------
// Manager: construction, node store, unique table, reference counting, GC
// ---------------------------------------------------------------------------

Manager::Manager(int num_vars) : num_vars_(num_vars) {
  serial_ = next_manager_serial();
  nodes_.reserve(1024);
  nodes_.push_back(Node{-1, kZero, kZero, kNil, 1});  // constant 0
  nodes_.push_back(Node{-1, kOne, kOne, kNil, 1});    // constant 1
  total_ext_refs_ = 2;
  ensure_level_capacity(num_vars_);
  rehash_unique(1024);
}

Manager::~Manager() {
  serial_ = 0;  // HYDE_CHECKED stale handles see a mismatching serial
}

void Manager::ensure_vars(int num_vars) {
  num_vars_ = std::max(num_vars_, num_vars);
  ensure_level_capacity(num_vars_);
}

void Manager::ensure_level_capacity(int count) {
  while (static_cast<int>(level_of_.size()) < count) {
    const int level = static_cast<int>(level_of_.size());
    level_of_.push_back(level);
    var_at_.push_back(level);
  }
}

void Manager::reset(int num_vars) {
  if (total_ext_refs_ != 2) {
    throw std::logic_error(
        "Manager::reset: external handles are still outstanding");
  }
  serial_ = next_manager_serial();  // old handles become detectably stale
  nodes_.clear();                   // capacity retained
  nodes_.push_back(Node{-1, kZero, kZero, kNil, 1});
  nodes_.push_back(Node{-1, kOne, kOne, kNil, 1});
  total_ext_refs_ = 2;
  free_list_.clear();
  level_of_.clear();
  var_at_.clear();
  num_vars_ = num_vars;
  ensure_level_capacity(num_vars_);
  // Warm allocations survive: bucket count and computed-table slots are kept,
  // only their contents drop.
  std::fill(unique_buckets_.begin(), unique_buckets_.end(), kNil);
  cache_clear();
  compose_maps_.clear();
  compose_fingerprints_.clear();
  cache_hits_ = cache_misses_ = cache_inserts_ = cache_overwrites_ = 0;
  gc_threshold_ = std::size_t{1} << 18;
  node_limit_ = 0;
  soft_node_limit_ = 0;
  gc_runs_ = 0;
  peak_live_nodes_ = 2;
  reorder_mode_ = ReorderMode::kOff;
  reorder_options_ = ReorderOptions{};
  reorder_max_growth_ = 2.0;
  reorder_epoch_ = 0;
  reorder_runs_ = 0;
  reorder_watermark_ = 2;
  in_reorder_ = false;
}

Bdd Manager::make_external(std::uint32_t id) { return Bdd(this, id); }

void Manager::inc_ref(std::uint32_t id) {
  ++nodes_[id].ext_refs;
  ++total_ext_refs_;
}

void Manager::dec_ref(std::uint32_t id) {
  if (nodes_[id].ext_refs == 0) {
    throw std::logic_error("BDD reference count underflow");
  }
  --nodes_[id].ext_refs;
  --total_ext_refs_;
}

// Buckets are keyed by the variable's *level*, not its index: after a swap
// the affected nodes are re-homed, so placement always reflects the current
// order (audited by audit_invariants).
// hyde-hot
std::uint32_t Manager::unique_lookup(std::int32_t var, std::uint32_t lo,
                                     std::uint32_t hi) {
  const std::size_t bucket =
      triple_hash(level_of_[static_cast<std::size_t>(var)], lo, hi) &
      (unique_buckets_.size() - 1);
  for (std::uint32_t id = unique_buckets_[bucket]; id != kNil;
       id = nodes_[id].next) {
    const Node& n = nodes_[id];
    if (n.var == var && n.lo == lo && n.hi == hi) return id;
  }
  return kNil;
}

void Manager::unique_insert(std::uint32_t id) {
  const Node& n = nodes_[id];
  const std::size_t bucket =
      triple_hash(level_of_[static_cast<std::size_t>(n.var)], n.lo, n.hi) &
      (unique_buckets_.size() - 1);
  nodes_[id].next = unique_buckets_[bucket];
  unique_buckets_[bucket] = id;
}

void Manager::unique_unlink(std::uint32_t id) {
  const Node& n = nodes_[id];
  const std::size_t bucket =
      triple_hash(level_of_[static_cast<std::size_t>(n.var)], n.lo, n.hi) &
      (unique_buckets_.size() - 1);
  std::uint32_t* slot = &unique_buckets_[bucket];
  while (*slot != id) slot = &nodes_[*slot].next;
  *slot = nodes_[id].next;
  nodes_[id].next = kNil;
}

void Manager::rehash_unique(std::size_t new_bucket_count) {
  unique_buckets_.assign(new_bucket_count, kNil);
  for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].var >= 0) unique_insert(id);
  }
}

std::uint32_t Manager::make_node(std::int32_t var, std::uint32_t lo,
                                 std::uint32_t hi) {
  if (lo == hi) return lo;  // reduction rule
  if (var >= static_cast<std::int32_t>(level_of_.size())) {
    ensure_level_capacity(var + 1);
  }
  std::uint32_t id = unique_lookup(var, lo, hi);
  if (id != kNil) return id;
  // The hard limit is suspended mid-reorder: a swap rewrites nodes in place
  // and must never tear halfway through (reordering shrinks the DAG anyway).
  if (!in_reorder_ && node_limit_ != 0 &&
      nodes_.size() - free_list_.size() >= node_limit_) {
    throw std::length_error("BDD manager node limit exceeded");
  }
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = Node{var, lo, hi, kNil, 0};
  } else {
    id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi, kNil, 0});
  }
  unique_insert(id);
  const std::size_t live = nodes_.size() - free_list_.size();
  peak_live_nodes_ = std::max(peak_live_nodes_, live);
  // Growth rehash is deferred while a swap has levels detached from the
  // table (rehash_unique would re-home them mid-rewrite).
  if (!in_reorder_ && live * 2 > unique_buckets_.size()) {
    rehash_unique(unique_buckets_.size() * 2);
  }
  return id;
}

void Manager::collect_garbage() {
  ++gc_runs_;
  std::vector<char> marked(nodes_.size(), 0);
  marked[kZero] = marked[kOne] = 1;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].var >= 0 && nodes_[id].ext_refs > 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    if (marked[id]) continue;
    marked[id] = 1;
    const Node& n = nodes_[id];
    if (!marked[n.lo]) stack.push_back(n.lo);
    if (!marked[n.hi]) stack.push_back(n.hi);
  }
  free_list_.clear();
  for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
    if (!marked[id]) {
      nodes_[id].var = -2;  // dead
      free_list_.push_back(id);
    }
  }
  // Freed ids may be recycled from here on, so every cached result and every
  // registered compose context is potentially stale: invalidate them all.
  cache_clear();
  compose_maps_.clear();
  compose_fingerprints_.clear();
  rehash_unique(unique_buckets_.size());
#ifdef HYDE_CHECKED
  check_invariants();
#endif
}

// Governance ladder, evaluated at operation entry points only (never
// mid-recursion): the growth trigger (kAuto) or a blown soft budget first
// runs GC; if the soft budget is still exceeded and a reorder mode is
// enabled, converging sifting runs next. Only when both rungs leave the
// manager over budget does growth continue toward the hard node_limit,
// whose std::length_error the windowed flow converts into its
// split/pass-through ladder.
void Manager::maybe_gc() {
  const std::size_t live = nodes_.size() - free_list_.size();
  if (reorder_mode_ == ReorderMode::kAuto &&
      live > static_cast<std::size_t>(static_cast<double>(reorder_watermark_) *
                                      reorder_max_growth_) &&
      live > kAutoReorderFloor) {
    reorder_sift(reorder_options_);  // GCs internally, resets the watermark
    return;
  }
  const bool soft_hit = soft_node_limit_ != 0 && live > soft_node_limit_;
  if (live <= gc_threshold_ && !soft_hit) return;
  collect_garbage();
  const std::size_t after = nodes_.size() - free_list_.size();
  // Adaptive threshold: a GC that reclaims less than 25% of the pre-GC live
  // set was not worth its cost — double the threshold so the next one runs
  // against a genuinely larger population.
  if ((live - after) * 4 < live) gc_threshold_ *= 2;
  if (soft_hit && after > soft_node_limit_ &&
      reorder_mode_ != ReorderMode::kOff) {
    reorder_sift(reorder_options_);
  }
}

void Manager::set_reorder_mode(ReorderMode mode, double max_growth,
                               const ReorderOptions& options) {
  if (!(max_growth > 1.0)) {
    throw std::invalid_argument(
        "Manager::set_reorder_mode: max_growth must be > 1.0");
  }
  reorder_mode_ = mode;
  reorder_max_growth_ = max_growth;
  reorder_options_ = options;
  reorder_watermark_ =
      std::max<std::size_t>(nodes_.size() - free_list_.size(), 2);
}

std::size_t Manager::live_node_count() const {
  std::size_t live = 0;
  for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].var >= 0) ++live;
  }
  return live;
}

// ---------------------------------------------------------------------------
// Unified computed table
// ---------------------------------------------------------------------------

// hyde-hot
bool Manager::cache_lookup(std::uint64_t a, std::uint64_t b,
                           std::uint32_t* result) {
  if (cache_.empty()) {
    ++cache_misses_;
    return false;
  }
  const CacheEntry& entry = cache_[cache_hash(a, b) & (cache_.size() - 1)];
  if (entry.a == a && entry.b == b) {
    ++cache_hits_;
    *result = entry.result;
    return true;
  }
  ++cache_misses_;
  return false;
}

void Manager::cache_insert(std::uint64_t a, std::uint64_t b,
                           std::uint32_t result) {
  if (cache_.empty()) {
    cache_.assign(std::min(kCacheInitialEntries, cache_max_entries_),
                  CacheEntry{});
  } else if (++inserts_since_grow_ > cache_.size() * 2 &&
             cache_.size() < cache_max_entries_) {
    // Sustained insert pressure: the working set outgrew the table. Doubling
    // drops the current contents (the table is lossy anyway) but halves the
    // future collision rate.
    cache_.assign(cache_.size() * 2, CacheEntry{});
    inserts_since_grow_ = 0;
  }
  CacheEntry& entry = cache_[cache_hash(a, b) & (cache_.size() - 1)];
  if (entry.a != 0 && (entry.a != a || entry.b != b)) ++cache_overwrites_;
  entry.a = a;
  entry.b = b;
  entry.result = result;
  ++cache_inserts_;
}

void Manager::cache_clear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  inserts_since_grow_ = 0;
}

void Manager::set_cache_limit(std::size_t max_entries) {
  max_entries = std::max(max_entries, kCacheMinEntries);
  cache_max_entries_ = std::bit_floor(max_entries);
  if (cache_.size() > cache_max_entries_) {
    cache_.assign(cache_max_entries_, CacheEntry{});
    inserts_since_grow_ = 0;
  }
}

ManagerStats Manager::stats() const {
  ManagerStats s;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  s.cache_inserts = cache_inserts_;
  s.cache_overwrites = cache_overwrites_;
  s.cache_capacity = cache_.size();
  for (const CacheEntry& entry : cache_) {
    if (entry.a != 0) ++s.cache_occupied;
  }
  s.live_nodes = nodes_.size() - free_list_.size();
  s.store_nodes = nodes_.size();
  s.peak_live_nodes = peak_live_nodes_;
  s.unique_buckets = unique_buckets_.size();
  s.gc_runs = gc_runs_;
  s.reorder_runs = reorder_runs_;
  return s;
}

// ---------------------------------------------------------------------------
// Core operations
// ---------------------------------------------------------------------------

Bdd Manager::var(int index) {
  if (index < 0 || index >= num_vars_) {
    throw std::invalid_argument("Manager::var: variable index out of range");
  }
  return make_external(make_node(index, kZero, kOne));
}

Bdd Manager::nvar(int index) {
  if (index < 0 || index >= num_vars_) {
    throw std::invalid_argument("Manager::nvar: variable index out of range");
  }
  return make_external(make_node(index, kOne, kZero));
}

// hyde-hot
std::uint32_t Manager::not_rec(std::uint32_t f) {
  if (f <= kOne) return f ^ 1u;
  const std::uint64_t a = op_key(kOpNot, f);
  std::uint32_t result;
  if (cache_lookup(a, 0, &result)) return result;
  // Copy fields: make_node below can reallocate the node store.
  const std::int32_t n_var = nodes_[f].var;
  const std::uint32_t n_lo = nodes_[f].lo;
  const std::uint32_t n_hi = nodes_[f].hi;
  result = make_node(n_var, not_rec(n_lo), not_rec(n_hi));
  cache_insert(a, 0, result);
  // NOT is an involution: record the reverse direction for free.
  cache_insert(op_key(kOpNot, result), 0, f);
  return result;
}

// hyde-hot
std::uint32_t Manager::and_rec(std::uint32_t f, std::uint32_t g) {
  if (f == kZero || g == kZero) return kZero;
  if (f == kOne) return g;
  if (g == kOne) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);  // commutative: normalize operand order
  const std::uint64_t a = op_key(kOpAnd, f);
  std::uint32_t result;
  if (cache_lookup(a, g, &result)) return result;
  const std::int32_t fv = nodes_[f].var;
  const std::int32_t gv = nodes_[g].var;
  const bool f_top = level_of(fv) <= level_of(gv);
  const bool g_top = level_of(gv) <= level_of(fv);
  const std::int32_t top = f_top ? fv : gv;
  const std::uint32_t f0 = f_top ? nodes_[f].lo : f;
  const std::uint32_t f1 = f_top ? nodes_[f].hi : f;
  const std::uint32_t g0 = g_top ? nodes_[g].lo : g;
  const std::uint32_t g1 = g_top ? nodes_[g].hi : g;
  result = make_node(top, and_rec(f0, g0), and_rec(f1, g1));
  cache_insert(a, g, result);
  return result;
}

// hyde-hot
std::uint32_t Manager::or_rec(std::uint32_t f, std::uint32_t g) {
  if (f == kOne || g == kOne) return kOne;
  if (f == kZero) return g;
  if (g == kZero) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);
  const std::uint64_t a = op_key(kOpOr, f);
  std::uint32_t result;
  if (cache_lookup(a, g, &result)) return result;
  const std::int32_t fv = nodes_[f].var;
  const std::int32_t gv = nodes_[g].var;
  const bool f_top = level_of(fv) <= level_of(gv);
  const bool g_top = level_of(gv) <= level_of(fv);
  const std::int32_t top = f_top ? fv : gv;
  const std::uint32_t f0 = f_top ? nodes_[f].lo : f;
  const std::uint32_t f1 = f_top ? nodes_[f].hi : f;
  const std::uint32_t g0 = g_top ? nodes_[g].lo : g;
  const std::uint32_t g1 = g_top ? nodes_[g].hi : g;
  result = make_node(top, or_rec(f0, g0), or_rec(f1, g1));
  cache_insert(a, g, result);
  return result;
}

// hyde-hot
std::uint32_t Manager::xor_rec(std::uint32_t f, std::uint32_t g) {
  if (f == g) return kZero;
  if (f == kZero) return g;
  if (g == kZero) return f;
  if (f == kOne) return not_rec(g);
  if (g == kOne) return not_rec(f);
  if (f > g) std::swap(f, g);
  const std::uint64_t a = op_key(kOpXor, f);
  std::uint32_t result;
  if (cache_lookup(a, g, &result)) return result;
  const std::int32_t fv = nodes_[f].var;
  const std::int32_t gv = nodes_[g].var;
  const bool f_top = level_of(fv) <= level_of(gv);
  const bool g_top = level_of(gv) <= level_of(fv);
  const std::int32_t top = f_top ? fv : gv;
  const std::uint32_t f0 = f_top ? nodes_[f].lo : f;
  const std::uint32_t f1 = f_top ? nodes_[f].hi : f;
  const std::uint32_t g0 = g_top ? nodes_[g].lo : g;
  const std::uint32_t g1 = g_top ? nodes_[g].hi : g;
  result = make_node(top, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(a, g, result);
  return result;
}

// hyde-hot
std::uint32_t Manager::ite_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t h) {
  // Terminal cases, then degenerate forms routed to the dedicated kernels so
  // e.g. ite(f, g, 0) and f & g share one computed-table entry.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return not_rec(f);
  if (g == kOne) return or_rec(f, h);
  if (h == kZero) return and_rec(f, g);
  if (g == kZero) return and_rec(not_rec(f), h);
  if (h == kOne) return or_rec(not_rec(f), g);
  if (f == g) return or_rec(f, h);
  if (f == h) return and_rec(f, g);

  const std::uint64_t a = op_key(kOpIte, f);
  const std::uint64_t b = (static_cast<std::uint64_t>(g) << 32) | h;
  std::uint32_t result;
  if (cache_lookup(a, b, &result)) return result;

  auto level_of_id = [this](std::uint32_t id) {
    return id <= kOne ? INT32_MAX : level_of(nodes_[id].var);
  };
  const std::int32_t top_level =
      std::min({level_of_id(f), level_of_id(g), level_of_id(h)});
  const std::int32_t top = var_at(top_level);
  auto cof = [this, top](std::uint32_t id, bool hi) {
    if (id <= kOne || nodes_[id].var != top) return id;
    return hi ? nodes_[id].hi : nodes_[id].lo;
  };
  const std::uint32_t lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const std::uint32_t hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  result = make_node(top, lo, hi);
  cache_insert(a, b, result);
  return result;
}

void Manager::check_owned(const Bdd& f) const {
  if (f.mgr_ != this) {
    throw std::invalid_argument("Bdd handle belongs to a different manager");
  }
#ifdef HYDE_CHECKED
  if (f.mgr_serial_ != serial_) {
    throw std::logic_error(
        "stale Bdd handle: owning manager was destroyed (serial mismatch)");
  }
  if (f.id_ >= nodes_.size() || (f.id_ > 1 && nodes_[f.id_].var < 0)) {
    throw std::logic_error("Bdd handle references a dead or invalid node");
  }
#endif
}

Bdd Manager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  check_owned(f);
  check_owned(g);
  check_owned(h);
  maybe_gc();
  return make_external(ite_rec(f.id_, g.id_, h.id_));
}

Bdd Manager::bdd_and(const Bdd& f, const Bdd& g) {
  check_owned(f);
  check_owned(g);
  maybe_gc();
  return make_external(and_rec(f.id_, g.id_));
}

Bdd Manager::bdd_or(const Bdd& f, const Bdd& g) {
  check_owned(f);
  check_owned(g);
  maybe_gc();
  return make_external(or_rec(f.id_, g.id_));
}

Bdd Manager::bdd_xor(const Bdd& f, const Bdd& g) {
  check_owned(f);
  check_owned(g);
  maybe_gc();
  return make_external(xor_rec(f.id_, g.id_));
}

Bdd Manager::bdd_not(const Bdd& f) {
  check_owned(f);
  maybe_gc();
  return make_external(not_rec(f.id_));
}

// hyde-hot
bool Manager::disjoint_rec(std::uint32_t f, std::uint32_t g) {
  if (f == kZero || g == kZero) return true;
  if (f == kOne || g == kOne) return false;  // the other side is nonzero here
  if (f == g) return false;  // nonconstant node has a satisfying assignment
  if (f > g) std::swap(f, g);
  const std::uint64_t a = op_key(kOpDisjoint, f);
  std::uint32_t cached;
  if (cache_lookup(a, g, &cached)) return cached != 0;
  const std::int32_t fv = nodes_[f].var;
  const std::int32_t gv = nodes_[g].var;
  const bool f_top = level_of(fv) <= level_of(gv);
  const bool g_top = level_of(gv) <= level_of(fv);
  const std::uint32_t f0 = f_top ? nodes_[f].lo : f;
  const std::uint32_t f1 = f_top ? nodes_[f].hi : f;
  const std::uint32_t g0 = g_top ? nodes_[g].lo : g;
  const std::uint32_t g1 = g_top ? nodes_[g].hi : g;
  const bool result = disjoint_rec(f0, g0) && disjoint_rec(f1, g1);
  cache_insert(a, g, result ? 1u : 0u);
  return result;
}

bool Manager::disjoint(const Bdd& f, const Bdd& g) {
  check_owned(f);
  check_owned(g);
  return disjoint_rec(f.id_, g.id_);
}

// hyde-hot
std::uint32_t Manager::cofactor_rec(std::uint32_t f, int var, bool value) {
  if (f <= kOne) return f;
  // Copy fields: make_node below can reallocate the node store.
  const std::int32_t n_var = nodes_[f].var;
  const std::uint32_t n_lo = nodes_[f].lo;
  const std::uint32_t n_hi = nodes_[f].hi;
  if (level_of(n_var) > level_of(var)) return f;  // var is above f's support
  if (n_var == var) return value ? n_hi : n_lo;
  const std::uint64_t a = op_key(kOpCofactor, f);
  const std::uint64_t b =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(var)) << 1) |
      (value ? 1u : 0u);
  std::uint32_t result;
  if (cache_lookup(a, b, &result)) return result;
  const std::uint32_t lo = cofactor_rec(n_lo, var, value);
  const std::uint32_t hi = cofactor_rec(n_hi, var, value);
  result = make_node(n_var, lo, hi);
  cache_insert(a, b, result);
  return result;
}

Bdd Manager::cofactor(const Bdd& f, int var, bool value) {
  check_owned(f);
  // A variable the manager has never seen cannot occur in f's support.
  if (var < 0 || var >= static_cast<int>(level_of_.size())) return f;
  maybe_gc();
  return make_external(cofactor_rec(f.id_, var, value));
}

Bdd Manager::cofactor_cube(const Bdd& f,
                           const std::vector<std::pair<int, bool>>& cube) {
  Bdd result = f;
  for (const auto& [var, value] : cube) {
    result = cofactor(result, var, value);
  }
  return result;
}

std::uint32_t Manager::build_cube(const std::vector<int>& vars) {
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (!sorted.empty()) ensure_level_capacity(sorted.back() + 1);
  // Cube nodes must be chained top level first, so order by current level.
  std::sort(sorted.begin(), sorted.end(),
            [this](int a, int b) { return level_of(a) < level_of(b); });
  std::uint32_t cube = kOne;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    cube = make_node(*it, kZero, cube);
  }
  return cube;
}

// hyde-hot
std::uint32_t Manager::quantify_rec(std::uint32_t f, std::uint32_t cube,
                                    bool existential) {
  if (f <= kOne) return f;
  const std::int32_t fv = nodes_[f].var;
  const int f_level = level_of(fv);
  // Skip quantified variables above f's support: they cannot occur in f.
  while (cube > kOne && level_of(nodes_[cube].var) < f_level) {
    cube = nodes_[cube].hi;
  }
  if (cube <= kOne) return f;
  const std::uint64_t a = op_key(existential ? kOpExists : kOpForall, f);
  std::uint32_t result;
  if (cache_lookup(a, cube, &result)) return result;
  // Copy fields: make_node and the kernels below can reallocate the store.
  const std::uint32_t n_lo = nodes_[f].lo;
  const std::uint32_t n_hi = nodes_[f].hi;
  const std::int32_t cube_var = nodes_[cube].var;
  const std::uint32_t sub_cube = nodes_[cube].hi;
  if (fv == cube_var) {
    const std::uint32_t lo = quantify_rec(n_lo, sub_cube, existential);
    // Dominant short-circuits: x | 1 = 1, x & 0 = 0.
    if (existential && lo == kOne) {
      result = kOne;
    } else if (!existential && lo == kZero) {
      result = kZero;
    } else {
      const std::uint32_t hi = quantify_rec(n_hi, sub_cube, existential);
      result = existential ? or_rec(lo, hi) : and_rec(lo, hi);
    }
  } else {  // fv is above cube_var: keep the node, quantify below
    const std::uint32_t lo = quantify_rec(n_lo, cube, existential);
    const std::uint32_t hi = quantify_rec(n_hi, cube, existential);
    result = make_node(fv, lo, hi);
  }
  cache_insert(a, cube, result);
  return result;
}

Bdd Manager::exists(const Bdd& f, const std::vector<int>& vars) {
  check_owned(f);
  maybe_gc();
  const std::uint32_t cube = build_cube(vars);
  return make_external(quantify_rec(f.id_, cube, /*existential=*/true));
}

Bdd Manager::forall(const Bdd& f, const std::vector<int>& vars) {
  check_owned(f);
  maybe_gc();
  const std::uint32_t cube = build_cube(vars);
  return make_external(quantify_rec(f.id_, cube, /*existential=*/false));
}

std::uint64_t Manager::compose_context(const std::vector<std::int64_t>& map) {
  std::uint64_t fingerprint = 0xC0117E87ull;
  for (std::size_t v = 0; v < map.size(); ++v) {
    if (map[v] < 0) continue;
    fingerprint ^= (static_cast<std::uint64_t>(v) << 32 |
                    static_cast<std::uint64_t>(map[v])) *
                   0x9E3779B97F4A7C15ull;
    fingerprint *= 0xBF58476D1CE4E5B9ull;
    fingerprint ^= fingerprint >> 29;
  }
  const auto it = compose_fingerprints_.find(fingerprint);
  if (it != compose_fingerprints_.end() &&
      compose_maps_[it->second] == map) {
    return it->second + 1;
  }
  // New map this GC epoch (or a — vanishingly unlikely — fingerprint
  // collision, which simply gets a fresh id and never aliases cached
  // results of the old one).
  compose_maps_.push_back(map);
  const std::uint32_t id =
      static_cast<std::uint32_t>(compose_maps_.size() - 1);
  compose_fingerprints_[fingerprint] = id;
  return id + 1;
}

// hyde-hot
std::uint32_t Manager::compose_rec(std::uint32_t f,
                                   const std::vector<std::int64_t>& map,
                                   std::uint64_t ctx) {
  if (f <= kOne) return f;
  const std::uint64_t a = op_key(kOpCompose, f);
  std::uint32_t result;
  if (cache_lookup(a, ctx, &result)) return result;
  // Copy fields: make_node/ite_rec below can reallocate the node store.
  const std::int32_t n_var = nodes_[f].var;
  const std::uint32_t n_lo = nodes_[f].lo;
  const std::uint32_t n_hi = nodes_[f].hi;
  const std::uint32_t lo = compose_rec(n_lo, map, ctx);
  const std::uint32_t hi = compose_rec(n_hi, map, ctx);
  std::uint32_t sub;
  if (static_cast<std::size_t>(n_var) < map.size() && map[n_var] >= 0) {
    sub = static_cast<std::uint32_t>(map[n_var]);
  } else {
    sub = make_node(n_var, kZero, kOne);
  }
  result = ite_rec(sub, hi, lo);
  cache_insert(a, ctx, result);
  return result;
}

Bdd Manager::compose(const Bdd& f, int var, const Bdd& g) {
  check_owned(f);
  check_owned(g);
  if (var < 0 || var >= num_vars_) {
    throw std::invalid_argument("Manager::compose: variable index out of range");
  }
  maybe_gc();
  std::vector<std::int64_t> map(num_vars_, -1);
  map[static_cast<std::size_t>(var)] = g.id_;
  return make_external(compose_rec(f.id_, map, compose_context(map)));
}

Bdd Manager::vector_compose(
    const Bdd& f, const std::unordered_map<int, Bdd, std::hash<int>>& map) {
  check_owned(f);
  // Visit substitutions in sorted-variable order: unordered_map visit order
  // is hash-seed- and history-dependent, and which of several bad entries
  // gets rejected first must not depend on it.
  std::vector<int> vars;
  vars.reserve(map.size());
  // hyde-unordered-ok: key collection only; sorted before any use.
  for (const auto& [var, g] : map) vars.push_back(var);
  std::sort(vars.begin(), vars.end());
  for (const int var : vars) {
    check_owned(map.at(var));
    if (var < 0 || var >= num_vars_) {
      throw std::invalid_argument(
          "Manager::vector_compose: variable index out of range");
    }
  }
  maybe_gc();
  std::vector<std::int64_t> raw(num_vars_, -1);
  for (const int var : vars) {
    raw[static_cast<std::size_t>(var)] = map.at(var).id_;
  }
  return make_external(compose_rec(f.id_, raw, compose_context(raw)));
}

Bdd Manager::permute(const Bdd& f, const std::vector<int>& perm) {
  check_owned(f);
  maybe_gc();
  // perm maps every var in [0, perm.size()) to a target, so both the domain
  // and the targets must exist before `map` (sized num_vars_) is indexed.
  ensure_vars(static_cast<int>(perm.size()));
  for (const int target : perm) ensure_vars(target + 1);
  std::vector<std::int64_t> map(num_vars_, -1);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    if (perm[v] >= 0 && perm[v] != static_cast<int>(v)) {
      map[v] = make_node(perm[v], kZero, kOne);
    }
  }
  return make_external(compose_rec(f.id_, map, compose_context(map)));
}

void Manager::support_rec(std::uint32_t f, std::vector<char>& seen,
                          std::vector<char>& visited) {
  if (f <= kOne || visited[f]) return;
  visited[f] = 1;
  const Node& n = nodes_[f];
  seen[n.var] = 1;
  support_rec(n.lo, seen, visited);
  support_rec(n.hi, seen, visited);
}

std::vector<int> Manager::support(const Bdd& f) {
  check_owned(f);
  std::vector<char> seen(num_vars_, 0);
  std::vector<char> visited(nodes_.size(), 0);
  support_rec(f.id_, seen, visited);
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (seen[v]) vars.push_back(v);
  }
  return vars;
}

double Manager::sat_count_rec(std::uint32_t f,
                              std::unordered_map<std::uint32_t, double>& memo) {
  // Returns the fraction of the full input space satisfying f.
  if (f == kZero) return 0.0;
  if (f == kOne) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node& n = nodes_[f];
  const double p = 0.5 * (sat_count_rec(n.lo, memo) + sat_count_rec(n.hi, memo));
  memo.emplace(f, p);
  return p;
}

double Manager::sat_count(const Bdd& f, int num_vars) {
  std::unordered_map<std::uint32_t, double> memo;
  const double fraction = sat_count_rec(f.id_, memo);
  return fraction * std::pow(2.0, num_vars);
}

bool Manager::pick_one_minterm(const Bdd& f,
                               std::vector<std::pair<int, bool>>* out) {
  out->clear();
  std::uint32_t cur = f.id_;
  if (cur == kZero) return false;
  while (cur > kOne) {
    const Node& n = nodes_[cur];
    if (n.lo != kZero) {
      out->emplace_back(n.var, false);
      cur = n.lo;
    } else {
      out->emplace_back(n.var, true);
      cur = n.hi;
    }
  }
  return true;
}

std::size_t Manager::node_count(const Bdd& f) {
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<std::uint32_t> stack{f.id_};
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    if (id <= kOne || visited[id]) continue;
    visited[id] = 1;
    ++count;
    stack.push_back(nodes_[id].lo);
    stack.push_back(nodes_[id].hi);
  }
  return count;
}

double Manager::one_path_count(const Bdd& f) {
  check_owned(f);
  std::unordered_map<std::uint32_t, double> memo;
  std::function<double(std::uint32_t)> rec = [&](std::uint32_t id) -> double {
    if (id == kZero) return 0.0;
    if (id == kOne) return 1.0;
    if (auto it = memo.find(id); it != memo.end()) return it->second;
    const double total = rec(nodes_[id].lo) + rec(nodes_[id].hi);
    memo.emplace(id, total);
    return total;
  };
  return rec(f.id_);
}

// ---------------------------------------------------------------------------
// Truth-table bridge and evaluation
// ---------------------------------------------------------------------------

Bdd Manager::from_truth_table(const tt::TruthTable& table,
                              const std::vector<int>& var_map) {
  maybe_gc();
  const int n = table.num_vars();
  std::vector<int> map(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    map[static_cast<std::size_t>(i)] =
        var_map.empty() ? i : var_map[static_cast<std::size_t>(i)];
  }
  ensure_vars(n == 0 ? 0 : 1 + *std::max_element(map.begin(), map.end()));
  // Table variables sorted by ascending manager *level*: the recursion
  // branches on the topmost variable first and builds bottom levels deepest.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [this, &map](int a, int b) {
    return level_of(map[static_cast<std::size_t>(a)]) <
           level_of(map[static_cast<std::size_t>(b)]);
  });

  std::function<std::uint32_t(int, std::uint64_t)> rec =
      [&](int depth, std::uint64_t offset) -> std::uint32_t {
    if (depth == n) return table.bit(offset) ? kOne : kZero;
    const int tv = order[static_cast<std::size_t>(depth)];
    const std::uint32_t lo = rec(depth + 1, offset);
    const std::uint32_t hi = rec(depth + 1, offset | (std::uint64_t{1} << tv));
    return make_node(map[static_cast<std::size_t>(tv)], lo, hi);
  };
  return make_external(rec(0, 0));
}

tt::TruthTable Manager::to_truth_table(const Bdd& f,
                                       const std::vector<int>& vars) {
  const int n = static_cast<int>(vars.size());
  if (n > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("to_truth_table: too many variables");
  }
  std::vector<int> table_pos(num_vars_, -1);
  for (int i = 0; i < n; ++i) table_pos[vars[static_cast<std::size_t>(i)]] = i;
  tt::TruthTable result(n);
  for (std::uint64_t m = 0; m < result.size(); ++m) {
    std::uint32_t cur = f.id_;
    while (cur > kOne) {
      const Node& node = nodes_[cur];
      const int level = table_pos[node.var];
      if (level < 0) {
        throw std::invalid_argument(
            "to_truth_table: function depends on a variable outside vars");
      }
      cur = ((m >> level) & 1) ? node.hi : node.lo;
    }
    if (cur == kOne) result.set_bit(m, true);
  }
  return result;
}

bool Manager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  std::uint32_t cur = f.id_;
  while (cur > kOne) {
    const Node& node = nodes_[cur];
    cur = assignment[static_cast<std::size_t>(node.var)] ? node.hi : node.lo;
  }
  return cur == kOne;
}

std::string Manager::to_dot(const Bdd& f, const std::string& name) {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n";
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<std::uint32_t> stack{f.id_};
  os << "  n0 [shape=box,label=\"0\"];\n  n1 [shape=box,label=\"1\"];\n";
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    if (id <= kOne || visited[id]) continue;
    visited[id] = 1;
    const Node& n = nodes_[id];
    os << "  n" << id << " [label=\"x" << n.var << "\"];\n";
    os << "  n" << id << " -> n" << n.lo << " [style=dashed];\n";
    os << "  n" << id << " -> n" << n.hi << ";\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace hyde::bdd
