/// \file bdd_internal.hpp
/// \brief Kernel-internal constants shared by bdd.cpp and audit.cpp.
///
/// The unified computed table packs an operation tag into the high half of
/// key word `a` (tags start at 1, so a == 0 marks an empty slot). The
/// invariant auditor decodes these tags to validate that every occupied slot
/// references live nodes, so the definitions live here rather than in an
/// anonymous namespace inside bdd.cpp.

#pragma once

#include <cstdint>

namespace hyde::bdd::internal {

inline constexpr std::uint32_t kZero = 0;
inline constexpr std::uint32_t kOne = 1;
inline constexpr std::uint32_t kNil = 0xFFFFFFFFu;

/// Node::var sentinel for a slot on the free list (dead until recycled).
inline constexpr std::int32_t kDeadVar = -2;

/// Operation tags for the unified computed table.
enum Op : std::uint64_t {
  kOpIte = 1,
  kOpAnd,
  kOpOr,
  kOpXor,
  kOpNot,
  kOpCofactor,
  kOpExists,
  kOpForall,
  kOpCompose,
  kOpDisjoint,
  kOpLast = kOpDisjoint,
};

inline constexpr std::uint64_t op_key(std::uint64_t tag, std::uint32_t operand) {
  return (tag << 32) | operand;
}

inline std::size_t cache_hash(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = a * 0x9E3779B97F4A7C15ull ^ (b + 0x517CC1B727220A95ull);
  h ^= h >> 31;
  return static_cast<std::size_t>(h);
}

inline std::size_t triple_hash(std::int32_t var, std::uint32_t lo,
                               std::uint32_t hi) {
  std::uint64_t h = static_cast<std::uint32_t>(var);
  h = h * 0x9E3779B97F4A7C15ull + lo;
  h ^= h >> 29;
  h = h * 0xBF58476D1CE4E5B9ull + hi;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

}  // namespace hyde::bdd::internal
