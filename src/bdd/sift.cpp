/// \file sift.cpp
/// \brief In-place dynamic variable reordering: adjacent-level swap primitive
/// and converging sifting (see docs/REORDER.md).
///
/// The swap rewrites every level-l node that depends on the level-(l+1)
/// variable *in place* — `f = x ? f1 : f0` becomes
/// `f = y ? (x ? f11 : f01) : (x ? f10 : f00)` — so node ids, external
/// reference counts and the functions of live handles are all preserved;
/// only the level map moves. Canonicity is maintained without a rebuild:
/// a rewritten node's new (y, lo, hi) triple always has at least one
/// x-labelled child (otherwise its cofactors would collapse and the node
/// could not have depended on y's level pair at all), while pre-existing
/// y-nodes never do — the triples cannot collide.
///
/// Because the package counts only *external* references, the reorder runs
/// over a reorder-scoped internal count (ext_refs + parent edges) built
/// after an up-front GC. A node whose internal count drops to zero during a
/// swap is unlinked from the unique table and tombstoned immediately — it
/// must not linger, because a later swap of its level would leave it under a
/// stale bucket key and a fresh make_node could then mint a duplicate
/// triple. Tombstoned slots are reclaimed by the GC that closes the reorder
/// (never recycled mid-reorder, so the lazy per-var lists stay sound).
/// Exact per-level live sizes are maintained throughout, which is what
/// converging sifting minimizes.

#include <algorithm>
#include <stdexcept>

#include "bdd/bdd.hpp"
#include "bdd/bdd_internal.hpp"

namespace hyde::bdd {

using namespace internal;

/// Reorder-scoped bookkeeping; lives only for the duration of reorder_sift.
struct Manager::ReorderState {
  /// Internal reference counts: ext_refs plus one per parent edge from a
  /// live node. Zero marks resurrectable garbage.
  std::vector<std::uint32_t> ref;
  /// Node ids per variable. Lazily maintained: entries whose node died or
  /// changed label are skipped (and compacted) at scan time.
  std::vector<std::vector<std::uint32_t>> by_var;
  /// Whether an id is present in by_var[its current var].
  std::vector<char> listed;
  /// Live internal nodes per level; what sifting minimizes.
  std::vector<std::size_t> level_size;
  /// Sum of level_size.
  std::size_t live = 0;
};

void Manager::reorder_prepare(ReorderState& st) {
  const std::size_t vars = level_of_.size();
  st.ref.assign(nodes_.size(), 0);
  st.listed.assign(nodes_.size(), 0);
  st.by_var.assign(vars, {});
  st.level_size.assign(vars, 0);
  st.live = 0;
  // Post-GC every stored node is reachable from an external handle, so the
  // internal count is ext_refs plus the parent edges we see in one sweep.
  for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var < 0) continue;
    st.ref[id] += n.ext_refs;
    if (n.lo > kOne) ++st.ref[n.lo];
    if (n.hi > kOne) ++st.ref[n.hi];
    st.by_var[static_cast<std::size_t>(n.var)].push_back(id);
    st.listed[id] = 1;
    ++st.level_size[static_cast<std::size_t>(level_of(n.var))];
    ++st.live;
  }
}

void Manager::reorder_take_ref(ReorderState& st, std::uint32_t id) {
  if (id <= kOne) return;
  if (id >= st.ref.size()) {
    st.ref.resize(nodes_.size(), 0);
    st.listed.resize(nodes_.size(), 0);
  }
  if (st.ref[id]++ != 0) return;
  // Fresh from make_node, or garbage resurrected by a unique-table hit:
  // either way it becomes live again, and so do its children edges.
  const Node& n = nodes_[id];
  ++st.level_size[static_cast<std::size_t>(level_of(n.var))];
  ++st.live;
  if (!st.listed[id]) {
    st.by_var[static_cast<std::size_t>(n.var)].push_back(id);
    st.listed[id] = 1;
  }
  const std::uint32_t lo = n.lo;
  const std::uint32_t hi = n.hi;
  reorder_take_ref(st, lo);
  reorder_take_ref(st, hi);
}

void Manager::reorder_drop_ref(ReorderState& st, std::uint32_t id) {
  if (id <= kOne) return;
  if (--st.ref[id] != 0) return;
  // Unlink and tombstone now, while the bucket key still matches the node's
  // level; the closing GC sweeps the slot into the free list. The id is not
  // recycled mid-reorder, so stale by_var entries skip it via the kDeadVar
  // label.
  Node& n = nodes_[id];
  --st.level_size[static_cast<std::size_t>(level_of(n.var))];
  --st.live;
  unique_unlink(id);
  const std::uint32_t lo = n.lo;
  const std::uint32_t hi = n.hi;
  n.var = kDeadVar;
  reorder_drop_ref(st, lo);
  reorder_drop_ref(st, hi);
}

void Manager::swap_adjacent_levels(ReorderState& st, int upper) {
  const int x = var_at_[static_cast<std::size_t>(upper)];
  const int y = var_at_[static_cast<std::size_t>(upper + 1)];

  // Live nodes of both levels, with the lazy lists compacted as we go.
  // Returns by value: by_var may gain entries while the copy is iterated.
  auto compact = [&st, this](int var) {
    std::vector<std::uint32_t>& list =
        st.by_var[static_cast<std::size_t>(var)];
    std::size_t out = 0;
    for (const std::uint32_t id : list) {
      if (nodes_[id].var == var && st.ref[id] > 0) list[out++] = id;
    }
    list.resize(out);
    return list;
  };
  std::vector<std::uint32_t> xs = compact(x);
  const std::vector<std::uint32_t> ys = compact(y);

  // 1. Detach both levels from the unique table (their bucket keys are about
  // to change); the rest of the table is untouched.
  for (const std::uint32_t id : xs) unique_unlink(id);
  for (const std::uint32_t id : ys) unique_unlink(id);

  // 2. Swap the level map (and the per-level size slots with it).
  var_at_[static_cast<std::size_t>(upper)] = y;
  var_at_[static_cast<std::size_t>(upper + 1)] = x;
  level_of_[static_cast<std::size_t>(x)] = upper + 1;
  level_of_[static_cast<std::size_t>(y)] = upper;
  std::swap(st.level_size[static_cast<std::size_t>(upper)],
            st.level_size[static_cast<std::size_t>(upper + 1)]);

  // 3. Re-home y-nodes (now the upper level) and the x-nodes that do not
  // depend on y; collect the interacting x-nodes for rewrite.
  for (const std::uint32_t id : ys) unique_insert(id);
  std::size_t out = 0;
  for (const std::uint32_t id : xs) {
    const Node& n = nodes_[id];
    const bool lo_y = n.lo > kOne && nodes_[n.lo].var == y;
    const bool hi_y = n.hi > kOne && nodes_[n.hi].var == y;
    if (lo_y || hi_y) {
      xs[out++] = id;  // interacting: rewritten below
    } else {
      unique_insert(id);  // solitary: only its bucket key changed
    }
  }
  xs.resize(out);

  // 4. Rewrite each interacting node in place: branch on y on top, with
  // fresh (or looked-up) x-children underneath. Ids, ext_refs and functions
  // are preserved.
  for (const std::uint32_t id : xs) {
    const std::uint32_t f0 = nodes_[id].lo;
    const std::uint32_t f1 = nodes_[id].hi;
    const bool lo_y = f0 > kOne && nodes_[f0].var == y;
    const bool hi_y = f1 > kOne && nodes_[f1].var == y;
    const std::uint32_t f00 = lo_y ? nodes_[f0].lo : f0;
    const std::uint32_t f01 = lo_y ? nodes_[f0].hi : f0;
    const std::uint32_t f10 = hi_y ? nodes_[f1].lo : f1;
    const std::uint32_t f11 = hi_y ? nodes_[f1].hi : f1;
    const std::uint32_t new_lo = make_node(x, f00, f10);
    const std::uint32_t new_hi = make_node(x, f01, f11);
    reorder_take_ref(st, new_lo);
    reorder_take_ref(st, new_hi);
    Node& n = nodes_[id];
    n.var = y;
    n.lo = new_lo;
    n.hi = new_hi;
    // The node moves from the x slot (lower) to the y slot (upper).
    --st.level_size[static_cast<std::size_t>(upper + 1)];
    ++st.level_size[static_cast<std::size_t>(upper)];
    unique_insert(id);
    // listed tracks membership in by_var[current label], which just changed.
    st.by_var[static_cast<std::size_t>(y)].push_back(id);
    reorder_drop_ref(st, f0);
    reorder_drop_ref(st, f1);
  }
}

int Manager::sift_one_var(ReorderState& st, int start_level,
                          double sift_growth) {
  const int levels = static_cast<int>(var_at_.size());
  const std::size_t start_size = st.live;
  const std::size_t growth_cap = static_cast<std::size_t>(
      static_cast<double>(start_size) * sift_growth);
  std::size_t best_size = st.live;
  int best_level = start_level;
  int cur = start_level;

  // Visit the nearer end first (fewer swaps to undo on retreat), then sweep
  // to the other end; strict improvement keeps the first best deterministic.
  const bool down_first = (levels - 1 - start_level) <= start_level;
  for (int pass = 0; pass < 2; ++pass) {
    const bool down = down_first == (pass == 0);
    while (down ? cur + 1 < levels : cur > 0) {
      swap_adjacent_levels(st, down ? cur : cur - 1);
      cur += down ? 1 : -1;
      if (st.live < best_size) {
        best_size = st.live;
        best_level = cur;
      }
      if (st.live > growth_cap) break;
    }
    // Return toward the start before sweeping the other direction; the
    // second pass continues past it, so only retreat as far as needed.
    if (pass == 0) {
      while (cur > start_level) swap_adjacent_levels(st, --cur);
      while (cur < start_level) swap_adjacent_levels(st, cur++);
    }
  }
  // Park the variable at the best level seen.
  while (cur > best_level) swap_adjacent_levels(st, --cur);
  while (cur < best_level) swap_adjacent_levels(st, cur++);
  return best_level;
}

std::size_t Manager::reorder_sift(const ReorderOptions& options) {
  if (in_reorder_) return nodes_.size() - free_list_.size();
  if (options.max_rounds < 1 || !(options.convergence >= 0.0) ||
      !(options.sift_growth >= 1.0)) {
    throw std::invalid_argument("Manager::reorder_sift: bad ReorderOptions");
  }
  // Clean slate: only reachable nodes enter the reorder-scoped counts.
  collect_garbage();
  in_reorder_ = true;
  ReorderState st;
  reorder_prepare(st);

  struct Candidate {
    int var;
    std::size_t size;
  };
  for (int round = 0; round < options.max_rounds && st.live > 1; ++round) {
    const std::size_t round_start = st.live;
    // Biggest levels first (they have the most to give), index-tied for
    // determinism; the list is fixed per round even as sizes shift.
    std::vector<Candidate> order;
    for (std::size_t v = 0; v < level_of_.size(); ++v) {
      const std::size_t size =
          st.level_size[static_cast<std::size_t>(level_of_[v])];
      if (size > 0) order.push_back({static_cast<int>(v), size});
    }
    std::sort(order.begin(), order.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.size != b.size ? a.size > b.size : a.var < b.var;
              });
    for (const Candidate& c : order) {
      sift_one_var(st, level_of_[static_cast<std::size_t>(c.var)],
                   options.sift_growth);
    }
    const std::size_t gained = round_start - std::min(round_start, st.live);
    if (static_cast<double>(gained) <
        options.convergence * static_cast<double>(round_start)) {
      break;
    }
  }

  in_reorder_ = false;
  // Flush the resurrectable garbage, clear the computed table and compose
  // contexts, normalize the unique table (deferred growth rehash included)
  // and audit under HYDE_CHECKED.
  collect_garbage();
  ++reorder_runs_;
  ++reorder_epoch_;
  const std::size_t live = nodes_.size() - free_list_.size();
  reorder_watermark_ = std::max<std::size_t>(live, 2);
  return live;
}

}  // namespace hyde::bdd
