/// \file pool.hpp
/// \brief A pool of warmed bdd::Manager instances recycled across flow
/// invocations.
///
/// Constructing a Manager from scratch pays for node-store growth,
/// unique-table rehashes and computed-table allocation all over again; a
/// batch or windowed run creates one manager per flow invocation, so those
/// costs repeat thousands of times. The pool keeps managers that finished a
/// flow — reset via Manager::reset, which retains the node-store capacity,
/// the unique-table bucket count and the computed-table slots while wiping
/// contents, counters and governance knobs — and hands them to the next
/// invocation. Acquire/release are mutex-protected; the managers themselves
/// are never shared between threads concurrently (each flow owns its manager
/// exclusively, exactly as with a stack-local Manager).
///
/// A manager released while external handles are still outstanding cannot be
/// recycled (Manager::reset throws); destroying it would dangle those
/// handles, so the pool parks it on a condemned list — alive but never
/// handed out again — until the pool itself is destroyed, and counts the
/// discard. Stack-local lifetimes make this impossible by scoping; the pool
/// cannot, so it degrades to a bounded leak instead of a use-after-free.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::bdd {

/// Point-in-time pool counters (see ManagerPool::stats).
struct ManagerPoolStats {
  std::uint64_t acquires = 0;   ///< total acquire calls
  std::uint64_t hits = 0;       ///< acquires served by a recycled manager
  std::uint64_t discards = 0;   ///< releases that could not be recycled
  std::size_t pooled = 0;       ///< managers currently parked in the pool
};

class ManagerPool {
 public:
  /// \p max_pooled caps how many idle managers are parked; releases beyond
  /// the cap destroy the manager (counted as a discard).
  explicit ManagerPool(std::size_t max_pooled = 16)
      : max_pooled_(max_pooled) {}

  ManagerPool(const ManagerPool&) = delete;
  ManagerPool& operator=(const ManagerPool&) = delete;

  /// A warmed manager sized for \p num_vars variables, or a fresh one when
  /// the pool is empty.
  std::unique_ptr<Manager> acquire(int num_vars);

  /// Returns a manager to the pool. The caller must have dropped every
  /// handle first; a manager with outstanding handles is condemned (kept
  /// alive, never recycled) and one past the pool cap is destroyed — both
  /// count as discards.
  void release(std::unique_ptr<Manager> mgr);

  ManagerPoolStats stats() const;

 private:
  const std::size_t max_pooled_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Manager>> pool_;
  /// Managers released with outstanding handles: unusable, but destroying
  /// them would invalidate those handles. Freed with the pool.
  std::vector<std::unique_ptr<Manager>> condemned_;
  std::uint64_t acquires_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t discards_ = 0;
};

}  // namespace hyde::bdd
