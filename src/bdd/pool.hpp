/// \file pool.hpp
/// \brief A pool of warmed bdd::Manager instances recycled across flow
/// invocations, with thread-sticky slots.
///
/// Constructing a Manager from scratch pays for node-store growth,
/// unique-table rehashes and computed-table allocation all over again; a
/// batch or windowed run creates one manager per flow invocation, so those
/// costs repeat thousands of times. The pool keeps managers that finished a
/// flow — reset via Manager::reset, which retains the node-store capacity,
/// the unique-table bucket count and the computed-table slots while wiping
/// contents, counters and governance knobs — and hands them to the next
/// invocation.
///
/// Parked managers live in **slots keyed by the releasing thread**: a worker
/// that releases a manager gets the same (cache- and NUMA-warm) manager back
/// on its next acquire instead of whichever one another worker parked last,
/// so warmed managers stop ping-ponging between threads. A thread whose slot
/// is empty falls back to any other slot's parked manager before
/// constructing a fresh one — affinity is a preference, never a reason to
/// cold-start. Acquire/release are mutex-protected; the managers themselves
/// are never shared between threads concurrently (each flow owns its manager
/// exclusively, exactly as with a stack-local Manager). Slot choice affects
/// only which warm arena a flow reuses, never its results.
///
/// A manager released while external handles are still outstanding cannot be
/// recycled (Manager::reset throws); destroying it would dangle those
/// handles, so the pool parks it on a condemned list — alive but never
/// handed out again — until the pool itself is destroyed, and counts the
/// discard. Stack-local lifetimes make this impossible by scoping; the pool
/// cannot, so it degrades to a bounded leak instead of a use-after-free.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::bdd {

/// Point-in-time pool counters (see ManagerPool::stats).
struct ManagerPoolStats {
  std::uint64_t acquires = 0;   ///< total acquire calls
  std::uint64_t hits = 0;       ///< acquires served by a recycled manager
  std::uint64_t slot_hits = 0;  ///< hits served by the caller's own slot
  std::uint64_t discards = 0;   ///< releases that could not be recycled
  std::size_t pooled = 0;       ///< managers currently parked in the pool
};

class ManagerPool {
 public:
  /// \p max_pooled caps how many idle managers are parked across all slots;
  /// releases beyond the cap destroy the manager (counted as a discard).
  /// \p slots is the number of thread-sticky park lists; concurrent callers
  /// beyond that simply share slots.
  explicit ManagerPool(std::size_t max_pooled = 16, std::size_t slots = 8);

  ManagerPool(const ManagerPool&) = delete;
  ManagerPool& operator=(const ManagerPool&) = delete;

  /// A warmed manager sized for \p num_vars variables — preferring one the
  /// calling thread parked earlier — or a fresh one when every slot is empty.
  std::unique_ptr<Manager> acquire(int num_vars);

  /// Returns a manager to the calling thread's slot. The caller must have
  /// dropped every handle first; a manager with outstanding handles is
  /// condemned (kept alive, never recycled) and one past the pool cap is
  /// destroyed — both count as discards.
  void release(std::unique_ptr<Manager> mgr);

  ManagerPoolStats stats() const;

 private:
  /// The calling thread's sticky slot index (stable per thread).
  std::size_t slot_index() const;
  std::size_t total_pooled() const;  // requires mutex_

  const std::size_t max_pooled_;
  mutable std::mutex mutex_;
  /// Parked managers, one LIFO list per thread-sticky slot.
  std::vector<std::vector<std::unique_ptr<Manager>>> slots_;
  /// Managers released with outstanding handles: unusable, but destroying
  /// them would invalidate those handles. Freed with the pool.
  std::vector<std::unique_ptr<Manager>> condemned_;
  std::uint64_t acquires_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t slot_hits_ = 0;
  std::uint64_t discards_ = 0;
};

}  // namespace hyde::bdd
