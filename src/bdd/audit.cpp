/// \file audit.cpp
/// \brief Structural invariant auditor for the BDD manager.
///
/// Walks every kernel data structure — node store, unique table, computed
/// table, free list, compose-context registry — and reports each violated
/// invariant with enough detail to locate the corruption. The checks mirror
/// the failure modes of a manually-managed refcounted kernel: stale ids
/// after GC, unique-table canonicity breaks (silent loss of structural
/// equality), refcount drift (premature collection or leaks), and dangling
/// computed-table entries (silently wrong operation results).
///
/// See docs/ANALYSIS.md for the full list of defect classes and the
/// corruption-injection tests that pin each one.

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/bdd_internal.hpp"

namespace hyde::bdd {

namespace {

using internal::kNil;
using internal::kOne;
using internal::kZero;

const char* kind_name(InvariantViolation::Kind kind) {
  switch (kind) {
    case InvariantViolation::Kind::kNodeStructure:
      return "node-structure";
    case InvariantViolation::Kind::kUniqueTable:
      return "unique-table";
    case InvariantViolation::Kind::kRefCount:
      return "ref-count";
    case InvariantViolation::Kind::kComputedTable:
      return "computed-table";
    case InvariantViolation::Kind::kFreeList:
      return "free-list";
    case InvariantViolation::Kind::kLevelMap:
      return "level-map";
  }
  return "unknown";
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  for (const InvariantViolation& v : violations) {
    os << "[" << kind_name(v.kind) << "] " << v.detail << "\n";
  }
  return os.str();
}

InvariantReport Manager::audit_invariants() const {
  InvariantReport report;
  auto add = [&report](InvariantViolation::Kind kind, const std::string& s) {
    // Cap the report so a badly corrupted manager cannot OOM the auditor.
    if (report.violations.size() < 256) {
      report.violations.push_back({kind, s});
    }
  };
  using Kind = InvariantViolation::Kind;
  const std::uint32_t store = static_cast<std::uint32_t>(nodes_.size());

  auto describe = [](std::uint32_t id) {
    std::ostringstream os;
    os << "node " << id;
    return os.str();
  };
  auto is_live = [this, store](std::uint32_t id) {
    return id < store && (id <= kOne || nodes_[id].var >= 0);
  };

  // --- Level map: level_of and var_at must be inverse permutations --------
  if (level_of_.size() != var_at_.size() ||
      level_of_.size() < static_cast<std::size_t>(num_vars_)) {
    std::ostringstream os;
    os << "level map sized " << level_of_.size() << "/" << var_at_.size()
       << " does not cover num_vars " << num_vars_;
    add(Kind::kLevelMap, os.str());
  }
  for (std::size_t v = 0; v < level_of_.size(); ++v) {
    const int level = level_of_[v];
    if (level < 0 || level >= static_cast<int>(var_at_.size())) {
      std::ostringstream os;
      os << "var " << v << " maps to out-of-range level " << level;
      add(Kind::kLevelMap, os.str());
    } else if (var_at_[static_cast<std::size_t>(level)] != static_cast<int>(v)) {
      std::ostringstream os;
      os << "var " << v << " maps to level " << level << " but var_at["
         << level << "] is " << var_at_[static_cast<std::size_t>(level)];
      add(Kind::kLevelMap, os.str());
    }
  }
  // Safe even over a corrupt map (already reported above).
  auto level_or_var = [this](std::int32_t var) {
    return var >= 0 && var < static_cast<std::int32_t>(level_of_.size())
               ? level_of_[static_cast<std::size_t>(var)]
               : var;
  };

  // --- Node store: constants, child sanity, level ordering ----------------
  if (store < 2 || nodes_[kZero].var != -1 || nodes_[kOne].var != -1) {
    add(Kind::kNodeStructure, "constant nodes 0/1 missing or not constant");
    return report;  // nothing else is meaningful
  }
  for (std::uint32_t id = 2; id < store; ++id) {
    const Node& n = nodes_[id];
    if (n.var < 0) {
      if (n.var != internal::kDeadVar) {
        std::ostringstream os;
        os << describe(id) << " has invalid var tag " << n.var;
        add(Kind::kNodeStructure, os.str());
      }
      continue;  // dead slot: audited with the free list below
    }
    if (n.var >= num_vars_) {
      std::ostringstream os;
      os << describe(id) << " var " << n.var << " >= num_vars " << num_vars_;
      add(Kind::kNodeStructure, os.str());
    }
    if (n.lo == n.hi) {
      std::ostringstream os;
      os << describe(id) << " is redundant (lo == hi == " << n.lo << ")";
      add(Kind::kNodeStructure, os.str());
    }
    for (const std::uint32_t child : {n.lo, n.hi}) {
      if (!is_live(child)) {
        std::ostringstream os;
        os << describe(id) << " child " << child << " is dead or out of range";
        add(Kind::kNodeStructure, os.str());
      } else if (child > kOne &&
                 level_or_var(nodes_[child].var) <= level_or_var(n.var)) {
        std::ostringstream os;
        os << describe(id) << " (var " << n.var << ", level "
           << level_or_var(n.var) << ") -> child " << child << " (var "
           << nodes_[child].var << ", level " << level_or_var(nodes_[child].var)
           << ") breaks the level order";
        add(Kind::kNodeStructure, os.str());
      }
    }
  }

  // --- Unique table: placement, chain integrity, full coverage ------------
  std::vector<std::uint32_t> chain_hits(store, 0);
  if (unique_buckets_.empty() ||
      (unique_buckets_.size() & (unique_buckets_.size() - 1)) != 0) {
    add(Kind::kUniqueTable, "bucket count is not a nonzero power of two");
  } else {
    const std::size_t mask = unique_buckets_.size() - 1;
    for (std::size_t bucket = 0; bucket < unique_buckets_.size(); ++bucket) {
      std::size_t steps = 0;
      for (std::uint32_t id = unique_buckets_[bucket]; id != kNil;
           id = nodes_[id].next) {
        if (id >= store || id <= kOne) {
          std::ostringstream os;
          os << "bucket " << bucket << " chains to invalid id " << id;
          add(Kind::kUniqueTable, os.str());
          break;
        }
        if (++steps > nodes_.size()) {
          std::ostringstream os;
          os << "bucket " << bucket << " chain does not terminate (cycle)";
          add(Kind::kUniqueTable, os.str());
          break;
        }
        const Node& n = nodes_[id];
        if (n.var < 0) {
          std::ostringstream os;
          os << "bucket " << bucket << " chains through dead " << describe(id);
          add(Kind::kUniqueTable, os.str());
          break;  // dead nodes carry stale next pointers
        }
        ++chain_hits[id];
        // Placement is keyed by the node's *level* under the current order,
        // not its variable index — a swap that fails to re-home a node shows
        // up here.
        if ((internal::triple_hash(level_or_var(n.var), n.lo, n.hi) & mask) !=
            bucket) {
          std::ostringstream os;
          os << describe(id) << " hashed to the wrong bucket " << bucket
             << " for level " << level_or_var(n.var);
          add(Kind::kUniqueTable, os.str());
        }
      }
    }
    for (std::uint32_t id = 2; id < store; ++id) {
      if (nodes_[id].var < 0) continue;
      if (chain_hits[id] == 0) {
        add(Kind::kUniqueTable, describe(id) + " is live but not reachable "
                                              "from any unique-table bucket");
      } else if (chain_hits[id] > 1) {
        add(Kind::kUniqueTable, describe(id) + " appears in multiple chains");
      }
    }
  }

  // --- Canonicity: no two live nodes share a (var, lo, hi) triple ---------
  {
    // Keyed on the exact triple, not a hash of it: a lossy key would report
    // a false duplicate on collision, which under HYDE_CHECKED aborts a
    // perfectly healthy run.
    std::map<std::tuple<std::int32_t, std::uint32_t, std::uint32_t>,
             std::uint32_t>
        seen;
    for (std::uint32_t id = 2; id < store; ++id) {
      const Node& n = nodes_[id];
      if (n.var < 0) continue;
      const auto [it, inserted] =
          seen.emplace(std::make_tuple(n.var, n.lo, n.hi), id);
      if (!inserted) {
        std::ostringstream os;
        os << "duplicate triple (var " << n.var << ", lo " << n.lo << ", hi "
           << n.hi << ") at nodes " << it->second << " and " << id;
        add(Kind::kUniqueTable, os.str());
      }
    }
  }

  // --- Reference counts ----------------------------------------------------
  {
    if (nodes_[kZero].ext_refs == 0 || nodes_[kOne].ext_refs == 0) {
      add(Kind::kRefCount, "constant nodes must stay permanently referenced");
    }
    std::uint64_t recomputed = 0;
    for (std::uint32_t id = 0; id < store; ++id) {
      recomputed += nodes_[id].ext_refs;
      if (id > kOne && nodes_[id].var < 0 && nodes_[id].ext_refs != 0) {
        std::ostringstream os;
        os << "dead " << describe(id) << " holds " << nodes_[id].ext_refs
           << " external refs";
        add(Kind::kRefCount, os.str());
      }
    }
    if (recomputed != total_ext_refs_) {
      std::ostringstream os;
      os << "stored external refs sum to " << recomputed
         << " but the handles performed " << total_ext_refs_
         << " net acquisitions (refcount drift)";
      add(Kind::kRefCount, os.str());
    }
  }

  // --- Computed table: every occupied slot references live nodes ----------
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    const CacheEntry& e = cache_[slot];
    if (e.a == 0) continue;
    const std::uint64_t tag = e.a >> 32;
    const std::uint32_t f = static_cast<std::uint32_t>(e.a & 0xFFFFFFFFu);
    std::ostringstream os;
    os << "slot " << slot << " (op " << tag << "): ";
    if (tag < internal::kOpIte || tag > internal::kOpLast) {
      add(Kind::kComputedTable, os.str() + "unknown operation tag");
      continue;
    }
    if (!is_live(f)) {
      add(Kind::kComputedTable, os.str() + "operand f " + std::to_string(f) +
                                    " is dead or out of range");
      continue;
    }
    bool result_is_node = true;
    switch (tag) {
      case internal::kOpAnd:
      case internal::kOpOr:
      case internal::kOpXor:
      case internal::kOpDisjoint:
      case internal::kOpExists:
      case internal::kOpForall: {
        // b is a node id (second operand or quantification cube).
        const std::uint64_t g = e.b;
        if (g > 0xFFFFFFFFu || !is_live(static_cast<std::uint32_t>(g))) {
          add(Kind::kComputedTable, os.str() + "operand b " +
                                        std::to_string(g) +
                                        " is dead or out of range");
          continue;
        }
        result_is_node = tag != internal::kOpDisjoint;
        break;
      }
      case internal::kOpIte: {
        const std::uint32_t g = static_cast<std::uint32_t>(e.b >> 32);
        const std::uint32_t h = static_cast<std::uint32_t>(e.b & 0xFFFFFFFFu);
        for (const std::uint32_t operand : {g, h}) {
          if (!is_live(operand)) {
            add(Kind::kComputedTable, os.str() + "ITE operand " +
                                          std::to_string(operand) +
                                          " is dead or out of range");
          }
        }
        break;
      }
      case internal::kOpCofactor: {
        const std::uint64_t var = e.b >> 1;
        if (var >= static_cast<std::uint64_t>(num_vars_)) {
          add(Kind::kComputedTable,
              os.str() + "cofactor variable " + std::to_string(var) +
                  " out of range");
        }
        break;
      }
      case internal::kOpCompose: {
        if (e.b == 0 || e.b > compose_maps_.size()) {
          add(Kind::kComputedTable, os.str() + "compose context " +
                                        std::to_string(e.b) +
                                        " is not registered");
        }
        break;
      }
      case internal::kOpNot: {
        if (e.b != 0) {
          add(Kind::kComputedTable, os.str() + "NOT entry with nonzero b");
        }
        break;
      }
      default:
        break;
    }
    if (result_is_node && !is_live(e.result)) {
      add(Kind::kComputedTable, os.str() + "result " +
                                    std::to_string(e.result) +
                                    " is dead or out of range");
    }
  }

  // --- Compose-context registry: maps reference live substitution nodes ---
  for (std::size_t ctx = 0; ctx < compose_maps_.size(); ++ctx) {
    for (std::size_t v = 0; v < compose_maps_[ctx].size(); ++v) {
      const std::int64_t sub = compose_maps_[ctx][v];
      if (sub < 0) continue;
      if (sub > 0xFFFFFFFFll || !is_live(static_cast<std::uint32_t>(sub))) {
        std::ostringstream os;
        os << "compose context " << ctx + 1 << " maps var " << v
           << " to dead node " << sub;
        add(Kind::kComputedTable, os.str());
      }
    }
  }

  // --- Free list: exactly the dead slots, each exactly once ---------------
  {
    std::vector<std::uint32_t> free_hits(store, 0);
    for (const std::uint32_t id : free_list_) {
      if (id <= kOne || id >= store) {
        std::ostringstream os;
        os << "free list holds invalid id " << id;
        add(Kind::kFreeList, os.str());
        continue;
      }
      ++free_hits[id];
      if (nodes_[id].var >= 0) {
        add(Kind::kFreeList, "free list holds live " + describe(id));
      }
    }
    for (std::uint32_t id = 2; id < store; ++id) {
      if (free_hits[id] > 1) {
        add(Kind::kFreeList, describe(id) + " appears on the free list " +
                                 std::to_string(free_hits[id]) + " times");
      }
      if (nodes_[id].var < 0 && free_hits[id] == 0) {
        add(Kind::kFreeList, "dead " + describe(id) + " missing from the "
                                                      "free list");
      }
    }
  }

  return report;
}

void Manager::check_invariants() const {
  const InvariantReport report = audit_invariants();
  if (!report.ok()) {
    throw std::logic_error("BDD manager invariant audit failed:\n" +
                           report.to_string());
  }
}

}  // namespace hyde::bdd
