/// \file bdd.hpp
/// \brief A from-scratch ROBDD package (the paper's CUDD/SIS substrate).
///
/// Reduced Ordered Binary Decision Diagrams without complement edges, with a
/// unique table (structural hashing), a single unified computed table shared
/// by every operation (CUDD-style: fixed-size, open-addressed, lossy,
/// allocation-free on the hot path), external reference counting through the
/// RAII `Bdd` handle, and mark-and-sweep garbage collection.
///
/// The variable order starts as the identity order over the manager's
/// variable indices (variable 0 at the top) and may change at runtime through
/// in-place dynamic reordering (CUDD-style converging sifting built on an
/// adjacent-level swap primitive; see docs/REORDER.md). A level map keeps
/// variable *indices* stable — existing `Bdd` handles survive reorders
/// unchanged — while the *level* of each variable moves. Everything the
/// decomposition engine needs is provided: dedicated AND/OR/XOR/NOT kernels,
/// ITE, cofactors, quantification, composition, variable permutation,
/// support, satisfy-count, and conversion to/from `hyde::tt::TruthTable`.
///
/// See docs/BDD.md for the computed-table design (operation tags, lossy
/// replacement, GC invalidation) and the tuning knobs, and docs/REORDER.md
/// for the swap primitive, the sifting schedule, the reorder epoch contract
/// and the memory-governance ladder.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace hyde::bdd {

class Manager;

/// RAII handle to a BDD node. Copying/destroying maintains the manager's
/// external reference counts, so any node reachable from a live `Bdd` is
/// protected from garbage collection.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True iff the handle points at a node (a default-constructed Bdd is null).
  bool is_valid() const { return mgr_ != nullptr; }
  Manager* manager() const { return mgr_; }

  /// Structural equality — canonical ROBDDs make this functional equality.
  bool operator==(const Bdd& rhs) const {
    return mgr_ == rhs.mgr_ && id_ == rhs.id_;
  }

  bool is_zero() const;
  bool is_one() const;
  bool is_constant() const { return is_zero() || is_one(); }

  /// Top variable index; must not be constant.
  int top_var() const;
  /// Low (var=0) child; must not be constant.
  Bdd low() const;
  /// High (var=1) child; must not be constant.
  Bdd high() const;

  /// Raw node index inside the manager; stable until a GC happens only in the
  /// sense that live handles keep it alive. Useful as a hash/dictionary key
  /// while the handle is held.
  std::uint32_t id() const { return id_; }

  // Convenience operator forms of Manager operations (see Manager).
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator~() const;
  bool implies(const Bdd& rhs) const;

 private:
  friend class Manager;
  Bdd(Manager* mgr, std::uint32_t id);

  Manager* mgr_ = nullptr;
  std::uint32_t id_ = 0;
#ifdef HYDE_CHECKED
  /// Serial of the owning manager at handle creation; lets check_owned
  /// detect handles that outlived their manager even when a new manager
  /// reuses the same address.
  std::uint64_t mgr_serial_ = 0;
#endif
};

/// Hash functor for using Bdd as an unordered_map key.
struct BddHash {
  std::size_t operator()(const Bdd& b) const {
    return std::hash<std::uint32_t>()(b.id());
  }
};

/// One defect found by Manager::audit_invariants().
struct InvariantViolation {
  enum class Kind {
    kNodeStructure,  ///< bad child id, broken level ordering, lo == hi
    kUniqueTable,    ///< wrong bucket, chain corruption, duplicate triple
    kRefCount,       ///< stored counts disagree with the handle-maintained sum
    kComputedTable,  ///< occupied slot references a dead or invalid node
    kFreeList,       ///< free list and dead-node population disagree
    kLevelMap,       ///< level_of/var_at are not inverse permutations
  };
  Kind kind;
  std::string detail;
};

/// Result of a full structural audit (see Manager::audit_invariants()).
struct InvariantReport {
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  bool has(InvariantViolation::Kind kind) const {
    for (const InvariantViolation& v : violations) {
      if (v.kind == kind) return true;
    }
    return false;
  }
  /// Multi-line human-readable rendering; empty string when ok().
  std::string to_string() const;
};

/// Point-in-time snapshot of a manager's kernel counters (see
/// Manager::stats()). Cache counters accumulate over the manager's lifetime;
/// table *contents* are invalidated at every GC but the counters are not
/// reset.
struct ManagerStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  /// Lossy replacements: an insert that evicted a live entry with a
  /// different key (the price of the direct-mapped design).
  std::uint64_t cache_overwrites = 0;
  std::size_t cache_capacity = 0;  ///< current slot count (grows on demand)
  std::size_t cache_occupied = 0;  ///< slots holding a valid entry
  std::size_t live_nodes = 0;
  std::size_t store_nodes = 0;     ///< allocated slots incl. dead ones
  std::size_t peak_live_nodes = 0;
  std::size_t unique_buckets = 0;
  int gc_runs = 0;
  int reorder_runs = 0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  double unique_load() const {
    return unique_buckets == 0 ? 0.0
                               : static_cast<double>(live_nodes) /
                                     static_cast<double>(unique_buckets);
  }
};

/// When a manager automatically runs dynamic reordering (see
/// Manager::set_reorder_mode).
enum class ReorderMode {
  kOff,   ///< never reorder automatically (explicit reorder_sift still works)
  kSift,  ///< reorder only from the soft-budget ladder (GC first, then sift)
  kAuto,  ///< kSift plus a growth trigger: live nodes > max_growth x the
          ///< watermark left by the last reorder (CUDD's maxGrowth idiom)
};

/// Knobs for one in-place converging-sifting pass (Manager::reorder_sift).
struct ReorderOptions {
  /// Maximum converging rounds; each round sifts every candidate variable.
  int max_rounds = 4;
  /// Stop when a round shrinks the live-node count by less than this ratio.
  double convergence = 0.02;
  /// While sifting one variable, abandon a direction once the DAG grows past
  /// this factor of its size when the variable's sift started.
  double sift_growth = 1.2;
};

/// The BDD manager: owns the node store, unique table and computed table.
///
/// Node 0 is the constant 0 and node 1 the constant 1. The manager supports a
/// fixed maximum variable count chosen at construction, which may be grown
/// with `ensure_vars`.
class Manager {
 public:
  explicit Manager(int num_vars = 64);
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;
  ~Manager();

  int num_vars() const { return num_vars_; }
  /// Grows the variable space to at least \p num_vars.
  void ensure_vars(int num_vars);

  Bdd zero() { return make_external(0); }
  Bdd one() { return make_external(1); }
  Bdd constant(bool value) { return value ? one() : zero(); }
  /// The single-variable function x_{index}.
  Bdd var(int index);
  /// The complemented variable !x_{index}.
  Bdd nvar(int index);

  // Dedicated apply kernels (operands of commutative ops are normalized, so
  // f&g and g&f share one computed-table entry).
  Bdd bdd_and(const Bdd& f, const Bdd& g);
  Bdd bdd_or(const Bdd& f, const Bdd& g);
  Bdd bdd_xor(const Bdd& f, const Bdd& g);
  Bdd bdd_not(const Bdd& f);
  /// If-then-else: f ? g : h. Degenerate calls are routed to the dedicated
  /// kernels above so they share cache entries with the operator forms.
  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// True iff f & g == 0, computed without building the conjunction.
  bool disjoint(const Bdd& f, const Bdd& g);
  /// True iff f implies g pointwise.
  bool implies(const Bdd& f, const Bdd& g) { return disjoint(f, bdd_not(g)); }

  /// Cofactor w.r.t. a single variable assignment.
  Bdd cofactor(const Bdd& f, int var, bool value);
  /// Cofactor w.r.t. a set of variable assignments (cube given as pairs).
  Bdd cofactor_cube(const Bdd& f, const std::vector<std::pair<int, bool>>& cube);

  /// Existential quantification over the given variables.
  Bdd exists(const Bdd& f, const std::vector<int>& vars);
  /// Universal quantification over the given variables.
  Bdd forall(const Bdd& f, const std::vector<int>& vars);

  /// Substitutes g for variable \p var inside f.
  Bdd compose(const Bdd& f, int var, const Bdd& g);
  /// Simultaneous substitution: variable v becomes map[v] for every map entry.
  Bdd vector_compose(const Bdd& f, const std::unordered_map<int, Bdd, std::hash<int>>& map);
  /// Renames variables: old variable v becomes perm[v]. Entries absent from
  /// \p perm (value < 0) keep their index. The mapping must be injective on
  /// the support.
  Bdd permute(const Bdd& f, const std::vector<int>& perm);

  /// Indices of variables f depends on, ascending.
  std::vector<int> support(const Bdd& f);
  /// Number of onset minterms over a space of \p num_vars variables.
  double sat_count(const Bdd& f, int num_vars);
  /// Any one onset minterm as (var, value) assignments for the support vars.
  /// Returns false if f is the zero function.
  bool pick_one_minterm(const Bdd& f, std::vector<std::pair<int, bool>>* out);

  /// Number of distinct internal nodes reachable from f (constants excluded).
  std::size_t node_count(const Bdd& f);
  /// Number of 1-paths (the cube count of the disjoint cover the BLIF/PLA
  /// writers emit) — the cost function of cube-minimizing encodings [3].
  double one_path_count(const Bdd& f);
  /// Count of all live (externally reachable) nodes in the manager.
  std::size_t live_node_count() const;
  /// Total nodes ever allocated and currently in the store.
  std::size_t store_size() const { return nodes_.size(); }

  /// Builds a BDD from a truth table; table variable i maps to manager
  /// variable var_map[i] (or i when var_map is empty).
  Bdd from_truth_table(const tt::TruthTable& table,
                       const std::vector<int>& var_map = {});
  /// Evaluates f over the cube spanned by \p vars into a truth table; f must
  /// not depend on variables outside \p vars.
  tt::TruthTable to_truth_table(const Bdd& f, const std::vector<int>& vars);

  /// Evaluates f on a complete assignment (indexed by manager variable).
  bool eval(const Bdd& f, const std::vector<bool>& assignment);

  /// Graphviz dump for debugging.
  std::string to_dot(const Bdd& f, const std::string& name = "bdd");

  /// Runs mark-and-sweep garbage collection; invalidates no live handles.
  /// Clears the computed table (cached results may reference dead nodes).
  void collect_garbage();
  /// Number of GC runs so far (for stats/tests).
  int gc_runs() const { return gc_runs_; }

  /// Snapshot of the kernel counters (computed table, node store, GC).
  ManagerStats stats() const;

  /// Caps the computed table's slot count (rounded down to a power of two,
  /// min 1024). The table starts small and doubles under sustained insert
  /// pressure up to this cap; shrinking below the current size clears it.
  void set_cache_limit(std::size_t max_entries);

  /// Hard cap on live nodes; 0 (the default) means unlimited. Exceeding the
  /// cap makes node creation throw std::length_error — used by callers that
  /// attempt a BDD-based computation and fall back when it blows up. The cap
  /// is suspended while a reorder is in flight (a swap must never tear).
  void set_node_limit(std::size_t limit) { node_limit_ = limit; }
  std::size_t node_limit() const { return node_limit_; }

  /// Soft node budget; 0 (the default) disables it. Crossing it at an
  /// operation entry point first runs GC; if the manager is still above the
  /// budget and a reorder mode is enabled, it then runs converging sifting.
  /// Only after both rungs fail does growth continue toward the hard
  /// node_limit (whose std::length_error the windowed flow turns into its
  /// split/pass-through ladder). See docs/REORDER.md.
  void set_soft_node_limit(std::size_t limit) { soft_node_limit_ = limit; }
  std::size_t soft_node_limit() const { return soft_node_limit_; }

  // -- dynamic variable reordering (sift.cpp) -------------------------------

  /// Current level of a variable (0 = top). Identity until the first reorder.
  int level_of(int var) const { return level_of_[static_cast<std::size_t>(var)]; }
  /// Variable currently at a level. Inverse of level_of.
  int var_at(int level) const { return var_at_[static_cast<std::size_t>(level)]; }
  /// The current order, top level first. current_order()[l] == var_at(l).
  std::vector<int> current_order() const { return var_at_; }

  /// Monotone counter bumped once per completed reorder. Any layer that
  /// caches node ids, levels or order-dependent results outside this manager
  /// must record the epoch it observed and invalidate on mismatch; the
  /// in-manager computed table and compose contexts are cleared internally.
  std::uint64_t reorder_epoch() const { return reorder_epoch_; }
  /// Number of completed reorders (for stats/tests).
  int reorder_runs() const { return reorder_runs_; }

  /// Runs one in-place converging-sifting pass now: GC, then sift each
  /// candidate variable to its best level via adjacent-level swaps, repeating
  /// until a round improves by less than options.convergence (or max_rounds).
  /// Live handles keep their ids and functions; only levels move. Bumps the
  /// reorder epoch and clears the computed table. Returns the live-node count
  /// after the pass.
  std::size_t reorder_sift(const ReorderOptions& options = {});

  /// Selects when reordering fires automatically (at operation entry points;
  /// never mid-recursion). kAuto arms a growth trigger of
  /// max_growth x the live-node watermark left by the last reorder.
  void set_reorder_mode(ReorderMode mode, double max_growth = 2.0,
                        const ReorderOptions& options = {});
  ReorderMode reorder_mode() const { return reorder_mode_; }

  /// Recycles the manager for a fresh computation while keeping its warmed
  /// allocations: node-store capacity, unique-table bucket count and
  /// computed-table slots survive; contents, counters, the level map and all
  /// governance knobs are reset to a just-constructed state. Requires that no
  /// external handles are outstanding (only the two constants may be
  /// referenced) and throws std::logic_error otherwise. Used by ManagerPool.
  void reset(int num_vars);

  /// Throws std::invalid_argument if the handle came from another manager.
  /// Under HYDE_CHECKED this additionally detects stale handles whose owning
  /// manager was destroyed and its address reused (the handle carries the
  /// owning manager's serial number).
  void check_owned(const Bdd& f) const;

  /// Exhaustive structural audit of the kernel's data structures: unique
  /// table (canonicity, bucket placement, no duplicate (var, lo, hi)
  /// triples, variable ordering of children), reference counts (recomputed
  /// handle totals vs. stored per-node counts), computed table (occupied
  /// slots reference live nodes only), and free-list integrity. O(store
  /// size) — a debugging tool, not a hot-path check. Under HYDE_CHECKED it
  /// runs automatically after every garbage collection.
  InvariantReport audit_invariants() const;
  /// Throws std::logic_error carrying the report text if the audit fails.
  void check_invariants() const;

 private:
  friend class Bdd;
  friend struct ManagerTestPeer;  // corruption-injection hooks for tests

  struct Node {
    std::int32_t var;   // variable index; -1 for constants
    std::uint32_t lo;
    std::uint32_t hi;
    std::uint32_t next;  // unique-table chain
    std::uint32_t ext_refs = 0;
  };

  /// One slot of the unified computed table. `a` packs the operation tag in
  /// its high half (tags start at 1, so a == 0 marks an empty slot); `b`
  /// carries the remaining operands.
  struct CacheEntry {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t result = 0;
  };

  std::uint32_t make_node(std::int32_t var, std::uint32_t lo, std::uint32_t hi);

  // Unified computed table.
  bool cache_lookup(std::uint64_t a, std::uint64_t b, std::uint32_t* result);
  void cache_insert(std::uint64_t a, std::uint64_t b, std::uint32_t result);
  void cache_clear();

  // Recursive kernels (raw node ids; caller must pin operands via handles or
  // the recursion itself — GC only runs at API entry points).
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t and_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t or_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t xor_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t not_rec(std::uint32_t f);
  bool disjoint_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t cofactor_rec(std::uint32_t f, int var, bool value);
  std::uint32_t quantify_rec(std::uint32_t f, std::uint32_t cube,
                             bool existential);
  std::uint32_t compose_rec(std::uint32_t f, const std::vector<std::int64_t>& map,
                            std::uint64_t ctx);

  /// Positive cube over \p vars (duplicates ignored), bottom-up so each level
  /// is a single make_node.
  std::uint32_t build_cube(const std::vector<int>& vars);
  /// Registers a substitution map for this GC epoch and returns a small id
  /// that keys compose results in the computed table (identical maps share
  /// an id, so repeated vector_compose calls hit the cache).
  std::uint64_t compose_context(const std::vector<std::int64_t>& map);

  void support_rec(std::uint32_t f, std::vector<char>& seen,
                   std::vector<char>& visited);
  double sat_count_rec(std::uint32_t f,
                       std::unordered_map<std::uint32_t, double>& memo);

  Bdd make_external(std::uint32_t id);
  void inc_ref(std::uint32_t id);
  void dec_ref(std::uint32_t id);
  void maybe_gc();

  std::uint32_t unique_lookup(std::int32_t var, std::uint32_t lo, std::uint32_t hi);
  void unique_insert(std::uint32_t id);
  /// Removes a node from its bucket chain; the node must be present under
  /// its current (level, lo, hi) key.
  void unique_unlink(std::uint32_t id);
  void rehash_unique(std::size_t new_bucket_count);

  /// Grows the level map so every variable index below \p count has a level
  /// (new variables enter at the bottom, preserving the identity tail).
  void ensure_level_capacity(int count);

  // In-place reordering machinery (sift.cpp). ReorderState carries the
  // reorder-scoped internal reference counts (ext_refs + parent edges),
  // per-variable node lists and exact per-level live sizes.
  struct ReorderState;
  void reorder_prepare(ReorderState& st);
  void reorder_take_ref(ReorderState& st, std::uint32_t id);
  void reorder_drop_ref(ReorderState& st, std::uint32_t id);
  /// Swaps the variables at levels (upper, upper + 1); returns the live-node
  /// delta of the swap (signed).
  void swap_adjacent_levels(ReorderState& st, int upper);
  /// Sifts var_at(start_level) to its best level; returns the new level.
  int sift_one_var(ReorderState& st, int start_level, double sift_growth);

  int num_vars_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> unique_buckets_;

  // Computed table state (lazily allocated; grows by doubling under insert
  // pressure up to cache_max_entries_).
  std::vector<CacheEntry> cache_;
  std::size_t cache_max_entries_ = std::size_t{1} << 20;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_inserts_ = 0;
  std::uint64_t cache_overwrites_ = 0;
  std::uint64_t inserts_since_grow_ = 0;

  // Compose-context registry for the current GC epoch.
  std::vector<std::vector<std::int64_t>> compose_maps_;
  std::unordered_map<std::uint64_t, std::uint32_t> compose_fingerprints_;

  std::size_t gc_threshold_ = 1u << 18;
  std::size_t node_limit_ = 0;
  std::size_t soft_node_limit_ = 0;
  int gc_runs_ = 0;
  std::size_t peak_live_nodes_ = 2;
  std::vector<std::uint32_t> free_list_;

  // Level map: level_of_[var] is the variable's current level (0 = top) and
  // var_at_[level] its inverse. Identity until the first reorder; always
  // covers every variable index stored in a node.
  std::vector<int> level_of_;
  std::vector<int> var_at_;

  // Reorder governance. reorder_epoch_ is published to external caches;
  // reorder_watermark_ is the live-node count left by the last reorder (or
  // reset), against which kAuto's growth trigger compares; in_reorder_
  // suspends the hard node limit and unique-table growth during swaps.
  ReorderMode reorder_mode_ = ReorderMode::kOff;
  ReorderOptions reorder_options_;
  double reorder_max_growth_ = 2.0;
  std::uint64_t reorder_epoch_ = 0;
  int reorder_runs_ = 0;
  std::size_t reorder_watermark_ = 2;
  bool in_reorder_ = false;

  /// Running sum of all per-node external reference counts, maintained by
  /// inc_ref/dec_ref. The auditor recomputes the sum from the node store and
  /// flags any drift (a count mutated without going through the handles).
  std::uint64_t total_ext_refs_ = 0;
  /// Process-unique serial for HYDE_CHECKED stale-handle detection.
  std::uint64_t serial_ = 0;
};

}  // namespace hyde::bdd
