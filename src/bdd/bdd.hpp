/// \file bdd.hpp
/// \brief A from-scratch ROBDD package (the paper's CUDD/SIS substrate).
///
/// Reduced Ordered Binary Decision Diagrams without complement edges, with a
/// unique table (structural hashing), a computed table (operation cache),
/// external reference counting through the RAII `Bdd` handle, and
/// mark-and-sweep garbage collection.
///
/// The variable order is the identity order over the manager's variable
/// indices (variable 0 at the top). Everything the decomposition engine needs
/// is provided: ITE/apply, cofactors, quantification, composition, variable
/// permutation, support, satisfy-count, and conversion to/from
/// `hyde::tt::TruthTable`.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace hyde::bdd {

class Manager;

/// RAII handle to a BDD node. Copying/destroying maintains the manager's
/// external reference counts, so any node reachable from a live `Bdd` is
/// protected from garbage collection.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True iff the handle points at a node (a default-constructed Bdd is null).
  bool is_valid() const { return mgr_ != nullptr; }
  Manager* manager() const { return mgr_; }

  /// Structural equality — canonical ROBDDs make this functional equality.
  bool operator==(const Bdd& rhs) const {
    return mgr_ == rhs.mgr_ && id_ == rhs.id_;
  }

  bool is_zero() const;
  bool is_one() const;
  bool is_constant() const { return is_zero() || is_one(); }

  /// Top variable index; must not be constant.
  int top_var() const;
  /// Low (var=0) child; must not be constant.
  Bdd low() const;
  /// High (var=1) child; must not be constant.
  Bdd high() const;

  /// Raw node index inside the manager; stable until a GC happens only in the
  /// sense that live handles keep it alive. Useful as a hash/dictionary key
  /// while the handle is held.
  std::uint32_t id() const { return id_; }

  // Convenience operator forms of Manager operations (see Manager).
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator~() const;
  bool implies(const Bdd& rhs) const;

 private:
  friend class Manager;
  Bdd(Manager* mgr, std::uint32_t id);

  Manager* mgr_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Hash functor for using Bdd as an unordered_map key.
struct BddHash {
  std::size_t operator()(const Bdd& b) const {
    return std::hash<std::uint32_t>()(b.id());
  }
};

/// The BDD manager: owns the node store, unique table and computed table.
///
/// Node 0 is the constant 0 and node 1 the constant 1. The manager supports a
/// fixed maximum variable count chosen at construction, which may be grown
/// with `ensure_vars`.
class Manager {
 public:
  explicit Manager(int num_vars = 64);
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;
  ~Manager();

  int num_vars() const { return num_vars_; }
  /// Grows the variable space to at least \p num_vars.
  void ensure_vars(int num_vars);

  Bdd zero() { return make_external(0); }
  Bdd one() { return make_external(1); }
  Bdd constant(bool value) { return value ? one() : zero(); }
  /// The single-variable function x_{index}.
  Bdd var(int index);
  /// The complemented variable !x_{index}.
  Bdd nvar(int index);

  Bdd bdd_and(const Bdd& f, const Bdd& g) { return ite(f, g, zero()); }
  Bdd bdd_or(const Bdd& f, const Bdd& g) { return ite(f, one(), g); }
  Bdd bdd_xor(const Bdd& f, const Bdd& g);
  Bdd bdd_not(const Bdd& f) { return ite(f, zero(), one()); }
  /// If-then-else: f ? g : h. The workhorse of the package.
  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// True iff f & g == 0, computed without building the conjunction.
  bool disjoint(const Bdd& f, const Bdd& g);
  /// True iff f implies g pointwise.
  bool implies(const Bdd& f, const Bdd& g) { return disjoint(f, bdd_not(g)); }

  /// Cofactor w.r.t. a single variable assignment.
  Bdd cofactor(const Bdd& f, int var, bool value);
  /// Cofactor w.r.t. a set of variable assignments (cube given as pairs).
  Bdd cofactor_cube(const Bdd& f, const std::vector<std::pair<int, bool>>& cube);

  /// Existential quantification over the given variables.
  Bdd exists(const Bdd& f, const std::vector<int>& vars);
  /// Universal quantification over the given variables.
  Bdd forall(const Bdd& f, const std::vector<int>& vars);

  /// Substitutes g for variable \p var inside f.
  Bdd compose(const Bdd& f, int var, const Bdd& g);
  /// Simultaneous substitution: variable v becomes map[v] for every map entry.
  Bdd vector_compose(const Bdd& f, const std::unordered_map<int, Bdd, std::hash<int>>& map);
  /// Renames variables: old variable v becomes perm[v]. Entries absent from
  /// \p perm (value < 0) keep their index. The mapping must be injective on
  /// the support.
  Bdd permute(const Bdd& f, const std::vector<int>& perm);

  /// Indices of variables f depends on, ascending.
  std::vector<int> support(const Bdd& f);
  /// Number of onset minterms over a space of \p num_vars variables.
  double sat_count(const Bdd& f, int num_vars);
  /// Any one onset minterm as (var, value) assignments for the support vars.
  /// Returns false if f is the zero function.
  bool pick_one_minterm(const Bdd& f, std::vector<std::pair<int, bool>>* out);

  /// Number of distinct internal nodes reachable from f (constants excluded).
  std::size_t node_count(const Bdd& f);
  /// Number of 1-paths (the cube count of the disjoint cover the BLIF/PLA
  /// writers emit) — the cost function of cube-minimizing encodings [3].
  double one_path_count(const Bdd& f);
  /// Count of all live (externally reachable) nodes in the manager.
  std::size_t live_node_count() const;
  /// Total nodes ever allocated and currently in the store.
  std::size_t store_size() const { return nodes_.size(); }

  /// Builds a BDD from a truth table; table variable i maps to manager
  /// variable var_map[i] (or i when var_map is empty).
  Bdd from_truth_table(const tt::TruthTable& table,
                       const std::vector<int>& var_map = {});
  /// Evaluates f over the cube spanned by \p vars into a truth table; f must
  /// not depend on variables outside \p vars.
  tt::TruthTable to_truth_table(const Bdd& f, const std::vector<int>& vars);

  /// Evaluates f on a complete assignment (indexed by manager variable).
  bool eval(const Bdd& f, const std::vector<bool>& assignment);

  /// Graphviz dump for debugging.
  std::string to_dot(const Bdd& f, const std::string& name = "bdd");

  /// Runs mark-and-sweep garbage collection; invalidates no live handles.
  void collect_garbage();
  /// Number of GC runs so far (for stats/tests).
  int gc_runs() const { return gc_runs_; }

  /// Hard cap on live nodes (0 = unlimited). Exceeding it makes node
  /// creation throw std::length_error — used by callers that attempt a
  /// BDD-based computation and fall back when it blows up.
  void set_node_limit(std::size_t limit) { node_limit_ = limit; }

  /// Throws std::invalid_argument if the handle came from another manager.
  void check_owned(const Bdd& f) const;

 private:
  friend class Bdd;

  struct Node {
    std::int32_t var;   // variable index; -1 for constants
    std::uint32_t lo;
    std::uint32_t hi;
    std::uint32_t next;  // unique-table chain
    std::uint32_t ext_refs = 0;
  };

  struct CacheKey {
    std::uint64_t a, b;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      std::uint64_t h = k.a * 0x9E3779B97F4A7C15ull ^ (k.b + 0x517CC1B727220A95ull);
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  std::uint32_t make_node(std::int32_t var, std::uint32_t lo, std::uint32_t hi);
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  bool disjoint_rec(std::uint32_t f, std::uint32_t g,
                    std::unordered_map<std::uint64_t, bool>& memo);
  std::uint32_t cofactor_rec(std::uint32_t f, int var, bool value,
                             std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  std::uint32_t quantify_rec(std::uint32_t f, const std::vector<char>& mask,
                             bool existential,
                             std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  std::uint32_t compose_rec(std::uint32_t f, const std::vector<std::int64_t>& map,
                            std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  void support_rec(std::uint32_t f, std::vector<char>& seen,
                   std::vector<char>& visited);
  double sat_count_rec(std::uint32_t f,
                       std::unordered_map<std::uint32_t, double>& memo);

  Bdd make_external(std::uint32_t id);
  void inc_ref(std::uint32_t id);
  void dec_ref(std::uint32_t id);
  void maybe_gc();

  std::uint32_t unique_lookup(std::int32_t var, std::uint32_t lo, std::uint32_t hi);
  void unique_insert(std::uint32_t id);
  void rehash_unique(std::size_t new_bucket_count);

  int num_vars_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> unique_buckets_;
  std::unordered_map<CacheKey, std::uint32_t, CacheKeyHash> ite_cache_;
  std::size_t gc_threshold_ = 1u << 18;
  std::size_t node_limit_ = 0;
  int gc_runs_ = 0;
  std::vector<std::uint32_t> free_list_;
};

}  // namespace hyde::bdd
