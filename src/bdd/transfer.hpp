/// \file transfer.hpp
/// \brief Moving BDDs between managers (with variable renaming or arbitrary
/// substitution). Used by the network layer to build global functions and by
/// the decomposition engine's cut-based class counting.

#pragma once

#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::bdd {

/// Transfers \p f into \p target, remapping source variable v to
/// var_map[v] (which must cover the source support; entries < 0 are
/// "unused" and may not appear in the support).
Bdd transfer(const Bdd& f, Manager& target, const std::vector<int>& var_map);

/// Transfers \p f into \p target substituting each source variable v by the
/// function subst[v], which must already live in \p target.
Bdd transfer_compose(const Bdd& f, Manager& target,
                     const std::vector<Bdd>& subst);

}  // namespace hyde::bdd
