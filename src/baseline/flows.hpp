/// \file flows.hpp
/// \brief Complete benchmark flows: HYDE and the simplified reimplementations
/// of the three published systems the paper compares against (IMODEC [5],
/// FGSyn [4], Sawada et al. [8]). Each flow = decomposition (core) + cleanup
/// and mapping (mapper), timed, with a built-in random-vector equivalence
/// check against the source network.

#pragma once

#include <string>

#include "core/flow.hpp"
#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"
#include "part/windowed.hpp"

namespace hyde::baseline {

struct BaselineResult {
  net::Network network;       ///< the mapped k-feasible network
  int luts = 0;               ///< 5-input LUT count (Table 2 metric)
  int clbs = 0;               ///< XC3000 CLB count (Table 1 metric; k=5 only)
  int depth = 0;              ///< LUT levels
  double seconds = 0.0;       ///< wall-clock flow time
  bool verified = false;      ///< random-vector equivalence check passed
  core::FlowStats stats;
};

/// Which system a flow models.
enum class System {
  kHyde,        ///< the paper's algorithm
  kImodecLike,  ///< [5]: per-output, rigid random encoding, DC merging
  kFgsynLike,   ///< [4]: hyper-sharing with PPIs pinned to the free set
  kSawadaLike,  ///< [8] without resubstitution
  kSawadaResubLike,  ///< [8] with resubstitution (support minimization)
};

/// Human-readable system name for reports.
std::string system_name(System system);

/// The core flow configuration modelling \p system (seed and engine knobs
/// left at their defaults; callers overwrite what they need).
core::FlowOptions system_flow_options(System system, int k);

/// Runs the full flow for \p system over \p input with k-input LUTs.
/// \p verify_vectors random input vectors are checked (0 disables).
/// \p cache optionally shares NPN-memoized decompositions across runs (see
/// core/decomp_cache.hpp; the runtime's batch scheduler passes one cache to
/// every job).
/// \p search_threads parallelizes candidate bound-set evaluation *inside*
/// the flow (decomp/search.hpp) — result-identical at any value; keep 1
/// when many flows already run concurrently on a batch worker pool.
/// \p encoder_threads likewise parallelizes the encoder's Step-4/Step-8 work
/// (core/encoder.hpp) and \p class_signatures toggles the packed-signature
/// column-compatibility fast path (decomp/compatible.hpp); both are
/// result-neutral engine knobs.
/// \p reorder / \p reorder_max_growth enable dynamic variable reordering in
/// the flow's global BDD manager (docs/REORDER.md) — result-affecting, see
/// core::FlowOptions. \p manager_pool recycles warmed managers across
/// invocations (bdd/pool.hpp); result-neutral, may be shared across threads.
BaselineResult run_system(const net::Network& input, System system, int k,
                          int verify_vectors = 256, std::uint64_t seed = 1,
                          core::DecompCache* cache = nullptr,
                          int cache_max_support = 7, int search_threads = 1,
                          int encoder_threads = 1,
                          bool class_signatures = true,
                          bdd::ReorderMode reorder = bdd::ReorderMode::kOff,
                          double reorder_max_growth = 2.0,
                          bdd::ManagerPool* manager_pool = nullptr);

/// Fully-explicit variant: runs \p system's mapping pipeline (including the
/// resubstitution pass for kSawadaResubLike) over an arbitrary FlowOptions.
/// Callers typically start from system_flow_options(system, k) and override
/// individual knobs; the convenience overload above delegates here.
BaselineResult run_system(const net::Network& input, System system,
                          const core::FlowOptions& options,
                          int verify_vectors = 256);

/// Windowed variant of run_system for networks too large to decompose whole:
/// runs part::run_windowed_flow under \p options (callers typically seed
/// options.flow from system_flow_options), then the global mapper cleanup —
/// skipped when budget-exhausted pass-through windows left wide nodes behind,
/// since the cleanup's truth tables are exponential in fanin count — and the
/// end-to-end equivalence check against \p input. Deterministic at every
/// options.threads value. CLB packing, like the cleanup, needs a k-feasible
/// network, so clbs stays 0 when any wide node survives.
BaselineResult run_windowed_system(const net::Network& input,
                                   const part::WindowedFlowOptions& options,
                                   int verify_vectors = 256);

}  // namespace hyde::baseline
