#include "baseline/flows.hpp"

#include <chrono>
#include <stdexcept>

#include "net/verify.hpp"

namespace hyde::baseline {

std::string system_name(System system) {
  switch (system) {
    case System::kHyde:
      return "HYDE";
    case System::kImodecLike:
      return "IMODEC-like";
    case System::kFgsynLike:
      return "FGSyn-like";
    case System::kSawadaLike:
      return "RK-noresub";
    case System::kSawadaResubLike:
      return "RK-resub";
  }
  return "?";
}

core::FlowOptions system_flow_options(System system, int k) {
  switch (system) {
    case System::kHyde:
      return core::hyde_options(k);
    case System::kImodecLike:
      return core::imodec_like_options(k);
    case System::kFgsynLike:
      return core::fgsyn_like_options(k);
    case System::kSawadaLike:
    case System::kSawadaResubLike:
      return core::sawada_like_options(k);
  }
  return core::hyde_options(k);
}

BaselineResult run_system(const net::Network& input, System system, int k,
                          int verify_vectors, std::uint64_t seed,
                          core::DecompCache* cache, int cache_max_support,
                          int search_threads, int encoder_threads,
                          bool class_signatures, bdd::ReorderMode reorder,
                          double reorder_max_growth,
                          bdd::ManagerPool* manager_pool) {
  core::FlowOptions options = system_flow_options(system, k);
  options.seed = seed;
  options.cache = cache;
  options.cache_max_support = cache_max_support;
  options.search_threads = search_threads;
  options.encoder_threads = encoder_threads;
  options.class_signatures = class_signatures;
  options.reorder = reorder;
  options.reorder_max_growth = reorder_max_growth;
  options.manager_pool = manager_pool;
  return run_system(input, system, options, verify_vectors);
}

BaselineResult run_system(const net::Network& input, System system,
                          const core::FlowOptions& options,
                          int verify_vectors) {
  const int k = options.k;
  const auto start = std::chrono::steady_clock::now();
  core::FlowResult flow = core::run_flow(input, options);
  const auto map_start = std::chrono::steady_clock::now();
  mapper::dedup_shared_nodes(flow.network);
  mapper::collapse_into_fanouts(flow.network, k);
  if (system == System::kSawadaResubLike) {
    mapper::resubstitute(flow.network);
    mapper::dedup_shared_nodes(flow.network);
    mapper::collapse_into_fanouts(flow.network, k);
  }
  mapper::dedup_shared_nodes(flow.network);
  const auto stop = std::chrono::steady_clock::now();
  flow.stats.mapping_seconds +=
      std::chrono::duration<double>(stop - map_start).count();

  BaselineResult result;
  result.stats = flow.stats;
  result.luts = mapper::lut_count(flow.network);
  result.depth = mapper::network_depth(flow.network);
  if (k == 5) {
    result.clbs = mapper::pack_xc3000(flow.network).num_clbs;
  }
  result.seconds =
      std::chrono::duration<double>(stop - start).count();
  if (verify_vectors <= 0) {
    result.verified = true;
  } else {
    net::EquivalenceOptions eq_options;
    eq_options.random_vectors = verify_vectors;
    eq_options.seed = options.seed * 7919 + 17;
    result.verified =
        net::check_equivalence(input, flow.network, eq_options).equivalent;
  }
  result.network = std::move(flow.network);
  return result;
}

BaselineResult run_windowed_system(const net::Network& input,
                                   const part::WindowedFlowOptions& options,
                                   int verify_vectors) {
  const int k = options.flow.k;
  const auto start = std::chrono::steady_clock::now();
  part::WindowedFlowResult windowed = part::run_windowed_flow(input, options);

  // Cross-window cleanup. The dedup/collapse passes build per-node truth
  // tables (exponential in fanin count), so they only run when every
  // pass-through window was already k-feasible.
  const auto map_start = std::chrono::steady_clock::now();
  if (windowed.network.is_k_feasible(k)) {
    mapper::dedup_shared_nodes(windowed.network);
    mapper::collapse_into_fanouts(windowed.network, k);
    mapper::dedup_shared_nodes(windowed.network);
  }
  const auto stop = std::chrono::steady_clock::now();
  windowed.stats.mapping_seconds +=
      std::chrono::duration<double>(stop - map_start).count();

  BaselineResult result;
  result.stats = windowed.stats;
  result.luts = mapper::lut_count(windowed.network);
  result.depth = mapper::network_depth(windowed.network);
  if (k == 5 && windowed.network.is_k_feasible(k)) {
    result.clbs = mapper::pack_xc3000(windowed.network).num_clbs;
  }
  result.seconds = std::chrono::duration<double>(stop - start).count();
  if (verify_vectors <= 0) {
    result.verified = true;
  } else {
    net::EquivalenceOptions eq_options;
    eq_options.random_vectors = verify_vectors;
    eq_options.seed = options.flow.seed * 7919 + 17;
    result.verified =
        net::check_equivalence(input, windowed.network, eq_options).equivalent;
  }
  result.network = std::move(windowed.network);
  return result;
}

}  // namespace hyde::baseline
