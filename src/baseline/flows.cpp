#include "baseline/flows.hpp"

#include <chrono>
#include <stdexcept>

#include "net/verify.hpp"

namespace hyde::baseline {

std::string system_name(System system) {
  switch (system) {
    case System::kHyde:
      return "HYDE";
    case System::kImodecLike:
      return "IMODEC-like";
    case System::kFgsynLike:
      return "FGSyn-like";
    case System::kSawadaLike:
      return "RK-noresub";
    case System::kSawadaResubLike:
      return "RK-resub";
  }
  return "?";
}

BaselineResult run_system(const net::Network& input, System system, int k,
                          int verify_vectors, std::uint64_t seed,
                          core::DecompCache* cache, int cache_max_support,
                          int search_threads, int encoder_threads,
                          bool class_signatures) {
  core::FlowOptions options;
  switch (system) {
    case System::kHyde:
      options = core::hyde_options(k);
      break;
    case System::kImodecLike:
      options = core::imodec_like_options(k);
      break;
    case System::kFgsynLike:
      options = core::fgsyn_like_options(k);
      break;
    case System::kSawadaLike:
    case System::kSawadaResubLike:
      options = core::sawada_like_options(k);
      break;
  }
  options.seed = seed;
  options.cache = cache;
  options.cache_max_support = cache_max_support;
  options.search_threads = search_threads;
  options.encoder_threads = encoder_threads;
  options.class_signatures = class_signatures;

  const auto start = std::chrono::steady_clock::now();
  core::FlowResult flow = core::run_flow(input, options);
  const auto map_start = std::chrono::steady_clock::now();
  mapper::dedup_shared_nodes(flow.network);
  mapper::collapse_into_fanouts(flow.network, k);
  if (system == System::kSawadaResubLike) {
    mapper::resubstitute(flow.network);
    mapper::dedup_shared_nodes(flow.network);
    mapper::collapse_into_fanouts(flow.network, k);
  }
  mapper::dedup_shared_nodes(flow.network);
  const auto stop = std::chrono::steady_clock::now();
  flow.stats.mapping_seconds +=
      std::chrono::duration<double>(stop - map_start).count();

  BaselineResult result;
  result.stats = flow.stats;
  result.luts = mapper::lut_count(flow.network);
  result.depth = mapper::network_depth(flow.network);
  if (k == 5) {
    result.clbs = mapper::pack_xc3000(flow.network).num_clbs;
  }
  result.seconds =
      std::chrono::duration<double>(stop - start).count();
  if (verify_vectors <= 0) {
    result.verified = true;
  } else {
    net::EquivalenceOptions eq_options;
    eq_options.random_vectors = verify_vectors;
    eq_options.seed = seed * 7919 + 17;
    result.verified =
        net::check_equivalence(input, flow.network, eq_options).equivalent;
  }
  result.network = std::move(flow.network);
  return result;
}

}  // namespace hyde::baseline
