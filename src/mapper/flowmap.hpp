/// \file flowmap.hpp
/// \brief Depth-optimal k-LUT technology mapping (FlowMap, Cong & Ding '94).
///
/// An alternative mapping backend to the decomposition flows: the network is
/// first decomposed into 2-input gates (`tech_decompose`), then every node
/// is labeled with its optimal LUT depth via repeated max-flow min-cut
/// computations on its fanin cone, and finally the chosen K-feasible cuts
/// are realized as LUTs. Depth optimality is FlowMap's theorem; area is
/// whatever the cuts imply.
///
/// Included as the era's canonical point of comparison for decomposition-
/// based mapping (see bench/ablation_mapping).

#pragma once

#include "net/network.hpp"

namespace hyde::mapper {

/// Rewrites every logic node as a tree of ≤2-input gates (functionally
/// equivalent, checked by the caller's tests). Constants and single-input
/// nodes pass through.
net::Network tech_decompose(const net::Network& network);

struct FlowMapResult {
  net::Network network;  ///< k-feasible LUT network
  int depth = 0;         ///< optimal LUT depth (the FlowMap label of the POs)
  int luts = 0;
};

/// Maps \p network into k-input LUTs with minimum depth. The input may have
/// nodes of any arity (tech_decompose is applied internally).
/// Requires k >= 2.
FlowMapResult flowmap(const net::Network& network, int k);

}  // namespace hyde::mapper
