#include "mapper/flowmap.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace hyde::mapper {

namespace {

using net::Network;
using net::NodeId;

// ---------------------------------------------------------------------------
// 2-input technology decomposition
// ---------------------------------------------------------------------------

/// Builds a 2-input-gate tree computing the local BDD of one node.
class GateBuilder {
 public:
  GateBuilder(Network& out, const std::vector<NodeId>& signal_of_pin)
      : out_(out), signal_of_pin_(signal_of_pin) {}

  NodeId build(const bdd::Bdd& f) {
    if (f.is_zero()) return constant(false);
    if (f.is_one()) return constant(true);
    if (const auto it = memo_.find(f); it != memo_.end()) return it->second;
    const NodeId s = signal_of_pin_[static_cast<std::size_t>(f.top_var())];
    const bdd::Bdd lo = f.low();
    const bdd::Bdd hi = f.high();
    NodeId result;
    if (hi.is_one()) {
      result = gate(s, build(lo), Gate::kOr);          // s | lo
    } else if (hi.is_zero()) {
      result = gate(s, build(lo), Gate::kAndNotA);     // !s & lo
    } else if (lo.is_zero()) {
      result = gate(s, build(hi), Gate::kAnd);         // s & hi
    } else if (lo.is_one()) {
      result = gate(s, build(hi), Gate::kOrNotA);      // !s | hi
    } else {
      const NodeId a = gate(s, build(hi), Gate::kAnd);
      const NodeId b = gate(s, build(lo), Gate::kAndNotA);
      result = gate(a, b, Gate::kOr);
    }
    memo_.emplace(f, result);
    return result;
  }

 private:
  enum class Gate { kAnd, kOr, kAndNotA, kOrNotA };

  NodeId constant(bool value) {
    NodeId& slot = value ? const1_ : const0_;
    if (slot == net::kNoNode) {
      slot = out_.add_constant(out_.fresh_name(value ? "one" : "zero"), value);
    }
    return slot;
  }

  NodeId gate(NodeId a, NodeId b, Gate kind) {
    const tt::TruthTable x = tt::TruthTable::var(2, 0);
    const tt::TruthTable y = tt::TruthTable::var(2, 1);
    tt::TruthTable fn(2);
    switch (kind) {
      case Gate::kAnd: fn = x & y; break;
      case Gate::kOr: fn = x | y; break;
      case Gate::kAndNotA: fn = ~x & y; break;
      case Gate::kOrNotA: fn = ~x | y; break;
    }
    return out_.add_logic_tt(out_.fresh_name("g"), {a, b}, fn);
  }

  Network& out_;
  const std::vector<NodeId>& signal_of_pin_;
  // Keyed on the handle, not the raw id: the entry then pins its node, so
  // a GC between build() calls cannot free (and a later make_node reuse
  // cannot alias) a memoized key.
  std::unordered_map<bdd::Bdd, NodeId, bdd::BddHash> memo_;
  NodeId const0_ = net::kNoNode;
  NodeId const1_ = net::kNoNode;
};

/// Rebalances maximal single-fanout chains/trees of one associative 2-input
/// gate kind (AND, OR, XOR) into balanced trees — FlowMap's depth optimality
/// is relative to the subject graph, so chain-shaped decompositions would
/// otherwise force deep mappings.
void balance_chains(Network& network) {
  const tt::TruthTable x = tt::TruthTable::var(2, 0);
  const tt::TruthTable y = tt::TruthTable::var(2, 1);
  const std::vector<tt::TruthTable> kinds{x & y, x | y, x ^ y};
  bool changed = true;
  while (changed) {
    changed = false;
    network.sweep();
    // Fanout counts and PO guards for the single-fanout test.
    std::vector<int> fanout(static_cast<std::size_t>(network.num_nodes()), 0);
    for (NodeId id : network.topo_order()) {
      for (NodeId f : network.node(id).fanins) {
        ++fanout[static_cast<std::size_t>(f)];
      }
    }
    for (const auto& o : network.outputs()) {
      fanout[static_cast<std::size_t>(o.driver)] += 2;  // never absorb PO roots
    }
    for (const tt::TruthTable& kind : kinds) {
      for (NodeId id : network.topo_order()) {
        const net::Node& node = network.node(id);
        if (node.kind != net::NodeKind::kLogic || node.fanins.size() != 2) {
          continue;
        }
        if (network.local_tt(id) != kind) continue;
        // Gather the maximal same-kind single-fanout subtree leaves, tracking
        // the current subtree depth.
        std::vector<NodeId> leaves;
        int current_depth = 1;
        std::function<void(NodeId, int)> gather = [&](NodeId v, int depth) {
          const net::Node& n = network.node(v);
          if (v != id && n.kind == net::NodeKind::kLogic &&
              n.fanins.size() == 2 && fanout[static_cast<std::size_t>(v)] == 1 &&
              network.local_tt(v) == kind) {
            gather(n.fanins[0], depth + 1);
            gather(n.fanins[1], depth + 1);
          } else {
            leaves.push_back(v);
            current_depth = std::max(current_depth, depth);
          }
        };
        gather(node.fanins[0], 1);
        gather(node.fanins[1], 1);
        if (leaves.size() <= 3) continue;  // already depth-minimal enough
        int optimal_depth = 0;
        while ((std::size_t{1} << optimal_depth) < leaves.size()) {
          ++optimal_depth;
        }
        if (current_depth <= optimal_depth) continue;  // already balanced
        // Rebuild a balanced tree bottom-up.
        std::vector<NodeId> layer = leaves;
        while (layer.size() > 2) {
          std::vector<NodeId> next;
          for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            next.push_back(network.add_logic_tt(network.fresh_name("bal"),
                                                {layer[i], layer[i + 1]}, kind));
          }
          if (layer.size() % 2 == 1) next.push_back(layer.back());
          layer = std::move(next);
        }
        net::Node& mutable_node = network.node(id);
        mutable_node.fanins = layer;
        mutable_node.local = network.manager().from_truth_table(kind);
        changed = true;
        break;  // new nodes exist: fanout[] is stale, restart the pass
      }
      if (changed) break;  // recompute fanouts before the next round
    }
  }
  network.sweep();
}

}  // namespace

Network tech_decompose(const Network& network) {
  Network out(network.model_name());
  std::unordered_map<NodeId, NodeId> map;
  for (NodeId pi : network.inputs()) {
    map.emplace(pi, out.add_input(network.node(pi).name));
  }
  for (NodeId id : network.topo_order()) {
    const net::Node& node = network.node(id);
    if (node.kind != net::NodeKind::kLogic) continue;
    std::vector<NodeId> signal_of_pin;
    for (NodeId f : node.fanins) signal_of_pin.push_back(map.at(f));
    GateBuilder builder(out, signal_of_pin);
    map.emplace(id, builder.build(node.local));
  }
  for (const auto& o : network.outputs()) {
    out.add_output(o.name, map.at(o.driver));
  }
  out.sweep();
  balance_chains(out);
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// FlowMap labeling
// ---------------------------------------------------------------------------

/// Unit-capacity max-flow on the node-split cone network, stopping as soon
/// as the flow exceeds \p limit. Returns the achieved flow and, when flow ≤
/// limit, the min vertex cut.
struct ConeFlow {
  // Flow-graph nodes: 2*i = in-side of cone node i, 2*i+1 = out-side,
  // source = 2*N, sink = 2*N+1.
  explicit ConeFlow(int cone_size)
      : n_(2 * cone_size + 2), adj_(static_cast<std::size_t>(n_)) {}

  void add_edge(int from, int to, int cap) {
    adj_[static_cast<std::size_t>(from)].push_back(
        {to, cap, static_cast<int>(adj_[static_cast<std::size_t>(to)].size())});
    adj_[static_cast<std::size_t>(to)].push_back(
        {from, 0, static_cast<int>(adj_[static_cast<std::size_t>(from)].size()) - 1});
  }

  int max_flow(int source, int sink, int limit) {
    int flow = 0;
    while (flow <= limit) {
      // BFS for an augmenting path.
      std::vector<int> prev_node(static_cast<std::size_t>(n_), -1);
      std::vector<int> prev_edge(static_cast<std::size_t>(n_), -1);
      std::queue<int> queue;
      queue.push(source);
      prev_node[static_cast<std::size_t>(source)] = source;
      while (!queue.empty() && prev_node[static_cast<std::size_t>(sink)] < 0) {
        const int u = queue.front();
        queue.pop();
        const auto& edges = adj_[static_cast<std::size_t>(u)];
        for (std::size_t e = 0; e < edges.size(); ++e) {
          if (edges[e].cap > 0 &&
              prev_node[static_cast<std::size_t>(edges[e].to)] < 0) {
            prev_node[static_cast<std::size_t>(edges[e].to)] = u;
            prev_edge[static_cast<std::size_t>(edges[e].to)] = static_cast<int>(e);
            queue.push(edges[e].to);
          }
        }
      }
      if (prev_node[static_cast<std::size_t>(sink)] < 0) break;
      for (int v = sink; v != source; v = prev_node[static_cast<std::size_t>(v)]) {
        const int u = prev_node[static_cast<std::size_t>(v)];
        Edge& e = adj_[static_cast<std::size_t>(u)]
                      [static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)])];
        e.cap -= 1;
        adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(e.rev)].cap += 1;
      }
      ++flow;
    }
    return flow;
  }

  /// After max_flow: flow-graph nodes reachable from source in the residual.
  std::vector<char> residual_reachable(int source) const {
    std::vector<char> seen(static_cast<std::size_t>(n_), 0);
    std::queue<int> queue;
    queue.push(source);
    seen[static_cast<std::size_t>(source)] = 1;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
        if (e.cap > 0 && !seen[static_cast<std::size_t>(e.to)]) {
          seen[static_cast<std::size_t>(e.to)] = 1;
          queue.push(e.to);
        }
      }
    }
    return seen;
  }

 private:
  struct Edge {
    int to;
    int cap;
    int rev;
  };
  int n_;
  std::vector<std::vector<Edge>> adj_;
};

/// The transitive fanin cone of t (logic nodes and PIs), t included.
std::vector<NodeId> fanin_cone(const Network& network, NodeId t) {
  std::vector<NodeId> cone;
  std::vector<char> seen(static_cast<std::size_t>(network.num_nodes()), 0);
  std::function<void(NodeId)> visit = [&](NodeId v) {
    if (seen[static_cast<std::size_t>(v)]) return;
    seen[static_cast<std::size_t>(v)] = 1;
    for (NodeId f : network.node(v).fanins) visit(f);
    cone.push_back(v);
  };
  visit(t);
  return cone;
}

}  // namespace

FlowMapResult flowmap(const Network& input, int k) {
  if (k < 2) throw std::invalid_argument("flowmap: k must be at least 2");
  const Network two = tech_decompose(input);

  std::vector<int> label(static_cast<std::size_t>(two.num_nodes()), 0);
  std::map<NodeId, std::vector<NodeId>> cut_of;

  for (NodeId t : two.topo_order()) {
    const net::Node& node = two.node(t);
    if (node.kind != net::NodeKind::kLogic) continue;
    if (node.fanins.empty()) {  // constant
      label[static_cast<std::size_t>(t)] = 0;
      cut_of[t] = {};
      continue;
    }
    int p = 0;
    for (NodeId f : node.fanins) {
      p = std::max(p, label[static_cast<std::size_t>(f)]);
    }
    if (p == 0) {
      // All fanins are PIs/constants — the trivial cut is K-feasible and the
      // label-0 collapse below would be degenerate; fall through to the flow
      // with p == 0 treated like any other height.
    }

    const auto cone = fanin_cone(two, t);
    std::unordered_map<NodeId, int> index;
    for (std::size_t i = 0; i < cone.size(); ++i) {
      index.emplace(cone[i], static_cast<int>(i));
    }
    const int source = 2 * static_cast<int>(cone.size());
    const int sink = source + 1;
    ConeFlow flow(static_cast<int>(cone.size()));
    const int kInf = std::numeric_limits<int>::max() / 4;

    // Collapsed set: t plus every cone node with label == p (height
    // reduction requires them inside the LUT).
    auto collapsed = [&](NodeId v) {
      return v == t || (two.node(v).kind == net::NodeKind::kLogic &&
                        label[static_cast<std::size_t>(v)] == p);
    };
    for (const NodeId v : cone) {
      const int i = index.at(v);
      const bool is_pi = two.node(v).kind == net::NodeKind::kInput;
      if (collapsed(v)) {
        // Identified with the sink: in->sink, no capacity.
        flow.add_edge(2 * i, sink, kInf);
        flow.add_edge(2 * i + 1, sink, kInf);
      } else {
        flow.add_edge(2 * i, 2 * i + 1, 1);  // vertex capacity
      }
      if (is_pi) flow.add_edge(source, 2 * i, kInf);
      for (NodeId f : two.node(v).fanins) {
        const int j = index.at(f);
        flow.add_edge(2 * j + 1, 2 * i, kInf);
      }
    }
    const int achieved = flow.max_flow(source, sink, k);
    if (achieved <= k) {
      label[static_cast<std::size_t>(t)] = std::max(p, 1);
      const auto reachable = flow.residual_reachable(source);
      std::vector<NodeId> cut;
      for (const NodeId v : cone) {
        const int i = index.at(v);
        if (collapsed(v)) continue;
        if (reachable[static_cast<std::size_t>(2 * i)] &&
            !reachable[static_cast<std::size_t>(2 * i + 1)]) {
          cut.push_back(v);
        }
      }
      cut_of[t] = std::move(cut);
    } else {
      label[static_cast<std::size_t>(t)] = p + 1;
      cut_of[t] = node.fanins;
      std::sort(cut_of[t].begin(), cut_of[t].end());
      cut_of[t].erase(std::unique(cut_of[t].begin(), cut_of[t].end()),
                      cut_of[t].end());
    }
  }

  // ---- Covering: realize the chosen cuts as LUTs, PO cones first.
  FlowMapResult result;
  Network& out = result.network;
  out.set_model_name(input.model_name());
  std::unordered_map<NodeId, NodeId> realized;
  for (NodeId pi : two.inputs()) {
    realized.emplace(pi, out.add_input(two.node(pi).name));
  }

  std::function<NodeId(NodeId)> realize = [&](NodeId t) -> NodeId {
    if (const auto it = realized.find(t); it != realized.end()) {
      return it->second;
    }
    const auto& cut = cut_of.at(t);
    std::vector<NodeId> fanins;
    for (NodeId c : cut) fanins.push_back(realize(c));
    // LUT function: evaluate the cone between the cut and t.
    const int arity = static_cast<int>(cut.size());
    std::unordered_map<NodeId, int> pin_of;
    for (int i = 0; i < arity; ++i) pin_of.emplace(cut[static_cast<std::size_t>(i)], i);
    const tt::TruthTable lut = tt::TruthTable::from_lambda(
        arity, [&](std::uint64_t m) {
          std::unordered_map<NodeId, bool> value;
          std::function<bool(NodeId)> eval_node = [&](NodeId v) -> bool {
            if (const auto pin = pin_of.find(v); pin != pin_of.end()) {
              return ((m >> pin->second) & 1) != 0;
            }
            if (const auto it = value.find(v); it != value.end()) {
              return it->second;
            }
            const net::Node& n = two.node(v);
            if (n.kind == net::NodeKind::kInput) {
              // A PI outside the cut can only be unreachable padding.
              return false;
            }
            std::vector<bool> local(n.fanins.size());
            for (std::size_t i = 0; i < n.fanins.size(); ++i) {
              local[i] = eval_node(n.fanins[i]);
            }
            local.resize(static_cast<std::size_t>(two.manager().num_vars()),
                         false);
            const bool result_bit = two.manager().eval(n.local, local);
            value.emplace(v, result_bit);
            return result_bit;
          };
          return eval_node(t);
        });
    const NodeId lut_node =
        out.add_logic_tt(out.fresh_name("lut"), std::move(fanins), lut);
    realized.emplace(t, lut_node);
    return lut_node;
  };

  int depth = 0;
  for (const auto& o : two.outputs()) {
    const NodeId driver = o.driver;
    const NodeId mapped = two.node(driver).kind == net::NodeKind::kInput
                              ? realized.at(driver)
                              : realize(driver);
    out.add_output(o.name, mapped);
    depth = std::max(depth, label[static_cast<std::size_t>(driver)]);
  }
  out.sweep();
  result.depth = depth;
  result.luts = out.num_logic_nodes();
  return result;
}

}  // namespace hyde::mapper
