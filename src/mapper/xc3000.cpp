#include "mapper/xc3000.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/matching.hpp"

namespace hyde::mapper {

ClbPacking pack_xc3000(const net::Network& network) {
  std::vector<net::NodeId> nodes;
  for (net::NodeId id : network.topo_order()) {
    const net::Node& node = network.node(id);
    if (node.kind != net::NodeKind::kLogic || node.dead) continue;
    if (node.fanins.size() > 5) {
      throw std::invalid_argument("pack_xc3000: node wider than 5 inputs: " +
                                  node.name);
    }
    nodes.push_back(id);
  }

  // Pairing graph: two ≤4-input nodes are pair-compatible when their fanin
  // union has at most 5 distinct signals and neither reads the other (a CLB
  // has no internal feed path between its two LUT halves on the XC3000).
  std::vector<std::set<net::NodeId>> fanin_sets(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& fanins = network.node(nodes[i]).fanins;
    fanin_sets[i] = std::set<net::NodeId>(fanins.begin(), fanins.end());
  }
  std::vector<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (fanin_sets[i].size() > 4) continue;
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (fanin_sets[j].size() > 4) continue;
      if (fanin_sets[i].count(nodes[j]) != 0 ||
          fanin_sets[j].count(nodes[i]) != 0) {
        continue;
      }
      std::set<net::NodeId> merged = fanin_sets[i];
      merged.insert(fanin_sets[j].begin(), fanin_sets[j].end());
      if (merged.size() <= 5) {
        edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  const auto mate =
      graph::max_cardinality_matching(static_cast<int>(nodes.size()), edges);

  ClbPacking packing;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int m = mate[i];
    if (m < 0) {
      ++packing.singles;
    } else if (m > static_cast<int>(i)) {
      ++packing.paired;
    }
  }
  packing.num_clbs = packing.singles + packing.paired;
  return packing;
}

}  // namespace hyde::mapper
