#include "mapper/lutmap.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace hyde::mapper {

namespace {

/// Canonical key for functional node equality: fanins sorted ascending with
/// the local truth table permuted to match.
struct NodeKey {
  std::vector<net::NodeId> fanins;
  std::string bits;

  bool operator<(const NodeKey& rhs) const {
    if (fanins != rhs.fanins) return fanins < rhs.fanins;
    return bits < rhs.bits;
  }
};

NodeKey canonical_key(const net::Network& network, net::NodeId id) {
  const net::Node& node = network.node(id);
  tt::TruthTable table = network.local_tt(id);
  // Sort fanin ids; permute table variables accordingly.
  std::vector<int> order(node.fanins.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&node](int a, int b) {
    return node.fanins[static_cast<std::size_t>(a)] <
           node.fanins[static_cast<std::size_t>(b)];
  });
  // order[i] = old position that lands at new position i; permute() wants
  // perm[new] = old.
  std::vector<int> perm(order.begin(), order.end());
  table = table.permute(perm);
  NodeKey key;
  for (int old_pos : order) {
    key.fanins.push_back(node.fanins[static_cast<std::size_t>(old_pos)]);
  }
  key.bits = table.to_bits();
  return key;
}

}  // namespace

int dedup_shared_nodes(net::Network& network) {
  int merged_total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    network.sweep();
    std::map<NodeKey, net::NodeId> canonical;
    for (net::NodeId id : network.topo_order()) {
      const net::Node& node = network.node(id);
      if (node.kind != net::NodeKind::kLogic || node.dead) continue;
      NodeKey key = canonical_key(network, id);
      auto [it, inserted] = canonical.emplace(std::move(key), id);
      if (!inserted) {
        network.replace_everywhere(id, it->second);
        ++merged_total;
        changed = true;
      }
    }
  }
  network.sweep();
  return merged_total;
}

namespace {

/// Tries to re-express node \p id over (fanins \ remove) ∪ {divisor}. The
/// semantic condition: whenever two full assignments agree outside \p remove
/// and on the divisor's value, f agrees. On success installs the new
/// function/fanins and returns true.
bool try_resub(net::Network& network, net::NodeId id, net::NodeId divisor,
               const std::vector<net::NodeId>& remove, int k) {
  const net::Node& node = network.node(id);
  const net::Node& dnode = network.node(divisor);
  // Joint pin space V = fanins(f) ∪ fanins(g) ∪ {g}.
  std::vector<net::NodeId> joint = node.fanins;
  for (net::NodeId gf : dnode.fanins) {
    if (std::find(joint.begin(), joint.end(), gf) == joint.end()) {
      joint.push_back(gf);
    }
  }
  const bool divisor_is_fanin =
      std::find(joint.begin(), joint.end(), divisor) != joint.end();
  if (joint.size() > 12) return false;  // keep truth tables small
  const int arity = static_cast<int>(joint.size());
  auto pin_of = [&joint](net::NodeId n) {
    return static_cast<int>(std::find(joint.begin(), joint.end(), n) -
                            joint.begin());
  };
  std::vector<int> f_place, g_place;
  for (net::NodeId fin : node.fanins) f_place.push_back(pin_of(fin));
  for (net::NodeId fin : dnode.fanins) g_place.push_back(pin_of(fin));
  const tt::TruthTable f = network.local_tt(id).expand(arity, f_place);
  const tt::TruthTable g_fn = network.local_tt(divisor).expand(arity, g_place);

  // Candidate pins of the rebuilt function: the kept fanins of f, the
  // divisor's fanins outside the removal set, and the divisor signal itself.
  // The true support is computed afterwards and must shrink.
  std::vector<net::NodeId> candidates;
  std::vector<int> candidate_pins;
  auto add_candidate = [&](net::NodeId n) {
    if (n == divisor) return;
    if (std::find(remove.begin(), remove.end(), n) != remove.end()) return;
    if (std::find(candidates.begin(), candidates.end(), n) != candidates.end()) {
      return;
    }
    candidates.push_back(n);
    candidate_pins.push_back(pin_of(n));
  };
  for (net::NodeId fin : node.fanins) add_candidate(fin);
  for (net::NodeId fin : dnode.fanins) add_candidate(fin);
  const int new_arity = static_cast<int>(candidates.size()) + 1;
  if (new_arity > 12) return false;

  // Consistency check + construction in one sweep over the joint space:
  // key = (candidate values, divisor value) must determine f on reachable
  // assignments.
  const std::size_t table_size = std::size_t{1} << new_arity;
  std::vector<char> defined(table_size, 0);
  std::vector<char> value(table_size, 0);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << arity); ++m) {
    // If the divisor is itself a pin of f, only consider assignments where
    // that pin carries the divisor's computed value.
    if (divisor_is_fanin &&
        (((m >> pin_of(divisor)) & 1) != 0) != g_fn.bit(m)) {
      continue;
    }
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < candidate_pins.size(); ++i) {
      if ((m >> candidate_pins[i]) & 1) key |= std::uint64_t{1} << i;
    }
    if (g_fn.bit(m)) key |= std::uint64_t{1} << candidate_pins.size();
    const bool fv = f.bit(m);
    if (!defined[static_cast<std::size_t>(key)]) {
      defined[static_cast<std::size_t>(key)] = 1;
      value[static_cast<std::size_t>(key)] = fv ? 1 : 0;
    } else if ((value[static_cast<std::size_t>(key)] != 0) != fv) {
      return false;  // f is not a function of (candidates, divisor)
    }
  }
  tt::TruthTable rebuilt(new_arity);
  for (std::uint64_t key = 0; key < table_size; ++key) {
    if (defined[static_cast<std::size_t>(key)] &&
        value[static_cast<std::size_t>(key)]) {
      rebuilt.set_bit(key, true);
    }
  }
  // Accept only if the true support shrank below f's current fanin count
  // and fits a k-LUT.
  const auto support = rebuilt.support();
  if (static_cast<int>(support.size()) >=
          static_cast<int>(node.fanins.size()) ||
      static_cast<int>(support.size()) > k) {
    return false;
  }
  std::vector<net::NodeId> new_fanins;
  for (int v : support) {
    new_fanins.push_back(v < static_cast<int>(candidates.size())
                             ? candidates[static_cast<std::size_t>(v)]
                             : divisor);
  }
  net::Node& mutable_node = network.node(id);
  mutable_node.local =
      network.manager().from_truth_table(rebuilt.project(support));
  mutable_node.fanins = std::move(new_fanins);
  return true;
}

}  // namespace

int resubstitute(net::Network& network) {
  int eliminated = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto topo = network.topo_order();
    // Topological position: divisors must precede the node (keeps the DAG).
    std::vector<int> position(static_cast<std::size_t>(network.num_nodes()), -1);
    for (std::size_t i = 0; i < topo.size(); ++i) {
      position[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
    }
    for (net::NodeId id : topo) {
      const net::Node& node = network.node(id);
      if (node.kind != net::NodeKind::kLogic || node.dead) continue;
      if (node.fanins.size() < 2) continue;
      for (net::NodeId divisor : topo) {
        if (divisor == id) continue;
        const net::Node& dnode = network.node(divisor);
        if (dnode.kind != net::NodeKind::kLogic || dnode.dead) continue;
        if (position[static_cast<std::size_t>(divisor)] >=
            position[static_cast<std::size_t>(id)]) {
          break;  // topo order: everything after here is not usable
        }
        // Common fanins of f and the divisor are removal candidates.
        std::vector<net::NodeId> common;
        for (net::NodeId fin : node.fanins) {
          if (std::find(dnode.fanins.begin(), dnode.fanins.end(), fin) !=
              dnode.fanins.end()) {
            common.push_back(fin);
          }
        }
        bool applied = false;
        const bool divisor_is_fanin =
            std::find(node.fanins.begin(), node.fanins.end(), divisor) !=
            node.fanins.end();
        // Single-elimination needs the divisor already wired; replacing a
        // pair of inputs by the divisor pays even for an external node.
        if (divisor_is_fanin) {
          for (net::NodeId x : common) {
            if (try_resub(network, id, divisor, {x}, 32)) {
              applied = true;
              break;
            }
          }
        }
        if (!applied && common.size() >= 2) {
          for (std::size_t a = 0; a < common.size() && !applied; ++a) {
            for (std::size_t b = a + 1; b < common.size() && !applied; ++b) {
              applied = try_resub(network, id, divisor,
                                  {common[a], common[b]}, 32);
            }
          }
        }
        if (applied) {
          ++eliminated;
          changed = true;
          break;  // re-derive fanins before trying more divisors
        }
      }
    }
    if (changed) network.sweep();
  }
  return eliminated;
}

int collapse_into_fanouts(net::Network& network, int k) {
  int collapsed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    network.sweep();
    // Occurrence counts and the unique reader of each node.
    std::vector<int> fanout(static_cast<std::size_t>(network.num_nodes()), 0);
    std::vector<net::NodeId> reader(static_cast<std::size_t>(network.num_nodes()),
                                    net::kNoNode);
    std::vector<char> drives_po(static_cast<std::size_t>(network.num_nodes()), 0);
    for (net::NodeId id : network.topo_order()) {
      for (net::NodeId f : network.node(id).fanins) {
        ++fanout[static_cast<std::size_t>(f)];
        reader[static_cast<std::size_t>(f)] = id;
      }
    }
    for (const auto& out : network.outputs()) {
      drives_po[static_cast<std::size_t>(out.driver)] = 1;
    }
    for (net::NodeId id : network.topo_order()) {
      const net::Node& inner = network.node(id);
      if (inner.kind != net::NodeKind::kLogic || inner.dead) continue;
      if (drives_po[static_cast<std::size_t>(id)]) continue;
      if (fanout[static_cast<std::size_t>(id)] != 1) continue;
      const net::NodeId r = reader[static_cast<std::size_t>(id)];
      if (r == net::kNoNode) continue;
      const net::Node& outer = network.node(r);
      if (outer.kind != net::NodeKind::kLogic) continue;

      // Merged fanins: the reader's other pins plus the inner node's pins.
      std::vector<net::NodeId> merged;
      for (net::NodeId f : outer.fanins) {
        if (f != id && std::find(merged.begin(), merged.end(), f) == merged.end()) {
          merged.push_back(f);
        }
      }
      for (net::NodeId f : inner.fanins) {
        if (std::find(merged.begin(), merged.end(), f) == merged.end()) {
          merged.push_back(f);
        }
      }
      if (static_cast<int>(merged.size()) > k) continue;

      const tt::TruthTable inner_tt = network.local_tt(id);
      const tt::TruthTable outer_tt = network.local_tt(r);
      auto pin_of = [&merged](net::NodeId f) {
        return static_cast<int>(std::find(merged.begin(), merged.end(), f) -
                                merged.begin());
      };
      const tt::TruthTable combined = tt::TruthTable::from_lambda(
          static_cast<int>(merged.size()), [&](std::uint64_t m) {
            std::uint64_t inner_minterm = 0;
            for (std::size_t p = 0; p < inner.fanins.size(); ++p) {
              if ((m >> pin_of(inner.fanins[p])) & 1) {
                inner_minterm |= std::uint64_t{1} << p;
              }
            }
            const bool inner_value = inner_tt.bit(inner_minterm);
            std::uint64_t outer_minterm = 0;
            for (std::size_t p = 0; p < outer.fanins.size(); ++p) {
              const bool v = outer.fanins[p] == id
                                 ? inner_value
                                 : (((m >> pin_of(outer.fanins[p])) & 1) != 0);
              if (v) outer_minterm |= std::uint64_t{1} << p;
            }
            return outer_tt.bit(outer_minterm);
          });
      net::Node& mutable_outer = network.node(r);
      mutable_outer.fanins = merged;
      mutable_outer.local = network.manager().from_truth_table(combined);
      ++collapsed;
      changed = true;
    }
  }
  network.sweep();
  return collapsed;
}

int lut_count(const net::Network& network) { return network.num_logic_nodes(); }

int network_depth(const net::Network& network) {
  std::vector<int> level(static_cast<std::size_t>(network.num_nodes()), 0);
  int depth = 0;
  for (net::NodeId id : network.topo_order()) {
    const net::Node& node = network.node(id);
    if (node.kind != net::NodeKind::kLogic) continue;
    int best = 0;
    for (net::NodeId f : node.fanins) {
      best = std::max(best, level[static_cast<std::size_t>(f)]);
    }
    level[static_cast<std::size_t>(id)] = best + 1;
    depth = std::max(depth, best + 1);
  }
  return depth;
}

}  // namespace hyde::mapper
