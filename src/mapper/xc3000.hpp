/// \file xc3000.hpp
/// \brief Xilinx XC3000 CLB packing (the xl_partition -tm stand-in).
///
/// An XC3000 CLB realizes either one function of up to 5 inputs or two
/// functions of up to 4 inputs each sharing at most 5 distinct input
/// signals. Packing a 5-feasible network is therefore a maximum-matching
/// problem on the pairing graph of ≤4-input nodes — solved here exactly with
/// the blossom algorithm from graph/matching.hpp.

#pragma once

#include <vector>

#include "net/network.hpp"

namespace hyde::mapper {

struct ClbPacking {
  int num_clbs = 0;   ///< total CLBs used
  int paired = 0;     ///< CLBs hosting two functions
  int singles = 0;    ///< CLBs hosting one function
};

/// Packs a 5-feasible network into XC3000 CLBs. Throws std::invalid_argument
/// if some node has more than 5 inputs.
ClbPacking pack_xc3000(const net::Network& network);

}  // namespace hyde::mapper
