/// \file lutmap.hpp
/// \brief Post-decomposition network cleanup: the stand-in for SIS's
/// xl_cover step. Deduplicates functionally identical nodes (this is where
/// α-functions shared between outputs or hyper-function copies actually
/// merge), optionally resubstitutes existing signals to shrink supports (the
/// simplified [8]-style pass), and reports LUT counts and depth.

#pragma once

#include "net/network.hpp"

namespace hyde::mapper {

/// Merges live logic nodes that compute the same local function over the
/// same fanins (fanin order canonicalized). Runs to a fixpoint interleaved
/// with sweep(). Returns the number of merged nodes.
int dedup_shared_nodes(net::Network& network);

/// Simplified support-minimizing resubstitution in the spirit of Sawada
/// et al. [8]: for a node f with fanin g (itself a logic node), tries to
/// eliminate another fanin x of f that g already reads, re-expressing f over
/// (fanins \ {x}). Returns the number of eliminated fanins.
int resubstitute(net::Network& network);

/// Covering pass (the xl_cover stand-in): collapses every single-fanout
/// logic node into its unique reader whenever the merged node still fits in
/// k inputs. Applied identically to every flow before counting. Returns the
/// number of collapsed nodes.
int collapse_into_fanouts(net::Network& network, int k);

/// Number of live logic LUTs (constants and single-input nodes count until
/// sweep() removes them — call sweep()/dedup first for honest numbers).
int lut_count(const net::Network& network);

/// Logic depth in LUT levels (PIs at level 0).
int network_depth(const net::Network& network);

}  // namespace hyde::mapper
