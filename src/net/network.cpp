#include "net/network.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace hyde::net {

Network::Network(std::string model_name)
    : model_name_(std::move(model_name)),
      mgr_(std::make_unique<bdd::Manager>(64)) {}

NodeId Network::add_input(const std::string& name) {
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Network: duplicate node name " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = NodeKind::kInput;
  n.name = name;
  nodes_.push_back(std::move(n));
  inputs_.push_back(id);
  by_name_.emplace(name, id);
  return id;
}

NodeId Network::add_logic(const std::string& name, std::vector<NodeId> fanins,
                          bdd::Bdd local) {
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Network: duplicate node name " + name);
  }
  for (NodeId f : fanins) {
    if (f < 0 || f >= num_nodes()) {
      throw std::invalid_argument("Network: fanin out of range for " + name);
    }
  }
  mgr_->ensure_vars(static_cast<int>(fanins.size()));
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = NodeKind::kLogic;
  n.name = name;
  n.fanins = std::move(fanins);
  n.local = std::move(local);
  nodes_.push_back(std::move(n));
  by_name_.emplace(name, id);
  return id;
}

NodeId Network::add_logic_tt(const std::string& name, std::vector<NodeId> fanins,
                             const tt::TruthTable& table) {
  if (table.num_vars() != static_cast<int>(fanins.size())) {
    throw std::invalid_argument("Network: table arity mismatch for " + name);
  }
  mgr_->ensure_vars(table.num_vars());
  bdd::Bdd local = mgr_->from_truth_table(table);
  return add_logic(name, std::move(fanins), std::move(local));
}

NodeId Network::add_constant(const std::string& name, bool value) {
  return add_logic(name, {}, mgr_->constant(value));
}

void Network::add_output(const std::string& name, NodeId driver) {
  outputs_.push_back(Output{name, driver});
}

NodeId Network::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

std::string Network::fresh_name(const std::string& prefix) {
  std::string candidate;
  do {
    candidate = prefix + "_" + std::to_string(name_counter_++);
  } while (by_name_.count(candidate) != 0);
  return candidate;
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<char> state(nodes_.size(), 0);  // 0 unseen, 1 open, 2 done
  std::function<void(NodeId)> visit = [&](NodeId id) {
    if (state[static_cast<std::size_t>(id)] == 2) return;
    if (state[static_cast<std::size_t>(id)] == 1) {
      throw std::logic_error("Network: combinational cycle at " +
                             nodes_[static_cast<std::size_t>(id)].name);
    }
    state[static_cast<std::size_t>(id)] = 1;
    for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanins) visit(f);
    state[static_cast<std::size_t>(id)] = 2;
    order.push_back(id);
  };
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (!nodes_[static_cast<std::size_t>(id)].dead) visit(id);
  }
  return order;
}

int Network::num_logic_nodes() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (!n.dead && n.kind == NodeKind::kLogic) ++count;
  }
  return count;
}

int Network::max_fanin() const {
  int best = 0;
  for (const Node& n : nodes_) {
    if (!n.dead && n.kind == NodeKind::kLogic) {
      best = std::max(best, static_cast<int>(n.fanins.size()));
    }
  }
  return best;
}

bool Network::is_k_feasible(int k) const { return max_fanin() <= k; }

int Network::fanout_count(NodeId id) const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    for (NodeId f : n.fanins) {
      if (f == id) ++count;
    }
  }
  return count;
}

void Network::replace_everywhere(NodeId old_node, NodeId new_node) {
  for (Node& n : nodes_) {
    if (n.dead) continue;
    for (NodeId& f : n.fanins) {
      if (f == old_node) f = new_node;
    }
  }
  for (Output& out : outputs_) {
    if (out.driver == old_node) out.driver = new_node;
  }
}

namespace {

/// Classification of a node's local function for sweeping.
enum class LocalShape { kGeneral, kConst0, kConst1, kBuffer, kInverter };

struct ShapeInfo {
  LocalShape shape = LocalShape::kGeneral;
  int pin = -1;  // fanin index for buffer/inverter
};

ShapeInfo classify(bdd::Manager& mgr, const Node& n) {
  if (n.kind != NodeKind::kLogic) return {LocalShape::kGeneral, -1};
  if (n.local.is_zero()) return {LocalShape::kConst0, -1};
  if (n.local.is_one()) return {LocalShape::kConst1, -1};
  const auto sup = mgr.support(n.local);
  if (sup.size() == 1) {
    const int v = sup[0];
    if (n.local == mgr.var(v)) return {LocalShape::kBuffer, v};
    if (n.local == mgr.nvar(v)) return {LocalShape::kInverter, v};
  }
  return {LocalShape::kGeneral, -1};
}

}  // namespace

int Network::sweep() {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Normalize every live logic node: fold constant / buffer / inverter
    // fanins, merge duplicate fanins, and drop fanins outside the support.
    for (NodeId id = 0; id < num_nodes(); ++id) {
      Node& n = nodes_[static_cast<std::size_t>(id)];
      if (n.dead || n.kind != NodeKind::kLogic) continue;
      bool node_changed = false;
      // Fold special fanins into the local function.
      for (std::size_t j = 0; j < n.fanins.size(); ++j) {
        const Node& fin = nodes_[static_cast<std::size_t>(n.fanins[j])];
        if (fin.kind != NodeKind::kLogic) continue;
        const ShapeInfo info = classify(*mgr_, fin);
        const int var = static_cast<int>(j);
        switch (info.shape) {
          case LocalShape::kConst0:
            n.local = mgr_->cofactor(n.local, var, false);
            node_changed = true;
            break;
          case LocalShape::kConst1:
            n.local = mgr_->cofactor(n.local, var, true);
            node_changed = true;
            break;
          case LocalShape::kBuffer:
            n.fanins[j] = fin.fanins[static_cast<std::size_t>(info.pin)];
            node_changed = true;
            break;
          case LocalShape::kInverter:
            n.fanins[j] = fin.fanins[static_cast<std::size_t>(info.pin)];
            n.local = mgr_->compose(n.local, var, mgr_->nvar(var));
            node_changed = true;
            break;
          case LocalShape::kGeneral:
            break;
        }
      }
      // Merge duplicate fanins.
      for (std::size_t j = 0; j < n.fanins.size(); ++j) {
        for (std::size_t l = j + 1; l < n.fanins.size(); ++l) {
          if (n.fanins[j] != n.fanins[l]) continue;
          const std::vector<int> sup = mgr_->support(n.local);
          if (std::find(sup.begin(), sup.end(), static_cast<int>(l)) !=
              sup.end()) {
            n.local = mgr_->compose(n.local, static_cast<int>(l),
                                    mgr_->var(static_cast<int>(j)));
            node_changed = true;
          }
        }
      }
      // Compact away fanins outside the support.
      const auto sup = mgr_->support(n.local);
      std::vector<char> used(n.fanins.size(), 0);
      for (int v : sup) {
        if (v >= static_cast<int>(n.fanins.size())) {
          throw std::logic_error("Network: local function exceeds fanin arity");
        }
        used[static_cast<std::size_t>(v)] = 1;
      }
      if (std::find(used.begin(), used.end(), 0) != used.end() &&
          !n.fanins.empty()) {
        std::vector<int> perm(n.fanins.size(), -1);
        std::vector<NodeId> new_fanins;
        for (std::size_t j = 0; j < n.fanins.size(); ++j) {
          if (used[j]) {
            perm[j] = static_cast<int>(new_fanins.size());
            new_fanins.push_back(n.fanins[j]);
          }
        }
        if (new_fanins.size() != n.fanins.size()) {
          n.local = mgr_->permute(n.local, perm);
          n.fanins = std::move(new_fanins);
          node_changed = true;
        }
      }
      changed = changed || node_changed;
    }
    // Redirect outputs through buffers.
    for (Output& out : outputs_) {
      while (out.driver != kNoNode) {
        const Node& d = nodes_[static_cast<std::size_t>(out.driver)];
        if (d.kind != NodeKind::kLogic) break;
        const ShapeInfo info = classify(*mgr_, d);
        if (info.shape != LocalShape::kBuffer) break;
        out.driver = d.fanins[static_cast<std::size_t>(info.pin)];
        changed = true;
      }
    }
    // Kill logic unreachable from any PO.
    std::vector<char> reachable(nodes_.size(), 0);
    std::vector<NodeId> stack;
    for (const Output& out : outputs_) {
      if (out.driver != kNoNode) stack.push_back(out.driver);
    }
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<std::size_t>(id)]) continue;
      reachable[static_cast<std::size_t>(id)] = 1;
      for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanins) {
        stack.push_back(f);
      }
    }
    for (NodeId id = 0; id < num_nodes(); ++id) {
      Node& n = nodes_[static_cast<std::size_t>(id)];
      if (!n.dead && n.kind == NodeKind::kLogic &&
          !reachable[static_cast<std::size_t>(id)]) {
        n.dead = true;
        n.fanins.clear();
        n.local = bdd::Bdd();
        ++removed;
        changed = true;
      }
    }
  }
  return removed;
}

void Network::drop_unused_inputs(const std::vector<NodeId>& candidates) {
  for (NodeId id : candidates) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::kInput) {
      throw std::logic_error("drop_unused_inputs: not an input: " + n.name);
    }
    if (fanout_count(id) != 0) {
      throw std::logic_error("drop_unused_inputs: input still read: " + n.name);
    }
    for (const Output& out : outputs_) {
      if (out.driver == id) {
        throw std::logic_error("drop_unused_inputs: input drives PO: " + n.name);
      }
    }
    n.dead = true;
    inputs_.erase(std::find(inputs_.begin(), inputs_.end(), id));
  }
}

tt::TruthTable Network::local_tt(NodeId id) const {
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.kind != NodeKind::kLogic) {
    throw std::invalid_argument("Network::local_tt: not a logic node");
  }
  std::vector<int> vars(n.fanins.size());
  for (std::size_t i = 0; i < vars.size(); ++i) vars[i] = static_cast<int>(i);
  return mgr_->to_truth_table(n.local, vars);
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  if (pi_values.size() != inputs_.size()) {
    throw std::invalid_argument("Network::eval: PI value count mismatch");
  }
  std::vector<char> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[static_cast<std::size_t>(inputs_[i])] = pi_values[i] ? 1 : 0;
  }
  for (NodeId id : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::kLogic) continue;
    std::vector<bool> local_assign(n.fanins.size());
    for (std::size_t j = 0; j < n.fanins.size(); ++j) {
      local_assign[j] = value[static_cast<std::size_t>(n.fanins[j])] != 0;
    }
    // Pad so manager variables beyond the arity read as false.
    local_assign.resize(static_cast<std::size_t>(mgr_->num_vars()), false);
    value[static_cast<std::size_t>(id)] = mgr_->eval(n.local, local_assign) ? 1 : 0;
  }
  std::vector<bool> result(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    result[i] = value[static_cast<std::size_t>(outputs_[i].driver)] != 0;
  }
  return result;
}

std::vector<bdd::Bdd> Network::global_bdds(const std::vector<NodeId>& roots,
                                           bdd::Manager& target,
                                           const std::vector<int>& pi_var) const {
  if (pi_var.size() != inputs_.size()) {
    throw std::invalid_argument("Network::global_bdds: pi_var size mismatch");
  }
  std::unordered_map<NodeId, bdd::Bdd> global;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    target.ensure_vars(pi_var[i] + 1);
    global.emplace(inputs_[i], target.var(pi_var[i]));
  }
  for (NodeId id : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::kLogic) continue;
    std::vector<bdd::Bdd> subst;
    subst.reserve(n.fanins.size());
    for (NodeId f : n.fanins) subst.push_back(global.at(f));
    global.emplace(id, transfer_compose(n.local, target, subst));
  }
  std::vector<bdd::Bdd> result;
  result.reserve(roots.size());
  for (NodeId r : roots) result.push_back(global.at(r));
  return result;
}

std::string Network::stats() const {
  std::ostringstream os;
  os << model_name_ << ": " << inputs_.size() << " PIs, " << outputs_.size()
     << " POs, " << num_logic_nodes() << " logic nodes, max fanin "
     << max_fanin();
  return os.str();
}

}  // namespace hyde::net
