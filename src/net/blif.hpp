/// \file blif.hpp
/// \brief BLIF (Berkeley Logic Interchange Format) reader and writer.
///
/// Supports the combinational subset used by the MCNC benchmarks:
/// `.model`, `.inputs`, `.outputs`, `.names` (SOP covers with `0`/`1`/`-`
/// inputs and a constant output phase), comments and line continuations.
/// Sequential models (`.latch`) are rejected by default; with
/// BlifReadOptions::latch_combinational the reader extracts the
/// combinational core instead (latch outputs become primary inputs, latch
/// inputs become primary outputs). `.subckt`/`.gate` are always rejected.
/// Parse errors carry the 1-based line number and the offending token.

#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace hyde::net {

struct BlifReadOptions {
  /// Accept `.latch` by extracting the combinational core: every latch
  /// output becomes a primary input and every latch input becomes a primary
  /// output, so the returned network is the netlist between the registers.
  /// Off (the default) keeps the strict combinational-only behaviour.
  bool latch_combinational = false;
};

/// Parses a BLIF model from a stream. Throws std::runtime_error on syntax
/// errors or unsupported constructs (including `.exdc`; use read_blif_model
/// for networks with external don't cares).
Network read_blif(std::istream& in, const BlifReadOptions& options = {});

/// Parses a BLIF model from a string.
Network read_blif_string(const std::string& text,
                         const BlifReadOptions& options = {});

/// A BLIF model with an optional `.exdc` external-don't-care network.
struct BlifModel {
  Network network;
  Network dont_care;        ///< same PIs; one output per exdc-covered PO
  bool has_dont_cares = false;
  int latches = 0;          ///< `.latch` lines absorbed by the combinational core
};

/// Parses a BLIF model, accepting an `.exdc` section: the don't-care network
/// shares the main model's primary inputs; POs without an exdc cover get a
/// constant-0 don't-care function.
BlifModel read_blif_model(std::istream& in, const BlifReadOptions& options = {});

/// Parses a BLIF model (with optional `.exdc`) from a string.
BlifModel read_blif_model_string(const std::string& text,
                                 const BlifReadOptions& options = {});

/// Writes the network in BLIF. Every live logic node becomes a `.names`
/// block whose cover is derived from the node's BDD 1-paths (a disjoint SOP).
void write_blif(const Network& network, std::ostream& out);

/// Writes the network to a BLIF string.
std::string write_blif_string(const Network& network);

}  // namespace hyde::net
