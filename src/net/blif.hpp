/// \file blif.hpp
/// \brief BLIF (Berkeley Logic Interchange Format) reader and writer.
///
/// Supports the combinational subset used by the MCNC benchmarks:
/// `.model`, `.inputs`, `.outputs`, `.names` (SOP covers with `0`/`1`/`-`
/// inputs and a constant output phase), comments and line continuations.
/// Latches and subcircuits are rejected with a descriptive error.

#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace hyde::net {

/// Parses a BLIF model from a stream. Throws std::runtime_error on syntax
/// errors or unsupported constructs (including `.exdc`; use read_blif_model
/// for networks with external don't cares).
Network read_blif(std::istream& in);

/// Parses a BLIF model from a string.
Network read_blif_string(const std::string& text);

/// A BLIF model with an optional `.exdc` external-don't-care network.
struct BlifModel {
  Network network;
  Network dont_care;        ///< same PIs; one output per exdc-covered PO
  bool has_dont_cares = false;
};

/// Parses a BLIF model, accepting an `.exdc` section: the don't-care network
/// shares the main model's primary inputs; POs without an exdc cover get a
/// constant-0 don't-care function.
BlifModel read_blif_model(std::istream& in);

/// Parses a BLIF model (with optional `.exdc`) from a string.
BlifModel read_blif_model_string(const std::string& text);

/// Writes the network in BLIF. Every live logic node becomes a `.names`
/// block whose cover is derived from the node's BDD 1-paths (a disjoint SOP).
void write_blif(const Network& network, std::ostream& out);

/// Writes the network to a BLIF string.
std::string write_blif_string(const Network& network);

}  // namespace hyde::net
