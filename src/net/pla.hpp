/// \file pla.hpp
/// \brief Espresso PLA format reader/writer (the format the MCNC two-level
/// benchmarks ship in).
///
/// Supported: `.i`, `.o`, `.p`, `.ilb`, `.ob`, `.type f|fd`, cube rows with
/// `0/1/-` inputs and `0/1/-/~/4` outputs, `.e`/`.end`. Under the default
/// `fd` semantics an output `1` adds the cube to that output's onset and a
/// `-` to its don't-care set; `0`, `~` and `4` leave the cube out of the
/// cover.
///
/// Don't-care cubes produce a parallel network whose outputs are the DC
/// functions — the flow consumes them as external don't cares
/// (FlowOptions/run_flow's exdc parameter).

#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace hyde::net {

/// A parsed PLA: onset network plus (optionally) a same-interface network of
/// don't-care functions.
struct PlaModel {
  Network onset;
  Network dont_care;       ///< same PIs/PO names; meaningful iff has_dont_cares
  bool has_dont_cares = false;
};

/// Parses an espresso-format PLA. Throws std::runtime_error on bad syntax.
PlaModel read_pla(std::istream& in, const std::string& model_name = "pla");

/// Parses a PLA from a string.
PlaModel read_pla_string(const std::string& text,
                         const std::string& model_name = "pla");

/// Writes the network as a single-level PLA (every output is flattened to a
/// cover of its global function; supports up to 20 primary inputs).
void write_pla(const Network& network, std::ostream& out);

/// Writes the network to a PLA string.
std::string write_pla_string(const Network& network);

}  // namespace hyde::net
