#include "net/pla.hpp"

#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hyde::net {

namespace {

struct PlaHeader {
  int num_inputs = -1;
  int num_outputs = -1;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::string type = "fd";
};

struct Cube {
  std::string in;
  std::string out;
};

}  // namespace

PlaModel read_pla(std::istream& in, const std::string& model_name) {
  PlaHeader header;
  std::vector<Cube> cubes;
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string token;
    if (!(is >> token)) continue;
    if (token == ".i") {
      is >> header.num_inputs;
    } else if (token == ".o") {
      is >> header.num_outputs;
    } else if (token == ".p") {
      int declared = 0;
      is >> declared;
      (void)declared;  // informational
    } else if (token == ".ilb") {
      std::string name;
      while (is >> name) header.input_names.push_back(name);
    } else if (token == ".ob") {
      std::string name;
      while (is >> name) header.output_names.push_back(name);
    } else if (token == ".type") {
      is >> header.type;
      if (header.type != "f" && header.type != "fd") {
        throw std::runtime_error("PLA: unsupported .type " + header.type);
      }
    } else if (token == ".e" || token == ".end") {
      break;
    } else if (token[0] == '.') {
      throw std::runtime_error("PLA: unsupported directive " + token);
    } else {
      Cube cube;
      cube.in = token;
      if (!(is >> cube.out)) {
        throw std::runtime_error("PLA: cube row missing output part");
      }
      cubes.push_back(std::move(cube));
    }
  }
  if (header.num_inputs <= 0 || header.num_outputs <= 0) {
    throw std::runtime_error("PLA: missing .i/.o header");
  }
  if (!header.input_names.empty() &&
      static_cast<int>(header.input_names.size()) != header.num_inputs) {
    throw std::runtime_error("PLA: .ilb arity mismatch");
  }
  if (!header.output_names.empty() &&
      static_cast<int>(header.output_names.size()) != header.num_outputs) {
    throw std::runtime_error("PLA: .ob arity mismatch");
  }

  PlaModel model{Network(model_name), Network(model_name + "_dc"), false};
  std::vector<NodeId> on_pis, dc_pis;
  for (int i = 0; i < header.num_inputs; ++i) {
    const std::string name = header.input_names.empty()
                                 ? "x" + std::to_string(i)
                                 : header.input_names[static_cast<std::size_t>(i)];
    on_pis.push_back(model.onset.add_input(name));
    dc_pis.push_back(model.dont_care.add_input(name));
  }

  auto cube_bdd = [&](bdd::Manager& mgr, const std::string& in_part) {
    if (static_cast<int>(in_part.size()) != header.num_inputs) {
      throw std::runtime_error("PLA: cube width mismatch: " + in_part);
    }
    mgr.ensure_vars(header.num_inputs);
    bdd::Bdd product = mgr.one();
    for (int v = 0; v < header.num_inputs; ++v) {
      const char c = in_part[static_cast<std::size_t>(v)];
      if (c == '1') {
        product = product & mgr.var(v);
      } else if (c == '0') {
        product = product & mgr.nvar(v);
      } else if (c != '-' && c != '2') {
        throw std::runtime_error("PLA: bad input literal in " + in_part);
      }
    }
    return product;
  };

  bdd::Manager& on_mgr = model.onset.manager();
  bdd::Manager& dc_mgr = model.dont_care.manager();
  std::vector<bdd::Bdd> on_fn, dc_fn;
  for (int o = 0; o < header.num_outputs; ++o) {
    on_fn.push_back(on_mgr.zero());
    dc_fn.push_back(dc_mgr.zero());
  }
  for (const Cube& cube : cubes) {
    if (static_cast<int>(cube.out.size()) != header.num_outputs) {
      throw std::runtime_error("PLA: output width mismatch: " + cube.out);
    }
    for (int o = 0; o < header.num_outputs; ++o) {
      const char c = cube.out[static_cast<std::size_t>(o)];
      if (c == '1') {
        on_fn[static_cast<std::size_t>(o)] =
            on_fn[static_cast<std::size_t>(o)] | cube_bdd(on_mgr, cube.in);
      } else if (c == '-' || c == '2') {
        if (header.type == "fd") {
          dc_fn[static_cast<std::size_t>(o)] =
              dc_fn[static_cast<std::size_t>(o)] | cube_bdd(dc_mgr, cube.in);
          model.has_dont_cares = true;
        }
      } else if (c != '0' && c != '~' && c != '4') {
        throw std::runtime_error("PLA: bad output literal in " + cube.out);
      }
    }
  }

  for (int o = 0; o < header.num_outputs; ++o) {
    const std::string name = header.output_names.empty()
                                 ? "y" + std::to_string(o)
                                 : header.output_names[static_cast<std::size_t>(o)];
    model.onset.add_output(
        name, model.onset.add_logic(name, on_pis, on_fn[static_cast<std::size_t>(o)]));
    model.dont_care.add_output(
        name, model.dont_care.add_logic(name, dc_pis,
                                        dc_fn[static_cast<std::size_t>(o)]));
  }
  // The PLA semantics attach every PI to every output function; compact the
  // fanins down to the true supports.
  model.onset.sweep();
  model.dont_care.sweep();
  return model;
}

PlaModel read_pla_string(const std::string& text, const std::string& model_name) {
  std::istringstream is(text);
  return read_pla(is, model_name);
}

void write_pla(const Network& network, std::ostream& out) {
  const int n = static_cast<int>(network.inputs().size());
  const int num_out = static_cast<int>(network.outputs().size());
  if (n > 20) {
    throw std::invalid_argument("write_pla: too many primary inputs");
  }
  bdd::Manager global(std::max(1, n));
  std::vector<int> pi_var;
  for (int i = 0; i < n; ++i) pi_var.push_back(i);
  std::vector<NodeId> roots;
  for (const auto& o : network.outputs()) roots.push_back(o.driver);
  const auto bdds = network.global_bdds(roots, global, pi_var);

  out << ".i " << n << "\n.o " << num_out << "\n.ilb";
  for (NodeId id : network.inputs()) out << ' ' << network.node(id).name;
  out << "\n.ob";
  for (const auto& o : network.outputs()) out << ' ' << o.name;
  out << "\n";

  // One cover per output: cubes from the BDD's 1-paths.
  std::vector<std::string> rows;
  for (int o = 0; o < num_out; ++o) {
    std::string cube(static_cast<std::size_t>(n), '-');
    std::function<void(const bdd::Bdd&)> walk = [&](const bdd::Bdd& f) {
      if (f.is_zero()) return;
      if (f.is_one()) {
        std::string outs(static_cast<std::size_t>(num_out), '~');
        outs[static_cast<std::size_t>(o)] = '1';
        rows.push_back(cube + " " + outs);
        return;
      }
      const int v = f.top_var();
      cube[static_cast<std::size_t>(v)] = '0';
      walk(f.low());
      cube[static_cast<std::size_t>(v)] = '1';
      walk(f.high());
      cube[static_cast<std::size_t>(v)] = '-';
    };
    walk(bdds[static_cast<std::size_t>(o)]);
  }
  out << ".p " << rows.size() << "\n";
  for (const auto& row : rows) out << row << "\n";
  out << ".e\n";
}

std::string write_pla_string(const Network& network) {
  std::ostringstream os;
  write_pla(network, os);
  return os.str();
}

}  // namespace hyde::net
