/// \file network.hpp
/// \brief Boolean network: the SIS-style netlist substrate.
///
/// A Network is a DAG of nodes. Each internal node carries a *local* function
/// over its fanins, stored as a BDD in the network's private manager (local
/// variable i denotes fanin i). Primary inputs are variable nodes; primary
/// outputs name a driving node.
///
/// The network is the common currency between BLIF I/O, the decomposition
/// flows (which replace one node by a tree of smaller nodes) and the LUT/CLB
/// mappers (which count and pack nodes).

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/transfer.hpp"
#include "tt/truth_table.hpp"

namespace hyde::net {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

/// Node kinds: primary input or internal logic node.
enum class NodeKind { kInput, kLogic };

/// One network node. Logic nodes own a local function over their fanins.
struct Node {
  NodeKind kind = NodeKind::kLogic;
  std::string name;
  std::vector<NodeId> fanins;
  bdd::Bdd local;  ///< local function; var i == fanins[i] (logic nodes only)
  bool dead = false;
};

/// A named primary output and the node driving it.
struct Output {
  std::string name;
  NodeId driver = kNoNode;
};

class Network {
 public:
  explicit Network(std::string model_name = "top");
  Network(Network&&) noexcept = default;
  /// Move assignment must retire the old nodes' BDD handles *before*
  /// replacing the manager they point into (member order would otherwise
  /// destroy the manager first — use-after-free).
  Network& operator=(Network&& other) noexcept {
    if (this != &other) {
      nodes_.clear();
      outputs_.clear();
      inputs_.clear();
      by_name_.clear();
      model_name_ = std::move(other.model_name_);
      mgr_ = std::move(other.mgr_);
      nodes_ = std::move(other.nodes_);
      inputs_ = std::move(other.inputs_);
      outputs_ = std::move(other.outputs_);
      by_name_ = std::move(other.by_name_);
      name_counter_ = other.name_counter_;
    }
    return *this;
  }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const std::string& model_name() const { return model_name_; }
  void set_model_name(std::string name) { model_name_ = std::move(name); }

  /// The manager holding all local node functions. Usable on const networks
  /// too: the manager is a workspace, not part of the logical value.
  bdd::Manager& manager() const { return *mgr_; }

  /// Adds a primary input; names must be unique network-wide.
  NodeId add_input(const std::string& name);
  /// Adds a logic node computing \p local over \p fanins (local var i is
  /// fanins[i]); \p local must live in this network's manager.
  NodeId add_logic(const std::string& name, std::vector<NodeId> fanins,
                   bdd::Bdd local);
  /// Convenience: adds a logic node from a truth table over the fanins.
  NodeId add_logic_tt(const std::string& name, std::vector<NodeId> fanins,
                      const tt::TruthTable& table);
  /// Adds a constant node (no fanins).
  NodeId add_constant(const std::string& name, bool value);
  /// Declares a primary output driven by \p driver.
  void add_output(const std::string& name, NodeId driver);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<Output>& outputs() const { return outputs_; }
  std::vector<Output>& outputs() { return outputs_; }

  /// Looks up a node id by name; kNoNode when absent.
  NodeId find(const std::string& name) const;
  /// Generates a fresh node name with the given prefix.
  std::string fresh_name(const std::string& prefix);

  /// All live node ids in topological order (inputs first).
  std::vector<NodeId> topo_order() const;

  /// Number of live logic nodes (constants included, inputs excluded).
  int num_logic_nodes() const;
  /// Largest fanin count among live logic nodes.
  int max_fanin() const;
  /// True iff every live logic node has at most k fanins.
  bool is_k_feasible(int k) const;

  /// Number of live logic nodes reading \p id as a fanin (POs not counted).
  int fanout_count(NodeId id) const;

  /// Redirects every reader of \p old_node (fanins and POs) to \p new_node.
  void replace_everywhere(NodeId old_node, NodeId new_node);

  /// Removes dead logic: nodes not reachable from any PO, constant and
  /// buffer/inverter propagation. Returns the number of removed nodes.
  /// Inverters feeding logic nodes are absorbed into the reader's function.
  int sweep();

  /// Removes the given primary inputs, which must be unused (no live reader,
  /// no PO). Used to retire temporary pseudo primary inputs after recovery.
  /// Throws std::logic_error if any listed input is still referenced.
  void drop_unused_inputs(const std::vector<NodeId>& candidates);

  /// Local function of a node as a truth table over its fanins.
  tt::TruthTable local_tt(NodeId id) const;

  /// Evaluates the whole network on a PI assignment (indexed like inputs()).
  /// Returns output values in outputs() order.
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

  /// Builds global BDDs for the requested nodes in \p target, where primary
  /// input i (in inputs() order) is \p target's variable pi_var[i].
  std::vector<bdd::Bdd> global_bdds(const std::vector<NodeId>& roots,
                                    bdd::Manager& target,
                                    const std::vector<int>& pi_var) const;

  /// Structural statistics string for reports.
  std::string stats() const;

 private:
  std::string model_name_;
  std::unique_ptr<bdd::Manager> mgr_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<Output> outputs_;
  std::unordered_map<std::string, NodeId> by_name_;
  int name_counter_ = 0;
};

// Cross-manager transfer now lives in bdd/transfer.hpp; re-exported here for
// the network-building call sites.
using bdd::transfer;
using bdd::transfer_compose;

}  // namespace hyde::net
