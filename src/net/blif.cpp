#include "net/blif.hpp"

#include <algorithm>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hyde::net {

namespace {

/// Every parse error names its 1-based source line and the offending token,
/// so a bad file is diagnosable without bisecting it by hand.
[[noreturn]] void fail(int line_no, const std::string& token,
                       const std::string& message) {
  throw std::runtime_error("BLIF line " + std::to_string(line_no) + ": " +
                           message + " (near '" + token + "')");
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// One logical line: tokens plus the 1-based number of the physical line it
/// started on (continuations keep the first line's number).
struct LogicalLine {
  int line_no = 0;
  std::vector<std::string> tokens;
};

/// Reads logical lines: strips comments, joins '\' continuations.
std::vector<LogicalLine> logical_lines(std::istream& in) {
  std::vector<LogicalLine> lines;
  std::string raw, pending;
  int physical = 0, pending_start = 0;
  while (std::getline(in, raw)) {
    ++physical;
    if (auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    bool continued = false;
    if (auto bs = raw.find_last_not_of(" \t\r");
        bs != std::string::npos && raw[bs] == '\\') {
      raw.erase(bs);
      continued = true;
    }
    if (pending.empty()) pending_start = physical;
    pending += raw;
    if (continued) {
      pending += ' ';
      continue;
    }
    auto tokens = tokenize(pending);
    pending.clear();
    if (!tokens.empty()) lines.push_back({pending_start, std::move(tokens)});
  }
  if (!pending.empty()) {
    auto tokens = tokenize(pending);
    if (!tokens.empty()) lines.push_back({pending_start, std::move(tokens)});
  }
  return lines;
}

struct NamesBlock {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> cubes;  // input parts only
  char phase = '1';
  bool phase_set = false;
  int line_no = 0;  ///< the .names line, for errors found while building
};

/// Parsed dot-structure of one BLIF section (main model or .exdc body).
struct ParsedSection {
  std::string model_name = "top";
  std::vector<std::string> input_names, output_names;
  std::map<std::string, NamesBlock> blocks;
  /// `.latch` data signals in file order (latch-input first), kept only in
  /// latch_combinational mode: outputs become PIs, inputs become POs.
  std::vector<std::pair<std::string, std::string>> latches;
  std::vector<int> latch_lines;  ///< parallel to latches, for late errors
  int outputs_line = 0;  ///< first .outputs line, for undefined-PO errors
};

ParsedSection parse_section(const std::vector<LogicalLine>& lines,
                            const BlifReadOptions& options) {
  ParsedSection section;
  NamesBlock* current = nullptr;

  for (const LogicalLine& line : lines) {
    const std::vector<std::string>& tokens = line.tokens;
    const int line_no = line.line_no;
    const std::string& head = tokens[0];
    if (head == ".model") {
      if (tokens.size() >= 2) section.model_name = tokens[1];
      current = nullptr;
    } else if (head == ".inputs") {
      section.input_names.insert(section.input_names.end(),
                                 tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      if (section.outputs_line == 0) section.outputs_line = line_no;
      section.output_names.insert(section.output_names.end(),
                                  tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".names") {
      if (tokens.size() < 2) fail(line_no, head, ".names without signals");
      NamesBlock block;
      block.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      block.output = tokens.back();
      block.line_no = line_no;
      auto [it, inserted] =
          section.blocks.insert_or_assign(block.output, std::move(block));
      if (!inserted) {
        fail(line_no, it->first, "signal defined twice");
      }
      current = &it->second;
    } else if (head == ".end") {
      current = nullptr;
    } else if (head == ".latch") {
      if (!options.latch_combinational) {
        fail(line_no, head,
             "unsupported construct .latch (sequential model; set "
             "latch_combinational to extract the combinational core)");
      }
      // `.latch <input> <output> [<type> <control>] [<init-val>]`
      if (tokens.size() < 3) {
        fail(line_no, head, ".latch needs an input and an output signal");
      }
      section.latches.emplace_back(tokens[1], tokens[2]);
      section.latch_lines.push_back(line_no);
      current = nullptr;
    } else if (head == ".subckt" || head == ".gate") {
      fail(line_no, head,
           "unsupported construct " + head + " (only flat .names models)");
    } else if (head[0] == '.') {
      current = nullptr;  // ignore unknown dot-directives (.default_input_arrival etc.)
    } else {
      // Cover row inside the current .names block.
      if (current == nullptr) {
        fail(line_no, head, "cover row outside .names");
      }
      std::string in_part;
      char out_part;
      if (current->inputs.empty()) {
        if (tokens.size() != 1 || tokens[0].size() != 1) {
          fail(line_no, tokens[0],
               "bad constant cover for " + current->output);
        }
        in_part = "";
        out_part = tokens[0][0];
      } else {
        if (tokens.size() != 2 || tokens[0].size() != current->inputs.size() ||
            tokens[1].size() != 1) {
          fail(line_no, tokens[0], "bad cover row for " + current->output);
        }
        in_part = tokens[0];
        out_part = tokens[1][0];
      }
      if (out_part != '0' && out_part != '1') {
        fail(line_no, std::string(1, out_part),
             "bad output phase for " + current->output);
      }
      if (current->phase_set && current->phase != out_part) {
        fail(line_no, std::string(1, out_part),
             "mixed output phases for " + current->output);
      }
      current->phase = out_part;
      current->phase_set = true;
      current->cubes.push_back(in_part);
    }
  }
  return section;
}

/// Rewrites a sequential section into its combinational core: latch outputs
/// join the primary inputs, latch inputs join the primary outputs. The
/// network between the registers is exactly what the mapping flows consume.
void absorb_latches(ParsedSection* section) {
  for (std::size_t i = 0; i < section->latches.size(); ++i) {
    const auto& [data_in, data_out] = section->latches[i];
    const int line_no = section->latch_lines[i];
    if (section->blocks.count(data_out) != 0) {
      fail(line_no, data_out, "latch output also defined by .names");
    }
    if (std::find(section->input_names.begin(), section->input_names.end(),
                  data_out) != section->input_names.end()) {
      fail(line_no, data_out, "latch output already a primary input");
    }
    section->input_names.push_back(data_out);
    if (std::find(section->output_names.begin(), section->output_names.end(),
                  data_in) == section->output_names.end()) {
      section->output_names.push_back(data_in);
    }
  }
}

/// Builds a network from a parsed section. When \p missing_outputs_as_zero
/// is set (the .exdc case) undefined output signals become constant 0.
Network build_section(const ParsedSection& section,
                      bool missing_outputs_as_zero) {
  Network network(section.model_name);
  for (const auto& name : section.input_names) network.add_input(name);

  // Create logic nodes on demand, following dependencies. referenced_at is
  // the line to blame when a signal has no definition.
  std::function<NodeId(const std::string&, int)> build =
      [&](const std::string& name, int referenced_at) -> NodeId {
    if (NodeId existing = network.find(name); existing != kNoNode) {
      return existing;
    }
    auto it = section.blocks.find(name);
    if (it == section.blocks.end()) {
      fail(referenced_at == 0 ? section.outputs_line : referenced_at, name,
           "undefined signal");
    }
    const NamesBlock& block = it->second;
    std::vector<NodeId> fanins;
    fanins.reserve(block.inputs.size());
    for (const auto& in_name : block.inputs) {
      fanins.push_back(build(in_name, block.line_no));
    }

    bdd::Manager& mgr = network.manager();
    mgr.ensure_vars(static_cast<int>(block.inputs.size()));
    bdd::Bdd sum = mgr.zero();
    for (const auto& cube : block.cubes) {
      bdd::Bdd product = mgr.one();
      for (std::size_t i = 0; i < cube.size(); ++i) {
        if (cube[i] == '1') {
          product = product & mgr.var(static_cast<int>(i));
        } else if (cube[i] == '0') {
          product = product & mgr.nvar(static_cast<int>(i));
        } else if (cube[i] != '-') {
          fail(block.line_no, cube, "bad cube character in cover of " + name);
        }
      }
      sum = sum | product;
    }
    if (block.phase == '0') sum = ~sum;
    return network.add_logic(name, std::move(fanins), std::move(sum));
  };

  for (const auto& name : section.output_names) {
    if (missing_outputs_as_zero && section.blocks.count(name) == 0 &&
        std::find(section.input_names.begin(), section.input_names.end(),
                  name) == section.input_names.end()) {
      network.add_output(name, network.add_constant(name, false));
    } else {
      network.add_output(name, build(name, 0));
    }
  }
  return network;
}

}  // namespace

BlifModel read_blif_model(std::istream& in, const BlifReadOptions& options) {
  const auto lines = logical_lines(in);
  // Split at `.exdc`: everything after it (up to `.end`) is the don't-care
  // network's body.
  std::vector<LogicalLine> main_lines, exdc_lines;
  bool in_exdc = false;
  for (const LogicalLine& line : lines) {
    if (line.tokens[0] == ".exdc") {
      in_exdc = true;
      continue;
    }
    (in_exdc ? exdc_lines : main_lines).push_back(line);
  }

  BlifModel model;
  ParsedSection main_section = parse_section(main_lines, options);
  model.latches = static_cast<int>(main_section.latches.size());
  if (!main_section.latches.empty()) absorb_latches(&main_section);
  model.network = build_section(main_section, /*missing_outputs_as_zero=*/false);
  model.has_dont_cares = in_exdc;
  if (in_exdc) {
    ParsedSection dc_section = parse_section(exdc_lines, options);
    // The exdc body shares the main model's interface.
    dc_section.model_name = main_section.model_name + "_exdc";
    dc_section.input_names = main_section.input_names;
    dc_section.output_names = main_section.output_names;
    model.dont_care = build_section(dc_section, /*missing_outputs_as_zero=*/true);
  }
  return model;
}

BlifModel read_blif_model_string(const std::string& text,
                                 const BlifReadOptions& options) {
  std::istringstream is(text);
  return read_blif_model(is, options);
}

Network read_blif(std::istream& in, const BlifReadOptions& options) {
  BlifModel model = read_blif_model(in, options);
  if (model.has_dont_cares) {
    throw std::runtime_error(
        "BLIF: .exdc present; use read_blif_model to keep the don't cares");
  }
  return std::move(model.network);
}

Network read_blif_string(const std::string& text,
                         const BlifReadOptions& options) {
  std::istringstream is(text);
  return read_blif(is, options);
}

namespace {

/// Enumerates the 1-paths of a local function as BLIF cubes.
void one_paths(const bdd::Bdd& f, int arity, std::string& cube,
               std::vector<std::string>& out) {
  if (f.is_zero()) return;
  if (f.is_one()) {
    out.push_back(cube);
    return;
  }
  const int v = f.top_var();
  cube[static_cast<std::size_t>(v)] = '0';
  one_paths(f.low(), arity, cube, out);
  cube[static_cast<std::size_t>(v)] = '1';
  one_paths(f.high(), arity, cube, out);
  cube[static_cast<std::size_t>(v)] = '-';
}

}  // namespace

void write_blif(const Network& network, std::ostream& out) {
  out << ".model " << network.model_name() << "\n.inputs";
  for (NodeId id : network.inputs()) out << ' ' << network.node(id).name;
  out << "\n.outputs";
  for (const Output& o : network.outputs()) out << ' ' << o.name;
  out << "\n";
  for (NodeId id : network.topo_order()) {
    const Node& n = network.node(id);
    if (n.kind != NodeKind::kLogic || n.dead) continue;
    out << ".names";
    for (NodeId f : n.fanins) out << ' ' << network.node(f).name;
    out << ' ' << n.name << "\n";
    std::string cube(n.fanins.size(), '-');
    std::vector<std::string> cubes;
    one_paths(n.local, static_cast<int>(n.fanins.size()), cube, cubes);
    for (const auto& c : cubes) {
      if (c.empty()) {
        out << "1\n";
      } else {
        out << c << " 1\n";
      }
    }
  }
  // Buffers for outputs whose name differs from the driving node.
  for (const Output& o : network.outputs()) {
    const Node& d = network.node(o.driver);
    if (d.name != o.name) {
      out << ".names " << d.name << ' ' << o.name << "\n1 1\n";
    }
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& network) {
  std::ostringstream os;
  write_blif(network, os);
  return os.str();
}

}  // namespace hyde::net
