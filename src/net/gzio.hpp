/// \file gzio.hpp
/// \brief Gzip-compressed input support for netlist readers.
///
/// `gunzip_file` inflates a `.gz` archive into the text the BLIF/PLA readers
/// consume, so `hyde_cli --in circuit.blif.gz` behaves exactly like the
/// uncompressed file. Decompression is strict:
///
///  - the archive must be a well-formed gzip stream (RFC 1952); multi-member
///    archives (concatenated gzip streams, what `cat a.gz b.gz` produces)
///    inflate to the concatenation of their members, matching `gzip -d`;
///  - bytes after the last member that do not start another gzip stream are
///    *trailing garbage* and reject the whole file. The error names the file
///    but carries no line number — there are no lines in a corrupt archive.
///
/// The implementation is gated on zlib: when the toolchain lacks it
/// (`gzip_available()` returns false), `gunzip_file` throws a
/// std::runtime_error explaining that gzip input is unsupported in this
/// build. Callers decide by file name — `is_gzip_name` — so builds without
/// zlib still give a precise error for `.gz` inputs instead of feeding
/// compressed bytes to the BLIF lexer.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyde::net {

/// True when this binary was built against zlib and can inflate archives.
bool gzip_available();

/// True when \p path names a gzip archive by convention (".gz" suffix).
bool is_gzip_name(const std::string& path);

/// Reads \p path and inflates it to the contained text. Throws
/// std::runtime_error — always naming the file, never a line — when the file
/// cannot be read, is not a gzip stream, is truncated or corrupt, carries a
/// bad CRC, has trailing garbage after the last member, or when this build
/// lacks zlib.
std::string gunzip_file(const std::string& path);

/// Compresses \p text into a single-member gzip archive (test helper for the
/// round-trip and trailing-garbage suites). Throws std::runtime_error when
/// this build lacks zlib.
std::vector<std::uint8_t> gzip_compress(const std::string& text);

}  // namespace hyde::net
