/// \file verify.hpp
/// \brief Network equivalence checking.
///
/// Two strategies, picked automatically:
///  - *formal*: build both networks' global BDDs over a shared manager and
///    compare canonically — exact, used whenever the BDDs stay within a node
///    budget;
///  - *simulation*: exhaustive for small PI counts, seeded random vectors
///    otherwise (a fallback the caller can size).
///
/// Networks must have identically named primary inputs (any order) and the
/// same number of outputs (compared positionally, by the output list).

#pragma once

#include <cstdint>
#include <string>

#include "net/network.hpp"

namespace hyde::net {

enum class EquivalenceMethod {
  kFormalBdd,        ///< canonical BDD comparison (exact)
  kExhaustiveSim,    ///< all 2^n input vectors (exact)
  kRandomSim,        ///< seeded random vectors (probabilistic)
};

struct EquivalenceResult {
  bool equivalent = false;
  EquivalenceMethod method = EquivalenceMethod::kRandomSim;
  /// Index of the first differing output (-1 if equivalent).
  int failing_output = -1;
  /// A witness input assignment when not equivalent (PI order of \p a).
  std::vector<bool> counterexample;
};

struct EquivalenceOptions {
  /// Give up on the formal method when a global BDD exceeds this many nodes.
  std::size_t bdd_node_budget = 200000;
  /// Exhaustive simulation bound (2^n vectors) — used if formal is skipped.
  int exhaustive_max_inputs = 14;
  /// Random vectors when both exact methods are out of reach.
  int random_vectors = 512;
  std::uint64_t seed = 1;
};

/// Checks whether \p a and \p b compute the same outputs.
/// Throws std::invalid_argument on interface mismatch (different PI name
/// sets or output counts).
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& options = {});

}  // namespace hyde::net
