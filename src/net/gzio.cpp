#include "net/gzio.hpp"

#include <fstream>
#include <stdexcept>

#if defined(HYDE_HAS_ZLIB)
#include <zlib.h>
#endif

namespace hyde::net {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

std::vector<std::uint8_t> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::vector<std::uint8_t> bytes;
  char chunk[65536];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), chunk, chunk + in.gcount());
  }
  return bytes;
}

}  // namespace

bool is_gzip_name(const std::string& path) {
  static const std::string suffix = ".gz";
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

#if defined(HYDE_HAS_ZLIB)

bool gzip_available() { return true; }

std::string gunzip_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_binary(path);
  if (bytes.size() < 2 || bytes[0] != 0x1f || bytes[1] != 0x8b) {
    fail(path, "not a gzip archive (bad magic)");
  }

  std::string text;
  z_stream zs{};
  // windowBits 15 + 16 selects gzip (not raw/zlib) framing, so the header
  // and the member CRC/length trailer are checked by inflate itself.
  if (inflateInit2(&zs, 15 + 16) != Z_OK) {
    fail(path, "zlib initialization failed");
  }
  zs.next_in = const_cast<Bytef*>(bytes.data());
  zs.avail_in = static_cast<uInt>(bytes.size());

  char out[65536];
  bool done = false;
  while (!done) {
    zs.next_out = reinterpret_cast<Bytef*>(out);
    zs.avail_out = sizeof(out);
    const int rc = inflate(&zs, Z_NO_FLUSH);
    text.append(out, sizeof(out) - zs.avail_out);
    if (rc == Z_STREAM_END) {
      if (zs.avail_in == 0) {
        done = true;
      } else if (zs.avail_in >= 2 && zs.next_in[0] == 0x1f &&
                 zs.next_in[1] == 0x8b) {
        // Another member follows (concatenated archive): keep inflating.
        if (inflateReset(&zs) != Z_OK) {
          inflateEnd(&zs);
          fail(path, "zlib reset failed between gzip members");
        }
      } else {
        inflateEnd(&zs);
        fail(path, "trailing garbage after gzip stream");
      }
    } else if (rc == Z_OK) {
      if (zs.avail_in == 0 && zs.avail_out != 0) {
        // inflate consumed everything without reaching the stream trailer.
        inflateEnd(&zs);
        fail(path, "truncated gzip stream");
      }
    } else if (rc == Z_BUF_ERROR && zs.avail_out == 0) {
      // Output buffer full: loop for more.
    } else {
      inflateEnd(&zs);
      fail(path, zs.msg != nullptr
                     ? std::string("corrupt gzip stream (") + zs.msg + ")"
                     : "corrupt gzip stream");
    }
  }
  inflateEnd(&zs);
  return text;
}

std::vector<std::uint8_t> gzip_compress(const std::string& text) {
  z_stream zs{};
  if (deflateInit2(&zs, Z_BEST_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw std::runtime_error("gzip_compress: zlib initialization failed");
  }
  zs.next_in =
      const_cast<Bytef*>(reinterpret_cast<const Bytef*>(text.data()));
  zs.avail_in = static_cast<uInt>(text.size());

  std::vector<std::uint8_t> archive;
  std::uint8_t out[65536];
  int rc = Z_OK;
  do {
    zs.next_out = out;
    zs.avail_out = sizeof(out);
    rc = deflate(&zs, Z_FINISH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      deflateEnd(&zs);
      throw std::runtime_error("gzip_compress: deflate failed");
    }
    archive.insert(archive.end(), out, out + (sizeof(out) - zs.avail_out));
  } while (rc != Z_STREAM_END);
  deflateEnd(&zs);
  return archive;
}

#else  // !HYDE_HAS_ZLIB

bool gzip_available() { return false; }

std::string gunzip_file(const std::string& path) {
  fail(path, "gzip input is not supported in this build (no zlib)");
}

std::vector<std::uint8_t> gzip_compress(const std::string&) {
  throw std::runtime_error(
      "gzip_compress: not supported in this build (no zlib)");
}

#endif  // HYDE_HAS_ZLIB

}  // namespace hyde::net
