#include "net/verify.hpp"

#include <map>
#include <stdexcept>

namespace hyde::net {

namespace {

/// SplitMix64 for deterministic random vectors.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Maps b's PI index -> a's PI index, by name.
std::vector<int> match_inputs(const Network& a, const Network& b) {
  std::map<std::string, int> a_index;
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    a_index.emplace(a.node(a.inputs()[i]).name, static_cast<int>(i));
  }
  if (a.inputs().size() != b.inputs().size()) {
    throw std::invalid_argument("check_equivalence: PI count mismatch");
  }
  std::vector<int> map(b.inputs().size(), -1);
  for (std::size_t i = 0; i < b.inputs().size(); ++i) {
    const auto it = a_index.find(b.node(b.inputs()[i]).name);
    if (it == a_index.end()) {
      throw std::invalid_argument("check_equivalence: PI name mismatch: " +
                                  b.node(b.inputs()[i]).name);
    }
    map[i] = it->second;
  }
  return map;
}

}  // namespace

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& options) {
  if (a.outputs().size() != b.outputs().size()) {
    throw std::invalid_argument("check_equivalence: PO count mismatch");
  }
  const std::vector<int> b_to_a = match_inputs(a, b);
  const int n = static_cast<int>(a.inputs().size());

  EquivalenceResult result;

  // --- Formal attempt: shared manager, canonical comparison.
  try {
    bdd::Manager global(std::max(1, n));
    global.set_node_limit(options.bdd_node_budget);
    std::vector<int> a_pi_var;
    for (int i = 0; i < n; ++i) a_pi_var.push_back(i);
    std::vector<int> b_pi_var(b_to_a.begin(), b_to_a.end());

    std::vector<NodeId> a_roots, b_roots;
    for (const auto& o : a.outputs()) a_roots.push_back(o.driver);
    for (const auto& o : b.outputs()) b_roots.push_back(o.driver);
    const auto fa = a.global_bdds(a_roots, global, a_pi_var);
    const auto fb = b.global_bdds(b_roots, global, b_pi_var);

    result.method = EquivalenceMethod::kFormalBdd;
    result.equivalent = true;
    for (std::size_t o = 0; o < fa.size(); ++o) {
      if (fa[o] == fb[o]) continue;
      result.equivalent = false;
      result.failing_output = static_cast<int>(o);
      const bdd::Bdd diff = fa[o] ^ fb[o];
      std::vector<std::pair<int, bool>> witness;
      global.pick_one_minterm(diff, &witness);
      result.counterexample.assign(static_cast<std::size_t>(n), false);
      for (auto [v, value] : witness) {
        result.counterexample[static_cast<std::size_t>(v)] = value;
      }
      break;
    }
    return result;
  } catch (const std::length_error&) {
    // BDD blow-up: fall through to simulation.
  }

  // --- Simulation fallback.
  auto compare_vector = [&](const std::vector<bool>& assign) {
    std::vector<bool> b_assign(assign.size());
    for (std::size_t i = 0; i < b_to_a.size(); ++i) {
      b_assign[i] = assign[static_cast<std::size_t>(b_to_a[i])];
    }
    const auto oa = a.eval(assign);
    const auto ob = b.eval(b_assign);
    for (std::size_t o = 0; o < oa.size(); ++o) {
      if (oa[o] != ob[o]) {
        result.equivalent = false;
        result.failing_output = static_cast<int>(o);
        result.counterexample = assign;
        return false;
      }
    }
    return true;
  };

  result.equivalent = true;
  if (n <= options.exhaustive_max_inputs) {
    result.method = EquivalenceMethod::kExhaustiveSim;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
      std::vector<bool> assign(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
      if (!compare_vector(assign)) return result;
    }
    return result;
  }
  result.method = EquivalenceMethod::kRandomSim;
  std::uint64_t state = options.seed;
  for (int probe = 0; probe < options.random_vectors; ++probe) {
    std::vector<bool> assign(static_cast<std::size_t>(n));
    for (auto&& v : assign) v = (splitmix64(state) & 1) != 0;
    if (!compare_vector(assign)) return result;
  }
  return result;
}

}  // namespace hyde::net
