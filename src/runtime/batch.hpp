/// \file batch.hpp
/// \brief Parallel batch execution of whole-flow synthesis jobs.
///
/// `run_batch` fans a job list out over a `JobScheduler` thread pool. Every
/// job is an independent end-to-end flow (`baseline::run_system`): it builds
/// its circuit, decomposes, maps and verifies on its worker thread with
/// job-private state — one `bdd::Manager` per flow invocation, constructed on
/// the thread that runs it. Jobs share exactly one mutable object, the
/// `NpnResultCache`, whose purity contract (core/decomp_cache.hpp) makes
/// batch results bit-identical across worker counts and schedules for the
/// same job list and seeds.
///
/// Job seeds are fixed up front in the job list — derived from the caller's
/// base seed by `suite_jobs`, never from scheduling order.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/flows.hpp"
#include "runtime/report.hpp"

namespace hyde::runtime {

/// One unit of schedulable work: a circuit from the MCNC-like registry, a
/// system preset (flow + mapper policy bundle) and the LUT size.
struct BatchJob {
  std::string circuit;
  baseline::System system = baseline::System::kHyde;
  int k = 5;
  std::uint64_t seed = 1;
};

struct BatchOptions {
  int workers = 1;          ///< thread-pool size (clamped to >= 1)
  int verify_vectors = 128; ///< random-vector equivalence check per job (0 = off)
  bool use_cache = true;    ///< share an NpnResultCache across all jobs
  int cache_max_support = 7;
  /// Persistent second-level cache directory (src/store). Empty keeps the
  /// cache in-memory only. When set (and use_cache is on), jobs look up
  /// memory → disk and the store is flushed once at the end of the batch.
  /// The store also acts as a whole-job replay tier: a job whose outcome was
  /// committed by an earlier run under the same (circuit content, system, k,
  /// seed, result-affecting knobs) fingerprint is replayed from disk without
  /// re-synthesizing — the deterministic report subset is bit-identical
  /// either way (docs/CACHE.md).
  std::string cache_dir;
  /// Consult the on-disk store but never write or evict (e.g. CI readers
  /// sharing a golden cache).
  bool cache_readonly = false;
  /// On-disk byte budget applied at flush via LRU-by-generation eviction;
  /// 0 = unlimited.
  std::uint64_t cache_max_bytes = 0;
  /// Intra-flow bound-set search threads per job (decomp/search.hpp).
  /// Result-identical at any value; the default 1 avoids oversubscribing the
  /// batch worker pool. Total threads ~= workers * search_threads.
  int search_threads = 1;
  /// Intra-flow encoder threads per job (core/encoder.hpp Step 4 / Step 8).
  /// Result-identical at any value; same oversubscription caveat.
  int encoder_threads = 1;
  /// Packed-signature column-compatibility fast path (decomp/compatible.hpp).
  /// Result-identical on and off.
  bool class_signatures = true;
  /// Dynamic variable reordering inside each job's flow manager
  /// (docs/REORDER.md). Result-affecting — part of the NPN-cache
  /// fingerprint — but still bit-identical across worker counts.
  bdd::ReorderMode reorder = bdd::ReorderMode::kOff;
  double reorder_max_growth = 2.0;
  /// Recycle warmed BDD managers across the batch's flow invocations through
  /// one shared, mutex-protected pool (bdd/pool.hpp). Result-neutral.
  bool manager_pool = false;
};

/// Number of workers to use when the caller has no preference: the hardware
/// concurrency, or 1 when it cannot be determined.
int default_worker_count();

/// Builds the cross product \p circuits x \p systems in row-major order
/// (every system of circuit 0, then circuit 1, ...). Every job gets
/// \p base_seed: seeds are a function of the job list alone, so reports are
/// comparable with the serial single-circuit drivers and independent of
/// scheduling.
std::vector<BatchJob> suite_jobs(const std::vector<std::string>& circuits,
                                 const std::vector<baseline::System>& systems,
                                 int k, std::uint64_t base_seed);

/// Executes \p jobs on \p options.workers threads and aggregates a RunReport
/// (jobs reported in submission order). Per-job exceptions are captured in
/// JobReport::error, never propagated.
RunReport run_batch(const std::vector<BatchJob>& jobs,
                    const BatchOptions& options);

}  // namespace hyde::runtime
