/// \file report.hpp
/// \brief Structured results of a batch-synthesis run.
///
/// A RunReport aggregates per-job flow/mapper outcomes, NPN-cache figures and
/// wall-clock into deterministic JSON/CSV. Fields split into two groups:
///
///  - *deterministic*: pure functions of (jobs, seeds, flow options). Two
///    runs of the same batch agree on these regardless of worker count or
///    scheduling — the scheduler-determinism test diffs exactly this subset
///    (`to_json(report, /*include_volatile=*/false)`).
///  - *volatile*: wall-clock times, worker count, and the cache's observed
///    hit/miss/race counters (a key another job already published counts as
///    a hit, so these legitimately move with scheduling). Emitted only when
///    `include_volatile` is set.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow.hpp"

namespace hyde::runtime {

/// Outcome of one synthesis job (circuit x system x k).
struct JobReport {
  std::string circuit;
  std::string system;
  int k = 5;
  std::uint64_t seed = 1;
  int luts = 0;
  int clbs = 0;  ///< XC3000 CLB count; 0 unless k == 5
  int depth = 0;
  bool verified = false;
  std::string error;  ///< nonempty when the job threw; other fields are zero
  core::FlowStats stats;
  double seconds = 0.0;  ///< volatile: per-job wall-clock on its worker
};

/// Aggregated NPN-cache figures for the whole batch.
struct CacheReport {
  bool enabled = false;
  int max_support = 0;
  /// Deterministic: total cache consultations summed over job FlowStats.
  std::uint64_t flow_lookups = 0;
  /// Distinct memoized functions (the needed-key closure). Deterministic for
  /// memory-only runs; volatile once a persistent store is attached, because
  /// disk promotions and whole-job replays change which keys reach the
  /// memory tier.
  std::uint64_t unique_functions = 0;
  // Observed traffic (volatile).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t races_lost = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Persistent on-disk store figures for the whole run
/// (src/store/persistent_cache.hpp). Volatile: which lookups reach the disk
/// tier depends on which worker warmed the memory tier first, and the byte
/// counters track actual disk traffic.
struct StoreReport {
  bool enabled = false;
  bool readonly = false;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t raw_bytes = 0;    ///< fixed-width payload bytes put this run
  std::uint64_t coded_bytes = 0;  ///< entropy-coded bytes for the same puts
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_records = 0;
  std::uint64_t appends = 0;
  std::uint64_t records = 0;  ///< records visible on disk at snapshot time
  std::uint64_t job_hits = 0;     ///< whole-job outcomes replayed from disk
  std::uint64_t job_appends = 0;  ///< whole-job outcomes committed this run

  /// Entropy-coded over fixed-width size; 0 when nothing was written.
  double codec_ratio() const {
    return raw_bytes == 0 ? 0.0
                          : static_cast<double>(coded_bytes) /
                                static_cast<double>(raw_bytes);
  }
};

/// Aggregated BDD-kernel figures for the whole batch (all volatile: with the
/// NPN cache on, which job pays for a template's BDD work depends on which
/// worker missed first, so per-job and summed kernel counters move with
/// scheduling).
struct BddKernelReport {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_overwrites = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t reorder_runs = 0;
  std::uint64_t peak_live_nodes = 0;  ///< max over all managers in the batch

  double hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// Aggregated bound-set search engine figures for the whole batch (all
/// volatile: pruning depth and memo hit patterns move with evaluation order
/// and thread count, even though the selected bound sets never do).
struct SearchReport {
  std::uint64_t selects = 0;
  std::uint64_t candidates_evaluated = 0;
  std::uint64_t candidates_pruned = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_clears = 0;
};

/// Aggregated class-computation / encoder engine figures for the whole batch
/// (all volatile: which fast path decided a column pair and how many encoder
/// tasks hit worker threads depend on the engine knobs, never the results).
struct ClassesReport {
  std::uint64_t signature_pairs = 0;
  std::uint64_t bdd_pairs = 0;
  std::uint64_t encoder_parallel_tasks = 0;
};

/// Aggregated windowed-engine figures for the whole batch (reported in the
/// volatile sections next to the other engine blocks, though the counters
/// themselves are schedule-independent — see core::FlowStats).
struct WindowsReport {
  std::uint64_t extracted = 0;
  std::uint64_t resynthesized = 0;
  std::uint64_t passthrough = 0;
  std::uint64_t budget_fallbacks = 0;
  std::uint64_t split = 0;
  std::uint64_t verify_failures = 0;
  int peak_inputs = 0;  ///< max over jobs
  int peak_nodes = 0;   ///< max over jobs
  // Scheduling telemetry (genuinely volatile: thread count, steal pattern
  // and wall clock).
  std::uint64_t extract_parallel = 0;  ///< snapshots materialized on workers
  std::uint64_t steals = 0;            ///< window tasks stolen across deques
  int workers = 0;                     ///< max scheduler workers over jobs
  double worker_busy_seconds = 0.0;       ///< summed worker busy time
  double worker_busy_peak_seconds = 0.0;  ///< busiest single worker, max over jobs
  double max_window_seconds = 0.0;  ///< slowest single window over the batch
};

struct RunReport {
  int verify_vectors = 0;
  std::vector<JobReport> jobs;  ///< submission order, independent of finish order
  CacheReport cache;
  StoreReport store;         ///< volatile; persistent-cache runs only
  BddKernelReport bdd;       ///< volatile
  SearchReport search;       ///< volatile
  ClassesReport classes;     ///< volatile
  WindowsReport windows;     ///< volatile section; windowed jobs only
  int workers = 1;           ///< volatile
  double wall_seconds = 0.0;  ///< volatile

  bool all_ok() const {
    for (const JobReport& job : jobs) {
      if (!job.error.empty() || !job.verified) return false;
    }
    return true;
  }
};

/// Deterministically formatted JSON. With include_volatile=false the output
/// is bit-identical across worker counts and schedules for the same batch.
std::string to_json(const RunReport& report, bool include_volatile = true);

/// One CSV row per job (header included; volatile seconds column last).
std::string to_csv(const RunReport& report);

}  // namespace hyde::runtime
