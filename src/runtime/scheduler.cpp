#include "runtime/scheduler.hpp"

#include <algorithm>

namespace hyde::runtime {

JobScheduler::JobScheduler(int num_workers) {
  const int n = std::max(1, num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void JobScheduler::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void JobScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void JobScheduler::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      // Batch tasks catch their own exceptions; swallow strays so one bad
      // task cannot take the worker (and every queued job behind it) down.
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hyde::runtime
