#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace hyde::runtime {

JobScheduler::JobScheduler(int num_workers) {
  const int n = std::max(1, num_workers);
  deques_.resize(static_cast<std::size_t>(n));
  deque_cost_.assign(static_cast<std::size_t>(n), 0);
  utilization_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

JobScheduler::~JobScheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void JobScheduler::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  work_cv_.notify_one();
}

void JobScheduler::submit_ordered(std::vector<OrderedTask> tasks) {
  // Stable sort keeps submission order among equal costs, so the dealt
  // layout — and with it the steal pattern — is a pure function of the
  // (cost, index) sequence, never of timing.
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const OrderedTask& a, const OrderedTask& b) {
                     return a.cost > b.cost;
                   });
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (OrderedTask& t : tasks) {
      // LPT: the next-longest task goes to the worker with the least
      // estimated load so far (ties to the lowest index).
      std::size_t target = 0;
      for (std::size_t w = 1; w < deques_.size(); ++w) {
        if (deque_cost_[w] < deque_cost_[target]) target = w;
      }
      deque_cost_[target] += t.cost;
      deques_[target].push_back(DequeTask{t.cost, std::move(t.fn)});
      ++submitted_;
    }
  }
  work_cv_.notify_all();
}

void JobScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return all_empty() && active_ == 0; });
}

SchedulerStats JobScheduler::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  SchedulerStats s;
  s.submitted = submitted_;
  s.executed = executed_;
  s.steals = steals_;
  s.workers = utilization_;
  return s;
}

bool JobScheduler::all_empty() const {
  if (!queue_.empty()) return false;
  for (const auto& d : deques_) {
    if (!d.empty()) return false;
  }
  return true;
}

bool JobScheduler::try_pop(std::size_t index, std::function<void()>* task,
                           bool* stolen) {
  *stolen = false;
  std::deque<DequeTask>& own = deques_[index];
  if (!own.empty()) {
    *task = std::move(own.front().fn);
    deque_cost_[index] -= own.front().cost;
    own.pop_front();
    return true;
  }
  if (!queue_.empty()) {
    *task = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }
  // Steal from the back of the co-worker with the most estimated work left;
  // it keeps draining its front undisturbed.
  std::size_t victim = index;
  std::uint64_t best = 0;
  for (std::size_t w = 0; w < deques_.size(); ++w) {
    if (w == index || deques_[w].empty()) continue;
    if (victim == index || deque_cost_[w] > best) {
      victim = w;
      best = deque_cost_[w];
    }
  }
  if (victim == index) return false;
  DequeTask& back = deques_[victim].back();
  *task = std::move(back.fn);
  deque_cost_[victim] -= back.cost;
  deques_[victim].pop_back();
  *stolen = true;
  return true;
}

void JobScheduler::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pop before consulting stopping_ so destruction still drains every
      // queued task (the predicate's side effect hands the task out).
      work_cv_.wait(lock, [this, index, &task, &stolen] {
        return try_pop(index, &task, &stolen) || stopping_;
      });
      if (!task) return;  // stopping and drained
      ++active_;
      if (stolen) ++steals_;
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      task();
    } catch (...) {
      // Callers catch their own exceptions; swallow strays so one bad task
      // cannot take the worker (and every queued job behind it) down.
    }
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      ++executed_;
      WorkerUtilization& u = utilization_[index];
      ++u.tasks;
      if (stolen) ++u.steals;
      u.busy_seconds += busy;
      if (all_empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hyde::runtime
