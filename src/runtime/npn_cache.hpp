/// \file npn_cache.hpp
/// \brief Sharded, thread-safe NPN decomposition memo for the batch runtime.
///
/// Implements core::DecompCache with a fixed array of shards, each a hash map
/// under its own mutex, selected by key hash. Shard locks are held only for
/// the map operation itself — template *computation* happens outside any lock
/// (the flow computes on miss, then inserts), so two workers may race the
/// same key; the determinism contract in core/decomp_cache.hpp makes both
/// computed values bit-identical and first-insert-wins safe.
///
/// Counter semantics (see also runtime/report.hpp): `hits`, `misses` and
/// `races_lost` are *observed* values — they legitimately vary with worker
/// count and scheduling. Schedule-independent cache figures (total flow
/// lookups, unique functions) are derived from FlowStats and `size()`.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/decomp_cache.hpp"

namespace hyde::runtime {

/// Observed cache traffic counters (schedule-dependent, reporting only).
struct NpnCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t races_lost = 0;  ///< inserts that found the key already there
};

class NpnResultCache final : public core::DecompCache {
 public:
  static constexpr int kNumShards = 16;

  NpnResultCache() = default;
  NpnResultCache(const NpnResultCache&) = delete;
  NpnResultCache& operator=(const NpnResultCache&) = delete;

  std::shared_ptr<const core::CachedDecomposition> lookup(
      const core::NpnCacheKey& key) override;
  std::shared_ptr<const core::CachedDecomposition> insert(
      const core::NpnCacheKey& key, core::CachedDecomposition value) override;

  /// Number of distinct memoized functions. Schedule-independent once all
  /// workers are quiescent.
  std::uint64_t size() const;

  NpnCacheCounters counters() const;

 private:
  struct KeyHash {
    std::size_t operator()(const core::NpnCacheKey& key) const {
      return static_cast<std::size_t>(key.hash());
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<core::NpnCacheKey,
                       std::shared_ptr<const core::CachedDecomposition>,
                       KeyHash>
        map;
  };

  Shard& shard_for(const core::NpnCacheKey& key) {
    return shards_[key.hash() % kNumShards];
  }

  Shard shards_[kNumShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> races_lost_{0};
};

}  // namespace hyde::runtime
