#include "runtime/npn_cache.hpp"

namespace hyde::runtime {

std::shared_ptr<const core::CachedDecomposition> NpnResultCache::lookup(
    const core::NpnCacheKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const core::CachedDecomposition> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  (entry ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return entry;
}

std::shared_ptr<const core::CachedDecomposition> NpnResultCache::insert(
    const core::NpnCacheKey& key, core::CachedDecomposition value) {
  auto entry =
      std::make_shared<const core::CachedDecomposition>(std::move(value));
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.map.emplace(key, entry);
    if (!inserted) {
      races_lost_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  return entry;
}

std::uint64_t NpnResultCache::size() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

NpnCacheCounters NpnResultCache::counters() const {
  NpnCacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.races_lost = races_lost_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace hyde::runtime
