#include "runtime/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "mcnc/benchmarks.hpp"
#include "runtime/npn_cache.hpp"
#include "runtime/scheduler.hpp"

namespace hyde::runtime {

int default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<BatchJob> suite_jobs(const std::vector<std::string>& circuits,
                                 const std::vector<baseline::System>& systems,
                                 int k, std::uint64_t base_seed) {
  std::vector<BatchJob> jobs;
  jobs.reserve(circuits.size() * systems.size());
  for (const std::string& circuit : circuits) {
    for (baseline::System system : systems) {
      jobs.push_back(BatchJob{circuit, system, k, base_seed});
    }
  }
  return jobs;
}

RunReport run_batch(const std::vector<BatchJob>& jobs,
                    const BatchOptions& options) {
  RunReport report;
  report.workers = options.workers < 1 ? 1 : options.workers;
  report.verify_vectors = options.verify_vectors;
  report.jobs.resize(jobs.size());
  report.cache.enabled = options.use_cache;
  report.cache.max_support = options.cache_max_support;

  NpnResultCache cache;
  core::DecompCache* shared_cache = options.use_cache ? &cache : nullptr;
  // One pool for the whole batch: managers warmed by any job are reused by
  // whichever job acquires next. Outlives the scheduler block below, so
  // every job has released its manager before the pool dies.
  bdd::ManagerPool manager_pool;
  bdd::ManagerPool* shared_pool =
      options.manager_pool ? &manager_pool : nullptr;

  const auto start = std::chrono::steady_clock::now();
  {
    JobScheduler pool(report.workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([&jobs, &report, &options, shared_cache, shared_pool, i] {
        const BatchJob& job = jobs[i];
        JobReport& out = report.jobs[i];
        out.circuit = job.circuit;
        out.system = baseline::system_name(job.system);
        out.k = job.k;
        out.seed = job.seed;
        try {
          const net::Network input = mcnc::make_circuit(job.circuit);
          const baseline::BaselineResult result = baseline::run_system(
              input, job.system, job.k, options.verify_vectors, job.seed,
              shared_cache, options.cache_max_support, options.search_threads,
              options.encoder_threads, options.class_signatures,
              options.reorder, options.reorder_max_growth, shared_pool);
          out.luts = result.luts;
          out.clbs = result.clbs;
          out.depth = result.depth;
          out.verified = result.verified;
          out.seconds = result.seconds;
          out.stats = result.stats;
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown exception";
        }
      });
    }
    pool.wait_idle();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const JobReport& job : report.jobs) {
    report.cache.flow_lookups +=
        static_cast<std::uint64_t>(job.stats.cache_lookups);
    report.bdd.cache_hits += job.stats.bdd_cache_hits;
    report.bdd.cache_misses += job.stats.bdd_cache_misses;
    report.bdd.cache_overwrites += job.stats.bdd_cache_overwrites;
    report.bdd.gc_runs += job.stats.bdd_gc_runs;
    report.bdd.reorder_runs += job.stats.bdd_reorder_runs;
    if (job.stats.bdd_peak_live_nodes > report.bdd.peak_live_nodes) {
      report.bdd.peak_live_nodes = job.stats.bdd_peak_live_nodes;
    }
    report.search.selects += job.stats.search_selects;
    report.search.candidates_evaluated += job.stats.search_candidates_evaluated;
    report.search.candidates_pruned += job.stats.search_candidates_pruned;
    report.search.memo_hits += job.stats.search_memo_hits;
    report.search.memo_clears += job.stats.search_memo_clears;
    report.classes.signature_pairs += job.stats.class_signature_pairs;
    report.classes.bdd_pairs += job.stats.class_bdd_pairs;
    report.classes.encoder_parallel_tasks += job.stats.encoder_parallel_tasks;
    report.windows.extracted +=
        static_cast<std::uint64_t>(job.stats.windows_extracted);
    report.windows.resynthesized +=
        static_cast<std::uint64_t>(job.stats.windows_resynthesized);
    report.windows.passthrough +=
        static_cast<std::uint64_t>(job.stats.windows_passthrough);
    report.windows.budget_fallbacks +=
        static_cast<std::uint64_t>(job.stats.windows_budget_fallbacks);
    report.windows.split +=
        static_cast<std::uint64_t>(job.stats.windows_split);
    report.windows.verify_failures +=
        static_cast<std::uint64_t>(job.stats.windows_verify_failures);
    report.windows.peak_inputs =
        std::max(report.windows.peak_inputs, job.stats.window_peak_inputs);
    report.windows.peak_nodes =
        std::max(report.windows.peak_nodes, job.stats.window_peak_nodes);
  }
  report.cache.unique_functions = cache.size();
  const NpnCacheCounters counters = cache.counters();
  report.cache.hits = counters.hits;
  report.cache.misses = counters.misses;
  report.cache.races_lost = counters.races_lost;
  return report;
}

}  // namespace hyde::runtime
