#include "runtime/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>

#include <memory>

#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "runtime/npn_cache.hpp"
#include "runtime/scheduler.hpp"
#include "store/persistent_cache.hpp"

namespace hyde::runtime {

namespace {

/// Whole-job replay blob: the deterministic JobReport subset as fixed-width
/// little-endian u64 fields. Volatile counters (bdd_*, search_*, wall-clock
/// phases) are deliberately absent — a replayed job reports zeros there, and
/// the deterministic JSON/CSV subset is bit-identical to the cold run by
/// construction. Strict decode: any size mismatch rejects the blob.
constexpr std::size_t kJobBlobFields = 11;

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::vector<std::uint8_t> serialize_job_outcome(const JobReport& job) {
  std::vector<std::uint8_t> out;
  out.reserve(kJobBlobFields * 8);
  put_u64le(out, static_cast<std::uint64_t>(job.luts));
  put_u64le(out, static_cast<std::uint64_t>(job.clbs));
  put_u64le(out, static_cast<std::uint64_t>(job.depth));
  put_u64le(out, job.verified ? 1 : 0);
  put_u64le(out, static_cast<std::uint64_t>(job.stats.decomposition_steps));
  put_u64le(out, static_cast<std::uint64_t>(job.stats.shannon_fallbacks));
  put_u64le(out, static_cast<std::uint64_t>(job.stats.hyper_groups));
  put_u64le(out, static_cast<std::uint64_t>(job.stats.encoder_runs));
  put_u64le(out, static_cast<std::uint64_t>(job.stats.encoder_random_kept));
  put_u64le(out, job.stats.collapse_mode ? 1 : 0);
  put_u64le(out, static_cast<std::uint64_t>(job.stats.cache_lookups));
  return out;
}

bool deserialize_job_outcome(const std::vector<std::uint8_t>& raw,
                             JobReport* job) {
  if (raw.size() != kJobBlobFields * 8) return false;
  std::size_t at = 0;
  const auto next = [&raw, &at] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{raw[at + static_cast<std::size_t>(i)]} << (8 * i);
    at += 8;
    return v;
  };
  job->luts = static_cast<int>(next());
  job->clbs = static_cast<int>(next());
  job->depth = static_cast<int>(next());
  job->verified = next() != 0;
  job->stats.decomposition_steps = static_cast<int>(next());
  job->stats.shannon_fallbacks = static_cast<int>(next());
  job->stats.hyper_groups = static_cast<int>(next());
  job->stats.encoder_runs = static_cast<int>(next());
  job->stats.encoder_random_kept = static_cast<int>(next());
  job->stats.collapse_mode = next() != 0;
  job->stats.cache_lookups = static_cast<int>(next());
  return true;
}

/// Digest of everything a job's deterministic outcome depends on: the input
/// circuit's full BLIF text plus every result-affecting batch knob. Engine
/// knobs with a result-identity contract (worker/search/encoder threads,
/// class signatures, manager pool) are excluded — replaying across them is
/// the point. Goes into the blob key, so a mismatch is a clean miss.
std::uint64_t job_fingerprint(const BatchJob& job, const BatchOptions& options,
                              const std::string& blif_text) {
  std::uint64_t h = store::fnv1a_bytes(
      reinterpret_cast<const std::uint8_t*>(blif_text.data()),
      blif_text.size());
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(job.system));
  mix(static_cast<std::uint64_t>(job.k));
  mix(job.seed);
  mix(static_cast<std::uint64_t>(options.verify_vectors));
  mix(static_cast<std::uint64_t>(options.cache_max_support));
  mix(static_cast<std::uint64_t>(options.reorder));
  std::uint64_t growth_bits = 0;
  static_assert(sizeof(growth_bits) == sizeof(options.reorder_max_growth));
  std::memcpy(&growth_bits, &options.reorder_max_growth, sizeof(growth_bits));
  mix(growth_bits);
  return h;
}

/// Human-greppable blob name for a job (the fingerprint rides in the key
/// separately): circuit and system names NUL-separated to keep distinct
/// (circuit, system) pairs from concatenating ambiguously.
std::vector<std::uint8_t> job_blob_name(const BatchJob& job) {
  const std::string text =
      job.circuit + '\0' + std::string(baseline::system_name(job.system));
  return {text.begin(), text.end()};
}

}  // namespace

int default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<BatchJob> suite_jobs(const std::vector<std::string>& circuits,
                                 const std::vector<baseline::System>& systems,
                                 int k, std::uint64_t base_seed) {
  std::vector<BatchJob> jobs;
  jobs.reserve(circuits.size() * systems.size());
  for (const std::string& circuit : circuits) {
    for (baseline::System system : systems) {
      jobs.push_back(BatchJob{circuit, system, k, base_seed});
    }
  }
  return jobs;
}

RunReport run_batch(const std::vector<BatchJob>& jobs,
                    const BatchOptions& options) {
  RunReport report;
  report.workers = options.workers < 1 ? 1 : options.workers;
  report.verify_vectors = options.verify_vectors;
  report.jobs.resize(jobs.size());
  report.cache.enabled = options.use_cache;
  report.cache.max_support = options.cache_max_support;

  NpnResultCache cache;
  core::DecompCache* shared_cache = options.use_cache ? &cache : nullptr;
  // Optional persistent second level: the tiered view layers the on-disk
  // store behind the in-memory cache through the same DecompCache interface,
  // so jobs are oblivious to where an entry came from.
  std::unique_ptr<store::PersistentStore> disk_store;
  std::unique_ptr<store::TieredCache> tiered;
  if (options.use_cache && !options.cache_dir.empty()) {
    disk_store = std::make_unique<store::PersistentStore>(store::StoreOptions{
        options.cache_dir, options.cache_readonly, options.cache_max_bytes});
    tiered = std::make_unique<store::TieredCache>(&cache, disk_store.get());
    shared_cache = tiered.get();
  }
  // One pool for the whole batch: managers warmed by any job are reused by
  // whichever job acquires next. Outlives the scheduler block below, so
  // every job has released its manager before the pool dies.
  bdd::ManagerPool manager_pool;
  bdd::ManagerPool* shared_pool =
      options.manager_pool ? &manager_pool : nullptr;

  const auto start = std::chrono::steady_clock::now();
  {
    JobScheduler pool(report.workers);
    store::PersistentStore* job_store = disk_store.get();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([&jobs, &report, &options, shared_cache, shared_pool,
                   job_store, i] {
        const BatchJob& job = jobs[i];
        JobReport& out = report.jobs[i];
        out.circuit = job.circuit;
        out.system = baseline::system_name(job.system);
        out.k = job.k;
        out.seed = job.seed;
        try {
          const auto job_start = std::chrono::steady_clock::now();
          const net::Network input = mcnc::make_circuit(job.circuit);
          std::uint64_t fingerprint = 0;
          std::vector<std::uint8_t> name;
          if (job_store != nullptr) {
            // Whole-job replay tier: a finished outcome committed by an
            // earlier process under the same content + options fingerprint
            // is served straight from disk, skipping synthesis entirely.
            fingerprint =
                job_fingerprint(job, options, net::write_blif_string(input));
            name = job_blob_name(job);
            if (const auto raw = job_store->lookup_blob(
                    store::ArtifactKind::kBatchJobOutcome, name, fingerprint)) {
              if (deserialize_job_outcome(*raw, &out)) {
                out.seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - job_start)
                                  .count();
                return;
              }
            }
          }
          const baseline::BaselineResult result = baseline::run_system(
              input, job.system, job.k, options.verify_vectors, job.seed,
              shared_cache, options.cache_max_support, options.search_threads,
              options.encoder_threads, options.class_signatures,
              options.reorder, options.reorder_max_growth, shared_pool);
          out.luts = result.luts;
          out.clbs = result.clbs;
          out.depth = result.depth;
          out.verified = result.verified;
          out.seconds = result.seconds;
          out.stats = result.stats;
          // Only clean, verified outcomes are worth replaying; failures are
          // recomputed every run so they keep surfacing.
          if (job_store != nullptr && out.verified) {
            job_store->put_blob(store::ArtifactKind::kBatchJobOutcome, name,
                                fingerprint, serialize_job_outcome(out));
          }
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown exception";
        }
      });
    }
    pool.wait_idle();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const JobReport& job : report.jobs) {
    report.cache.flow_lookups +=
        static_cast<std::uint64_t>(job.stats.cache_lookups);
    report.bdd.cache_hits += job.stats.bdd_cache_hits;
    report.bdd.cache_misses += job.stats.bdd_cache_misses;
    report.bdd.cache_overwrites += job.stats.bdd_cache_overwrites;
    report.bdd.gc_runs += job.stats.bdd_gc_runs;
    report.bdd.reorder_runs += job.stats.bdd_reorder_runs;
    if (job.stats.bdd_peak_live_nodes > report.bdd.peak_live_nodes) {
      report.bdd.peak_live_nodes = job.stats.bdd_peak_live_nodes;
    }
    report.search.selects += job.stats.search_selects;
    report.search.candidates_evaluated += job.stats.search_candidates_evaluated;
    report.search.candidates_pruned += job.stats.search_candidates_pruned;
    report.search.memo_hits += job.stats.search_memo_hits;
    report.search.memo_clears += job.stats.search_memo_clears;
    report.classes.signature_pairs += job.stats.class_signature_pairs;
    report.classes.bdd_pairs += job.stats.class_bdd_pairs;
    report.classes.encoder_parallel_tasks += job.stats.encoder_parallel_tasks;
    report.windows.extracted +=
        static_cast<std::uint64_t>(job.stats.windows_extracted);
    report.windows.resynthesized +=
        static_cast<std::uint64_t>(job.stats.windows_resynthesized);
    report.windows.passthrough +=
        static_cast<std::uint64_t>(job.stats.windows_passthrough);
    report.windows.budget_fallbacks +=
        static_cast<std::uint64_t>(job.stats.windows_budget_fallbacks);
    report.windows.split +=
        static_cast<std::uint64_t>(job.stats.windows_split);
    report.windows.verify_failures +=
        static_cast<std::uint64_t>(job.stats.windows_verify_failures);
    report.windows.peak_inputs =
        std::max(report.windows.peak_inputs, job.stats.window_peak_inputs);
    report.windows.peak_nodes =
        std::max(report.windows.peak_nodes, job.stats.window_peak_nodes);
    report.windows.extract_parallel +=
        static_cast<std::uint64_t>(job.stats.windows_extract_parallel);
    report.windows.steals += job.stats.window_steals;
    report.windows.workers =
        std::max(report.windows.workers, job.stats.window_workers);
    report.windows.worker_busy_seconds += job.stats.window_worker_busy_seconds;
    report.windows.worker_busy_peak_seconds =
        std::max(report.windows.worker_busy_peak_seconds,
                 job.stats.window_worker_busy_peak_seconds);
    report.windows.max_window_seconds =
        std::max(report.windows.max_window_seconds,
                 job.stats.window_max_seconds);
  }
  report.cache.unique_functions = cache.size();
  const NpnCacheCounters counters = cache.counters();
  report.cache.hits = counters.hits;
  report.cache.misses = counters.misses;
  report.cache.races_lost = counters.races_lost;
  if (disk_store != nullptr) {
    // Commit before snapshotting so `records` reflects what later runs will
    // actually find on disk.
    disk_store->flush();
    const store::StoreCounters sc = disk_store->counters();
    report.store.enabled = true;
    report.store.readonly = options.cache_readonly;
    report.store.disk_hits = sc.disk_hits;
    report.store.disk_misses = sc.disk_misses;
    report.store.bytes_read = sc.bytes_read;
    report.store.bytes_written = sc.bytes_written;
    report.store.raw_bytes = sc.raw_bytes;
    report.store.coded_bytes = sc.coded_bytes;
    report.store.evictions = sc.evictions;
    report.store.corrupt_records = sc.corrupt_records;
    report.store.appends = sc.appends;
    report.store.records = sc.records;
    report.store.job_hits = sc.job_hits;
    report.store.job_appends = sc.job_appends;
  }
  return report;
}

}  // namespace hyde::runtime
