#include "runtime/report.hpp"

#include <cstdio>

namespace hyde::runtime {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

std::string to_json(const RunReport& report, bool include_volatile) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"hyde.run_report.v1\",\n";
  out += "  \"verify_vectors\": " + std::to_string(report.verify_vectors) + ",\n";
  if (include_volatile) {
    out += "  \"workers\": " + std::to_string(report.workers) + ",\n";
    out += "  \"wall_seconds\": " + format_double(report.wall_seconds) + ",\n";
    out += "  \"bdd_kernel\": {";
    out += "\"cache_hits\": " + std::to_string(report.bdd.cache_hits);
    out += ", \"cache_misses\": " + std::to_string(report.bdd.cache_misses);
    out += ", \"cache_overwrites\": " +
           std::to_string(report.bdd.cache_overwrites);
    out += ", \"hit_rate\": " + format_double(report.bdd.hit_rate());
    out += ", \"gc_runs\": " + std::to_string(report.bdd.gc_runs);
    out += ", \"reorder_runs\": " + std::to_string(report.bdd.reorder_runs);
    out += ", \"peak_live_nodes\": " +
           std::to_string(report.bdd.peak_live_nodes);
    out += "},\n";
    out += "  \"search\": {";
    out += "\"selects\": " + std::to_string(report.search.selects);
    out += ", \"candidates_evaluated\": " +
           std::to_string(report.search.candidates_evaluated);
    out += ", \"candidates_pruned\": " +
           std::to_string(report.search.candidates_pruned);
    out += ", \"memo_hits\": " + std::to_string(report.search.memo_hits);
    out += ", \"memo_clears\": " + std::to_string(report.search.memo_clears);
    out += "},\n";
    out += "  \"classes\": {";
    out += "\"signature_pairs\": " +
           std::to_string(report.classes.signature_pairs);
    out += ", \"bdd_pairs\": " + std::to_string(report.classes.bdd_pairs);
    out += ", \"encoder_parallel_tasks\": " +
           std::to_string(report.classes.encoder_parallel_tasks);
    out += "},\n";
    out += "  \"windows\": {";
    out += "\"extracted\": " + std::to_string(report.windows.extracted);
    out += ", \"resynthesized\": " +
           std::to_string(report.windows.resynthesized);
    out += ", \"passthrough\": " + std::to_string(report.windows.passthrough);
    out += ", \"budget_fallbacks\": " +
           std::to_string(report.windows.budget_fallbacks);
    out += ", \"split\": " + std::to_string(report.windows.split);
    out += ", \"verify_failures\": " +
           std::to_string(report.windows.verify_failures);
    out += ", \"peak_inputs\": " + std::to_string(report.windows.peak_inputs);
    out += ", \"peak_nodes\": " + std::to_string(report.windows.peak_nodes);
    out += ", \"extract_parallel\": " +
           std::to_string(report.windows.extract_parallel);
    out += ", \"steals\": " + std::to_string(report.windows.steals);
    out += ", \"workers\": " + std::to_string(report.windows.workers);
    out += ", \"worker_busy_seconds\": " +
           format_double(report.windows.worker_busy_seconds);
    out += ", \"worker_busy_peak_seconds\": " +
           format_double(report.windows.worker_busy_peak_seconds);
    out += ", \"max_window_seconds\": " +
           format_double(report.windows.max_window_seconds);
    out += "},\n";
    out += "  \"store\": {";
    out += std::string("\"enabled\": ") +
           (report.store.enabled ? "true" : "false");
    out += std::string(", \"readonly\": ") +
           (report.store.readonly ? "true" : "false");
    out += ", \"disk_hits\": " + std::to_string(report.store.disk_hits);
    out += ", \"disk_misses\": " + std::to_string(report.store.disk_misses);
    out += ", \"bytes_read\": " + std::to_string(report.store.bytes_read);
    out += ", \"bytes_written\": " + std::to_string(report.store.bytes_written);
    out += ", \"raw_bytes\": " + std::to_string(report.store.raw_bytes);
    out += ", \"coded_bytes\": " + std::to_string(report.store.coded_bytes);
    out += ", \"codec_ratio\": " + format_double(report.store.codec_ratio());
    out += ", \"evictions\": " + std::to_string(report.store.evictions);
    out += ", \"corrupt_records\": " +
           std::to_string(report.store.corrupt_records);
    out += ", \"appends\": " + std::to_string(report.store.appends);
    out += ", \"records\": " + std::to_string(report.store.records);
    out += ", \"job_hits\": " + std::to_string(report.store.job_hits);
    out += ", \"job_appends\": " + std::to_string(report.store.job_appends);
    out += "},\n";
  }
  out += "  \"cache\": {\n";
  out += std::string("    \"enabled\": ") +
         (report.cache.enabled ? "true" : "false") + ",\n";
  out += "    \"max_support\": " + std::to_string(report.cache.max_support) + ",\n";
  out += "    \"flow_lookups\": " + std::to_string(report.cache.flow_lookups);
  // The memory tier's distinct-function count is a pure function of the job
  // list only while no persistent tier exists; with a store attached, disk
  // promotions and whole-job replays legitimately change which keys the
  // memory tier ever sees, so the field moves to the volatile group (keeping
  // cold and warm deterministic outputs diffable).
  if (!report.store.enabled || include_volatile) {
    out += ",\n    \"unique_functions\": " +
           std::to_string(report.cache.unique_functions);
  }
  if (include_volatile) {
    out += ",\n";
    out += "    \"hits\": " + std::to_string(report.cache.hits) + ",\n";
    out += "    \"misses\": " + std::to_string(report.cache.misses) + ",\n";
    out += "    \"races_lost\": " + std::to_string(report.cache.races_lost) + ",\n";
    out += "    \"hit_rate\": " + format_double(report.cache.hit_rate()) + "\n";
  } else {
    out += "\n";
  }
  out += "  },\n";
  out += "  \"jobs\": [\n";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const JobReport& job = report.jobs[i];
    out += "    {\n";
    out += "      \"circuit\": ";
    append_escaped(out, job.circuit);
    out += ",\n      \"system\": ";
    append_escaped(out, job.system);
    out += ",\n      \"k\": " + std::to_string(job.k);
    out += ",\n      \"seed\": " + std::to_string(job.seed);
    out += ",\n      \"luts\": " + std::to_string(job.luts);
    out += ",\n      \"clbs\": " + std::to_string(job.clbs);
    out += ",\n      \"depth\": " + std::to_string(job.depth);
    out += std::string(",\n      \"verified\": ") +
           (job.verified ? "true" : "false");
    out += ",\n      \"error\": ";
    append_escaped(out, job.error);
    out += ",\n      \"stats\": {";
    out += "\"decomposition_steps\": " +
           std::to_string(job.stats.decomposition_steps);
    out += ", \"shannon_fallbacks\": " +
           std::to_string(job.stats.shannon_fallbacks);
    out += ", \"hyper_groups\": " + std::to_string(job.stats.hyper_groups);
    out += ", \"encoder_runs\": " + std::to_string(job.stats.encoder_runs);
    out += ", \"encoder_random_kept\": " +
           std::to_string(job.stats.encoder_random_kept);
    out += std::string(", \"collapse_mode\": ") +
           (job.stats.collapse_mode ? "true" : "false");
    out += ", \"cache_lookups\": " + std::to_string(job.stats.cache_lookups);
    out += "}";
    if (include_volatile) {
      out += ",\n      \"seconds\": " + format_double(job.seconds);
      out += ",\n      \"bdd\": {";
      out += "\"cache_hits\": " + std::to_string(job.stats.bdd_cache_hits);
      out += ", \"cache_misses\": " +
             std::to_string(job.stats.bdd_cache_misses);
      out += ", \"cache_overwrites\": " +
             std::to_string(job.stats.bdd_cache_overwrites);
      out += ", \"gc_runs\": " + std::to_string(job.stats.bdd_gc_runs);
      out += ", \"reorder_runs\": " +
             std::to_string(job.stats.bdd_reorder_runs);
      out += ", \"peak_live_nodes\": " +
             std::to_string(job.stats.bdd_peak_live_nodes);
      out += "}";
      out += ",\n      \"search\": {";
      out += "\"selects\": " + std::to_string(job.stats.search_selects);
      out += ", \"candidates_evaluated\": " +
             std::to_string(job.stats.search_candidates_evaluated);
      out += ", \"candidates_pruned\": " +
             std::to_string(job.stats.search_candidates_pruned);
      out += ", \"memo_hits\": " + std::to_string(job.stats.search_memo_hits);
      out += ", \"memo_clears\": " +
             std::to_string(job.stats.search_memo_clears);
      out += "}";
      out += ",\n      \"classes\": {";
      out += "\"signature_pairs\": " +
             std::to_string(job.stats.class_signature_pairs);
      out += ", \"bdd_pairs\": " + std::to_string(job.stats.class_bdd_pairs);
      out += ", \"encoder_parallel_tasks\": " +
             std::to_string(job.stats.encoder_parallel_tasks);
      out += "}";
      out += ",\n      \"windows\": {";
      out += "\"extracted\": " + std::to_string(job.stats.windows_extracted);
      out += ", \"resynthesized\": " +
             std::to_string(job.stats.windows_resynthesized);
      out += ", \"passthrough\": " +
             std::to_string(job.stats.windows_passthrough);
      out += ", \"budget_fallbacks\": " +
             std::to_string(job.stats.windows_budget_fallbacks);
      out += ", \"split\": " + std::to_string(job.stats.windows_split);
      out += ", \"verify_failures\": " +
             std::to_string(job.stats.windows_verify_failures);
      out += ", \"peak_inputs\": " +
             std::to_string(job.stats.window_peak_inputs);
      out += ", \"peak_nodes\": " +
             std::to_string(job.stats.window_peak_nodes);
      out += ", \"extract_seconds\": " +
             format_double(job.stats.window_extract_seconds);
      out += ", \"stitch_seconds\": " +
             format_double(job.stats.window_stitch_seconds);
      out += ", \"extract_parallel\": " +
             std::to_string(job.stats.windows_extract_parallel);
      out += ", \"steals\": " + std::to_string(job.stats.window_steals);
      out += ", \"workers\": " + std::to_string(job.stats.window_workers);
      out += ", \"worker_busy_seconds\": " +
             format_double(job.stats.window_worker_busy_seconds);
      out += ", \"worker_busy_peak_seconds\": " +
             format_double(job.stats.window_worker_busy_peak_seconds);
      out += ", \"max_window_seconds\": " +
             format_double(job.stats.window_max_seconds);
      out += ", \"max_window_index\": " +
             std::to_string(job.stats.window_max_index);
      out += "}";
      out += ",\n      \"store\": {";
      out += "\"disk_hits\": " + std::to_string(job.stats.store_disk_hits);
      out += ", \"disk_misses\": " +
             std::to_string(job.stats.store_disk_misses);
      out += "}";
      out += ",\n      \"profile\": {";
      out += "\"varpart_seconds\": " +
             format_double(job.stats.varpart_seconds);
      out += ", \"classes_seconds\": " +
             format_double(job.stats.classes_seconds);
      out += ", \"encoding_seconds\": " +
             format_double(job.stats.encoding_seconds);
      out += ", \"mapping_seconds\": " +
             format_double(job.stats.mapping_seconds);
      out += "}";
    }
    out += "\n    }";
    out += i + 1 < report.jobs.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string to_csv(const RunReport& report) {
  std::string out =
      "circuit,system,k,seed,luts,clbs,depth,verified,error,"
      "decomposition_steps,shannon_fallbacks,hyper_groups,encoder_runs,"
      "encoder_random_kept,collapse_mode,cache_lookups,seconds,"
      "bdd_cache_hits,bdd_cache_misses,bdd_gc_runs,bdd_reorder_runs,"
      "bdd_peak_live_nodes,"
      "search_selects,search_evaluated,search_pruned,search_memo_hits,"
      "varpart_seconds,classes_seconds,encoding_seconds,mapping_seconds,"
      "class_signature_pairs,class_bdd_pairs,encoder_parallel_tasks,"
      "windows_extracted,windows_resynthesized,windows_passthrough,"
      "windows_budget_fallbacks,windows_split,windows_verify_failures,"
      "windows_extract_parallel,window_steals,window_max_seconds,"
      "store_disk_hits,store_disk_misses\n";
  for (const JobReport& job : report.jobs) {
    out += job.circuit + "," + job.system + "," + std::to_string(job.k) + "," +
           std::to_string(job.seed) + "," + std::to_string(job.luts) + "," +
           std::to_string(job.clbs) + "," + std::to_string(job.depth) + "," +
           (job.verified ? "1" : "0") + "," + job.error + "," +
           std::to_string(job.stats.decomposition_steps) + "," +
           std::to_string(job.stats.shannon_fallbacks) + "," +
           std::to_string(job.stats.hyper_groups) + "," +
           std::to_string(job.stats.encoder_runs) + "," +
           std::to_string(job.stats.encoder_random_kept) + "," +
           (job.stats.collapse_mode ? "1" : "0") + "," +
           std::to_string(job.stats.cache_lookups) + "," +
           format_double(job.seconds) + "," +
           std::to_string(job.stats.bdd_cache_hits) + "," +
           std::to_string(job.stats.bdd_cache_misses) + "," +
           std::to_string(job.stats.bdd_gc_runs) + "," +
           std::to_string(job.stats.bdd_reorder_runs) + "," +
           std::to_string(job.stats.bdd_peak_live_nodes) + "," +
           std::to_string(job.stats.search_selects) + "," +
           std::to_string(job.stats.search_candidates_evaluated) + "," +
           std::to_string(job.stats.search_candidates_pruned) + "," +
           std::to_string(job.stats.search_memo_hits) + "," +
           format_double(job.stats.varpart_seconds) + "," +
           format_double(job.stats.classes_seconds) + "," +
           format_double(job.stats.encoding_seconds) + "," +
           format_double(job.stats.mapping_seconds) + "," +
           std::to_string(job.stats.class_signature_pairs) + "," +
           std::to_string(job.stats.class_bdd_pairs) + "," +
           std::to_string(job.stats.encoder_parallel_tasks) + "," +
           std::to_string(job.stats.windows_extracted) + "," +
           std::to_string(job.stats.windows_resynthesized) + "," +
           std::to_string(job.stats.windows_passthrough) + "," +
           std::to_string(job.stats.windows_budget_fallbacks) + "," +
           std::to_string(job.stats.windows_split) + "," +
           std::to_string(job.stats.windows_verify_failures) + "," +
           std::to_string(job.stats.windows_extract_parallel) + "," +
           std::to_string(job.stats.window_steals) + "," +
           format_double(job.stats.window_max_seconds) + "," +
           std::to_string(job.stats.store_disk_hits) + "," +
           std::to_string(job.stats.store_disk_misses) + "\n";
  }
  return out;
}

}  // namespace hyde::runtime
