/// \file scheduler.hpp
/// \brief Fixed thread pool executing whole-flow synthesis jobs, with an
/// optional cost-ordered dispatch path and work stealing.
///
/// Two submission paths share one pool of N workers:
///
///  - `submit` — the legacy FIFO path: tasks land in a shared injection
///    queue and run in dispatch order. Used by the batch runtime and the
///    intra-flow engines, whose tasks are uniform enough that ordering does
///    not matter.
///  - `submit_ordered` — the windowed engine's path: each task carries an
///    estimated cost, the batch is sorted by cost descending (stable, so
///    equal costs keep submission order) and dealt LPT-greedily onto
///    per-worker deques — the longest tasks start first and the estimated
///    load is balanced up front. A worker drained of its own deque pulls
///    from the shared queue, then *steals* from the back of the co-worker
///    with the most estimated work left, so misestimated stragglers cannot
///    leave the tail of the schedule idle.
///
/// Neither path makes results schedule-dependent: callers slot outcomes by
/// task index (see part/windowed.cpp), so ordering and stealing only move
/// wall-clock, never output. Everything a job touches is job-private (each
/// `core::run_flow` invocation constructs its own `bdd::Manager` on the
/// worker thread that runs it — the single-threaded BDD package is never
/// shared); the only shared mutable state in a batch is the NPN result
/// cache, which synchronizes internally. Tasks must not throw: callers
/// catch job exceptions and record them per index. As a backstop, an
/// escaping exception terminates the task but not the worker.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyde::runtime {

/// One cost-annotated task for the ordered dispatch path.
struct OrderedTask {
  /// Estimated cost in arbitrary units (the windowed engine uses node count
  /// x support width). Only the relative order matters.
  std::uint64_t cost = 0;
  std::function<void()> fn;
};

/// Per-worker execution figures (volatile: they move with scheduling).
struct WorkerUtilization {
  std::uint64_t tasks = 0;     ///< tasks this worker executed
  std::uint64_t steals = 0;    ///< tasks it stole from a co-worker's deque
  double busy_seconds = 0.0;   ///< wall-clock spent inside tasks
};

/// Point-in-time scheduler counters (see JobScheduler::stats).
struct SchedulerStats {
  std::uint64_t submitted = 0;  ///< tasks accepted on either path
  std::uint64_t executed = 0;   ///< tasks completed
  std::uint64_t steals = 0;     ///< cross-deque steals (ordered path only)
  std::vector<WorkerUtilization> workers;
};

class JobScheduler {
 public:
  /// Spawns \p num_workers threads (clamped to at least 1).
  explicit JobScheduler(int num_workers);
  /// Waits for queued work, then joins all workers.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; runs on some worker in FIFO dispatch order.
  void submit(std::function<void()> task);

  /// Enqueues a batch of cost-annotated tasks: stable-sorted by cost
  /// descending and assigned LPT-greedily (each task to the worker with the
  /// least estimated load so far), so stragglers start first. Workers that
  /// drain their own deque steal from the most-loaded co-worker.
  void submit_ordered(std::vector<OrderedTask> tasks);

  /// Blocks until every queue and deque is empty and no task is running.
  void wait_idle();

  /// Cumulative execution counters (safe to call while idle or busy).
  SchedulerStats stats() const;

 private:
  /// One pending task on a worker deque: the cost travels along so steal
  /// victims can be chosen by estimated remaining work.
  struct DequeTask {
    std::uint64_t cost = 0;
    std::function<void()> fn;
  };

  void worker_loop(std::size_t index);
  /// Pops the next task for worker \p index (own deque front, shared queue,
  /// then steal from the back of the most-loaded co-worker). Requires mu_.
  bool try_pop(std::size_t index, std::function<void()>* task, bool* stolen);
  bool all_empty() const;  // requires mu_

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;  ///< shared FIFO injection queue
  std::vector<std::deque<DequeTask>> deques_;  ///< per-worker ordered tasks
  std::vector<std::uint64_t> deque_cost_;      ///< estimated work left per deque
  std::vector<WorkerUtilization> utilization_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
  bool stopping_ = false;
};

}  // namespace hyde::runtime
