/// \file scheduler.hpp
/// \brief Fixed thread pool executing whole-flow synthesis jobs.
///
/// The pool is deliberately simple: a FIFO queue, N worker threads, and a
/// wait-for-idle barrier. Everything a job touches is job-private (each
/// `core::run_flow` invocation constructs its own `bdd::Manager` on the
/// worker thread that runs it — the single-threaded BDD package is never
/// shared); the only shared mutable state in a batch is the NPN result cache,
/// which synchronizes internally. Tasks must not throw: the batch layer
/// catches job exceptions and records them in the job's report. As a
/// backstop, an escaping exception terminates the task but not the worker.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyde::runtime {

class JobScheduler {
 public:
  /// Spawns \p num_workers threads (clamped to at least 1).
  explicit JobScheduler(int num_workers);
  /// Waits for queued work, then joins all workers.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; runs on some worker in FIFO dispatch order.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace hyde::runtime
