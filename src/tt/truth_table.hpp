/// \file truth_table.hpp
/// \brief Value-semantic dynamic truth tables for small Boolean functions.
///
/// A TruthTable represents a completely specified Boolean function
/// f : B^n -> B with n up to TruthTable::kMaxVars, stored as a packed bit
/// vector of 2^n bits (minterm m holds f(m), with variable 0 as the least
/// significant bit of the minterm index).
///
/// Truth tables are the fast path of the decomposition engine for functions
/// whose support fits; larger functions use the BDD package (src/bdd), which
/// can convert to/from TruthTable on demand.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace hyde::tt {

/// Completely specified Boolean function over a fixed number of variables.
///
/// All bitwise operators act pointwise on the function table and require both
/// operands to have the same number of variables.
class TruthTable {
 public:
  /// Hard cap on the variable count (2^24 bits = 2 MiB per table).
  static constexpr int kMaxVars = 24;

  /// Constructs the constant-zero function over \p num_vars variables.
  explicit TruthTable(int num_vars = 0);

  /// Returns the constant-zero function over \p num_vars variables.
  static TruthTable zeros(int num_vars) { return TruthTable(num_vars); }
  /// Returns the constant-one function over \p num_vars variables.
  static TruthTable ones(int num_vars);
  /// Returns the projection function f = x_{var} over \p num_vars variables.
  static TruthTable var(int num_vars, int var);
  /// Parses a bit string, most significant minterm first, e.g. "0110" is XOR
  /// of two variables (bit i of the string is minterm 2^n-1-i).
  static TruthTable from_bits(std::string_view bits);
  /// Builds the minterm indicator: 1 exactly on \p minterm.
  static TruthTable minterm(int num_vars, std::uint64_t minterm);
  /// Builds a totally symmetric function: output is 1 iff the number of input
  /// ones appears in \p ones_counts.
  static TruthTable symmetric(int num_vars, const std::vector<int>& ones_counts);
  /// Builds a function from a per-minterm predicate.
  static TruthTable from_lambda(int num_vars,
                                const std::function<bool(std::uint64_t)>& fn);

  int num_vars() const { return num_vars_; }
  /// Number of minterms, 2^num_vars().
  std::uint64_t size() const { return std::uint64_t{1} << num_vars_; }

  bool bit(std::uint64_t m) const {
    return (words_[m >> 6] >> (m & 63)) & 1u;
  }
  void set_bit(std::uint64_t m, bool value);

  /// Evaluates the function on a full input assignment given as a minterm.
  bool eval(std::uint64_t minterm_index) const { return bit(minterm_index); }

  bool is_zero() const;
  bool is_one() const;

  /// Number of onset minterms.
  std::uint64_t count_ones() const;

  /// True iff the function's value depends on variable \p var.
  bool depends_on(int var) const;
  /// Indices of all variables the function depends on, ascending.
  std::vector<int> support() const;

  /// Cofactor with respect to x_{var} = value; the result still ranges over
  /// the same variable set but no longer depends on \p var.
  TruthTable cofactor(int var, bool value) const;

  /// Existential quantification over \p var (f|var=0 | f|var=1).
  TruthTable exists(int var) const;
  /// Universal quantification over \p var (f|var=0 & f|var=1).
  TruthTable forall(int var) const;

  /// Reorders variables: new variable i corresponds to old variable
  /// \p perm[i]; \p perm must be a permutation of [0, num_vars).
  TruthTable permute(const std::vector<int>& perm) const;

  /// Substitutes !x_{var} for x_{var}: bit m of the result is bit
  /// m ^ (1 << var) of this table (swaps the two cofactor halves).
  TruthTable flip_var(int var) const;

  /// Projects onto the given variables: the result has vars.size() variables,
  /// where new variable i is old variable vars[i]. The function must not
  /// depend on any variable outside \p vars.
  TruthTable project(const std::vector<int>& vars) const;

  /// Inverse of project: embeds this table into a space of \p new_num_vars
  /// variables, mapping current variable i to \p placement[i].
  TruthTable expand(int new_num_vars, const std::vector<int>& placement) const;

  TruthTable operator~() const;
  TruthTable& operator&=(const TruthTable& rhs);
  TruthTable& operator|=(const TruthTable& rhs);
  TruthTable& operator^=(const TruthTable& rhs);
  friend TruthTable operator&(TruthTable a, const TruthTable& b) { return a &= b; }
  friend TruthTable operator|(TruthTable a, const TruthTable& b) { return a |= b; }
  friend TruthTable operator^(TruthTable a, const TruthTable& b) { return a ^= b; }
  bool operator==(const TruthTable& rhs) const = default;

  /// True iff this function implies \p rhs pointwise (this <= rhs).
  bool implies(const TruthTable& rhs) const;

  /// Bit string, most significant minterm first (inverse of from_bits).
  std::string to_bits() const;

  /// 64-bit content hash (FNV-1a over words and the variable count).
  std::uint64_t hash() const;

  /// Raw 64-bit words of the function table, minterm 0 in bit 0 of word 0.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void check_same_shape(const TruthTable& rhs) const;
  void mask_tail();

  int num_vars_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Incompletely specified function as an (onset, dcset) pair over the same
/// variables. The offset is everything not in onset or dcset. A consistent
/// ISF has disjoint onset and dcset.
struct Isf {
  TruthTable on;
  TruthTable dc;

  Isf() = default;
  /// Completely specified ISF with an empty don't-care set.
  explicit Isf(TruthTable onset)
      : on(std::move(onset)), dc(TruthTable::zeros(on.num_vars())) {}
  Isf(TruthTable onset, TruthTable dcset)
      : on(std::move(onset)), dc(std::move(dcset)) {}

  int num_vars() const { return on.num_vars(); }
  /// The offset: minterms where the function is specified to be 0.
  TruthTable off() const { return ~(on | dc); }
  /// True iff onset and dcset are disjoint.
  bool is_consistent() const { return (on & dc).is_zero(); }
  /// True iff the don't-care set is empty.
  bool is_completely_specified() const { return dc.is_zero(); }

  /// Two ISFs are combinable (can be realized by one function) iff neither
  /// one's onset intersects the other's offset.
  bool compatible_with(const Isf& rhs) const;

  /// Intersection of behaviours: onset = union of onsets, care set = union of
  /// care sets. Precondition: compatible_with(rhs).
  Isf merged_with(const Isf& rhs) const;

  Isf cofactor(int var, bool value) const {
    return {on.cofactor(var, value), dc.cofactor(var, value)};
  }

  bool operator==(const Isf& rhs) const = default;

  std::uint64_t hash() const;
};

}  // namespace hyde::tt
