#include "tt/npn.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace hyde::tt {

namespace {

/// Lexicographic order on (onset, dcset) word arrays; any fixed total order
/// works, this one keeps "fewer low-minterm ones" representatives.
bool pair_less(const TruthTable& a_on, const TruthTable& a_dc,
               const TruthTable& b_on, const TruthTable& b_dc) {
  if (a_on != b_on) {
    return std::lexicographical_compare(
        a_on.words().begin(), a_on.words().end(), b_on.words().begin(),
        b_on.words().end());
  }
  return std::lexicographical_compare(a_dc.words().begin(), a_dc.words().end(),
                                      b_dc.words().begin(), b_dc.words().end());
}

}  // namespace

NpnCanonization npn_canonize(const Isf& f) {
  const int n = f.num_vars();
  if (n > kMaxExactNpnVars) {
    throw std::invalid_argument("npn_canonize: too many variables for exact "
                                "canonicalization");
  }
  if (!f.is_consistent()) {
    throw std::invalid_argument("npn_canonize: inconsistent ISF");
  }

  NpnCanonization best;
  bool have_best = false;

  std::vector<int> q(static_cast<std::size_t>(n));
  std::iota(q.begin(), q.end(), 0);
  const std::uint32_t num_masks = std::uint32_t{1} << n;
  do {
    // g(y) = f(x) with x_{q[j]} = y_j: permute, then Gray-walk the negations
    // so every step is a single cofactor-halves swap.
    TruthTable cur_on = f.on.permute(q);
    TruthTable cur_dc = f.dc.permute(q);
    std::uint32_t gray = 0;
    for (std::uint32_t idx = 0; idx < num_masks; ++idx) {
      if (idx != 0) {
        const int flipped = std::countr_zero(idx);
        gray ^= std::uint32_t{1} << flipped;
        cur_on = cur_on.flip_var(flipped);
        cur_dc = cur_dc.flip_var(flipped);
      }
      const TruthTable cur_off = ~(cur_on | cur_dc);
      for (int o = 0; o < 2; ++o) {
        const TruthTable& cand_on = o == 0 ? cur_on : cur_off;
        if (have_best &&
            !pair_less(cand_on, cur_dc, best.canonical.on, best.canonical.dc)) {
          continue;
        }
        best.canonical = Isf{cand_on, cur_dc};
        best.transform.perm = q;
        best.transform.input_negations = gray;
        best.transform.output_negated = o != 0;
        have_best = true;
      }
    }
  } while (std::next_permutation(q.begin(), q.end()));
  return best;
}

NpnCanonization npn_canonize(const TruthTable& f) {
  return npn_canonize(Isf{f});
}

Isf npn_apply(const Isf& canonical, const NpnTransform& t) {
  const int n = canonical.num_vars();
  if (static_cast<int>(t.perm.size()) != n) {
    throw std::invalid_argument("npn_apply: transform arity mismatch");
  }
  const auto map_minterm = [&](std::uint64_t x) {
    std::uint64_t y = 0;
    for (int j = 0; j < n; ++j) {
      const bool bit = ((x >> t.perm[static_cast<std::size_t>(j)]) & 1) ^
                       ((t.input_negations >> j) & 1);
      if (bit) y |= std::uint64_t{1} << j;
    }
    return y;
  };
  const TruthTable off = canonical.off();
  const TruthTable& on_src = t.output_negated ? off : canonical.on;
  Isf f;
  f.on = TruthTable::from_lambda(n, [&](std::uint64_t x) {
    return on_src.bit(map_minterm(x));
  });
  f.dc = TruthTable::from_lambda(n, [&](std::uint64_t x) {
    return canonical.dc.bit(map_minterm(x));
  });
  return f;
}

}  // namespace hyde::tt
