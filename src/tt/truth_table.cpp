#include "tt/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace hyde::tt {

namespace {

std::size_t word_count(int num_vars) {
  const std::uint64_t bits = std::uint64_t{1} << num_vars;
  return static_cast<std::size_t>((bits + 63) / 64);
}

// Repeating masks of variable i within one 64-bit word, for i < 6:
// bit m of kVarMask[i] is (m >> i) & 1.
constexpr std::uint64_t kVarMask[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > kMaxVars) {
    throw std::invalid_argument("TruthTable: variable count out of range");
  }
  words_.assign(word_count(num_vars), 0);
}

TruthTable TruthTable::ones(int num_vars) {
  TruthTable t(num_vars);
  for (auto& w : t.words_) w = ~std::uint64_t{0};
  t.mask_tail();
  return t;
}

TruthTable TruthTable::var(int num_vars, int v) {
  if (v < 0 || v >= num_vars) {
    throw std::invalid_argument("TruthTable::var: variable out of range");
  }
  TruthTable t(num_vars);
  if (v < 6) {
    for (auto& w : t.words_) w = kVarMask[v];
  } else {
    // Whole words alternate in blocks of 2^(v-6) words.
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / block) & 1) t.words_[i] = ~std::uint64_t{0};
    }
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_bits(std::string_view bits) {
  const std::uint64_t n = bits.size();
  int num_vars = 0;
  while ((std::uint64_t{1} << num_vars) < n) ++num_vars;
  if ((std::uint64_t{1} << num_vars) != n) {
    throw std::invalid_argument("TruthTable::from_bits: length not a power of two");
  }
  TruthTable t(num_vars);
  for (std::uint64_t i = 0; i < n; ++i) {
    const char c = bits[static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("TruthTable::from_bits: non-binary character");
    }
    if (c == '1') t.set_bit(n - 1 - i, true);
  }
  return t;
}

TruthTable TruthTable::minterm(int num_vars, std::uint64_t m) {
  TruthTable t(num_vars);
  if (m >= t.size()) {
    throw std::invalid_argument("TruthTable::minterm: index out of range");
  }
  t.set_bit(m, true);
  return t;
}

TruthTable TruthTable::symmetric(int num_vars, const std::vector<int>& ones_counts) {
  std::vector<bool> wanted(static_cast<std::size_t>(num_vars) + 1, false);
  for (int c : ones_counts) {
    if (c >= 0 && c <= num_vars) wanted[static_cast<std::size_t>(c)] = true;
  }
  return from_lambda(num_vars, [&wanted](std::uint64_t m) {
    return wanted[static_cast<std::size_t>(std::popcount(m))];
  });
}

TruthTable TruthTable::from_lambda(int num_vars,
                                   const std::function<bool(std::uint64_t)>& fn) {
  TruthTable t(num_vars);
  for (std::uint64_t m = 0; m < t.size(); ++m) {
    if (fn(m)) t.set_bit(m, true);
  }
  return t;
}

void TruthTable::set_bit(std::uint64_t m, bool value) {
  const std::uint64_t mask = std::uint64_t{1} << (m & 63);
  if (value) {
    words_[m >> 6] |= mask;
  } else {
    words_[m >> 6] &= ~mask;
  }
}

bool TruthTable::is_zero() const {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool TruthTable::is_one() const { return *this == ones(num_vars_); }

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t total = 0;
  for (auto w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

bool TruthTable::depends_on(int v) const {
  return cofactor(v, false) != cofactor(v, true);
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (depends_on(v)) vars.push_back(v);
  }
  return vars;
}

TruthTable TruthTable::cofactor(int v, bool value) const {
  if (v < 0 || v >= num_vars_) {
    throw std::invalid_argument("TruthTable::cofactor: variable out of range");
  }
  TruthTable r(*this);
  if (v < 6) {
    const std::uint64_t keep = value ? kVarMask[v] : ~kVarMask[v];
    const int shift = 1 << v;
    for (auto& w : r.words_) {
      const std::uint64_t half = w & keep;
      w = value ? (half | (half >> shift)) : (half | (half << shift));
    }
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        const std::uint64_t w = value ? words_[i + block + j] : words_[i + j];
        r.words_[i + j] = w;
        r.words_[i + block + j] = w;
      }
    }
  }
  return r;
}

TruthTable TruthTable::exists(int v) const {
  return cofactor(v, false) | cofactor(v, true);
}

TruthTable TruthTable::forall(int v) const {
  return cofactor(v, false) & cofactor(v, true);
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
  if (static_cast<int>(perm.size()) != num_vars_) {
    throw std::invalid_argument("TruthTable::permute: bad permutation size");
  }
  TruthTable r(num_vars_);
  for (std::uint64_t m = 0; m < size(); ++m) {
    if (!bit(m)) continue;
    // Old minterm m maps variable perm[i] to new position i.
    std::uint64_t nm = 0;
    for (int i = 0; i < num_vars_; ++i) {
      if ((m >> perm[static_cast<std::size_t>(i)]) & 1) nm |= std::uint64_t{1} << i;
    }
    r.set_bit(nm, true);
  }
  return r;
}

TruthTable TruthTable::flip_var(int v) const {
  if (v < 0 || v >= num_vars_) {
    throw std::invalid_argument("TruthTable::flip_var: variable out of range");
  }
  TruthTable r(*this);
  if (v < 6) {
    const std::uint64_t hi = kVarMask[v];
    const int shift = 1 << v;
    for (auto& w : r.words_) {
      w = ((w & hi) >> shift) | ((w & ~hi) << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        std::swap(r.words_[i + j], r.words_[i + block + j]);
      }
    }
  }
  return r;
}

TruthTable TruthTable::project(const std::vector<int>& vars) const {
  TruthTable r(static_cast<int>(vars.size()));
  for (std::uint64_t m = 0; m < r.size(); ++m) {
    std::uint64_t full = 0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if ((m >> i) & 1) full |= std::uint64_t{1} << vars[i];
    }
    if (bit(full)) r.set_bit(m, true);
  }
  return r;
}

TruthTable TruthTable::expand(int new_num_vars,
                              const std::vector<int>& placement) const {
  if (static_cast<int>(placement.size()) != num_vars_) {
    throw std::invalid_argument("TruthTable::expand: bad placement size");
  }
  TruthTable r(new_num_vars);
  for (std::uint64_t m = 0; m < r.size(); ++m) {
    std::uint64_t small = 0;
    for (int i = 0; i < num_vars_; ++i) {
      if ((m >> placement[static_cast<std::size_t>(i)]) & 1) {
        small |= std::uint64_t{1} << i;
      }
    }
    if (bit(small)) r.set_bit(m, true);
  }
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r(*this);
  for (auto& w : r.words_) w = ~w;
  r.mask_tail();
  return r;
}

TruthTable& TruthTable::operator&=(const TruthTable& rhs) {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& rhs) {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& rhs) {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

bool TruthTable::implies(const TruthTable& rhs) const {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~rhs.words_[i]) return false;
  }
  return true;
}

std::string TruthTable::to_bits() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(size()));
  for (std::uint64_t i = 0; i < size(); ++i) {
    s.push_back(bit(size() - 1 - i) ? '1' : '0');
  }
  return s;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(num_vars_));
  for (auto w : words_) mix(w);
  return h;
}

void TruthTable::check_same_shape(const TruthTable& rhs) const {
  if (num_vars_ != rhs.num_vars_) {
    throw std::invalid_argument("TruthTable: variable count mismatch");
  }
}

void TruthTable::mask_tail() {
  if (num_vars_ < 6) {
    words_[0] &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
  }
}

bool Isf::compatible_with(const Isf& rhs) const {
  return (on & rhs.off()).is_zero() && (rhs.on & off()).is_zero();
}

Isf Isf::merged_with(const Isf& rhs) const {
  const TruthTable merged_on = on | rhs.on;
  const TruthTable merged_care = on | off() | rhs.on | rhs.off();
  return {merged_on, ~merged_care};
}

std::uint64_t Isf::hash() const {
  return on.hash() * 1000003ull ^ dc.hash();
}

}  // namespace hyde::tt
