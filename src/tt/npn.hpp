/// \file npn.hpp
/// \brief Exact NPN canonicalization of small truth tables.
///
/// Two functions are NPN-equivalent when one becomes the other under some
/// combination of input Negation, input Permutation and output Negation. The
/// canonicalizer maps every function of an NPN class to one distinguished
/// representative, which makes NPN classes usable as dictionary keys — the
/// runtime's decomposition cache (src/runtime/npn_cache) memoizes one
/// decomposition per class and replays it for every class member.
///
/// Canonicalization is exact (exhaustive over all n! * 2^n * 2 transforms,
/// negations enumerated in Gray-code order so each candidate is one
/// `flip_var` away from the previous one) and supported up to
/// `kMaxExactNpnVars` variables. Incompletely specified functions are
/// canonicalized as (onset, dcset) pairs: the input transform acts on both
/// tables, output negation exchanges onset and offset and fixes the dcset.

#pragma once

#include <cstdint>
#include <vector>

#include "tt/truth_table.hpp"

namespace hyde::tt {

/// Largest variable count `npn_canonize` handles exactly. 7 variables is
/// 5040 * 128 * 2 candidates with two-word tables — still well under a
/// millisecond-scale budget per call.
inline constexpr int kMaxExactNpnVars = 7;

/// The transform linking a function to its canonical representative g:
///
///   f(x) = output_negated XOR g(y)   with   y_j = x_{perm[j]} XOR neg_j
///
/// where neg_j is bit j of `input_negations` (for incompletely specified
/// functions the identity holds on the care set and the dcsets correspond).
/// In other words: canonical input j reads original variable perm[j],
/// complemented when neg_j is set.
struct NpnTransform {
  std::vector<int> perm;
  std::uint32_t input_negations = 0;
  bool output_negated = false;
};

/// A canonical representative plus the transform recovering the original.
struct NpnCanonization {
  Isf canonical;
  NpnTransform transform;
};

/// Exact NPN canonicalization of an incompletely specified function. Every
/// member of an NPN class (with dcsets transformed alongside) yields the
/// same `canonical`. Throws std::invalid_argument above kMaxExactNpnVars.
NpnCanonization npn_canonize(const Isf& f);

/// Completely specified convenience overload (empty dcset).
NpnCanonization npn_canonize(const TruthTable& f);

/// Applies \p transform to \p canonical, recovering the original function
/// (the inverse direction of npn_canonize).
Isf npn_apply(const Isf& canonical, const NpnTransform& transform);

}  // namespace hyde::tt
