#include "store/persistent_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "store/codec.hpp"

namespace hyde::store {

namespace {

// Shard file layout. Header: magic, format version, shard index, shard
// count. Records follow back to back: magic, generation, key size, payload
// size, key bytes (full serialized NpnCacheKey), payload bytes (entropy-
// coded artifact). A reader stops at the first malformed record, so a torn
// tail only costs the records behind it.
constexpr std::uint32_t kShardMagic = 0x53445948;   // "HYDS"
constexpr std::uint32_t kRecordMagic = 0x52445948;  // "HYDR"
constexpr std::uint16_t kStoreFormatVersion = 1;
constexpr std::size_t kShardHeaderBytes = 12;
constexpr std::size_t kRecordHeaderBytes = 16;

std::uint32_t load_u32(const std::uint8_t* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

void store_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

struct ParsedRecord {
  std::vector<std::uint8_t> key;
  const std::uint8_t* payload = nullptr;  // into the scanned buffer
  std::uint32_t payload_size = 0;
  std::uint32_t generation = 0;
};

std::size_t record_disk_size(std::size_t key_size, std::size_t payload_size) {
  return kRecordHeaderBytes + key_size + payload_size;
}

/// Scans a shard image. Returns false when the header itself is missing,
/// stale, or for the wrong slot (the whole shard is then treated as empty);
/// \p *torn is set when a malformed record cut the scan short.
bool parse_shard(const std::uint8_t* data, std::size_t size,
                 std::size_t shard_index, std::vector<ParsedRecord>* out,
                 bool* torn) {
  *torn = false;
  out->clear();
  if (size < kShardHeaderBytes) return false;
  if (load_u32(data) != kShardMagic) return false;
  const std::uint32_t version = data[4] | (std::uint32_t{data[5]} << 8);
  const std::uint32_t index = data[6] | (std::uint32_t{data[7]} << 8);
  const std::uint32_t count = load_u32(data + 8);
  if (version != kStoreFormatVersion || index != shard_index ||
      count != static_cast<std::uint32_t>(PersistentStore::kNumShards)) {
    return false;
  }
  std::size_t at = kShardHeaderBytes;
  while (at < size) {
    if (size - at < kRecordHeaderBytes) {
      *torn = true;
      break;
    }
    if (load_u32(data + at) != kRecordMagic) {
      *torn = true;
      break;
    }
    const std::uint32_t generation = load_u32(data + at + 4);
    const std::uint32_t key_size = load_u32(data + at + 8);
    const std::uint32_t payload_size = load_u32(data + at + 12);
    if (size - at - kRecordHeaderBytes <
        std::uint64_t{key_size} + payload_size) {
      *torn = true;
      break;
    }
    ParsedRecord record;
    record.key.assign(data + at + kRecordHeaderBytes,
                      data + at + kRecordHeaderBytes + key_size);
    record.payload = data + at + kRecordHeaderBytes + key_size;
    record.payload_size = payload_size;
    record.generation = generation;
    out->push_back(std::move(record));
    at += record_disk_size(key_size, payload_size);
  }
  return true;
}

void append_shard_header(std::vector<std::uint8_t>& out,
                         std::size_t shard_index) {
  store_u32(out, kShardMagic);
  out.push_back(static_cast<std::uint8_t>(kStoreFormatVersion));
  out.push_back(static_cast<std::uint8_t>(kStoreFormatVersion >> 8));
  out.push_back(static_cast<std::uint8_t>(shard_index));
  out.push_back(static_cast<std::uint8_t>(shard_index >> 8));
  store_u32(out, static_cast<std::uint32_t>(PersistentStore::kNumShards));
}

void append_record(std::vector<std::uint8_t>& out,
                   const std::vector<std::uint8_t>& key,
                   const std::uint8_t* payload, std::uint32_t payload_size,
                   std::uint32_t generation) {
  store_u32(out, kRecordMagic);
  store_u32(out, generation);
  store_u32(out, static_cast<std::uint32_t>(key.size()));
  store_u32(out, payload_size);
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), payload, payload + payload_size);
}

bool read_whole_file(const std::string& path, std::vector<std::uint8_t>* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // absent file == empty shard
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out->size()) {
    const ssize_t n =
        ::read(fd, out->data() + got, out->size() - got);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out->resize(got);
  return true;
}

bool write_file_synced(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t put = 0;
  while (put < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + put, bytes.size() - put);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    put += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
}

void sync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);  // rename durability; failure only weakens crash safety
    ::close(fd);
  }
}

/// Key bytes for a blob record: a tag no serialized NPN key can start with
/// (its first field is a u32 truth-table variable count, far below 2^32-1),
/// then the artifact kind and fingerprint, then the caller's name bytes.
/// Embedding the fingerprint keeps option mismatches clean misses, mirroring
/// the options_fingerprint field inside serialized NPN keys.
std::vector<std::uint8_t> blob_key_bytes(ArtifactKind kind,
                                         const std::vector<std::uint8_t>& name,
                                         std::uint64_t fingerprint) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 2 + 8 + name.size());
  out.insert(out.end(), {0xFF, 0xFF, 0xFF, 0xFF});
  const std::uint16_t kind_value = static_cast<std::uint16_t>(kind);
  out.push_back(static_cast<std::uint8_t>(kind_value));
  out.push_back(static_cast<std::uint8_t>(kind_value >> 8));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(fingerprint >> (8 * i)));
  }
  out.insert(out.end(), name.begin(), name.end());
  return out;
}

}  // namespace

/// One shard's in-memory view: a read-only mmap of the shard file plus an
/// index over it, and the pending (not yet flushed) artifacts.
struct PersistentStore::Shard {
  std::string path;
  std::uint8_t* map_base = nullptr;
  std::size_t map_size = 0;

  struct Entry {
    const std::uint8_t* payload = nullptr;  // into the mmap or pending blob
    std::uint32_t payload_size = 0;
    std::uint32_t generation = 0;
    bool touched = false;  ///< read or written this session (LRU stamp)
    bool pending = false;  ///< lives in `pending`, not yet on disk
  };

  // std::map keeps lookups deterministic to iterate for flush/eviction and
  // writes records in canonical key order.
  std::map<std::vector<std::uint8_t>, Entry> index;
  std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> pending;

  void unmap() {
    if (map_base != nullptr) {
      ::munmap(map_base, map_size);
      map_base = nullptr;
      map_size = 0;
    }
  }
};

PersistentStore::PersistentStore(StoreOptions options)
    : options_(std::move(options)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (options_.readonly) {
    // A missing directory is a valid empty read-only store.
    ok_ = true;
  } else {
    fs::create_directories(options_.dir, ec);
    ok_ = !ec || fs::is_directory(options_.dir, ec);
  }
  if (ok_) open_all();
}

PersistentStore::~PersistentStore() {
  flush();  // best-effort; a failed commit only loses this session's appends
  std::lock_guard<std::mutex> guard(mutex_);
  close_all();
}

std::size_t PersistentStore::shard_of(
    const std::vector<std::uint8_t>& key_bytes) const {
  return fnv1a_bytes(key_bytes.data(), key_bytes.size()) %
         static_cast<std::uint64_t>(kNumShards);
}

void PersistentStore::open_all() {
  shards_.clear();
  shards_.resize(kNumShards);
  std::uint32_t max_generation = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].path =
        options_.dir + "/shard-" + std::to_string(i) + ".bin";
    if (reload_shard(i)) {
      for (const auto& [key, entry] : shards_[i].index) {
        max_generation = std::max(max_generation, entry.generation);
      }
    }
  }
  generation_ = max_generation + 1;
}

void PersistentStore::close_all() {
  for (Shard& shard : shards_) shard.unmap();
  shards_.clear();
}

bool PersistentStore::reload_shard(std::size_t index) {
  Shard& shard = shards_[index];
  shard.unmap();
  shard.index.clear();
  shard.pending.clear();

  const int fd = ::open(shard.path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // absent == empty
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return true;
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return false;
  shard.map_base = static_cast<std::uint8_t*>(base);
  shard.map_size = static_cast<std::size_t>(st.st_size);

  std::vector<ParsedRecord> records;
  bool torn = false;
  if (!parse_shard(shard.map_base, shard.map_size, index, &records, &torn)) {
    // Stale format version or foreign layout: treat as empty; the next
    // flush rewrites the shard in the current format.
    ++counters_.corrupt_records;
    return true;
  }
  if (torn) ++counters_.corrupt_records;
  for (ParsedRecord& record : records) {
    Shard::Entry entry;
    entry.payload = record.payload;
    entry.payload_size = record.payload_size;
    entry.generation = record.generation;
    shard.index.insert_or_assign(std::move(record.key), entry);
  }
  return true;
}

std::optional<core::CachedDecomposition> PersistentStore::lookup(
    const core::NpnCacheKey& key) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!ok_) {
    ++counters_.disk_misses;
    return std::nullopt;
  }
  const std::vector<std::uint8_t> key_bytes = serialize_key(key);
  Shard& shard = shards_[shard_of(key_bytes)];
  const auto it = shard.index.find(key_bytes);
  if (it == shard.index.end()) {
    ++counters_.disk_misses;
    return std::nullopt;
  }
  const auto raw =
      decode_artifact(it->second.payload, it->second.payload_size,
                      ArtifactKind::kDecompositionTemplate,
                      key.options_fingerprint);
  std::optional<core::CachedDecomposition> entry;
  if (raw) entry = deserialize_template(raw->data(), raw->size());
  if (!entry) {
    // Validation failed: drop the record so it cannot be consulted again
    // and report a miss — the flow recomputes from scratch.
    ++counters_.corrupt_records;
    ++counters_.disk_misses;
    shard.pending.erase(key_bytes);
    shard.index.erase(it);
    return std::nullopt;
  }
  ++counters_.disk_hits;
  counters_.bytes_read += it->second.payload_size;
  it->second.touched = true;
  it->second.generation = generation_;
  return entry;
}

void PersistentStore::put(const core::NpnCacheKey& key,
                          const core::CachedDecomposition& value) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!ok_ || options_.readonly) return;
  const std::vector<std::uint8_t> key_bytes = serialize_key(key);
  Shard& shard = shards_[shard_of(key_bytes)];
  if (shard.index.find(key_bytes) != shard.index.end()) return;

  const std::vector<std::uint8_t> raw = serialize_template(value);
  std::vector<std::uint8_t> artifact = encode_artifact(
      raw, ArtifactKind::kDecompositionTemplate, key.options_fingerprint);
  counters_.raw_bytes += raw.size();
  counters_.coded_bytes += artifact.size() - kArtifactHeaderBytes;
  ++counters_.appends;

  const auto [it, inserted] =
      shard.pending.insert_or_assign(key_bytes, std::move(artifact));
  static_cast<void>(inserted);
  Shard::Entry entry;
  entry.payload = it->second.data();
  entry.payload_size = static_cast<std::uint32_t>(it->second.size());
  entry.generation = generation_;
  entry.touched = true;
  entry.pending = true;
  shard.index.insert_or_assign(key_bytes, entry);
}

std::optional<std::vector<std::uint8_t>> PersistentStore::lookup_blob(
    ArtifactKind kind, const std::vector<std::uint8_t>& name,
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!ok_) {
    ++counters_.disk_misses;
    return std::nullopt;
  }
  const std::vector<std::uint8_t> key_bytes =
      blob_key_bytes(kind, name, fingerprint);
  Shard& shard = shards_[shard_of(key_bytes)];
  const auto it = shard.index.find(key_bytes);
  if (it == shard.index.end()) {
    ++counters_.disk_misses;
    return std::nullopt;
  }
  auto raw = decode_artifact(it->second.payload, it->second.payload_size, kind,
                             fingerprint);
  if (!raw) {
    ++counters_.corrupt_records;
    ++counters_.disk_misses;
    shard.pending.erase(key_bytes);
    shard.index.erase(it);
    return std::nullopt;
  }
  ++counters_.disk_hits;
  if (kind == ArtifactKind::kBatchJobOutcome) ++counters_.job_hits;
  counters_.bytes_read += it->second.payload_size;
  it->second.touched = true;
  it->second.generation = generation_;
  return raw;
}

void PersistentStore::put_blob(ArtifactKind kind,
                               const std::vector<std::uint8_t>& name,
                               std::uint64_t fingerprint,
                               const std::vector<std::uint8_t>& raw) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!ok_ || options_.readonly) return;
  const std::vector<std::uint8_t> key_bytes =
      blob_key_bytes(kind, name, fingerprint);
  Shard& shard = shards_[shard_of(key_bytes)];
  if (shard.index.find(key_bytes) != shard.index.end()) return;

  std::vector<std::uint8_t> artifact = encode_artifact(raw, kind, fingerprint);
  counters_.raw_bytes += raw.size();
  counters_.coded_bytes += artifact.size() - kArtifactHeaderBytes;
  ++counters_.appends;
  if (kind == ArtifactKind::kBatchJobOutcome) ++counters_.job_appends;

  const auto [it, inserted] =
      shard.pending.insert_or_assign(key_bytes, std::move(artifact));
  static_cast<void>(inserted);
  Shard::Entry entry;
  entry.payload = it->second.data();
  entry.payload_size = static_cast<std::uint32_t>(it->second.size());
  entry.generation = generation_;
  entry.touched = true;
  entry.pending = true;
  shard.index.insert_or_assign(key_bytes, entry);
}

bool PersistentStore::flush() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!ok_ || options_.readonly) return true;
  bool dirty = false;
  for (const Shard& shard : shards_) {
    if (!shard.pending.empty()) dirty = true;
    if (options_.max_bytes > 0) {
      for (const auto& [key, entry] : shard.index) {
        if (entry.touched) dirty = true;
      }
    }
  }
  if (!dirty) return true;

  // Cross-process commit section.
  const std::string lock_path = options_.dir + "/store.lock";
  const int lock_fd =
      ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd < 0) return false;
  if (::flock(lock_fd, LOCK_EX) != 0) {
    ::close(lock_fd);
    return false;
  }

  // Merge view per shard: freshest on-disk state overlaid with this
  // session's touches and appends. Owned byte copies — the mmap may be
  // stale relative to the re-read and is replaced afterwards.
  struct MergedRecord {
    std::uint32_t generation = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<std::map<std::vector<std::uint8_t>, MergedRecord>> merged(
      shards_.size());
  std::vector<std::vector<std::uint8_t>> disk_images(shards_.size());
  std::uint32_t max_generation = generation_;
  bool failed = false;

  for (std::size_t i = 0; i < shards_.size() && !failed; ++i) {
    if (!read_whole_file(shards_[i].path, &disk_images[i])) {
      failed = true;
      break;
    }
    std::vector<ParsedRecord> records;
    bool torn = false;
    if (parse_shard(disk_images[i].data(), disk_images[i].size(), i, &records,
                    &torn)) {
      for (ParsedRecord& record : records) {
        max_generation = std::max(max_generation, record.generation);
        merged[i].insert_or_assign(
            std::move(record.key),
            MergedRecord{record.generation,
                         {record.payload, record.payload + record.payload_size}});
      }
    }
    for (const auto& [key, entry] : shards_[i].index) {
      const auto it = merged[i].find(key);
      if (entry.pending) {
        // Another process may have committed the same key first; by the
        // determinism contract its bytes match ours, so either copy works.
        if (it == merged[i].end()) {
          merged[i].insert_or_assign(
              key, MergedRecord{generation_,
                                {entry.payload,
                                 entry.payload + entry.payload_size}});
        } else {
          it->second.generation = std::max(it->second.generation, generation_);
        }
      } else if (entry.touched) {
        // LRU stamp for a record read this session. If another process
        // evicted it meanwhile, let it stay gone — resurrecting would fight
        // the byte budget.
        if (it != merged[i].end()) {
          it->second.generation = std::max(it->second.generation, generation_);
        }
      }
    }
  }

  // LRU-by-generation eviction against the byte budget, oldest first.
  if (!failed && options_.max_bytes > 0) {
    std::uint64_t total = 0;
    struct Victim {
      std::uint32_t generation;
      std::size_t shard;
      const std::vector<std::uint8_t>* key;
      std::uint64_t size;
    };
    std::vector<Victim> victims;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      total += kShardHeaderBytes;
      for (const auto& [key, record] : merged[i]) {
        const std::uint64_t size =
            record_disk_size(key.size(), record.payload.size());
        total += size;
        victims.push_back(Victim{record.generation, i, &key, size});
      }
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) {
                if (a.generation != b.generation)
                  return a.generation < b.generation;
                if (a.shard != b.shard) return a.shard < b.shard;
                return *a.key < *b.key;
              });
    for (const Victim& victim : victims) {
      if (total <= options_.max_bytes) break;
      merged[victim.shard].erase(*victim.key);
      total -= victim.size;
      ++counters_.evictions;
    }
  }

  // Commit: serialize each shard, skip the unchanged ones, atomic-rename
  // the rest.
  if (!failed) {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      std::vector<std::uint8_t> image;
      append_shard_header(image, i);
      for (const auto& [key, record] : merged[i]) {
        append_record(image, key, record.payload.data(),
                      static_cast<std::uint32_t>(record.payload.size()),
                      record.generation);
      }
      if (image == disk_images[i]) continue;
      const std::string tmp_path = shards_[i].path + ".tmp";
      if (!write_file_synced(tmp_path, image)) {
        failed = true;
        break;
      }
      std::error_code ec;
      std::filesystem::rename(tmp_path, shards_[i].path, ec);
      if (ec) {
        std::filesystem::remove(tmp_path, ec);
        failed = true;
        break;
      }
      counters_.bytes_written += image.size();
    }
    if (!failed) sync_directory(options_.dir);
  }

  ::flock(lock_fd, LOCK_UN);
  ::close(lock_fd);
  if (failed) return false;

  // Swap the stale mmaps for the committed state (which also picks up
  // records other processes appended since open) and clear pending.
  for (std::size_t i = 0; i < shards_.size(); ++i) reload_shard(i);
  generation_ = max_generation + 1;
  return true;
}

StoreCounters PersistentStore::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  StoreCounters snapshot = counters_;
  snapshot.records = 0;
  for (const Shard& shard : shards_) snapshot.records += shard.index.size();
  return snapshot;
}

std::shared_ptr<const core::CachedDecomposition> TieredCache::lookup(
    const core::NpnCacheKey& key) {
  return lookup_tiered(key, nullptr);
}

std::shared_ptr<const core::CachedDecomposition> TieredCache::lookup_tiered(
    const core::NpnCacheKey& key, core::LookupTier* tier) {
  if (memory_ != nullptr) {
    if (auto entry = memory_->lookup(key)) {
      if (tier != nullptr) *tier = core::LookupTier::kMemory;
      return entry;
    }
  }
  if (disk_ != nullptr) {
    if (auto entry = disk_->lookup(key)) {
      if (tier != nullptr) *tier = core::LookupTier::kDisk;
      if (memory_ != nullptr) {
        // Promote so repeat lookups stay in memory; racing promotions are
        // bit-identical by the determinism contract.
        return memory_->insert(key, std::move(*entry));
      }
      return std::make_shared<const core::CachedDecomposition>(
          std::move(*entry));
    }
  }
  if (tier != nullptr) *tier = core::LookupTier::kMiss;
  return nullptr;
}

std::shared_ptr<const core::CachedDecomposition> TieredCache::insert(
    const core::NpnCacheKey& key, core::CachedDecomposition value) {
  std::shared_ptr<const core::CachedDecomposition> winner;
  if (memory_ != nullptr) {
    winner = memory_->insert(key, std::move(value));
  } else {
    winner = std::make_shared<const core::CachedDecomposition>(std::move(value));
  }
  if (disk_ != nullptr) disk_->put(key, *winner);
  return winner;
}

}  // namespace hyde::store
