/// \file persistent_cache.hpp
/// \brief On-disk, NPN-fingerprint-keyed decomposition cache.
///
/// `PersistentStore` persists NPN decomposition templates across processes:
/// a cache directory holds `kNumShards` shard files plus an advisory lock
/// file. Records are keyed by the *full serialized* `core::NpnCacheKey`
/// (onset, dcset, FlowOptions fingerprint) — lookups memcmp whole keys, so
/// hash collisions can never replay a wrong template — and payloads are
/// entropy-coded artifacts (codec.hpp) with their own version, fingerprint
/// and checksum validation. Any record that fails any check is treated as a
/// cache miss and dropped: corruption degrades to a cold compute, never to
/// a wrong result or a crash.
///
/// Concurrency model:
///  - In-process: all methods are thread-safe (one internal mutex; the
///    per-flow hot path is the in-memory tier, so the disk tier sees only
///    first-touch misses).
///  - Cross-process: readers mmap the shard files and never block. Writers
///    buffer puts in memory and commit in `flush()` under an exclusive
///    `flock` on `<dir>/store.lock`: each shard is re-read from disk, the
///    pending records are merged (records another process committed first
///    are kept — by the determinism contract both copies are bit-identical),
///    and the shard is rewritten to a temp file, fsynced, and atomically
///    renamed into place. A reader holding the old mmap keeps a consistent
///    (merely stale) view because the rename only unlinks the name.
///
/// Eviction is LRU-by-generation: every record carries a u32 generation;
/// each store session stamps records it reads or writes with a generation
/// newer than any it observed at open, and when `max_bytes` is exceeded at
/// flush time the oldest-generation records are dropped first.
///
/// `TieredCache` composes the in-memory tier (any thread-safe
/// `core::DecompCache`, in practice `runtime::NpnResultCache`) in front of
/// a `PersistentStore`: lookups fall through memory → disk (with promotion
/// back into memory), inserts write through to both.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/decomp_cache.hpp"
#include "store/codec.hpp"

namespace hyde::store {

/// Store configuration, surfaced as `hyde_cli --cache-dir/--cache-readonly/
/// --cache-max-bytes` and `BatchOptions::cache_*`.
struct StoreOptions {
  std::string dir;          ///< cache directory (created when not readonly)
  bool readonly = false;    ///< lookups only; puts and flushes are no-ops
  std::uint64_t max_bytes = 0;  ///< on-disk budget at flush; 0 = unlimited
};

/// Counter snapshot for the `store` report section. All byte counts are
/// payload-level (artifact bytes), except raw/coded which measure the codec:
/// `raw_bytes` is the fixed-width serialization size of everything put this
/// session, `coded_bytes` the entropy-coded body size for the same entries.
struct StoreCounters {
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t bytes_read = 0;     ///< artifact bytes decoded on hits
  std::uint64_t bytes_written = 0;  ///< shard bytes committed by flushes
  std::uint64_t raw_bytes = 0;
  std::uint64_t coded_bytes = 0;
  std::uint64_t evictions = 0;        ///< records dropped by the byte budget
  std::uint64_t corrupt_records = 0;  ///< records rejected by validation
  std::uint64_t appends = 0;          ///< new records buffered this session
  std::uint64_t records = 0;          ///< records visible in the open shards
  std::uint64_t job_hits = 0;         ///< whole-job outcome replays served
  std::uint64_t job_appends = 0;      ///< whole-job outcomes buffered

  /// Entropy-coded body size over fixed-width size; 0 when nothing was put.
  double codec_ratio() const {
    return raw_bytes == 0
               ? 0.0
               : static_cast<double>(coded_bytes) / static_cast<double>(raw_bytes);
  }
};

/// Sharded on-disk template store. See the file comment for the format and
/// concurrency model. All methods are thread-safe.
class PersistentStore {
 public:
  static constexpr int kNumShards = 8;

  explicit PersistentStore(StoreOptions options);
  ~PersistentStore();  ///< flushes pending writes (best-effort), then unmaps

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// False when the cache directory could not be created or opened; the
  /// store then behaves as an always-miss, drop-writes sink.
  bool ok() const { return ok_; }

  const StoreOptions& options() const { return options_; }

  /// Decodes and returns the template stored under \p key, or nullopt.
  /// Invalid records (bad header, checksum, fingerprint, truncation) count
  /// as misses and are dropped from the in-memory view.
  std::optional<core::CachedDecomposition> lookup(const core::NpnCacheKey& key);

  /// Buffers \p value for the next flush. No-op when readonly, disabled, or
  /// the key is already present (the determinism contract makes re-puts
  /// redundant).
  void put(const core::NpnCacheKey& key, const core::CachedDecomposition& value);

  /// Generic raw-blob records sharing the shard files with template records.
  /// A blob is addressed by (\p kind, \p name, \p fingerprint); the store
  /// prefixes the key bytes with a tag no serialized NPN key can start with,
  /// so the namespaces can never collide, and the fingerprint is part of the
  /// key — a run under different options misses cleanly instead of tripping
  /// the decode-side fingerprint cross-check. Validation failures count as
  /// corrupt and degrade to a miss, exactly like template records. The batch
  /// runner uses this as its whole-job replay tier (ArtifactKind::
  /// kBatchJobOutcome).
  std::optional<std::vector<std::uint8_t>> lookup_blob(
      ArtifactKind kind, const std::vector<std::uint8_t>& name,
      std::uint64_t fingerprint);

  /// Blob counterpart of put: buffers \p raw (entropy-coded) for the next
  /// flush under the (\p kind, \p name, \p fingerprint) key.
  void put_blob(ArtifactKind kind, const std::vector<std::uint8_t>& name,
                std::uint64_t fingerprint, const std::vector<std::uint8_t>& raw);

  /// Commits buffered puts and generation updates to disk under the
  /// cross-process lock, applying the byte budget. Returns false when the
  /// commit failed (the store keeps its pending state for a later retry).
  /// No-op (true) when readonly or nothing changed.
  bool flush();

  StoreCounters counters() const;

 private:
  struct Shard;

  std::size_t shard_of(const std::vector<std::uint8_t>& key_bytes) const;
  void open_all();
  void close_all();
  bool reload_shard(std::size_t index);

  StoreOptions options_;
  bool ok_ = false;
  std::uint32_t generation_ = 1;  ///< stamp for records touched this session

  mutable std::mutex mutex_;
  std::vector<Shard> shards_;
  StoreCounters counters_;
};

/// Two-level cache: a thread-safe in-memory tier in front of a
/// `PersistentStore`. Both pointers are non-owning and must outlive the
/// tiered view; `disk` may be null (pure pass-through) and either tier may
/// be shared by several flows.
class TieredCache final : public core::DecompCache {
 public:
  TieredCache(core::DecompCache* memory, PersistentStore* disk)
      : memory_(memory), disk_(disk) {}

  std::shared_ptr<const core::CachedDecomposition> lookup(
      const core::NpnCacheKey& key) override;

  std::shared_ptr<const core::CachedDecomposition> lookup_tiered(
      const core::NpnCacheKey& key, core::LookupTier* tier) override;

  std::shared_ptr<const core::CachedDecomposition> insert(
      const core::NpnCacheKey& key, core::CachedDecomposition value) override;

  bool has_persistent_tier() const override { return disk_ != nullptr; }

 private:
  core::DecompCache* memory_;
  PersistentStore* disk_;
};

}  // namespace hyde::store
