#include "store/codec.hpp"

#include <algorithm>
#include <utility>

#include "tt/truth_table.hpp"

namespace hyde::store {

namespace {

// ---------------------------------------------------------------------------
// Little-endian field writers/readers. Explicit byte assembly keeps the
// layout identical across hosts regardless of endianness or struct padding.
// ---------------------------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool read_u8(std::uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool read_u16(std::uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = static_cast<std::uint16_t>(data_[pos_] |
                                    (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  bool read_u32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = data_[pos_] | (std::uint32_t{data_[pos_ + 1]} << 8) |
         (std::uint32_t{data_[pos_ + 2]} << 16) |
         (std::uint32_t{data_[pos_ + 3]} << 24);
    pos_ += 4;
    return true;
  }
  bool read_u64(std::uint64_t* v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!read_u32(&lo) || !read_u32(&hi)) return false;
    *v = lo | (std::uint64_t{hi} << 32);
    return true;
  }
  const std::uint8_t* cursor() const { return data_ + pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool skip(std::size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }
  bool at_end() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void put_table(std::vector<std::uint8_t>& out, const tt::TruthTable& table) {
  put_u32(out, static_cast<std::uint32_t>(table.num_vars()));
  for (std::uint64_t word : table.words()) put_u64(out, word);
}

bool read_table(ByteReader& in, tt::TruthTable* table) {
  std::uint32_t num_vars = 0;
  if (!in.read_u32(&num_vars)) return false;
  if (num_vars > static_cast<std::uint32_t>(tt::TruthTable::kMaxVars)) {
    return false;
  }
  tt::TruthTable result(static_cast<int>(num_vars));
  const std::size_t words = result.words().size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = 0;
    if (!in.read_u64(&word)) return false;
    for (int b = 0; b < 64; ++b) {
      const std::uint64_t m =
          (static_cast<std::uint64_t>(w) << 6) | static_cast<std::uint64_t>(b);
      if (m >= result.size()) break;
      if ((word >> b) & 1u) result.set_bit(m, true);
    }
  }
  *table = std::move(result);
  return true;
}

// ---------------------------------------------------------------------------
// Canonical Huffman coding, generic over the symbol alphabet. Two alphabets
// are tried: bytes (256 symbols, explicit table of the present symbols) and
// nibbles (16 symbols, fixed 8-byte nibble-packed length table). Small
// artifacts — the common case for decomposition templates — usually win
// with the nibble alphabet because its table overhead is constant and tiny.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kArtifactMagic = 0x43415948;  // "HYAC"
constexpr std::uint8_t kEncodingRaw = 0;
constexpr std::uint8_t kEncodingHuffmanBytes = 1;
constexpr std::uint8_t kEncodingHuffmanNibbles = 2;
constexpr int kMaxLenBytes = 16;    ///< code-length cap, byte alphabet
constexpr int kMaxLenNibbles = 15;  ///< must fit in a nibble

/// Computes one Huffman code length per symbol with nonzero frequency.
/// Deterministic: the tree is built with ties broken by node creation order
/// (leaves first, in symbol order). Lengths above \p limit are eliminated by
/// halving the frequencies and rebuilding — the classic pragmatic length
/// limiter; it converges because frequencies flatten toward 1.
std::vector<std::uint8_t> huffman_code_lengths(std::vector<std::uint64_t> freq,
                                               int limit) {
  const int alphabet = static_cast<int>(freq.size());
  std::vector<std::uint8_t> lengths(freq.size(), 0);
  for (;;) {
    struct Node {
      std::uint64_t weight = 0;
      int left = -1;  ///< child node index, or -1 for a leaf
      int right = -1;
      int symbol = -1;
    };
    std::vector<Node> nodes;
    std::vector<int> heap;  // node indices ordered by (weight, index)
    const auto heap_less = [&nodes](int a, int b) {
      // std::push_heap keeps the *largest* first; invert for a min-heap.
      const Node& na = nodes[static_cast<std::size_t>(a)];
      const Node& nb = nodes[static_cast<std::size_t>(b)];
      return na.weight > nb.weight || (na.weight == nb.weight && a > b);
    };
    for (int s = 0; s < alphabet; ++s) {
      if (freq[static_cast<std::size_t>(s)] == 0) continue;
      nodes.push_back(Node{freq[static_cast<std::size_t>(s)], -1, -1, s});
      heap.push_back(static_cast<int>(nodes.size()) - 1);
    }
    std::fill(lengths.begin(), lengths.end(), std::uint8_t{0});
    if (nodes.empty()) return lengths;
    if (nodes.size() == 1) {
      lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
      return lengths;
    }
    std::make_heap(heap.begin(), heap.end(), heap_less);
    while (heap.size() > 1) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      const int a = heap.back();
      heap.pop_back();
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      const int b = heap.back();
      heap.pop_back();
      nodes.push_back(Node{nodes[static_cast<std::size_t>(a)].weight +
                               nodes[static_cast<std::size_t>(b)].weight,
                           a, b, -1});
      heap.push_back(static_cast<int>(nodes.size()) - 1);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    }
    // Depth-first depth assignment from the root (the last node built).
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack{{heap[0], 0}};
    while (!stack.empty()) {
      const auto [index, depth] = stack.back();
      stack.pop_back();
      const Node& node = nodes[static_cast<std::size_t>(index)];
      if (node.symbol >= 0) {
        lengths[static_cast<std::size_t>(node.symbol)] =
            static_cast<std::uint8_t>(depth);
        max_depth = std::max(max_depth, depth);
        continue;
      }
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
    if (max_depth <= limit) return lengths;
    for (std::uint64_t& f : freq) {
      if (f != 0) f = (f >> 1) | 1;
    }
  }
}

/// Canonical code assignment: symbols sorted by (length, value) receive
/// consecutive codes, shortest first. Returns false if the lengths describe
/// an over-full (undecodable) code.
bool canonical_codes(const std::vector<std::uint8_t>& lengths, int limit,
                     std::vector<std::uint16_t>* codes) {
  codes->assign(lengths.size(), 0);
  std::uint32_t code = 0;
  for (int len = 1; len <= limit; ++len) {
    code <<= 1;
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] != len) continue;
      if (code >= (1u << len)) return false;
      (*codes)[s] = static_cast<std::uint16_t>(code++);
    }
  }
  return true;
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void write(std::uint16_t code, int length) {
    // Most significant code bit first, matching the canonical decoder.
    for (int b = length - 1; b >= 0; --b) {
      acc_ = static_cast<std::uint8_t>(acc_ | (((code >> b) & 1u) << fill_));
      if (++fill_ == 8) {
        out_.push_back(acc_);
        acc_ = 0;
        fill_ = 0;
      }
    }
    bits_ += static_cast<std::uint32_t>(length);
  }
  void finish() {
    if (fill_ > 0) {
      out_.push_back(acc_);
      acc_ = 0;
      fill_ = 0;
    }
  }
  std::uint32_t bit_count() const { return bits_; }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint8_t acc_ = 0;
  int fill_ = 0;
  std::uint32_t bits_ = 0;
};

/// Canonical decoder state shared by both alphabets: per-length first code,
/// per-length first index into the canonical symbol order.
struct CanonicalDecoder {
  int max_len = 0;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> first_code;
  std::vector<std::uint32_t> first_symbol;
  std::vector<std::uint8_t> symbols;  // canonical (length, value) order

  /// Builds the tables from per-symbol lengths; false on an over-full code
  /// or an empty alphabet.
  bool build(const std::vector<std::uint8_t>& lengths, int limit) {
    max_len = 0;
    for (std::uint8_t len : lengths) max_len = std::max(max_len, int{len});
    if (max_len == 0 || max_len > limit) return false;
    counts.assign(static_cast<std::size_t>(max_len) + 1, 0);
    symbols.clear();
    for (int len = 1; len <= max_len; ++len) {
      for (std::size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] != len) continue;
        ++counts[static_cast<std::size_t>(len)];
        symbols.push_back(static_cast<std::uint8_t>(s));
      }
    }
    first_code.assign(static_cast<std::size_t>(max_len) + 1, 0);
    first_symbol.assign(static_cast<std::size_t>(max_len) + 1, 0);
    std::uint32_t code = 0;
    std::uint32_t base = 0;
    for (int len = 1; len <= max_len; ++len) {
      code <<= 1;
      first_code[static_cast<std::size_t>(len)] = code;
      first_symbol[static_cast<std::size_t>(len)] = base;
      code += counts[static_cast<std::size_t>(len)];
      base += counts[static_cast<std::size_t>(len)];
      if (code > (1u << len)) return false;
    }
    return true;
  }

  /// Decodes one symbol from \p stream starting at bit \p *bit; false on
  /// stream underrun or a bit pattern matching no code.
  bool decode_one(const std::uint8_t* stream, std::uint32_t bit_count,
                  std::uint32_t* bit, std::uint8_t* symbol) const {
    std::uint32_t value = 0;
    for (int len = 1; len <= max_len; ++len) {
      if (*bit >= bit_count) return false;
      value = (value << 1) | ((stream[*bit >> 3] >> (*bit & 7u)) & 1u);
      ++*bit;
      const std::uint32_t count = counts[static_cast<std::size_t>(len)];
      const std::uint32_t first = first_code[static_cast<std::size_t>(len)];
      if (count != 0 && value >= first && value < first + count) {
        *symbol = symbols[first_symbol[static_cast<std::size_t>(len)] +
                          (value - first)];
        return true;
      }
    }
    return false;
  }
};

/// Byte-alphabet body: u8 max length, u16 per-length symbol counts, the
/// present symbols in canonical order, u32 bit count, bit-merged stream.
std::vector<std::uint8_t> encode_body_bytes(
    const std::vector<std::uint8_t>& raw) {
  std::vector<std::uint64_t> freq(256, 0);
  for (std::uint8_t byte : raw) ++freq[byte];
  const std::vector<std::uint8_t> lengths =
      huffman_code_lengths(std::move(freq), kMaxLenBytes);
  std::vector<std::uint16_t> codes;
  if (!canonical_codes(lengths, kMaxLenBytes, &codes)) return {};
  int max_len = 0;
  for (std::uint8_t len : lengths) max_len = std::max(max_len, int{len});
  if (max_len == 0) return {};
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(max_len));
  for (int len = 1; len <= max_len; ++len) {
    std::uint16_t count = 0;
    for (int s = 0; s < 256; ++s) {
      if (lengths[static_cast<std::size_t>(s)] == len) ++count;
    }
    body.push_back(static_cast<std::uint8_t>(count));
    body.push_back(static_cast<std::uint8_t>(count >> 8));
  }
  for (int len = 1; len <= max_len; ++len) {
    for (int s = 0; s < 256; ++s) {
      if (lengths[static_cast<std::size_t>(s)] == len) {
        body.push_back(static_cast<std::uint8_t>(s));
      }
    }
  }
  const std::size_t bit_count_at = body.size();
  put_u32(body, 0);  // back-patched below
  BitWriter bits(body);
  for (std::uint8_t byte : raw) {
    bits.write(codes[byte], lengths[byte]);
  }
  bits.finish();
  const std::uint32_t bit_count = bits.bit_count();
  body[bit_count_at] = static_cast<std::uint8_t>(bit_count);
  body[bit_count_at + 1] = static_cast<std::uint8_t>(bit_count >> 8);
  body[bit_count_at + 2] = static_cast<std::uint8_t>(bit_count >> 16);
  body[bit_count_at + 3] = static_cast<std::uint8_t>(bit_count >> 24);
  return body;
}

/// Nibble-alphabet body: a fixed 8-byte nibble-packed length table (symbol
/// 2i in the low nibble, 2i+1 in the high), u32 bit count, then a stream of
/// 2·raw_size symbols (low nibble of each byte first).
std::vector<std::uint8_t> encode_body_nibbles(
    const std::vector<std::uint8_t>& raw) {
  std::vector<std::uint64_t> freq(16, 0);
  for (std::uint8_t byte : raw) {
    ++freq[byte & 0xFu];
    ++freq[byte >> 4];
  }
  const std::vector<std::uint8_t> lengths =
      huffman_code_lengths(std::move(freq), kMaxLenNibbles);
  std::vector<std::uint16_t> codes;
  if (!canonical_codes(lengths, kMaxLenNibbles, &codes)) return {};
  int max_len = 0;
  for (std::uint8_t len : lengths) max_len = std::max(max_len, int{len});
  if (max_len == 0) return {};
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i < 16; i += 2) {
    body.push_back(
        static_cast<std::uint8_t>(lengths[i] | (lengths[i + 1] << 4)));
  }
  const std::size_t bit_count_at = body.size();
  put_u32(body, 0);  // back-patched below
  BitWriter bits(body);
  for (std::uint8_t byte : raw) {
    bits.write(codes[byte & 0xFu], lengths[byte & 0xFu]);
    bits.write(codes[byte >> 4], lengths[byte >> 4]);
  }
  bits.finish();
  const std::uint32_t bit_count = bits.bit_count();
  body[bit_count_at] = static_cast<std::uint8_t>(bit_count);
  body[bit_count_at + 1] = static_cast<std::uint8_t>(bit_count >> 8);
  body[bit_count_at + 2] = static_cast<std::uint8_t>(bit_count >> 16);
  body[bit_count_at + 3] = static_cast<std::uint8_t>(bit_count >> 24);
  return body;
}

/// Unused high bits of the final stream byte must be zero: an accepted
/// artifact then re-encodes to the identical byte vector, so blobs stay
/// byte-comparable, and a flipped pad bit is detected like any other flip.
bool padding_is_zero(const std::uint8_t* stream, std::uint32_t bit_count) {
  if (bit_count % 8 == 0) return true;
  return (stream[bit_count / 8] >> (bit_count % 8)) == 0;
}

bool decode_body_bytes(ByteReader& in, std::uint32_t raw_size,
                       std::vector<std::uint8_t>* raw) {
  std::uint8_t max_len = 0;
  if (!in.read_u8(&max_len) || max_len == 0 || max_len > kMaxLenBytes) {
    return false;
  }
  std::vector<std::uint8_t> lengths(256, 0);
  std::vector<std::uint16_t> counts(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t total_symbols = 0;
  for (int len = 1; len <= max_len; ++len) {
    if (!in.read_u16(&counts[static_cast<std::size_t>(len)])) return false;
    total_symbols += counts[static_cast<std::size_t>(len)];
  }
  if (total_symbols == 0 || total_symbols > 256) return false;
  if (in.remaining() < total_symbols) return false;
  const std::uint8_t* symbol_list = in.cursor();
  if (!in.skip(total_symbols)) return false;
  std::size_t at = 0;
  std::vector<bool> seen(256, false);
  for (int len = 1; len <= max_len; ++len) {
    for (std::uint32_t i = 0; i < counts[static_cast<std::size_t>(len)]; ++i) {
      const std::uint8_t s = symbol_list[at++];
      if (seen[s]) return false;  // duplicate symbol: corrupt table
      seen[s] = true;
      lengths[s] = static_cast<std::uint8_t>(len);
    }
  }
  CanonicalDecoder decoder;
  if (!decoder.build(lengths, kMaxLenBytes)) return false;
  std::uint32_t bit_count = 0;
  if (!in.read_u32(&bit_count)) return false;
  if (in.remaining() != (bit_count + 7) / 8) return false;
  const std::uint8_t* stream = in.cursor();
  raw->reserve(raw_size);
  std::uint32_t bit = 0;
  while (raw->size() < raw_size) {
    std::uint8_t symbol = 0;
    if (!decoder.decode_one(stream, bit_count, &bit, &symbol)) return false;
    raw->push_back(symbol);
  }
  if (bit != bit_count) return false;  // reject trailing coded garbage
  return padding_is_zero(stream, bit_count);
}

bool decode_body_nibbles(ByteReader& in, std::uint32_t raw_size,
                         std::vector<std::uint8_t>* raw) {
  std::vector<std::uint8_t> lengths(16, 0);
  for (std::size_t i = 0; i < 16; i += 2) {
    std::uint8_t packed = 0;
    if (!in.read_u8(&packed)) return false;
    lengths[i] = packed & 0xFu;
    lengths[i + 1] = packed >> 4;
  }
  CanonicalDecoder decoder;
  if (!decoder.build(lengths, kMaxLenNibbles)) return false;
  std::uint32_t bit_count = 0;
  if (!in.read_u32(&bit_count)) return false;
  if (in.remaining() != (bit_count + 7) / 8) return false;
  const std::uint8_t* stream = in.cursor();
  raw->reserve(raw_size);
  std::uint32_t bit = 0;
  while (raw->size() < raw_size) {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    if (!decoder.decode_one(stream, bit_count, &bit, &lo)) return false;
    if (!decoder.decode_one(stream, bit_count, &bit, &hi)) return false;
    raw->push_back(static_cast<std::uint8_t>(lo | (hi << 4)));
  }
  if (bit != bit_count) return false;  // reject trailing coded garbage
  return padding_is_zero(stream, bit_count);
}

}  // namespace

std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::vector<std::uint8_t> serialize_template(
    const core::CachedDecomposition& entry) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(entry.num_inputs));
  put_u32(out, static_cast<std::uint32_t>(entry.nodes.size()));
  for (const core::TemplateNode& node : entry.nodes) {
    put_u32(out, static_cast<std::uint32_t>(node.fanins.size()));
    for (int fanin : node.fanins) {
      put_u32(out, static_cast<std::uint32_t>(fanin));
    }
    put_table(out, node.table);
  }
  put_u32(out, static_cast<std::uint32_t>(entry.root));
  put_u32(out, static_cast<std::uint32_t>(entry.stats.decomposition_steps));
  put_u32(out, static_cast<std::uint32_t>(entry.stats.shannon_fallbacks));
  put_u32(out, static_cast<std::uint32_t>(entry.stats.encoder_runs));
  put_u32(out, static_cast<std::uint32_t>(entry.stats.encoder_random_kept));
  return out;
}

std::optional<core::CachedDecomposition> deserialize_template(
    const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  core::CachedDecomposition entry;
  std::uint32_t num_inputs = 0;
  std::uint32_t num_nodes = 0;
  if (!in.read_u32(&num_inputs) || !in.read_u32(&num_nodes)) return {};
  // A template input count past the truth-table cap (or a node count that
  // cannot fit in the remaining bytes) marks a corrupt record.
  if (num_inputs > static_cast<std::uint32_t>(tt::TruthTable::kMaxVars)) {
    return {};
  }
  if (num_nodes > in.remaining()) return {};
  entry.num_inputs = static_cast<int>(num_inputs);
  entry.nodes.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    core::TemplateNode node;
    std::uint32_t num_fanins = 0;
    if (!in.read_u32(&num_fanins)) return {};
    if (num_fanins > in.remaining()) return {};
    node.fanins.reserve(num_fanins);
    for (std::uint32_t f = 0; f < num_fanins; ++f) {
      std::uint32_t fanin = 0;
      if (!in.read_u32(&fanin)) return {};
      // Topological order: a fanin may name a template input or any
      // *earlier* node.
      if (fanin >= num_inputs + n) return {};
      node.fanins.push_back(static_cast<int>(fanin));
    }
    if (!read_table(in, &node.table)) return {};
    if (node.table.num_vars() != static_cast<int>(num_fanins)) return {};
    entry.nodes.push_back(std::move(node));
  }
  std::uint32_t root = 0;
  if (!in.read_u32(&root)) return {};
  if (root >= num_inputs + num_nodes) return {};
  entry.root = static_cast<int>(root);
  std::uint32_t steps = 0;
  std::uint32_t shannon = 0;
  std::uint32_t encoder_runs = 0;
  std::uint32_t random_kept = 0;
  if (!in.read_u32(&steps) || !in.read_u32(&shannon) ||
      !in.read_u32(&encoder_runs) || !in.read_u32(&random_kept)) {
    return {};
  }
  entry.stats.decomposition_steps = static_cast<int>(steps);
  entry.stats.shannon_fallbacks = static_cast<int>(shannon);
  entry.stats.encoder_runs = static_cast<int>(encoder_runs);
  entry.stats.encoder_random_kept = static_cast<int>(random_kept);
  if (!in.at_end()) return {};  // trailing garbage
  return entry;
}

std::vector<std::uint8_t> serialize_key(const core::NpnCacheKey& key) {
  std::vector<std::uint8_t> out;
  put_table(out, key.on);
  put_table(out, key.dc);
  put_u64(out, key.options_fingerprint);
  return out;
}

std::vector<std::uint8_t> encode_artifact(const std::vector<std::uint8_t>& raw,
                                          ArtifactKind kind,
                                          std::uint64_t fingerprint) {
  std::vector<std::uint8_t> out;
  put_u32(out, kArtifactMagic);
  out.push_back(static_cast<std::uint8_t>(kArtifactFormatVersion));
  out.push_back(static_cast<std::uint8_t>(kArtifactFormatVersion >> 8));
  const std::uint16_t kind_value = static_cast<std::uint16_t>(kind);
  out.push_back(static_cast<std::uint8_t>(kind_value));
  out.push_back(static_cast<std::uint8_t>(kind_value >> 8));
  put_u64(out, fingerprint);
  put_u32(out, static_cast<std::uint32_t>(raw.size()));
  put_u64(out, fnv1a_bytes(raw.data(), raw.size()));

  // Frequency counting → canonical Huffman → bit-merged stream, over two
  // candidate alphabets; the smaller body wins, raw wins all ties. The
  // choice is a pure function of the payload, keeping encoding
  // deterministic.
  std::uint8_t encoding = kEncodingRaw;
  const std::vector<std::uint8_t>* body = &raw;
  std::vector<std::uint8_t> bytes_body;
  std::vector<std::uint8_t> nibbles_body;
  if (!raw.empty()) {
    bytes_body = encode_body_bytes(raw);
    nibbles_body = encode_body_nibbles(raw);
    if (!bytes_body.empty() && bytes_body.size() < body->size()) {
      encoding = kEncodingHuffmanBytes;
      body = &bytes_body;
    }
    if (!nibbles_body.empty() && nibbles_body.size() < body->size()) {
      encoding = kEncodingHuffmanNibbles;
      body = &nibbles_body;
    }
  }
  out.push_back(encoding);
  out.insert(out.end(), body->begin(), body->end());
  return out;
}

std::optional<std::vector<std::uint8_t>> decode_artifact(
    const std::uint8_t* data, std::size_t size, ArtifactKind kind,
    std::uint64_t expected_fingerprint) {
  ByteReader in(data, size);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t kind_value = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t raw_size = 0;
  std::uint64_t raw_checksum = 0;
  std::uint8_t encoding = 0;
  if (!in.read_u32(&magic) || magic != kArtifactMagic) return {};
  if (!in.read_u16(&version) || version != kArtifactFormatVersion) return {};
  if (!in.read_u16(&kind_value) ||
      kind_value != static_cast<std::uint16_t>(kind)) {
    return {};
  }
  if (!in.read_u64(&fingerprint)) return {};
  if (expected_fingerprint != 0 && fingerprint != expected_fingerprint) {
    return {};
  }
  if (!in.read_u32(&raw_size) || !in.read_u64(&raw_checksum)) return {};
  if (!in.read_u8(&encoding)) return {};

  std::vector<std::uint8_t> raw;
  if (encoding == kEncodingRaw) {
    if (in.remaining() != raw_size) return {};
    raw.assign(in.cursor(), in.cursor() + raw_size);
  } else if (encoding == kEncodingHuffmanBytes) {
    if (!decode_body_bytes(in, raw_size, &raw)) return {};
  } else if (encoding == kEncodingHuffmanNibbles) {
    if (!decode_body_nibbles(in, raw_size, &raw)) return {};
  } else {
    return {};
  }

  if (raw.size() != raw_size) return {};
  if (fnv1a_bytes(raw.data(), raw.size()) != raw_checksum) return {};
  return raw;
}

}  // namespace hyde::store
