/// \file codec.hpp
/// \brief Compact binary serialization for cached synthesis artifacts.
///
/// Two layers, mirroring the classic FPGA-bitstream compression pipeline:
///
///  1. a *naive fixed-width* serialization of a `core::CachedDecomposition`
///     (the NPN decomposition template — itself a mapped k-feasible
///     sub-netlist: topo-ordered LUT nodes with fanin lists and local truth
///     tables) into a flat byte vector of u32/u64 fields; and
///  2. an *entropy-coded artifact* wrapping those bytes: byte-frequency
///     counting → canonical Huffman code lengths → a bit-merged stream,
///     behind a self-describing header carrying the format version, the
///     flow-shape fingerprint the artifact was produced under, and a
///     checksum of the raw payload.
///
/// The encoder falls back to storing the raw bytes verbatim when Huffman
/// would not shrink them (tiny or incompressible payloads), so
/// `decode_artifact` always round-trips. Decoding is strict: any header
/// mismatch (magic, version, fingerprint), checksum failure, truncated
/// table or over/under-running bitstream returns failure instead of bytes —
/// the persistent store (persistent_cache.hpp) maps every such failure to a
/// cache miss, never to a wrong result.
///
/// Everything here is deterministic: the same artifact and fingerprint
/// always produce the identical encoded byte vector (tree ties are broken
/// by creation order, canonical codes by (length, symbol)), so encoded
/// blobs may be compared byte-wise across processes and machines.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/decomp_cache.hpp"

namespace hyde::store {

/// On-disk artifact format version; bumped on any incompatible layout
/// change. Readers reject (degrade to cold) anything else.
inline constexpr std::uint16_t kArtifactFormatVersion = 1;

/// Fixed size of the artifact container header (magic, version, kind,
/// fingerprint, raw size, raw checksum, encoding tag). The bytes after it
/// are the codec body — Huffman table + bit stream, or the raw fallback —
/// which is what the store's codec-ratio counters measure against the
/// fixed-width serialization, since the header is constant bookkeeping any
/// codec would pay.
inline constexpr std::size_t kArtifactHeaderBytes = 4 + 2 + 2 + 8 + 4 + 8 + 1;

/// What an artifact payload contains. The tag keeps the header
/// self-describing, so different payload kinds share the container (and the
/// shard files) without sharing a key namespace.
enum class ArtifactKind : std::uint16_t {
  kDecompositionTemplate = 1,
  /// A finished batch job's deterministic outcome (area/depth/verified plus
  /// the deterministic FlowStats subset): the whole-job replay tier that
  /// makes a warm re-run of a benchmark suite near-free. Stored through the
  /// generic blob interface (PersistentStore::lookup_blob/put_blob).
  kBatchJobOutcome = 2,
};

/// FNV-1a over a byte range; the payload checksum used by the artifact
/// header and the store's record validation.
std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::size_t size);

/// Fixed-width template serialization (layer 1). Every field is a
/// little-endian u32/u64; see codec.cpp for the exact layout. This is the
/// baseline the entropy coder's compression ratio is measured against.
std::vector<std::uint8_t> serialize_template(
    const core::CachedDecomposition& entry);

/// Strict inverse of serialize_template: bounds-checked field by field.
/// Returns nullopt on any truncation, trailing garbage or out-of-range
/// value (fanin index past the node list, truth-table arity above the
/// tt::TruthTable cap, ...).
std::optional<core::CachedDecomposition> deserialize_template(
    const std::uint8_t* data, std::size_t size);

/// Serializes an NPN cache key (onset table, dcset table, options
/// fingerprint) to a canonical byte string. Stored verbatim in each record
/// so lookups compare full keys, never just hashes.
std::vector<std::uint8_t> serialize_key(const core::NpnCacheKey& key);

/// Entropy-codes \p raw into a self-describing artifact (layer 2):
/// header (magic, version, kind, \p fingerprint, raw size, raw checksum)
/// followed by the smallest of three bodies — a byte-alphabet canonical
/// Huffman table + bit-merged stream, a nibble-alphabet one (tiny fixed
/// table; usually wins on the small zero-heavy template payloads), or the
/// raw bytes verbatim.
std::vector<std::uint8_t> encode_artifact(const std::vector<std::uint8_t>& raw,
                                          ArtifactKind kind,
                                          std::uint64_t fingerprint);

/// Decodes an artifact produced by encode_artifact. Validates the magic,
/// format version, artifact kind, and — when \p expected_fingerprint is
/// nonzero — the header fingerprint, then decompresses and verifies the
/// raw-payload checksum. Any failure returns nullopt.
std::optional<std::vector<std::uint8_t>> decode_artifact(
    const std::uint8_t* data, std::size_t size, ArtifactKind kind,
    std::uint64_t expected_fingerprint);

}  // namespace hyde::store
