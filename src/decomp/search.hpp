/// \file search.hpp
/// \brief Intra-flow bound-set search engine: memoized, pruned, optionally
/// parallel evaluation of candidate λ-sets.
///
/// `select_bound_set` (varpart.hpp) greedily grows a bound set, evaluating
/// O(|support| × bound_size) candidate charts per decomposition step — and
/// the flow re-runs the *same* growth for every trial bound size and every
/// encoder trial image. The engine closes three gaps while staying
/// bit-identical to the plain greedy search:
///
///  1. **Chart memo** — column counts are memoized per (ISF roots, candidate
///     bound set). Re-searches at a smaller bound size replay the identical
///     candidate sequence, so they resolve almost entirely out of the memo.
///     Entries pin their root handles, which keeps node ids unique for the
///     lifetime of the entry; the memo clears itself when it outgrows its
///     capacity.
///  2. **Monotone lower-bound pruning** — the cut traversal only ever
///     *discovers* columns, so a partial count is a lower bound on the true
///     count. A candidate whose partial count exceeds the incumbent best is
///     abandoned mid-enumeration (`count_columns_bounded`); the winner is
///     never pruned, so results are unchanged.
///  3. **Parallel candidate evaluation** — un-memoized candidates of one
///     greedy step are evaluated concurrently on a `runtime::JobScheduler`,
///     each worker reading a private snapshot manager populated up front via
///     `bdd::transfer` (the shared source manager is never touched inside a
///     job). Results are reduced in candidate index order, so the selected
///     bound set is independent of completion order and thread count.
///
/// Determinism contract: for a fixed (f, support, options) the returned
/// `VarPartitionResult` is bit-identical across every (memo, pruning,
/// threads) configuration, including the legacy serial path. The volatile
/// counters (`SearchStats`) may differ — pruning depth depends on evaluation
/// order — and are reported only in volatile report sections.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "decomp/varpart.hpp"

namespace hyde::runtime {
class JobScheduler;
}  // namespace hyde::runtime

namespace hyde::decomp {

/// Engine configuration. All knobs are result-neutral: they change how fast
/// the answer arrives, never which answer arrives.
struct SearchOptions {
  /// Candidate-evaluation threads; 1 evaluates serially on the caller's
  /// thread. Workers are spawned lazily on the first parallel sweep.
  int threads = 1;
  bool use_memo = true;
  bool use_pruning = true;
  /// Memo entry cap; the memo clears itself when it would exceed this.
  std::size_t memo_capacity = std::size_t{1} << 14;
  /// Minimum number of un-memoized candidates in one sweep before thread
  /// dispatch is worth the snapshot/queueing overhead.
  int min_parallel_candidates = 4;
};

/// Engine counters, accumulated across select() calls. `seconds` and
/// `candidates_evaluated` follow the work actually performed; in parallel
/// mode `candidates_pruned` depends on completion order (the incumbent a
/// worker prunes against moves with scheduling), so treat every field as
/// volatile for report purposes.
struct SearchStats {
  std::uint64_t selects = 0;               ///< select() invocations
  std::uint64_t candidates_evaluated = 0;  ///< charts actually traversed
  std::uint64_t candidates_pruned = 0;     ///< abandoned early (incl. by memo bound)
  std::uint64_t memo_hits = 0;             ///< exact counts served from the memo
  std::uint64_t memo_clears = 0;           ///< capacity resets
  double seconds = 0.0;                    ///< wall-clock inside select()
};

/// Bound-set search engine over one BDD manager. Not thread-safe itself:
/// one engine per flow/Decomposer, called from that flow's thread only (the
/// engine owns whatever worker threads it needs internally).
class BoundSetSearch {
 public:
  explicit BoundSetSearch(bdd::Manager& mgr, const SearchOptions& options = {});
  ~BoundSetSearch();

  BoundSetSearch(const BoundSetSearch&) = delete;
  BoundSetSearch& operator=(const BoundSetSearch&) = delete;

  /// Drop-in replacement for select_bound_set: same greedy growth, same
  /// tie-breaks, same result — served through the memo/pruning/parallel
  /// machinery. The recursive-reference path (options.use_cut_method ==
  /// false) is evaluated serially and unmemoized for fidelity with the
  /// cross-check tests.
  VarPartitionResult select(const IsfBdd& f, const std::vector<int>& support,
                            const VarPartitionOptions& options);

  const SearchStats& stats() const { return stats_; }
  const SearchOptions& options() const { return options_; }
  std::size_t memo_size() const;
  void clear_memo();

 private:
  struct Memo;
  struct Snapshot;

  /// One greedy step: picks the pool variable minimizing the column count of
  /// bound ∪ {v} (ties to the smallest variable). Returns the winning
  /// variable and its exact cost.
  std::pair<int, int> grow_step(const IsfBdd& f,
                                const std::vector<int>& support,
                                const std::vector<int>& bound,
                                const std::vector<int>& pool,
                                const VarPartitionOptions& options);

  /// Per-thread read-only copies of f, built on the caller's thread.
  void ensure_snapshots(const IsfBdd& f);

  bdd::Manager& mgr_;
  SearchOptions options_;
  SearchStats stats_;
  /// Reorder epoch of mgr_ the memo and snapshots were built against. Memo
  /// entries pin their roots (ids stay unique) and column counts are
  /// order-invariant, but the epoch contract is observed anyway: a reorder
  /// flushes everything, so a stale hit is impossible by construction.
  std::uint64_t observed_epoch_ = 0;
  std::unique_ptr<Memo> memo_;
  std::vector<std::unique_ptr<Snapshot>> snapshots_;
  /// Pin the snapshot source so id equality implies function equality.
  IsfBdd snapshot_source_;
  std::unique_ptr<runtime::JobScheduler> pool_;
};

}  // namespace hyde::decomp
