#include "decomp/varpart.hpp"

#include "decomp/search.hpp"

namespace hyde::decomp {

VarPartitionResult select_bound_set(bdd::Manager& mgr, const IsfBdd& f,
                                    const std::vector<int>& support,
                                    const VarPartitionOptions& options) {
  // One-shot serial engine: same greedy growth and tie-breaks as the
  // historical in-place loop, now shared with the memoized/parallel search
  // (see search.hpp for the equivalence argument). Callers that want memo
  // reuse across selects hold a BoundSetSearch of their own.
  BoundSetSearch search(mgr, SearchOptions{});
  return search.select(f, support, options);
}

}  // namespace hyde::decomp
