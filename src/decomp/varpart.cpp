#include "decomp/varpart.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyde::decomp {

namespace {

int column_cost(bdd::Manager& mgr, const IsfBdd& f,
                const std::vector<int>& support, const std::vector<int>& bound,
                bool use_cut_method) {
  DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = f;
  spec.bound = bound;
  for (int v : support) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
      spec.free.push_back(v);
    }
  }
  return use_cut_method ? count_columns_via_cut(spec) : count_columns(spec);
}

}  // namespace

VarPartitionResult select_bound_set(bdd::Manager& mgr, const IsfBdd& f,
                                    const std::vector<int>& support,
                                    const VarPartitionOptions& options) {
  VarPartitionResult result;
  if (options.bound_size <= 0 ||
      options.bound_size > static_cast<int>(support.size())) {
    return result;  // no valid partition
  }
  if (options.bound_size > kMaxBoundVars) {
    throw std::invalid_argument("select_bound_set: bound size too large");
  }

  std::vector<int> preferred, avoided;
  for (int v : support) {
    if (std::find(options.avoid.begin(), options.avoid.end(), v) !=
        options.avoid.end()) {
      avoided.push_back(v);
    } else {
      preferred.push_back(v);
    }
  }

  // Greedy growth: add the candidate minimizing the column count; avoided
  // variables are considered only once the preferred pool is exhausted.
  std::vector<int> bound;
  while (static_cast<int>(bound.size()) < options.bound_size) {
    const std::vector<int>& pool =
        !preferred.empty() ? preferred : avoided;
    if (pool.empty()) break;
    int best_var = -1;
    int best_cost = 0;
    for (int v : pool) {
      std::vector<int> candidate = bound;
      candidate.push_back(v);
      const int cost =
          column_cost(mgr, f, support, candidate, options.use_cut_method);
      if (best_var < 0 || cost < best_cost ||
          (cost == best_cost && v < best_var)) {
        best_var = v;
        best_cost = cost;
      }
    }
    bound.push_back(best_var);
    auto& chosen_pool = !preferred.empty() ? preferred : avoided;
    chosen_pool.erase(std::find(chosen_pool.begin(), chosen_pool.end(), best_var));
  }
  std::sort(bound.begin(), bound.end());

  DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = f;
  spec.bound = bound;
  for (int v : support) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
      spec.free.push_back(v);
    }
  }
  result.bound = spec.bound;
  result.free = spec.free;
  result.num_classes = count_compatible_classes(spec, options.dc_policy);
  result.success = true;
  if (options.require_nontrivial &&
      result.code_bits() >= static_cast<int>(result.bound.size())) {
    result.success = false;
  }
  return result;
}

}  // namespace hyde::decomp
