/// \file varpart.hpp
/// \brief Bound (λ) set selection, in the spirit of the BDD-based algorithm
/// of Jiang et al. [2] that the paper adopts for Problem 1.
///
/// The selector greedily grows a bound set of the requested size, at each
/// step adding the variable that minimizes the number of chart columns
/// (equivalently compatible classes for completely specified functions) —
/// the same cost the paper's encoding minimizes downstream. Pseudo primary
/// inputs can be biased toward the free set (Section 4.3 recommends keeping
/// them close to the output).

#pragma once

#include <vector>

#include "decomp/chart.hpp"
#include "decomp/compatible.hpp"

namespace hyde::decomp {

struct VarPartitionOptions {
  int bound_size = 4;  ///< desired λ-set size (usually the LUT input count k)
  /// Variables to keep out of the bound set unless unavoidable (e.g. pseudo
  /// primary inputs, per Section 4.3).
  std::vector<int> avoid;
  /// Require the decomposition to be non-trivial (code bits < bound size);
  /// when impossible the result reports success=false.
  bool require_nontrivial = true;
  DcPolicy dc_policy = DcPolicy::kCliquePartition;
  /// Evaluate candidate bound sets with the O(|BDD|) cut method of [2]
  /// instead of 2^|bound| cofactor enumeration. Same counts, different cost
  /// profile; on by default — disable to exercise the recursive reference.
  bool use_cut_method = true;
};

struct VarPartitionResult {
  bool success = false;
  std::vector<int> bound;
  std::vector<int> free;
  int num_classes = 0;
  int code_bits() const {
    int bits = 0;
    while ((1 << bits) < num_classes) ++bits;
    return bits;
  }
};

/// Selects a bound set of options.bound_size variables out of \p support
/// (the function's support in \p mgr), minimizing the compatible-class count.
/// The remaining support becomes the free set.
VarPartitionResult select_bound_set(bdd::Manager& mgr, const IsfBdd& f,
                                    const std::vector<int>& support,
                                    const VarPartitionOptions& options);

}  // namespace hyde::decomp
