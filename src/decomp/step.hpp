/// \file step.hpp
/// \brief One disjoint decomposition step: α-functions plus image function.
///
/// Given the compatible classes of f(X, Y) and an encoding (a binary code per
/// class), this module materializes:
///  - the decomposition functions α_j(X): α_j is 1 on the bound minterms of
///    every class whose code has bit j set;
///  - the image function g(α, Y) as an ISF: g(code_i, y) behaves like class
///    i's function; code words assigned to no class are don't cares (the
///    strict-encoding DC the paper exploits in the *next* decomposition).
///
/// `verify_step` checks the defining identity f(x, y) = g(α(x), y) on the
/// care set — used by tests and by the flows' internal assertions.

#pragma once

#include <cstdint>
#include <vector>

#include "decomp/compatible.hpp"

namespace hyde::decomp {

/// An encoding: one code word per compatible class (strict), using
/// \p num_bits α-functions. Codes must be distinct and fit in num_bits.
struct Encoding {
  std::vector<std::uint32_t> codes;
  int num_bits = 0;

  /// Rigid iff num_bits == ceil(log2(#classes)).
  bool is_rigid() const;
  /// Validates distinctness and width; throws std::invalid_argument if bad.
  void validate(int num_classes) const;
};

/// The materialized step.
struct DecompStep {
  std::vector<bdd::Bdd> alphas;  ///< α_j over the bound variables
  IsfBdd image;                  ///< g over alpha_vars ∪ free vars
  std::vector<int> alpha_vars;   ///< manager variables used for α inputs of g
  std::vector<int> bound;        ///< the λ set this step decomposed
  std::vector<int> free;         ///< the μ set
  Encoding encoding;
};

/// Builds the image ISF over \p alpha_vars ∪ (the functions' variables):
/// behaves like \p functions[i] when the alpha variables spell codes[i];
/// unassigned code words are fully don't-care. This is also exactly the
/// construction of a hyper-function from its ingredients (Definition 4.1),
/// with alpha_vars playing the pseudo-primary-input role.
IsfBdd build_image(bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
                   const Encoding& encoding, const std::vector<int>& alpha_vars);

/// Builds α-functions and the image ISF for \p classes under \p encoding.
/// \p alpha_vars supplies num_bits fresh manager variable indices for the
/// image's α inputs (they must not collide with bound/free variables).
DecompStep build_step(bdd::Manager& mgr, const ClassResult& classes,
                      const std::vector<int>& bound, const std::vector<int>& free,
                      const Encoding& encoding, const std::vector<int>& alpha_vars);

/// Checks f(x,y) == g(α(x),y) on the care set of f. Returns true when the
/// step is a correct decomposition of \p f.
bool verify_step(bdd::Manager& mgr, const IsfBdd& f, const DecompStep& step);

/// The identity encoding: class i gets code i over ceil(log2 n) bits.
Encoding identity_encoding(int num_classes);

/// A deterministic pseudo-random strict encoding (seeded), as used by Step 1
/// of the paper's encoding procedure ("encode compatible classes at random").
Encoding random_encoding(int num_classes, std::uint64_t seed);

}  // namespace hyde::decomp
