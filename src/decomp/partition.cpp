#include "decomp/partition.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace hyde::decomp {

int SymbolTable::id_of(const bdd::Bdd& on, const bdd::Bdd& dc) {
  const std::uint64_t key = (static_cast<std::uint64_t>(on.id()) << 32) | dc.id();
  auto [it, inserted] = ids_.emplace(key, static_cast<int>(holders_.size()));
  if (inserted) holders_.emplace_back(on, dc);
  return it->second;
}

int Partition::multiplicity() const {
  std::vector<int> sorted = symbols;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<int>(sorted.size());
}

std::vector<std::vector<int>> Partition::same_content_position_sets() const {
  std::map<int, std::vector<int>> by_symbol;
  for (int p = 0; p < num_positions(); ++p) {
    by_symbol[symbols[static_cast<std::size_t>(p)]].push_back(p);
  }
  std::vector<std::vector<int>> sets;
  for (auto& [symbol, positions] : by_symbol) {
    if (positions.size() >= 2) sets.push_back(std::move(positions));
  }
  // Deterministic: order by first position.
  std::sort(sets.begin(), sets.end());
  return sets;
}

Partition Partition::canonical() const {
  Partition result;
  result.symbols.reserve(symbols.size());
  std::unordered_map<int, int> renumber;
  for (int s : symbols) {
    const auto it = renumber.emplace(s, static_cast<int>(renumber.size())).first;
    result.symbols.push_back(it->second);
  }
  return result;
}

std::string Partition::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (i != 0) os << ',';
    os << symbols[i];
  }
  os << '>';
  return os.str();
}

Partition make_partition(bdd::Manager& mgr, const IsfBdd& f,
                         const std::vector<int>& position_vars,
                         SymbolTable& symbols) {
  // Equivalence with the split form holds by construction: the enumeration
  // emits patterns in visit order and the interning folds them in that order.
  return intern_partition(partition_patterns(mgr, f, position_vars),
                          static_cast<int>(position_vars.size()), symbols);
}

std::vector<PositionPattern> partition_patterns(
    bdd::Manager& mgr, const IsfBdd& f, const std::vector<int>& position_vars) {
  if (position_vars.size() > 20) {
    throw std::invalid_argument("make_partition: too many position variables");
  }
  std::vector<PositionPattern> result;
  result.reserve(std::size_t{1} << position_vars.size());
  std::function<void(std::size_t, const bdd::Bdd&, const bdd::Bdd&, std::uint64_t)>
      rec = [&](std::size_t depth, const bdd::Bdd& on, const bdd::Bdd& dc,
                std::uint64_t position) {
        if (depth == position_vars.size()) {
          result.push_back(PositionPattern{position, IsfBdd{on, dc}});
          return;
        }
        const int var = position_vars[depth];
        rec(depth + 1, mgr.cofactor(on, var, false), mgr.cofactor(dc, var, false),
            position);
        rec(depth + 1, mgr.cofactor(on, var, true), mgr.cofactor(dc, var, true),
            position | (std::uint64_t{1} << depth));
      };
  rec(0, f.on, f.dc, 0);
  return result;
}

Partition intern_partition(const std::vector<PositionPattern>& patterns,
                           int num_position_vars, SymbolTable& symbols) {
  Partition result;
  result.symbols.resize(std::size_t{1} << num_position_vars);
  for (const PositionPattern& p : patterns) {
    result.symbols[p.position] = symbols.id_of(p.pattern.on, p.pattern.dc);
  }
  return result;
}

Partition conjunction(const std::vector<Partition>& parts) {
  if (parts.empty()) return {};
  const std::size_t positions = parts.front().symbols.size();
  for (const Partition& p : parts) {
    if (p.symbols.size() != positions) {
      throw std::invalid_argument("conjunction: position count mismatch");
    }
  }
  Partition result;
  result.symbols.reserve(positions);
  std::map<std::vector<int>, int> tuple_ids;
  for (std::size_t p = 0; p < positions; ++p) {
    std::vector<int> tuple;
    tuple.reserve(parts.size());
    for (const Partition& part : parts) tuple.push_back(part.symbols[p]);
    const auto it =
        tuple_ids.emplace(std::move(tuple), static_cast<int>(tuple_ids.size()))
            .first;
    result.symbols.push_back(it->second);
  }
  return result;
}

Partition disjunction(const std::vector<Partition>& parts) {
  Partition result;
  for (const Partition& p : parts) {
    result.symbols.insert(result.symbols.end(), p.symbols.begin(),
                          p.symbols.end());
  }
  return result;
}

bool contained_in(const Partition& a, const Partition& b) {
  if (a.symbols.size() != b.symbols.size()) {
    throw std::invalid_argument("contained_in: position count mismatch");
  }
  return b.multiplicity() == conjunction({a, b}).multiplicity();
}

}  // namespace hyde::decomp
