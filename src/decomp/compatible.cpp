#include "decomp/compatible.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/matching.hpp"

namespace hyde::decomp {

int ClassResult::code_bits() const {
  const int n = num_classes();
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

bool columns_compatible(bdd::Manager& mgr, const IsfBdd& a, const IsfBdd& b) {
  return mgr.disjoint(a.on, b.off()) && mgr.disjoint(b.on, a.off());
}

IsfBdd merge_columns(bdd::Manager& mgr, const std::vector<Column>& columns,
                     const std::vector<int>& members) {
  bdd::Bdd on = mgr.zero();
  bdd::Bdd care = mgr.zero();
  for (int m : members) {
    const IsfBdd& p = columns[static_cast<std::size_t>(m)].pattern;
    on = on | p.on;
    care = care | p.on | p.off();
  }
  return IsfBdd{on, ~care};
}

ClassResult compute_compatible_classes(const DecompSpec& spec, DcPolicy policy) {
  bdd::Manager& mgr = *spec.mgr;
  ClassResult result;
  // Class construction needs patterns and indicators but never the raw
  // minterm lists — skip the only Θ(2^|bound|) part of chart building.
  DecompSpec chart_spec = spec;
  chart_spec.include_minterms = false;
  result.columns = enumerate_columns(chart_spec);
  const int n = static_cast<int>(result.columns.size());

  std::vector<std::vector<int>> groups;
  if (policy == DcPolicy::kDistinctColumns) {
    for (int i = 0; i < n; ++i) groups.push_back({i});
  } else {
    // Build the column-compatibility graph and clique-partition it, exactly
    // the formulation of Section 3.1.
    std::vector<std::vector<char>> adjacent(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 0));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (columns_compatible(mgr, result.columns[static_cast<std::size_t>(i)].pattern,
                               result.columns[static_cast<std::size_t>(j)].pattern)) {
          adjacent[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
          adjacent[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = 1;
        }
      }
    }
    groups = graph::clique_partition(n, adjacent);
  }

  for (const auto& members : groups) {
    CompatibleClass cls;
    cls.columns = members;
    cls.function = merge_columns(mgr, result.columns, members);
    bdd::Bdd indicator = mgr.zero();
    for (int m : members) {
      indicator = indicator | result.columns[static_cast<std::size_t>(m)].indicator;
    }
    cls.indicator = std::move(indicator);
    result.classes.push_back(std::move(cls));
  }
  return result;
}

int count_compatible_classes(const DecompSpec& spec, DcPolicy policy) {
  if (policy == DcPolicy::kDistinctColumns || spec.f.dc.is_zero()) {
    return count_columns(spec);
  }
  return compute_compatible_classes(spec, policy).num_classes();
}

}  // namespace hyde::decomp
