#include "decomp/compatible.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/matching.hpp"

namespace hyde::decomp {

namespace {

/// Word test behind the signature fast path: incompatibility is a nonzero
/// word of (a.on & b.care & ~b.on) | (b.on & a.care & ~a.on) — the packed
/// form of the two BDD disjointness tests of columns_compatible.
// hyde-hot
inline bool signature_pair_compatible(const std::uint64_t* a_on,
                                      const std::uint64_t* a_care,
                                      const std::uint64_t* b_on,
                                      const std::uint64_t* b_care,
                                      std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if (((a_on[w] & b_care[w] & ~b_on[w]) |
         (b_on[w] & a_care[w] & ~a_on[w])) != 0) {
      return false;
    }
  }
  return true;
}

/// Pairwise-compatibility loop, signature form: O(c²·R/64) word ops.
// hyde-hot
void fill_adjacency_from_signatures(const std::vector<ColumnSignature>& sigs,
                                    std::vector<std::vector<char>>* adjacent) {
  const int n = static_cast<int>(sigs.size());
  const std::size_t words = sigs.empty() ? 0 : sigs[0].on.size();
  for (int i = 0; i < n; ++i) {
    const ColumnSignature& a = sigs[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      const ColumnSignature& b = sigs[static_cast<std::size_t>(j)];
      if (signature_pair_compatible(a.on.data(), a.care.data(), b.on.data(),
                                    b.care.data(), words)) {
        (*adjacent)[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            1;
        (*adjacent)[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            1;
      }
    }
  }
}

/// Pairwise-compatibility loop, BDD form. The per-column off() BDDs are
/// hoisted by the caller so the O(c²) pair loop stops recomputing them.
// hyde-hot
void fill_adjacency_from_bdds(bdd::Manager& mgr,
                              const std::vector<Column>& columns,
                              const std::vector<bdd::Bdd>& offs,
                              std::vector<std::vector<char>>* adjacent) {
  const int n = static_cast<int>(columns.size());
  for (int i = 0; i < n; ++i) {
    const IsfBdd& a = columns[static_cast<std::size_t>(i)].pattern;
    for (int j = i + 1; j < n; ++j) {
      const IsfBdd& b = columns[static_cast<std::size_t>(j)].pattern;
      if (mgr.disjoint(a.on, offs[static_cast<std::size_t>(j)]) &&
          mgr.disjoint(b.on, offs[static_cast<std::size_t>(i)])) {
        (*adjacent)[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            1;
        (*adjacent)[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            1;
      }
    }
  }
}

}  // namespace

int ClassResult::code_bits() const {
  const int n = num_classes();
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

bool columns_compatible(bdd::Manager& mgr, const IsfBdd& a, const IsfBdd& b) {
  return mgr.disjoint(a.on, b.off()) && mgr.disjoint(b.on, a.off());
}

IsfBdd merge_columns(bdd::Manager& mgr, const std::vector<Column>& columns,
                     const std::vector<int>& members) {
  bdd::Bdd on = mgr.zero();
  bdd::Bdd care = mgr.zero();
  for (int m : members) {
    const IsfBdd& p = columns[static_cast<std::size_t>(m)].pattern;
    on = on | p.on;
    care = care | p.on | p.off();
  }
  return IsfBdd{on, ~care};
}

ClassResult compute_compatible_classes(const DecompSpec& spec, DcPolicy policy,
                                       const ClassComputeOptions& options) {
  bdd::Manager& mgr = *spec.mgr;
  ClassResult result;
  // Class construction needs patterns and indicators but never the raw
  // minterm lists — skip the only Θ(2^|bound|) part of chart building.
  DecompSpec chart_spec = spec;
  chart_spec.include_minterms = false;
  result.columns = enumerate_columns(chart_spec);
  const int n = static_cast<int>(result.columns.size());

  std::vector<std::vector<int>> groups;
  if (policy == DcPolicy::kDistinctColumns) {
    for (int i = 0; i < n; ++i) groups.push_back({i});
  } else {
    // Build the column-compatibility graph and clique-partition it, exactly
    // the formulation of Section 3.1. The signature fast path and the BDD
    // fallback decide every pair identically (see ColumnSignature).
    std::vector<std::vector<char>> adjacent(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 0));
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n > 0 ? n - 1 : 0) / 2;
    std::vector<ColumnSignature> sigs;
    if (options.use_signatures) {
      sigs = column_signatures(chart_spec, result.columns,
                               options.signature_max_rows);
    }
    if (!sigs.empty()) {
      fill_adjacency_from_signatures(sigs, &adjacent);
      if (options.stats != nullptr) options.stats->signature_pairs += pairs;
    } else {
      // Hoist the per-column off() BDD out of the O(c²) pair loop.
      std::vector<bdd::Bdd> offs;
      offs.reserve(static_cast<std::size_t>(n));
      for (const Column& c : result.columns) {
        offs.push_back(c.pattern.off());
      }
      fill_adjacency_from_bdds(mgr, result.columns, offs, &adjacent);
      if (options.stats != nullptr) options.stats->bdd_pairs += pairs;
    }
    groups = options.use_reference_clique
                 ? graph::clique_partition_reference(n, adjacent)
                 : graph::clique_partition(n, adjacent);
  }

  for (const auto& members : groups) {
    CompatibleClass cls;
    cls.columns = members;
    cls.function = merge_columns(mgr, result.columns, members);
    bdd::Bdd indicator = mgr.zero();
    for (int m : members) {
      indicator = indicator | result.columns[static_cast<std::size_t>(m)].indicator;
    }
    cls.indicator = std::move(indicator);
    result.classes.push_back(std::move(cls));
  }
  return result;
}

int count_compatible_classes(const DecompSpec& spec, DcPolicy policy,
                              const ClassComputeOptions& options) {
  if (policy == DcPolicy::kDistinctColumns || spec.f.dc.is_zero()) {
    return count_columns(spec);
  }
  return compute_compatible_classes(spec, policy, options).num_classes();
}

}  // namespace hyde::decomp
