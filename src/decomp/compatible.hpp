/// \file compatible.hpp
/// \brief Compatible classes and don't-care assignment (paper Section 3.1).
///
/// For a completely specified function, chart columns with equal patterns are
/// compatible and compatibility is an equivalence — classes are simply the
/// distinct columns. With don't cares, two columns are compatible iff they
/// agree wherever *both* care; this relation is not transitive, so grouping
/// columns into a minimum number of classes is the NP-complete *clique
/// partitioning* problem on the column-compatibility graph. The paper assigns
/// don't cares by solving it with the polynomial heuristic of [9]
/// (graph/matching.hpp), minimizing the class count rather than the supports
/// as [8] did.

#pragma once

#include <vector>

#include "decomp/chart.hpp"

namespace hyde::decomp {

/// One compatible class: merged behaviour of its member columns.
struct CompatibleClass {
  IsfBdd function;     ///< class function over the free variables
  bdd::Bdd indicator;  ///< function of the bound variables selecting the class
  std::vector<int> columns;  ///< member column indices (into ClassResult::columns)
};

/// The outcome of compatible-class computation.
struct ClassResult {
  std::vector<Column> columns;
  std::vector<CompatibleClass> classes;

  int num_classes() const { return static_cast<int>(classes.size()); }
  /// Number of α-functions needed by a rigid strict encoding.
  int code_bits() const;
};

/// Policy for grouping columns into classes.
enum class DcPolicy {
  /// Treat each distinct (on, dc) column as its own class; no DC merging.
  kDistinctColumns,
  /// Merge compatible columns via clique partitioning (the paper's method).
  kCliquePartition,
};

/// Computes the compatible classes of the chart of \p spec.
ClassResult compute_compatible_classes(const DecompSpec& spec,
                                       DcPolicy policy = DcPolicy::kCliquePartition);

/// Number of compatible classes only (convenience for cost functions).
int count_compatible_classes(const DecompSpec& spec,
                             DcPolicy policy = DcPolicy::kCliquePartition);

/// True iff two column patterns agree on their common care set.
bool columns_compatible(bdd::Manager& mgr, const IsfBdd& a, const IsfBdd& b);

/// Merges a set of pairwise-compatible columns into one class function:
/// onset is the union of onsets, don't-care set shrinks to the positions no
/// member cares about.
IsfBdd merge_columns(bdd::Manager& mgr, const std::vector<Column>& columns,
                     const std::vector<int>& members);

}  // namespace hyde::decomp
