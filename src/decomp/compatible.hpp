/// \file compatible.hpp
/// \brief Compatible classes and don't-care assignment (paper Section 3.1).
///
/// For a completely specified function, chart columns with equal patterns are
/// compatible and compatibility is an equivalence — classes are simply the
/// distinct columns. With don't cares, two columns are compatible iff they
/// agree wherever *both* care; this relation is not transitive, so grouping
/// columns into a minimum number of classes is the NP-complete *clique
/// partitioning* problem on the column-compatibility graph. The paper assigns
/// don't cares by solving it with the polynomial heuristic of [9]
/// (graph/matching.hpp), minimizing the class count rather than the supports
/// as [8] did.

#pragma once

#include <vector>

#include "decomp/chart.hpp"

namespace hyde::decomp {

/// One compatible class: merged behaviour of its member columns.
struct CompatibleClass {
  IsfBdd function;     ///< class function over the free variables
  bdd::Bdd indicator;  ///< function of the bound variables selecting the class
  std::vector<int> columns;  ///< member column indices (into ClassResult::columns)
};

/// The outcome of compatible-class computation.
struct ClassResult {
  std::vector<Column> columns;
  std::vector<CompatibleClass> classes;

  int num_classes() const { return static_cast<int>(classes.size()); }
  /// Number of α-functions needed by a rigid strict encoding.
  int code_bits() const;
};

/// Policy for grouping columns into classes.
enum class DcPolicy {
  /// Treat each distinct (on, dc) column as its own class; no DC merging.
  kDistinctColumns,
  /// Merge compatible columns via clique partitioning (the paper's method).
  kCliquePartition,
};

/// Counters for the class-computation engine. All values are volatile
/// observations (which fast path fired); results never depend on them.
struct ClassStats {
  /// Column pairs decided by packed-signature word operations.
  std::uint64_t signature_pairs = 0;
  /// Column pairs decided by BDD disjointness tests (fallback path).
  std::uint64_t bdd_pairs = 0;

  void operator+=(const ClassStats& other) {
    signature_pairs += other.signature_pairs;
    bdd_pairs += other.bdd_pairs;
  }
};

/// Result-neutral engine knobs for compatible-class computation. Every
/// setting produces identical classes in identical order; the knobs only
/// select how the column-compatibility graph is evaluated.
struct ClassComputeOptions {
  /// Decide column compatibility with packed row signatures (word ops)
  /// when the row space fits signature_max_rows; otherwise fall back to
  /// per-pair BDD disjointness with hoisted off() BDDs.
  bool use_signatures = true;
  /// Row-space bound for the signature path (rows = 2^|support union|).
  int signature_max_rows = 4096;
  /// Route clique partitioning through the recount-from-scratch reference
  /// implementation (bench/test fidelity knob; partitions are identical).
  bool use_reference_clique = false;
  /// Optional counter sink.
  ClassStats* stats = nullptr;
};

/// Computes the compatible classes of the chart of \p spec.
ClassResult compute_compatible_classes(
    const DecompSpec& spec, DcPolicy policy = DcPolicy::kCliquePartition,
    const ClassComputeOptions& options = {});

/// Number of compatible classes only (convenience for cost functions).
int count_compatible_classes(const DecompSpec& spec,
                             DcPolicy policy = DcPolicy::kCliquePartition,
                             const ClassComputeOptions& options = {});

/// True iff two column patterns agree on their common care set.
bool columns_compatible(bdd::Manager& mgr, const IsfBdd& a, const IsfBdd& b);

/// Merges a set of pairwise-compatible columns into one class function:
/// onset is the union of onsets, don't-care set shrinks to the positions no
/// member cares about.
IsfBdd merge_columns(bdd::Manager& mgr, const std::vector<Column>& columns,
                     const std::vector<int>& members);

}  // namespace hyde::decomp
