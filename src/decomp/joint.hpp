/// \file joint.hpp
/// \brief Joint multi-output decomposition with one shared α set.
///
/// Several functions over the same bound set are decomposed together: the
/// *joint* compatible classes are the distinct tuples of per-function column
/// patterns, and a single strict encoding of those classes yields one set of
/// decomposition functions serving every output. This is the constructive
/// side of Theorems 4.3/4.4 (a partition contained in the joint partition
/// rides along for free) and the common-α extraction at the heart of
/// FGSyn's column encoding [4].

#pragma once

#include "decomp/compatible.hpp"
#include "decomp/step.hpp"

namespace hyde::decomp {

struct JointDecomposition {
  /// Shared decomposition functions over the bound variables.
  std::vector<bdd::Bdd> alphas;
  /// Per input function: its image over alpha_vars ∪ free variables.
  std::vector<IsfBdd> images;
  std::vector<int> alpha_vars;
  Encoding encoding;      ///< strict codes of the joint classes
  int num_joint_classes = 0;
};

/// Decomposes \p functions jointly over \p bound / \p free using
/// \p alpha_vars (must provide ceil(log2 #joint-classes) variables — pass at
/// least |bound| and the tail is ignored... callers typically pass fresh
/// variables and read back alpha_vars from the result).
///
/// Throws std::invalid_argument when fewer alpha variables are supplied than
/// the joint class count requires.
JointDecomposition joint_decompose(bdd::Manager& mgr,
                                   const std::vector<IsfBdd>& functions,
                                   const std::vector<int>& bound,
                                   const std::vector<int>& free,
                                   const std::vector<int>& alpha_vars);

/// Number of joint classes (distinct per-bound-minterm pattern tuples)
/// without materializing the decomposition.
int count_joint_classes(bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
                        const std::vector<int>& bound);

}  // namespace hyde::decomp
