/// \file chart.hpp
/// \brief Decomposition-chart enumeration (Roth–Karp / Ashenhurst substrate).
///
/// Given an incompletely specified function f over a manager's variables, a
/// bound (λ) set X and a free (μ) set Y, the *decomposition chart* has one
/// column per assignment to X; a column's *pattern* is the residual function
/// f(x, ·) of the free variables. This module enumerates the distinct
/// patterns (as ISF pairs of BDDs) together with, per pattern, the set of
/// bound-set minterms mapping to it and its indicator function over X.
///
/// Enumeration uses the BDD-cut method of Jiang et al. [2]: f is transferred
/// into a manager ordering the bound set on top, and the distinct (on, dc)
/// node pairs hanging below the cut — one per column — are discovered in a
/// single lock-step traversal costing O(nodes above the cut) instead of
/// 2^|X| cofactor pairs. Column indicators fall out of the same pair graph
/// by propagating bound-literal cubes top-down. The original
/// recursive-cofactor walk is kept as a cross-checked reference
/// (`enumerate_columns_recursive` / `count_columns_recursive`).

#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::decomp {

/// An incompletely specified function inside a BDD manager.
struct IsfBdd {
  bdd::Bdd on;
  bdd::Bdd dc;

  /// The offset (specified-0 set); requires a manager.
  bdd::Bdd off() const { return ~(on | dc); }
};

/// A decomposition problem instance: which function, which variable split.
struct DecompSpec {
  bdd::Manager* mgr = nullptr;
  IsfBdd f;
  std::vector<int> bound;  ///< λ-set variable indices (chart columns)
  std::vector<int> free;   ///< μ-set variable indices (chart rows)
  /// When false, enumerate_columns skips materializing per-column minterm
  /// lists (the only part of chart construction that is inherently
  /// Θ(2^|bound|)); patterns and indicators are still produced.
  bool include_minterms = true;
};

/// One distinct chart column pattern.
struct Column {
  IsfBdd pattern;   ///< residual function of the free variables
  bdd::Bdd indicator;  ///< function of the bound variables: 1 on this column's minterms
  std::vector<std::uint64_t> minterms;  ///< bound minterms (bit i = bound[i])
};

/// Hard cap on the bound-set size: minterm lists index assignments to the
/// bound set, so charts keep an exhaustively enumerable bound region.
inline constexpr int kMaxBoundVars = 16;

/// Packed row-space signature of a chart column. Bit m (bit m%64 of word
/// m/64) is row minterm m over the shared signature variable set — the sorted
/// union of the member pattern supports, a subset of the free set. `on` is
/// the pattern onset, `care` the complement of its dc-set; bits beyond the
/// row count are zero in both, so whole-word operations need no tail mask.
///
/// Two columns are compatible iff
///   (a.on & b.care & ~b.on) == 0  and  (b.on & a.care & ~a.on) == 0
/// word-wise — exactly the BDD test `disjoint(a.on, b.off())` ∧
/// `disjoint(b.on, a.off())`, because every pattern is fully determined by
/// the signature variables.
struct ColumnSignature {
  std::vector<std::uint64_t> on;
  std::vector<std::uint64_t> care;
};

/// Derives the row signatures of \p columns, or returns an empty vector when
/// the shared row space exceeds \p max_rows (the caller then falls back to
/// BDD compatibility tests). max_rows <= 0 disables signatures outright.
std::vector<ColumnSignature> column_signatures(
    const DecompSpec& spec, const std::vector<Column>& columns, int max_rows);

/// Enumerates the distinct column patterns of the chart. Deterministic:
/// columns are ordered by their smallest bound minterm.
/// Throws std::invalid_argument if |bound| exceeds kMaxBoundVars.
std::vector<Column> enumerate_columns(const DecompSpec& spec);

/// Reference implementation of enumerate_columns by recursive cofactoring
/// (Θ(2^|bound|) cofactor pairs). Produces identical columns in identical
/// order; kept for cross-checking the cut-based path.
std::vector<Column> enumerate_columns_recursive(const DecompSpec& spec);

/// Number of distinct column patterns, without materializing indicators.
/// This is exactly the compatible-class count for completely specified
/// functions and an upper bound for ISFs. Delegates to the cut-based path.
/// Throws std::invalid_argument if |bound| exceeds kMaxBoundVars.
int count_columns(const DecompSpec& spec);

/// Reference implementation of count_columns by recursive cofactoring.
int count_columns_recursive(const DecompSpec& spec);

/// The BDD-cut method of Jiang et al. [2]: transfers f into a manager whose
/// variable order puts the bound set on top and counts the distinct
/// sub-functions hanging below the cut. Equal to count_columns for
/// completely specified functions but costs O(|BDD|) instead of
/// O(2^|bound|). ISFs count distinct (on, dc) pattern pairs. Unlike
/// count_columns this places no limit on the bound-set size.
int count_columns_via_cut(const DecompSpec& spec);

/// Outcome of a bounded column count. When `pruned` is set the cut traversal
/// was abandoned early and `count` is a *lower bound* on the true column
/// count (columns are only ever discovered, never retracted, as the
/// traversal proceeds); otherwise `count` is exact.
struct BoundedCount {
  int count = 0;
  bool pruned = false;
};

/// count_columns_via_cut with an early-exit threshold: the pair-graph
/// traversal stops as soon as more than \p max_columns distinct columns have
/// been discovered, so candidate bound sets that are already worse than an
/// incumbent cost the search engine only a prefix of the full enumeration.
/// max_columns <= 0 means unlimited (identical to count_columns_via_cut).
BoundedCount count_columns_bounded(const DecompSpec& spec, int max_columns);

/// Builds the BDD cube for an assignment to the given variables
/// (bit i of \p minterm corresponds to vars[i]).
bdd::Bdd minterm_cube(bdd::Manager& mgr, const std::vector<int>& vars,
                      std::uint64_t minterm);

}  // namespace hyde::decomp
