/// \file chart.hpp
/// \brief Decomposition-chart enumeration (Roth–Karp / Ashenhurst substrate).
///
/// Given an incompletely specified function f over a manager's variables, a
/// bound (λ) set X and a free (μ) set Y, the *decomposition chart* has one
/// column per assignment to X; a column's *pattern* is the residual function
/// f(x, ·) of the free variables. This module enumerates the distinct
/// patterns (as ISF pairs of BDDs) together with, per pattern, the set of
/// bound-set minterms mapping to it and its indicator function over X.

#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"

namespace hyde::decomp {

/// An incompletely specified function inside a BDD manager.
struct IsfBdd {
  bdd::Bdd on;
  bdd::Bdd dc;

  /// The offset (specified-0 set); requires a manager.
  bdd::Bdd off() const { return ~(on | dc); }
};

/// A decomposition problem instance: which function, which variable split.
struct DecompSpec {
  bdd::Manager* mgr = nullptr;
  IsfBdd f;
  std::vector<int> bound;  ///< λ-set variable indices (chart columns)
  std::vector<int> free;   ///< μ-set variable indices (chart rows)
};

/// One distinct chart column pattern.
struct Column {
  IsfBdd pattern;   ///< residual function of the free variables
  bdd::Bdd indicator;  ///< function of the bound variables: 1 on this column's minterms
  std::vector<std::uint64_t> minterms;  ///< bound minterms (bit i = bound[i])
};

/// Hard cap on the bound-set size: charts are enumerated exhaustively.
inline constexpr int kMaxBoundVars = 16;

/// Enumerates the distinct column patterns of the chart. Deterministic:
/// columns are ordered by their smallest bound minterm.
/// Throws std::invalid_argument if |bound| exceeds kMaxBoundVars.
std::vector<Column> enumerate_columns(const DecompSpec& spec);

/// Number of distinct column patterns, without materializing indicators.
/// This is exactly the compatible-class count for completely specified
/// functions and an upper bound for ISFs.
int count_columns(const DecompSpec& spec);

/// The BDD-cut method of Jiang et al. [2]: transfers f into a manager whose
/// variable order puts the bound set on top and counts the distinct
/// sub-functions hanging below the cut. Equal to count_columns for
/// completely specified functions but costs O(|BDD|) instead of
/// O(2^|bound|). ISFs count distinct (on, dc) pattern pairs.
int count_columns_via_cut(const DecompSpec& spec);

/// Builds the BDD cube for an assignment to the given variables
/// (bit i of \p minterm corresponds to vars[i]).
bdd::Bdd minterm_cube(bdd::Manager& mgr, const std::vector<int>& vars,
                      std::uint64_t minterm);

}  // namespace hyde::decomp
