#include "decomp/joint.hpp"

#include <functional>
#include <map>
#include <stdexcept>

namespace hyde::decomp {

namespace {

struct JointClass {
  std::vector<IsfBdd> patterns;  ///< one residual per input function
  bdd::Bdd indicator;            ///< over the bound variables
};

std::vector<JointClass> enumerate_joint_classes(
    bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
    const std::vector<int>& bound) {
  if (bound.size() > static_cast<std::size_t>(kMaxBoundVars)) {
    throw std::invalid_argument("joint_decompose: bound set too large");
  }
  std::vector<JointClass> classes;
  std::map<std::vector<std::uint64_t>, std::size_t> index_of;
  std::vector<std::vector<std::uint64_t>> minterms_of;

  std::function<void(std::size_t, const std::vector<IsfBdd>&, std::uint64_t)> rec =
      [&](std::size_t depth, const std::vector<IsfBdd>& fns, std::uint64_t m) {
        if (depth == bound.size()) {
          std::vector<std::uint64_t> key;
          key.reserve(fns.size());
          for (const IsfBdd& f : fns) {
            key.push_back((static_cast<std::uint64_t>(f.on.id()) << 32) |
                          f.dc.id());
          }
          auto [it, inserted] = index_of.emplace(key, classes.size());
          if (inserted) {
            classes.push_back(JointClass{fns, mgr.zero()});
            minterms_of.emplace_back();
          }
          minterms_of[it->second].push_back(m);
          return;
        }
        const int var = bound[depth];
        std::vector<IsfBdd> lo, hi;
        lo.reserve(fns.size());
        hi.reserve(fns.size());
        for (const IsfBdd& f : fns) {
          lo.push_back(IsfBdd{mgr.cofactor(f.on, var, false),
                              mgr.cofactor(f.dc, var, false)});
          hi.push_back(IsfBdd{mgr.cofactor(f.on, var, true),
                              mgr.cofactor(f.dc, var, true)});
        }
        rec(depth + 1, lo, m);
        rec(depth + 1, hi, m | (std::uint64_t{1} << depth));
      };
  rec(0, functions, 0);

  for (std::size_t c = 0; c < classes.size(); ++c) {
    bdd::Bdd indicator = mgr.zero();
    for (std::uint64_t m : minterms_of[c]) {
      indicator = indicator | minterm_cube(mgr, bound, m);
    }
    classes[c].indicator = std::move(indicator);
  }
  return classes;
}

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

int count_joint_classes(bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
                        const std::vector<int>& bound) {
  return static_cast<int>(enumerate_joint_classes(mgr, functions, bound).size());
}

JointDecomposition joint_decompose(bdd::Manager& mgr,
                                   const std::vector<IsfBdd>& functions,
                                   const std::vector<int>& bound,
                                   const std::vector<int>& free,
                                   const std::vector<int>& alpha_vars) {
  (void)free;  // the images naturally range over alpha_vars ∪ free
  const auto classes = enumerate_joint_classes(mgr, functions, bound);
  const int n = static_cast<int>(classes.size());
  const int t = bits_for(n);
  if (static_cast<int>(alpha_vars.size()) < t) {
    throw std::invalid_argument(
        "joint_decompose: not enough alpha variables for " +
        std::to_string(n) + " joint classes");
  }
  JointDecomposition result;
  result.num_joint_classes = n;
  result.alpha_vars.assign(alpha_vars.begin(), alpha_vars.begin() + t);
  result.encoding = identity_encoding(n);

  for (int v : result.alpha_vars) mgr.ensure_vars(v + 1);
  for (int j = 0; j < t; ++j) {
    bdd::Bdd alpha = mgr.zero();
    for (int c = 0; c < n; ++c) {
      if ((result.encoding.codes[static_cast<std::size_t>(c)] >> j) & 1) {
        alpha = alpha | classes[static_cast<std::size_t>(c)].indicator;
      }
    }
    result.alphas.push_back(std::move(alpha));
  }

  for (std::size_t i = 0; i < functions.size(); ++i) {
    bdd::Bdd g_on = mgr.zero();
    bdd::Bdd g_dc = mgr.zero();
    bdd::Bdd used = mgr.zero();
    for (int c = 0; c < n; ++c) {
      const bdd::Bdd cube = minterm_cube(
          mgr, result.alpha_vars,
          result.encoding.codes[static_cast<std::size_t>(c)]);
      const IsfBdd& pattern = classes[static_cast<std::size_t>(c)].patterns[i];
      g_on = g_on | (cube & pattern.on);
      g_dc = g_dc | (cube & pattern.dc);
      used = used | cube;
    }
    g_dc = g_dc | ~used;
    result.images.push_back(IsfBdd{std::move(g_on), std::move(g_dc)});
  }
  return result;
}

}  // namespace hyde::decomp
