#include "decomp/search.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <climits>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "bdd/transfer.hpp"
#include "runtime/scheduler.hpp"

namespace hyde::decomp {

namespace {

// hyde-hot
std::size_t combine_hash(std::size_t seed, std::size_t value) {
  // Boost-style mix; the constant is the 64-bit golden ratio.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Publishes an exact column count into the shared incumbent used as the
/// pruning threshold. Monotone fetch-min: the incumbent only ever decreases,
/// so a stale read yields a looser (still correct) threshold.
// hyde-hot
void publish_incumbent(std::atomic<int>& incumbent, int cost) {
  int current = incumbent.load(std::memory_order_relaxed);
  while (cost < current &&
         !incumbent.compare_exchange_weak(current, cost,
                                          std::memory_order_relaxed)) {
  }
}

/// Strict-weak order of the greedy selection: smaller column count first,
/// then the smaller variable index. Matches the legacy select_bound_set
/// update rule, so the reduction is independent of evaluation order.
// hyde-hot
bool better_candidate(int cost, int var, int best_cost, int best_var) {
  if (best_var < 0) return true;
  if (cost != best_cost) return cost < best_cost;
  return var < best_var;
}

}  // namespace

/// Memoized column count for one (ISF, bound set). `lower_bound == false`
/// means `count` is exact; otherwise the candidate was pruned when this was
/// recorded and `count` is a proven lower bound on the true column count.
/// Entries hold the ISF root handles: the external references pin the nodes,
/// so the (on id, dc id) pair in the key denotes this function — and no
/// other — for as long as the entry lives.
struct BoundSetSearch::Memo {
  struct Key {
    std::uint32_t on_id = 0;
    std::uint32_t dc_id = 0;
    std::vector<int> bound;  ///< sorted (counts are order-invariant)

    bool operator==(const Key& rhs) const {
      return on_id == rhs.on_id && dc_id == rhs.dc_id && bound == rhs.bound;
    }
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h = combine_hash(key.on_id, key.dc_id);
      for (int v : key.bound) {
        h = combine_hash(h, static_cast<std::size_t>(v));
      }
      return h;
    }
  };

  struct Entry {
    bdd::Bdd on;
    bdd::Bdd dc;
    int count = 0;
    bool lower_bound = false;
  };

  std::unordered_map<Key, Entry, KeyHash> table;
};

/// A private single-threaded manager holding a read-only copy of the ISF
/// under search. Each parallel candidate evaluation exclusively owns one
/// snapshot for its duration: chart traversal takes handle copies of the
/// roots (reference-count writes), so even "read-only" evaluation must not
/// share a manager between two concurrent jobs.
struct BoundSetSearch::Snapshot {
  std::unique_ptr<bdd::Manager> mgr;
  IsfBdd f;
};

BoundSetSearch::BoundSetSearch(bdd::Manager& mgr, const SearchOptions& options)
    : mgr_(mgr), options_(options), memo_(new Memo) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.min_parallel_candidates < 2) options_.min_parallel_candidates = 2;
}

BoundSetSearch::~BoundSetSearch() = default;

std::size_t BoundSetSearch::memo_size() const { return memo_->table.size(); }

void BoundSetSearch::clear_memo() {
  memo_->table.clear();
  snapshots_.clear();
  snapshot_source_ = IsfBdd{};
}

void BoundSetSearch::ensure_snapshots(const IsfBdd& f) {
  if (snapshot_source_.on == f.on && snapshot_source_.dc == f.dc &&
      static_cast<int>(snapshots_.size()) >= options_.threads) {
    return;
  }
  snapshots_.clear();
  std::vector<int> identity(static_cast<std::size_t>(mgr_.num_vars()));
  for (std::size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<int>(i);
  }
  snapshots_.reserve(static_cast<std::size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    auto snap = std::make_unique<Snapshot>();
    snap->mgr = std::make_unique<bdd::Manager>(mgr_.num_vars());
    snap->f.on = bdd::transfer(f.on, *snap->mgr, identity);
    snap->f.dc = bdd::transfer(f.dc, *snap->mgr, identity);
    snapshots_.push_back(std::move(snap));
  }
  snapshot_source_ = f;
}

std::pair<int, int> BoundSetSearch::grow_step(
    const IsfBdd& f, const std::vector<int>& support,
    const std::vector<int>& bound, const std::vector<int>& pool,
    const VarPartitionOptions& options) {
  // Free set shared by every candidate this step: support minus the bound
  // prefix, via a membership mask instead of a per-variable std::find scan.
  std::vector<char> in_bound(static_cast<std::size_t>(mgr_.num_vars()), 0);
  for (int v : bound) in_bound[static_cast<std::size_t>(v)] = 1;
  std::vector<int> free_base;
  free_base.reserve(support.size());
  for (int v : support) {
    if (!in_bound[static_cast<std::size_t>(v)]) free_base.push_back(v);
  }

  struct Candidate {
    int var = -1;
    int cost = -1;       ///< exact column count once known
    bool exact = false;  ///< cost is exact (memo hit or evaluated)
    bool pruned = false;
    int memo_lb = 0;  ///< lower bound from a pruned memo entry, 0 if none
    std::vector<int> sorted_bound;  ///< bound ∪ {var}, sorted (memo key)
  };
  std::vector<Candidate> candidates(pool.size());

  // Pre-pass on the calling thread: resolve memo hits, establish the
  // initial pruning incumbent from exact entries.
  int incumbent = INT_MAX;
  const bool use_memo = options_.use_memo && options.use_cut_method;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    Candidate& c = candidates[i];
    c.var = pool[i];
    c.sorted_bound = bound;
    c.sorted_bound.push_back(c.var);
    std::sort(c.sorted_bound.begin(), c.sorted_bound.end());
    if (!use_memo) continue;
    Memo::Key key{f.on.id(), f.dc.id(), c.sorted_bound};
    auto it = memo_->table.find(key);
    if (it == memo_->table.end()) continue;
    if (it->second.lower_bound) {
      c.memo_lb = it->second.count;
    } else {
      c.cost = it->second.count;
      c.exact = true;
      ++stats_.memo_hits;
      incumbent = std::min(incumbent, c.cost);
    }
  }

  // A memo lower bound that already exceeds an exact incumbent proves the
  // candidate cannot win (cost >= lb > incumbent rules out even the
  // tie-break), so it is pruned without touching a chart.
  const bool use_pruning = options_.use_pruning && options.use_cut_method;
  std::vector<std::size_t> misses;
  misses.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    Candidate& c = candidates[i];
    if (c.exact) continue;
    if (use_pruning && incumbent != INT_MAX && c.memo_lb > incumbent) {
      c.pruned = true;
      c.cost = c.memo_lb;
      ++stats_.candidates_pruned;
      continue;
    }
    misses.push_back(i);
  }

  auto make_spec = [&](bdd::Manager& m, const IsfBdd& func,
                       const Candidate& c) {
    DecompSpec spec;
    spec.mgr = &m;
    spec.f = func;
    spec.bound = c.sorted_bound;
    spec.free.reserve(free_base.size());
    for (int v : free_base) {
      if (v != c.var) spec.free.push_back(v);
    }
    return spec;
  };

  const bool parallel =
      options_.threads > 1 && options.use_cut_method &&
      static_cast<int>(misses.size()) >= options_.min_parallel_candidates;

  if (parallel) {
    ensure_snapshots(f);
    if (pool_ == nullptr) {
      pool_ = std::make_unique<runtime::JobScheduler>(options_.threads);
    }
    // The shared incumbent is a hint, not the answer: workers prune against
    // whatever value they observe, and every surviving count is exact, so
    // the reduction below is schedule-independent.
    std::atomic<int> shared_incumbent{incumbent};
    std::vector<BoundedCount> results(misses.size());
    std::vector<char> failed(misses.size(), 0);
    std::mutex snapshot_mu;
    std::vector<Snapshot*> idle;
    idle.reserve(snapshots_.size());
    for (auto& snap : snapshots_) idle.push_back(snap.get());

    for (std::size_t j = 0; j < misses.size(); ++j) {
      const Candidate& c = candidates[misses[j]];
      pool_->submit([&, j, &c = c]() {
        Snapshot* snap = nullptr;
        {
          std::lock_guard<std::mutex> lock(snapshot_mu);
          assert(!idle.empty());  // jobs in flight <= workers == snapshots
          snap = idle.back();
          idle.pop_back();
        }
        try {
          const DecompSpec spec = make_spec(*snap->mgr, snap->f, c);
          const int threshold =
              use_pruning ? shared_incumbent.load(std::memory_order_relaxed)
                          : INT_MAX;
          results[j] = count_columns_bounded(
              spec, threshold == INT_MAX ? 0 : threshold);
          if (!results[j].pruned) {
            publish_incumbent(shared_incumbent, results[j].count);
          }
        } catch (...) {
          failed[j] = 1;
        }
        std::lock_guard<std::mutex> lock(snapshot_mu);
        idle.push_back(snap);
      });
    }
    pool_->wait_idle();

    for (std::size_t j = 0; j < misses.size(); ++j) {
      Candidate& c = candidates[misses[j]];
      if (failed[j]) {
        // Deterministic fallback: evaluate on the caller's manager, exactly.
        const DecompSpec spec = make_spec(mgr_, f, c);
        results[j] = BoundedCount{count_columns_via_cut(spec), false};
      }
      ++stats_.candidates_evaluated;
      c.cost = results[j].count;
      if (results[j].pruned) {
        c.pruned = true;
        ++stats_.candidates_pruned;
      } else {
        c.exact = true;
      }
    }
  } else {
    // Serial sweep with a running incumbent: later candidates prune against
    // the best exact cost seen so far.
    for (std::size_t j = 0; j < misses.size(); ++j) {
      Candidate& c = candidates[misses[j]];
      const DecompSpec spec = make_spec(mgr_, f, c);
      ++stats_.candidates_evaluated;
      if (!options.use_cut_method) {
        c.cost = count_columns(spec);
        c.exact = true;
        continue;
      }
      const int threshold =
          (use_pruning && incumbent != INT_MAX) ? incumbent : 0;
      const BoundedCount bc = count_columns_bounded(spec, threshold);
      c.cost = bc.count;
      if (bc.pruned) {
        c.pruned = true;
        ++stats_.candidates_pruned;
      } else {
        c.exact = true;
        incumbent = std::min(incumbent, c.cost);
      }
    }
  }

  // Reduction in candidate index order. Only exact candidates compete; a
  // pruned candidate's true cost strictly exceeds some exact cost, so it
  // can never be the (min cost, min var) winner.
  int best_var = -1;
  int best_cost = -1;
  for (const Candidate& c : candidates) {
    if (!c.exact) continue;
    if (better_candidate(c.cost, c.var, best_cost, best_var)) {
      best_var = c.var;
      best_cost = c.cost;
    }
  }
  assert(best_var >= 0);  // the step winner is never pruned

  // Memo update after the reduction, so recorded bounds are deterministic:
  // exact counts as-is; pruned candidates get step_best + 1, valid because
  // a pruned cost strictly exceeds a threshold that was itself an exact
  // cost >= step_best.
  if (use_memo) {
    if (memo_->table.size() + candidates.size() > options_.memo_capacity) {
      memo_->table.clear();
      ++stats_.memo_clears;
    }
    for (Candidate& c : candidates) {
      if (!c.exact && !c.pruned) continue;
      Memo::Key key{f.on.id(), f.dc.id(), std::move(c.sorted_bound)};
      auto [it, inserted] = memo_->table.try_emplace(key);
      Memo::Entry& entry = it->second;
      if (inserted) {
        entry.on = f.on;
        entry.dc = f.dc;
        entry.count = c.exact ? c.cost : best_cost + 1;
        entry.lower_bound = !c.exact;
      } else if (entry.lower_bound) {
        if (c.exact) {
          entry.count = c.cost;
          entry.lower_bound = false;
        } else {
          entry.count = std::max(entry.count, best_cost + 1);
        }
      }
    }
  }

  return {best_var, best_cost};
}

VarPartitionResult BoundSetSearch::select(const IsfBdd& f,
                                          const std::vector<int>& support,
                                          const VarPartitionOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ++stats_.selects;

  // hyde-reorder-scope: the memo keys on raw node ids of mgr_ and the
  // snapshots copy its current DAG shape; both are valid only within one
  // reorder epoch of the source manager.
  if (mgr_.reorder_epoch() != observed_epoch_) {
    if (!memo_->table.empty()) ++stats_.memo_clears;
    clear_memo();
    observed_epoch_ = mgr_.reorder_epoch();
  }

  VarPartitionResult result;
  if (options.bound_size <= 0 ||
      options.bound_size > static_cast<int>(support.size())) {
    stats_.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;  // no valid partition
  }
  if (options.bound_size > kMaxBoundVars) {
    throw std::invalid_argument("select_bound_set: bound size too large");
  }

  std::vector<int> preferred, avoided;
  for (int v : support) {
    if (std::find(options.avoid.begin(), options.avoid.end(), v) !=
        options.avoid.end()) {
      avoided.push_back(v);
    } else {
      preferred.push_back(v);
    }
  }

  // Greedy growth: add the candidate minimizing the column count; avoided
  // variables are considered only once the preferred pool is exhausted.
  std::vector<int> bound;
  while (static_cast<int>(bound.size()) < options.bound_size) {
    std::vector<int>& pool = !preferred.empty() ? preferred : avoided;
    if (pool.empty()) break;
    const auto [best_var, best_cost] =
        grow_step(f, support, bound, pool, options);
    (void)best_cost;
    bound.push_back(best_var);
    pool.erase(std::find(pool.begin(), pool.end(), best_var));
  }
  std::sort(bound.begin(), bound.end());

  DecompSpec spec;
  spec.mgr = &mgr_;
  spec.f = f;
  spec.bound = bound;
  std::vector<char> in_bound(static_cast<std::size_t>(mgr_.num_vars()), 0);
  for (int v : bound) in_bound[static_cast<std::size_t>(v)] = 1;
  for (int v : support) {
    if (!in_bound[static_cast<std::size_t>(v)]) spec.free.push_back(v);
  }
  result.bound = spec.bound;
  result.free = spec.free;
  result.num_classes = count_compatible_classes(spec, options.dc_policy);
  result.success = true;
  if (options.require_nontrivial &&
      result.code_bits() >= static_cast<int>(result.bound.size())) {
    result.success = false;
  }

  stats_.seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace hyde::decomp
