#include "decomp/step.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hyde::decomp {

namespace {

int bits_for(int num_classes) {
  int bits = 0;
  while ((1 << bits) < num_classes) ++bits;
  return bits;
}

/// SplitMix64: small, deterministic, good-enough mixing for seeded shuffles.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

bool Encoding::is_rigid() const {
  return num_bits == bits_for(static_cast<int>(codes.size()));
}

void Encoding::validate(int num_classes) const {
  if (static_cast<int>(codes.size()) != num_classes) {
    throw std::invalid_argument("Encoding: code count != class count");
  }
  if (num_bits < bits_for(num_classes) || num_bits > 31) {
    throw std::invalid_argument("Encoding: bad bit width");
  }
  std::vector<std::uint32_t> sorted = codes;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Encoding: duplicate codes (must be strict)");
  }
  for (std::uint32_t c : sorted) {
    if (num_bits < 32 && c >= (std::uint32_t{1} << num_bits)) {
      throw std::invalid_argument("Encoding: code exceeds bit width");
    }
  }
}

Encoding identity_encoding(int num_classes) {
  Encoding e;
  e.num_bits = bits_for(num_classes);
  e.codes.resize(static_cast<std::size_t>(num_classes));
  std::iota(e.codes.begin(), e.codes.end(), 0u);
  return e;
}

Encoding random_encoding(int num_classes, std::uint64_t seed) {
  Encoding e;
  e.num_bits = bits_for(num_classes);
  // Shuffle the code space and take the first num_classes codes.
  std::vector<std::uint32_t> space(std::size_t{1} << e.num_bits);
  std::iota(space.begin(), space.end(), 0u);
  std::uint64_t state = seed;
  for (std::size_t i = space.size(); i > 1; --i) {
    const std::size_t j = splitmix64(state) % i;
    std::swap(space[i - 1], space[j]);
  }
  e.codes.assign(space.begin(), space.begin() + num_classes);
  return e;
}

IsfBdd build_image(bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
                   const Encoding& encoding, const std::vector<int>& alpha_vars) {
  encoding.validate(static_cast<int>(functions.size()));
  if (static_cast<int>(alpha_vars.size()) != encoding.num_bits) {
    throw std::invalid_argument("build_image: alpha_vars size != num_bits");
  }
  for (int v : alpha_vars) mgr.ensure_vars(v + 1);
  bdd::Bdd g_on = mgr.zero();
  bdd::Bdd g_dc = mgr.zero();
  bdd::Bdd used_codes = mgr.zero();
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const bdd::Bdd cube = minterm_cube(mgr, alpha_vars, encoding.codes[i]);
    g_on = g_on | (cube & functions[i].on);
    g_dc = g_dc | (cube & functions[i].dc);
    used_codes = used_codes | cube;
  }
  g_dc = g_dc | ~used_codes;
  return IsfBdd{std::move(g_on), std::move(g_dc)};
}

DecompStep build_step(bdd::Manager& mgr, const ClassResult& classes,
                      const std::vector<int>& bound, const std::vector<int>& free,
                      const Encoding& encoding,
                      const std::vector<int>& alpha_vars) {
  encoding.validate(classes.num_classes());
  if (static_cast<int>(alpha_vars.size()) != encoding.num_bits) {
    throw std::invalid_argument("build_step: alpha_vars size != num_bits");
  }
  for (int v : alpha_vars) {
    mgr.ensure_vars(v + 1);
    if (std::find(bound.begin(), bound.end(), v) != bound.end() ||
        std::find(free.begin(), free.end(), v) != free.end()) {
      throw std::invalid_argument("build_step: alpha var collides with X/Y");
    }
  }

  DecompStep step;
  step.bound = bound;
  step.free = free;
  step.encoding = encoding;
  step.alpha_vars = alpha_vars;

  // α_j(X) = union of indicators of classes with bit j set.
  for (int j = 0; j < encoding.num_bits; ++j) {
    bdd::Bdd alpha = mgr.zero();
    for (int i = 0; i < classes.num_classes(); ++i) {
      if ((encoding.codes[static_cast<std::size_t>(i)] >> j) & 1) {
        alpha = alpha | classes.classes[static_cast<std::size_t>(i)].indicator;
      }
    }
    step.alphas.push_back(std::move(alpha));
  }

  // Image g over alpha_vars ∪ free: class i's behaviour under its code;
  // unassigned codes are fully don't-care.
  std::vector<IsfBdd> functions;
  functions.reserve(static_cast<std::size_t>(classes.num_classes()));
  for (const CompatibleClass& cls : classes.classes) {
    functions.push_back(cls.function);
  }
  step.image = build_image(mgr, functions, encoding, alpha_vars);
  return step;
}

bool verify_step(bdd::Manager& mgr, const IsfBdd& f, const DecompStep& step) {
  // Compose g(α(x), y): substitute each alpha input variable by α_j(x) and
  // pick *some* completion of g's don't cares; correctness means f's onset
  // implies g's (on ∪ dc) under composition and f's offset implies
  // (off ∪ dc). Equivalently: composed g_on must not hit f's offset and
  // composed g_off must not hit f's onset.
  std::unordered_map<int, bdd::Bdd, std::hash<int>> subst;
  for (std::size_t j = 0; j < step.alpha_vars.size(); ++j) {
    subst.emplace(step.alpha_vars[j], step.alphas[j]);
  }
  const bdd::Bdd composed_on = mgr.vector_compose(step.image.on, subst);
  const bdd::Bdd composed_off = mgr.vector_compose(step.image.off(), subst);
  const bdd::Bdd f_off = f.off();
  return mgr.disjoint(composed_on, f_off) && mgr.disjoint(composed_off, f.on);
}

}  // namespace hyde::decomp
