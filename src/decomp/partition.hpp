/// \file partition.hpp
/// \brief Partitions (Π) — symbolic column-pattern notation (Definition 3.1).
///
/// A partition is the symbolic signature of a function's chart w.r.t. a
/// *position* variable set P: position p (an assignment to P) carries a
/// symbol identifying the residual pattern f(p, ·). Two positions carry the
/// same symbol iff their patterns are equal. Symbols are *global,
/// content-based* identifiers drawn from a shared SymbolTable, so that
/// symbols can be compared across partitions — Example 3.2's Π's and the Bc
/// benefit of Step 7 require exactly this.
///
/// The module also provides the conjunction partition Πc (vertical stacking
/// in the same chart column), the disjunction partition Πd (horizontal
/// concatenation in the same row), multiplicity, and containment
/// (Definition 4.6), which underpins the pliable-sharing Theorems 4.3/4.4.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "decomp/chart.hpp"

namespace hyde::decomp {

/// Interns pattern content as dense symbol ids shared across partitions.
class SymbolTable {
 public:
  /// Returns the symbol for an (on, dc) pattern pair, interning new content.
  int id_of(const bdd::Bdd& on, const bdd::Bdd& dc);
  /// Number of distinct symbols interned so far ("n kinds of symbols").
  int size() const { return static_cast<int>(holders_.size()); }

 private:
  std::unordered_map<std::uint64_t, int> ids_;
  std::vector<std::pair<bdd::Bdd, bdd::Bdd>> holders_;  // keeps content alive
};

/// A partition: symbols[p] is the symbol at position p.
struct Partition {
  std::vector<int> symbols;

  int num_positions() const { return static_cast<int>(symbols.size()); }
  /// Number of distinct symbols (the paper's "multiplicity").
  int multiplicity() const;
  /// Groups of positions carrying equal symbols, each of size >= 2,
  /// deterministically ordered — the paper's "positions with the same
  /// content" (Psc) sets of Figure 4(a).
  std::vector<std::vector<int>> same_content_position_sets() const;
  /// Renumbers symbols by first occurrence (canonical form, content ignored).
  Partition canonical() const;
  /// "<s0,s1,...>" display form used throughout the paper.
  std::string to_string() const;

  bool operator==(const Partition&) const = default;
};

/// Builds the partition of \p f w.r.t. the position variables: position p is
/// an assignment to \p position_vars (bit i ↦ position_vars[i]); the symbol
/// is the interned content of the residual cofactor.
Partition make_partition(bdd::Manager& mgr, const IsfBdd& f,
                         const std::vector<int>& position_vars,
                         SymbolTable& symbols);

/// One (position, residual pattern) pair of a partition, carried in
/// make_partition's exact low-cofactor-first visit order.
struct PositionPattern {
  std::uint64_t position = 0;
  IsfBdd pattern;
};

/// The manager-local half of make_partition: enumerates the (position,
/// pattern) pairs without touching a SymbolTable, so it can run inside a
/// private snapshot manager on a worker thread. Emission order equals
/// make_partition's visit order, making
///   intern_partition(partition_patterns(mgr, f, P), P.size(), symbols)
/// produce the same Partition — and leave \p symbols in the same state — as
/// make_partition(mgr, f, P, symbols).
std::vector<PositionPattern> partition_patterns(
    bdd::Manager& mgr, const IsfBdd& f, const std::vector<int>& position_vars);

/// Folds pre-enumerated (position, pattern) pairs into a Partition, interning
/// each pattern in emission order. The pattern BDDs must live in the manager
/// whose content the SymbolTable identifies.
Partition intern_partition(const std::vector<PositionPattern>& patterns,
                           int num_position_vars, SymbolTable& symbols);

/// Conjunction partition Πc: position-wise tuples of the operands' symbols,
/// renumbered by first occurrence. Note the result's symbols live in a local
/// namespace (tuples have no global content); use it for multiplicity and
/// containment analysis. All operands must share the position count.
Partition conjunction(const std::vector<Partition>& parts);

/// Disjunction partition Πd: concatenation of the operands' symbol strings
/// (global symbols preserved), as used to represent merged row sets.
Partition disjunction(const std::vector<Partition>& parts);

/// Definition 4.6: A is contained by B iff multiplicity(B) equals
/// multiplicity(Πc{A, B}).
bool contained_in(const Partition& a, const Partition& b);

}  // namespace hyde::decomp
