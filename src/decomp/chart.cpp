#include "decomp/chart.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "bdd/transfer.hpp"

namespace hyde::decomp {

namespace {

std::uint64_t pattern_key(const bdd::Bdd& on, const bdd::Bdd& dc) {
  return (static_cast<std::uint64_t>(on.id()) << 32) | dc.id();
}

void check_spec(const DecompSpec& spec) {
  if (spec.mgr == nullptr) {
    throw std::invalid_argument("DecompSpec: null manager");
  }
  if (static_cast<int>(spec.bound.size()) > kMaxBoundVars) {
    throw std::invalid_argument("DecompSpec: bound set too large to enumerate");
  }
}

/// The (on, dc) pair graph above the cut: f transferred into a manager whose
/// order puts bound[i] at level i, then both BDDs walked in lock step over
/// levels 0..p-1. Each distinct pair fully below the cut is one chart column;
/// each internal pair branches on its top level toward two child pairs.
///
/// Columns are registered in DFS low-first discovery order, which equals the
/// first-occurrence order of patterns in the recursive-cofactor enumeration
/// (depth i assigns bit i, low branch first) — the order downstream clique
/// partitioning depends on.
struct CutChart {
  struct PairNode {
    bdd::Bdd on, dc;  // handles pin node ids in the cut manager
    int level;        // branching level, < |bound|
    // Child edges: pair index when >= 0, ~column index when < 0.
    std::int64_t lo = 0, hi = 0;
  };

  bdd::Manager cut_mgr;
  std::vector<PairNode> internals;  // discovery order (DFS pre-order)
  std::vector<std::pair<bdd::Bdd, bdd::Bdd>> columns;  // discovery order
  std::int64_t root = 0;
  int cut_level = 0;
  std::vector<int> var_map;  // source var -> cut level (-1 = unused)
  int max_columns = 0;   ///< abandon once columns.size() exceeds this (0 = off)
  bool aborted = false;  ///< traversal stopped early; columns is a prefix

  explicit CutChart(const DecompSpec& spec, int max_columns_limit = 0)
      : cut_mgr(static_cast<int>(spec.bound.size() + spec.free.size())),
        cut_level(static_cast<int>(spec.bound.size())),
        max_columns(max_columns_limit) {
    bdd::Manager& src = *spec.mgr;
    var_map.assign(static_cast<std::size_t>(src.num_vars()), -1);
    int next = 0;
    for (int v : spec.bound) var_map[static_cast<std::size_t>(v)] = next++;
    for (int v : spec.free) var_map[static_cast<std::size_t>(v)] = next++;
    // Support variables the spec's free list missed still go below the cut:
    // the recursive reference tolerates an incomplete free list (it only
    // cofactors the bound set), so the cut path must too.
    for (int v : src.support(spec.f.on)) {
      if (var_map[static_cast<std::size_t>(v)] < 0) {
        var_map[static_cast<std::size_t>(v)] = next++;
      }
    }
    for (int v : src.support(spec.f.dc)) {
      if (var_map[static_cast<std::size_t>(v)] < 0) {
        var_map[static_cast<std::size_t>(v)] = next++;
      }
    }
    const bdd::Bdd on = bdd::transfer(spec.f.on, cut_mgr, var_map);
    const bdd::Bdd dc = bdd::transfer(spec.f.dc, cut_mgr, var_map);
    root = visit(on, dc);
  }

  bool below_cut(const bdd::Bdd& g) const {
    return g.is_constant() || g.top_var() >= cut_level;
  }

  std::int64_t visit(const bdd::Bdd& f_on, const bdd::Bdd& f_dc) {
    const std::uint64_t key = pattern_key(f_on, f_dc);
    if (below_cut(f_on) && below_cut(f_dc)) {
      auto [it, inserted] = column_memo_.emplace(key, columns.size());
      if (inserted) {
        columns.emplace_back(f_on, f_dc);
        // Early exit: one column past the threshold proves the candidate
        // cannot beat the incumbent, so the rest of the chart is moot. The
        // pair graph is left half-built — bounded charts are count-only.
        if (max_columns > 0 &&
            static_cast<int>(columns.size()) > max_columns) {
          aborted = true;
        }
      }
      return ~static_cast<std::int64_t>(it->second);
    }
    if (auto it = pair_memo_.find(key); it != pair_memo_.end()) {
      return static_cast<std::int64_t>(it->second);
    }
    int level = INT32_MAX;
    if (!below_cut(f_on)) level = std::min(level, f_on.top_var());
    if (!below_cut(f_dc)) level = std::min(level, f_dc.top_var());
    const std::size_t idx = internals.size();
    internals.push_back(PairNode{f_on, f_dc, level});
    pair_memo_.emplace(key, idx);
    auto child = [&](const bdd::Bdd& g, bool hi) {
      if (g.is_constant() || g.top_var() != level) return g;
      return hi ? g.high() : g.low();
    };
    const std::int64_t lo = visit(child(f_on, false), child(f_dc, false));
    internals[idx].lo = lo;
    if (aborted) return static_cast<std::int64_t>(idx);
    const std::int64_t hi = visit(child(f_on, true), child(f_dc, true));
    internals[idx].hi = hi;
    return static_cast<std::int64_t>(idx);
  }

  /// Per-column indicator over the cut manager's bound levels, by one
  /// top-down sweep. Pair levels strictly increase toward children (each
  /// edge consumes the parent's branching level), so sweeping pairs in level
  /// order guarantees every pair's cube set is final before it is pushed
  /// across its child edges — discovery order alone would not (a later pair
  /// may have a cross edge back to an earlier-discovered one).
  std::vector<bdd::Bdd> column_indicators() {
    std::vector<bdd::Bdd> ind(internals.size(), cut_mgr.zero());
    std::vector<bdd::Bdd> col_ind(columns.size(), cut_mgr.zero());
    auto add = [&](std::int64_t edge, const bdd::Bdd& g) {
      if (edge < 0) {
        col_ind[static_cast<std::size_t>(~edge)] =
            col_ind[static_cast<std::size_t>(~edge)] | g;
      } else {
        ind[static_cast<std::size_t>(edge)] =
            ind[static_cast<std::size_t>(edge)] | g;
      }
    };
    add(root, cut_mgr.one());
    std::vector<std::size_t> order(internals.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return internals[a].level < internals[b].level;
                     });
    for (std::size_t i : order) {
      const PairNode& p = internals[i];
      add(p.lo, ind[i] & cut_mgr.nvar(p.level));
      add(p.hi, ind[i] & cut_mgr.var(p.level));
    }
    return col_ind;
  }

  /// Materializes per-column minterm lists by replaying the full 2^p
  /// assignment walk over the pair graph (levels the graph skips branch both
  /// ways). Reproduces the recursive enumeration's per-column minterm order.
  void fill_minterms(std::vector<Column>* out) const {
    std::function<void(std::int64_t, int, std::uint64_t)> walk =
        [&](std::int64_t edge, int level, std::uint64_t m) {
          if (level == cut_level) {
            // Internal pairs all branch at levels < cut_level, so a fully
            // assigned path always ends on a column edge.
            (*out)[static_cast<std::size_t>(~edge)].minterms.push_back(m);
            return;
          }
          if (edge >= 0 &&
              internals[static_cast<std::size_t>(edge)].level == level) {
            const PairNode& p = internals[static_cast<std::size_t>(edge)];
            walk(p.lo, level + 1, m);
            walk(p.hi, level + 1, m | (std::uint64_t{1} << level));
          } else {
            walk(edge, level + 1, m);
            walk(edge, level + 1, m | (std::uint64_t{1} << level));
          }
        };
    walk(root, 0, 0);
  }

 private:
  std::unordered_map<std::uint64_t, std::size_t> pair_memo_;
  std::unordered_map<std::uint64_t, std::size_t> column_memo_;
};

}  // namespace

bdd::Bdd minterm_cube(bdd::Manager& mgr, const std::vector<int>& vars,
                      std::uint64_t minterm) {
  // AND literals highest variable first: each step then conjoins a literal
  // strictly above the cube's top variable, which the AND kernel resolves
  // with a single make_node instead of a recursive descent.
  std::vector<std::pair<int, bool>> literals;
  literals.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    literals.emplace_back(vars[i], ((minterm >> i) & 1) != 0);
  }
  std::sort(literals.begin(), literals.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  bdd::Bdd cube = mgr.one();
  for (const auto& [var, value] : literals) {
    cube = (value ? mgr.var(var) : mgr.nvar(var)) & cube;
  }
  return cube;
}

std::vector<Column> enumerate_columns(const DecompSpec& spec) {
  check_spec(spec);
  bdd::Manager& src = *spec.mgr;
  CutChart chart(spec);
  const std::vector<bdd::Bdd> cut_indicators = chart.column_indicators();

  // Transfer patterns and indicators back into the source manager; BDD
  // canonicity makes the results node-identical to the recursive reference.
  std::vector<int> inverse(
      static_cast<std::size_t>(chart.cut_mgr.num_vars()), -1);
  for (std::size_t v = 0; v < chart.var_map.size(); ++v) {
    if (chart.var_map[v] >= 0 &&
        chart.var_map[v] < static_cast<int>(inverse.size())) {
      inverse[static_cast<std::size_t>(chart.var_map[v])] = static_cast<int>(v);
    }
  }

  std::vector<Column> columns;
  columns.reserve(chart.columns.size());
  for (std::size_t c = 0; c < chart.columns.size(); ++c) {
    Column column;
    column.pattern.on = bdd::transfer(chart.columns[c].first, src, inverse);
    column.pattern.dc = bdd::transfer(chart.columns[c].second, src, inverse);
    column.indicator = bdd::transfer(cut_indicators[c], src, inverse);
    columns.push_back(std::move(column));
  }
  if (spec.include_minterms) chart.fill_minterms(&columns);
  return columns;
}

std::vector<ColumnSignature> column_signatures(
    const DecompSpec& spec, const std::vector<Column>& columns, int max_rows) {
  if (max_rows <= 0 || columns.empty()) return {};
  bdd::Manager& mgr = *spec.mgr;
  // Shared signature variable set: the sorted union of the pattern supports.
  // Free variables no pattern depends on only pad the row space without
  // affecting the compatibility predicate, so they are dropped.
  std::vector<char> used(static_cast<std::size_t>(mgr.num_vars()), 0);
  for (const Column& c : columns) {
    for (const int v : mgr.support(c.pattern.on)) {
      used[static_cast<std::size_t>(v)] = 1;
    }
    for (const int v : mgr.support(c.pattern.dc)) {
      used[static_cast<std::size_t>(v)] = 1;
    }
  }
  std::vector<int> row_vars;
  for (int v = 0; v < mgr.num_vars(); ++v) {
    if (used[static_cast<std::size_t>(v)] != 0) row_vars.push_back(v);
  }
  const int nv = static_cast<int>(row_vars.size());
  if (nv > tt::TruthTable::kMaxVars || nv > 30 ||
      (std::int64_t{1} << nv) > max_rows) {
    return {};  // row space too large; caller falls back to BDD tests
  }
  const std::uint64_t rows = std::uint64_t{1} << nv;
  const std::size_t words = static_cast<std::size_t>((rows + 63) / 64);
  const unsigned tail_bits = static_cast<unsigned>(rows % 64);
  const std::uint64_t tail_mask =
      tail_bits == 0 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << tail_bits) - 1;

  std::vector<ColumnSignature> sigs(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const tt::TruthTable on_tt =
        mgr.to_truth_table(columns[i].pattern.on, row_vars);
    const tt::TruthTable dc_tt =
        mgr.to_truth_table(columns[i].pattern.dc, row_vars);
    sigs[i].on = on_tt.words();
    const std::vector<std::uint64_t>& dc_words = dc_tt.words();
    sigs[i].care.resize(words);
    for (std::size_t w = 0; w < words; ++w) {
      sigs[i].care[w] = ~dc_words[w];
    }
    // TruthTable zeroes its own tail bits; complementing set them, so mask
    // the care tail back to zero to keep whole-word tests sound.
    sigs[i].care[words - 1] &= tail_mask;
  }
  return sigs;
}

std::vector<Column> enumerate_columns_recursive(const DecompSpec& spec) {
  check_spec(spec);
  bdd::Manager& mgr = *spec.mgr;
  std::vector<Column> columns;
  std::unordered_map<std::uint64_t, std::size_t> index_of;

  // Walk all 2^|bound| assignments by successive cofactoring; patterns that
  // coincide as (on, dc) BDD pairs are merged into one column.
  std::function<void(std::size_t, const bdd::Bdd&, const bdd::Bdd&, std::uint64_t)>
      rec = [&](std::size_t depth, const bdd::Bdd& on, const bdd::Bdd& dc,
                std::uint64_t minterm) {
        if (depth == spec.bound.size()) {
          const std::uint64_t key = pattern_key(on, dc);
          auto [it, inserted] = index_of.emplace(key, columns.size());
          if (inserted) {
            columns.push_back(Column{IsfBdd{on, dc}, mgr.zero(), {}});
          }
          columns[it->second].minterms.push_back(minterm);
          return;
        }
        const int var = spec.bound[depth];
        rec(depth + 1, mgr.cofactor(on, var, false), mgr.cofactor(dc, var, false),
            minterm);
        rec(depth + 1, mgr.cofactor(on, var, true), mgr.cofactor(dc, var, true),
            minterm | (std::uint64_t{1} << depth));
      };
  rec(0, spec.f.on, spec.f.dc, 0);

  for (Column& column : columns) {
    bdd::Bdd indicator = mgr.zero();
    for (std::uint64_t m : column.minterms) {
      indicator = indicator | minterm_cube(mgr, spec.bound, m);
    }
    column.indicator = std::move(indicator);
  }
  return columns;
}

int count_columns_via_cut(const DecompSpec& spec) {
  if (spec.mgr == nullptr) {
    throw std::invalid_argument("DecompSpec: null manager");
  }
  return static_cast<int>(CutChart(spec).columns.size());
}

BoundedCount count_columns_bounded(const DecompSpec& spec, int max_columns) {
  if (spec.mgr == nullptr) {
    throw std::invalid_argument("DecompSpec: null manager");
  }
  const CutChart chart(spec, max_columns > 0 ? max_columns : 0);
  return BoundedCount{static_cast<int>(chart.columns.size()), chart.aborted};
}

int count_columns(const DecompSpec& spec) {
  check_spec(spec);
  return static_cast<int>(CutChart(spec).columns.size());
}

int count_columns_recursive(const DecompSpec& spec) {
  check_spec(spec);
  bdd::Manager& mgr = *spec.mgr;
  // Hold handles so GC cannot recycle pattern ids mid-enumeration.
  std::unordered_map<std::uint64_t, std::pair<bdd::Bdd, bdd::Bdd>> seen;
  std::function<void(std::size_t, const bdd::Bdd&, const bdd::Bdd&)> rec =
      [&](std::size_t depth, const bdd::Bdd& on, const bdd::Bdd& dc) {
        if (depth == spec.bound.size()) {
          seen.emplace(pattern_key(on, dc), std::make_pair(on, dc));
          return;
        }
        const int var = spec.bound[depth];
        rec(depth + 1, mgr.cofactor(on, var, false),
            mgr.cofactor(dc, var, false));
        rec(depth + 1, mgr.cofactor(on, var, true), mgr.cofactor(dc, var, true));
      };
  rec(0, spec.f.on, spec.f.dc);
  return static_cast<int>(seen.size());
}

}  // namespace hyde::decomp
