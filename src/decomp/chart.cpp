#include "decomp/chart.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "bdd/transfer.hpp"

namespace hyde::decomp {

namespace {

std::uint64_t pattern_key(const bdd::Bdd& on, const bdd::Bdd& dc) {
  return (static_cast<std::uint64_t>(on.id()) << 32) | dc.id();
}

void check_spec(const DecompSpec& spec) {
  if (spec.mgr == nullptr) {
    throw std::invalid_argument("DecompSpec: null manager");
  }
  if (static_cast<int>(spec.bound.size()) > kMaxBoundVars) {
    throw std::invalid_argument("DecompSpec: bound set too large to enumerate");
  }
}

}  // namespace

bdd::Bdd minterm_cube(bdd::Manager& mgr, const std::vector<int>& vars,
                      std::uint64_t minterm) {
  bdd::Bdd cube = mgr.one();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    cube = cube & (((minterm >> i) & 1) ? mgr.var(vars[i]) : mgr.nvar(vars[i]));
  }
  return cube;
}

std::vector<Column> enumerate_columns(const DecompSpec& spec) {
  check_spec(spec);
  bdd::Manager& mgr = *spec.mgr;
  std::vector<Column> columns;
  std::unordered_map<std::uint64_t, std::size_t> index_of;

  // Walk all 2^|bound| assignments by successive cofactoring; patterns that
  // coincide as (on, dc) BDD pairs are merged into one column.
  std::function<void(std::size_t, const bdd::Bdd&, const bdd::Bdd&, std::uint64_t)>
      rec = [&](std::size_t depth, const bdd::Bdd& on, const bdd::Bdd& dc,
                std::uint64_t minterm) {
        if (depth == spec.bound.size()) {
          const std::uint64_t key = pattern_key(on, dc);
          auto [it, inserted] = index_of.emplace(key, columns.size());
          if (inserted) {
            columns.push_back(Column{IsfBdd{on, dc}, mgr.zero(), {}});
          }
          columns[it->second].minterms.push_back(minterm);
          return;
        }
        const int var = spec.bound[depth];
        rec(depth + 1, mgr.cofactor(on, var, false), mgr.cofactor(dc, var, false),
            minterm);
        rec(depth + 1, mgr.cofactor(on, var, true), mgr.cofactor(dc, var, true),
            minterm | (std::uint64_t{1} << depth));
      };
  rec(0, spec.f.on, spec.f.dc, 0);

  for (Column& column : columns) {
    bdd::Bdd indicator = mgr.zero();
    for (std::uint64_t m : column.minterms) {
      indicator = indicator | minterm_cube(mgr, spec.bound, m);
    }
    column.indicator = std::move(indicator);
  }
  return columns;
}

int count_columns_via_cut(const DecompSpec& spec) {
  if (spec.mgr == nullptr) {
    throw std::invalid_argument("DecompSpec: null manager");
  }
  bdd::Manager& src = *spec.mgr;
  // Reorder by transfer: bound variables become 0..p-1 (the top of the
  // identity order), free variables follow.
  bdd::Manager cut_mgr(static_cast<int>(spec.bound.size() + spec.free.size()));
  std::vector<int> var_map(static_cast<std::size_t>(src.num_vars()), -1);
  int next = 0;
  for (int v : spec.bound) var_map[static_cast<std::size_t>(v)] = next++;
  for (int v : spec.free) var_map[static_cast<std::size_t>(v)] = next++;
  const bdd::Bdd on = bdd::transfer(spec.f.on, cut_mgr, var_map);
  const bdd::Bdd dc = bdd::transfer(spec.f.dc, cut_mgr, var_map);

  // Walk the top (bound) region of both BDDs in lock step; each distinct
  // (on, dc) pair reached at the cut is one column pattern.
  const int cut_level = static_cast<int>(spec.bound.size());
  std::set<std::pair<std::uint32_t, std::uint32_t>> below;
  std::set<std::pair<std::uint32_t, std::uint32_t>> visited;
  std::vector<std::pair<bdd::Bdd, bdd::Bdd>> stack{{on, dc}};
  // Hold handles for every discovered node pair so ids stay stable.
  std::vector<std::pair<bdd::Bdd, bdd::Bdd>> holders;
  while (!stack.empty()) {
    auto [f_on, f_dc] = stack.back();
    stack.pop_back();
    const bool on_below = f_on.is_constant() || f_on.top_var() >= cut_level;
    const bool dc_below = f_dc.is_constant() || f_dc.top_var() >= cut_level;
    if (on_below && dc_below) {
      below.insert({f_on.id(), f_dc.id()});
      holders.emplace_back(f_on, f_dc);
      continue;
    }
    if (!visited.insert({f_on.id(), f_dc.id()}).second) continue;
    holders.emplace_back(f_on, f_dc);
    int top = INT32_MAX;
    if (!on_below) top = std::min(top, f_on.top_var());
    if (!dc_below) top = std::min(top, f_dc.top_var());
    auto child = [&](const bdd::Bdd& g, bool hi) {
      if (g.is_constant() || g.top_var() != top) return g;
      return hi ? g.high() : g.low();
    };
    stack.push_back({child(f_on, false), child(f_dc, false)});
    stack.push_back({child(f_on, true), child(f_dc, true)});
  }
  return static_cast<int>(below.size());
}

int count_columns(const DecompSpec& spec) {
  check_spec(spec);
  bdd::Manager& mgr = *spec.mgr;
  // Hold handles so GC cannot recycle pattern ids mid-enumeration.
  std::unordered_map<std::uint64_t, std::pair<bdd::Bdd, bdd::Bdd>> seen;
  std::function<void(std::size_t, const bdd::Bdd&, const bdd::Bdd&)> rec =
      [&](std::size_t depth, const bdd::Bdd& on, const bdd::Bdd& dc) {
        if (depth == spec.bound.size()) {
          seen.emplace(pattern_key(on, dc), std::make_pair(on, dc));
          return;
        }
        const int var = spec.bound[depth];
        rec(depth + 1, mgr.cofactor(on, var, false),
            mgr.cofactor(dc, var, false));
        rec(depth + 1, mgr.cofactor(on, var, true), mgr.cofactor(dc, var, true));
      };
  rec(0, spec.f.on, spec.f.dc);
  return static_cast<int>(seen.size());
}

}  // namespace hyde::decomp
