#include "graph/matching.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace hyde::graph {

// ---------------------------------------------------------------------------
// Clique partitioning (Tseng/Siewiorek-style heuristic, per [9])
// ---------------------------------------------------------------------------

namespace {

// Packed-adjacency primitives. A super-vertex's neighbourhood is a bitset of
// `words` uint64 words; rows carry no self bits and dead super-vertices keep
// all-zero rows with their columns cleared everywhere, so raw word ops need
// no alive mask.

// hyde-hot
inline bool row_bit(const std::uint64_t* row, int k) {
  return ((row[static_cast<std::size_t>(k) >> 6U] >>
           (static_cast<unsigned>(k) & 63U)) &
          1U) != 0U;
}

// hyde-hot
inline void row_bit_assign(std::uint64_t* row, int k, bool value) {
  const std::uint64_t mask = std::uint64_t{1}
                             << (static_cast<unsigned>(k) & 63U);
  if (value) {
    row[static_cast<std::size_t>(k) >> 6U] |= mask;
  } else {
    row[static_cast<std::size_t>(k) >> 6U] &= ~mask;
  }
}

// hyde-hot
inline int row_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
  int count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += std::popcount(a[w] & b[w]);
  }
  return count;
}

/// Merge-pair selection: scans alive adjacent pairs in ascending (a, b)
/// order and keeps the first pair attaining the maximum common-neighbour
/// count — the reference implementation's tie-break (strict `>`).
// hyde-hot
inline bool select_merge_pair(int n, std::size_t words, const char* alive,
                              const std::uint64_t* adj, const int* cn,
                              int* best_a, int* best_b) {
  int best_common = -1;
  *best_a = -1;
  *best_b = -1;
  for (int a = 0; a < n; ++a) {
    if (alive[static_cast<std::size_t>(a)] == 0) continue;
    const std::uint64_t* row = adj + static_cast<std::size_t>(a) * words;
    const int* counts =
        cn + static_cast<std::size_t>(a) * static_cast<std::size_t>(n);
    for (int b = a + 1; b < n; ++b) {
      if (alive[static_cast<std::size_t>(b)] == 0) continue;
      if (!row_bit(row, b)) continue;
      if (counts[static_cast<std::size_t>(b)] > best_common) {
        best_common = counts[static_cast<std::size_t>(b)];
        *best_a = a;
        *best_b = b;
      }
    }
  }
  return *best_a >= 0;
}

/// Adds `delta` to the common-neighbour count of every unordered pair drawn
/// from `list[0..count)` — the inclusion-exclusion building block of the
/// incremental merge update.
// hyde-hot
inline void adjust_pair_counts(const int* list, int count, int delta, int* cn,
                               int n) {
  for (int i = 0; i < count; ++i) {
    int* row = cn + static_cast<std::size_t>(list[i]) *
                        static_cast<std::size_t>(n);
    for (int j = i + 1; j < count; ++j) {
      row[static_cast<std::size_t>(list[j])] += delta;
      cn[static_cast<std::size_t>(list[j]) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(list[i])] += delta;
    }
  }
}

}  // namespace

std::vector<std::vector<int>> clique_partition(
    int n, const std::vector<std::vector<char>>& adjacent) {
  if (static_cast<int>(adjacent.size()) != n) {
    throw std::invalid_argument("clique_partition: adjacency size mismatch");
  }
  if (n == 0) return {};
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t words = (un + 63) / 64;

  // Packed super-vertex adjacency rows (self loops dropped) plus the dense
  // common-neighbour matrix cn[a·n+b] = |N(a) ∩ N(b)|. Both are maintained
  // incrementally across merges; cn always equals the reference recount
  // because rows carry no self bits and dead columns are cleared, so the
  // popcount of a row intersection never counts a, b, or dead vertices.
  std::vector<std::uint64_t> adj(un * words, 0);
  for (int i = 0; i < n; ++i) {
    std::uint64_t* row = adj.data() + static_cast<std::size_t>(i) * words;
    for (int j = 0; j < n; ++j) {
      if (i != j &&
          adjacent[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] !=
              0) {
        row_bit_assign(row, j, true);
      }
    }
  }
  std::vector<int> cn(un * un, 0);
  for (int a = 0; a < n; ++a) {
    const std::uint64_t* row_a = adj.data() + static_cast<std::size_t>(a) * words;
    for (int b = a + 1; b < n; ++b) {
      const int c = row_and_popcount(
          row_a, adj.data() + static_cast<std::size_t>(b) * words, words);
      cn[static_cast<std::size_t>(a) * un + static_cast<std::size_t>(b)] = c;
      cn[static_cast<std::size_t>(b) * un + static_cast<std::size_t>(a)] = c;
    }
  }

  std::vector<std::vector<int>> members(un);
  std::vector<char> alive(un, 1);
  for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = {i};

  // Scratch neighbour lists, reused across merges.
  std::vector<int> na, nb, nab;
  na.reserve(un);
  nb.reserve(un);
  nab.reserve(un);

  int best_a = -1;
  int best_b = -1;
  while (select_merge_pair(n, words, alive.data(), adj.data(), cn.data(),
                           &best_a, &best_b)) {
    std::uint64_t* row_a = adj.data() + static_cast<std::size_t>(best_a) * words;
    std::uint64_t* row_b = adj.data() + static_cast<std::size_t>(best_b) * words;
    // Gather N(a)\{b}, N(b)\{a} and N(a)∩N(b) before touching the rows.
    na.clear();
    nb.clear();
    nab.clear();
    for (int k = 0; k < n; ++k) {
      const bool in_a = row_bit(row_a, k);
      const bool in_b = row_bit(row_b, k);
      if (in_a && k != best_b) na.push_back(k);
      if (in_b && k != best_a) nb.push_back(k);
      if (in_a && in_b) nab.push_back(k);
    }
    // For every pair (k, l) of other super-vertices the merged vertex
    // contributes one common neighbour iff k, l ⊆ N(a) ∩ N(b), where a and b
    // contributed independently before, so
    //   Δcn(k,l) = [k,l ⊆ N(a)∩N(b)] − [k,l ⊆ N(a)] − [k,l ⊆ N(b)].
    adjust_pair_counts(na.data(), static_cast<int>(na.size()), -1, cn.data(),
                       n);
    adjust_pair_counts(nb.data(), static_cast<int>(nb.size()), -1, cn.data(),
                       n);
    adjust_pair_counts(nab.data(), static_cast<int>(nab.size()), +1, cn.data(),
                       n);

    // Merge b into a: a's members grow (b's appended, the reference order),
    // b dies, a's row becomes the neighbourhood intersection, the b column
    // disappears everywhere and the a column mirrors the new row.
    auto& ma = members[static_cast<std::size_t>(best_a)];
    auto& mb = members[static_cast<std::size_t>(best_b)];
    ma.insert(ma.end(), mb.begin(), mb.end());
    mb.clear();
    alive[static_cast<std::size_t>(best_b)] = 0;
    for (std::size_t w = 0; w < words; ++w) {
      row_a[w] &= row_b[w];
      row_b[w] = 0;
    }
    for (int k = 0; k < n; ++k) {
      std::uint64_t* row_k = adj.data() + static_cast<std::size_t>(k) * words;
      row_bit_assign(row_k, best_b, false);
      if (k != best_a) row_bit_assign(row_k, best_a, row_bit(row_a, k));
    }
    // The merged vertex's own counts are recomputed outright: its
    // neighbourhood changed wholesale, so the pairwise deltas do not apply.
    for (int k = 0; k < n; ++k) {
      int c = 0;
      if (alive[static_cast<std::size_t>(k)] != 0 && k != best_a) {
        c = row_and_popcount(
            row_a, adj.data() + static_cast<std::size_t>(k) * words, words);
      }
      cn[static_cast<std::size_t>(best_a) * un + static_cast<std::size_t>(k)] =
          c;
      cn[static_cast<std::size_t>(k) * un + static_cast<std::size_t>(best_a)] =
          c;
    }
  }

  std::vector<std::vector<int>> cliques;
  for (int i = 0; i < n; ++i) {
    if (alive[static_cast<std::size_t>(i)]) {
      auto clique = members[static_cast<std::size_t>(i)];
      std::sort(clique.begin(), clique.end());
      cliques.push_back(std::move(clique));
    }
  }
  return cliques;
}

std::vector<std::vector<int>> clique_partition_reference(
    int n, const std::vector<std::vector<char>>& adjacent) {
  if (static_cast<int>(adjacent.size()) != n) {
    throw std::invalid_argument("clique_partition: adjacency size mismatch");
  }
  // Super-vertex state: members and pairwise adjacency between super-vertices.
  // Two super-vertices are adjacent iff every cross pair of members is
  // adjacent (so merging adjacent super-vertices keeps cliques cliques).
  std::vector<std::vector<int>> members(static_cast<std::size_t>(n));
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<std::vector<char>> adj(static_cast<std::size_t>(n),
                                     std::vector<char>(static_cast<std::size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    members[static_cast<std::size_t>(i)] = {i};
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            adjacent[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }
    }
  }

  auto common_neighbours = [&](int a, int b) {
    int count = 0;
    for (int k = 0; k < n; ++k) {
      if (alive[static_cast<std::size_t>(k)] && k != a && k != b &&
          adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(k)] &&
          adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(k)]) {
        ++count;
      }
    }
    return count;
  };

  while (true) {
    int best_a = -1, best_b = -1, best_common = -1;
    for (int a = 0; a < n; ++a) {
      if (!alive[static_cast<std::size_t>(a)]) continue;
      for (int b = a + 1; b < n; ++b) {
        if (!alive[static_cast<std::size_t>(b)]) continue;
        if (!adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) continue;
        const int c = common_neighbours(a, b);
        if (c > best_common) {
          best_common = c;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a < 0) break;
    // Merge b into a: a's members grow; a stays adjacent only to super-
    // vertices adjacent to both.
    auto& ma = members[static_cast<std::size_t>(best_a)];
    auto& mb = members[static_cast<std::size_t>(best_b)];
    ma.insert(ma.end(), mb.begin(), mb.end());
    mb.clear();
    alive[static_cast<std::size_t>(best_b)] = 0;
    for (int k = 0; k < n; ++k) {
      const char both =
          adj[static_cast<std::size_t>(best_a)][static_cast<std::size_t>(k)] &&
          adj[static_cast<std::size_t>(best_b)][static_cast<std::size_t>(k)];
      adj[static_cast<std::size_t>(best_a)][static_cast<std::size_t>(k)] = both;
      adj[static_cast<std::size_t>(k)][static_cast<std::size_t>(best_a)] = both;
      adj[static_cast<std::size_t>(best_b)][static_cast<std::size_t>(k)] = 0;
      adj[static_cast<std::size_t>(k)][static_cast<std::size_t>(best_b)] = 0;
    }
  }

  std::vector<std::vector<int>> cliques;
  for (int i = 0; i < n; ++i) {
    if (alive[static_cast<std::size_t>(i)]) {
      auto clique = members[static_cast<std::size_t>(i)];
      std::sort(clique.begin(), clique.end());
      cliques.push_back(std::move(clique));
    }
  }
  return cliques;
}

// ---------------------------------------------------------------------------
// Maximum-weight bipartite b-matching via min-cost flow
// ---------------------------------------------------------------------------

namespace {

struct FlowEdge {
  int to;
  int cap;
  double cost;
  std::size_t rev;  // index of the reverse edge in graph[to]
};

/// One Bellman-Ford sweep over every residual edge; returns whether any
/// distance label improved (the caller stops early when none did).
// hyde-hot
inline bool relax_all_edges(const std::vector<std::vector<FlowEdge>>& graph,
                            double* dist, int* prev_node,
                            std::size_t* prev_edge) {
  bool changed = false;
  const int n = static_cast<int>(graph.size());
  for (int u = 0; u < n; ++u) {
    if (!std::isfinite(dist[u])) continue;
    const std::vector<FlowEdge>& edges = graph[static_cast<std::size_t>(u)];
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].cap <= 0) continue;
      const double nd = dist[u] + edges[e].cost;
      const std::size_t to = static_cast<std::size_t>(edges[e].to);
      if (nd < dist[to] - 1e-12) {
        dist[to] = nd;
        prev_node[to] = u;
        prev_edge[to] = e;
        changed = true;
      }
    }
  }
  return changed;
}

/// Augments one unit of flow along the predecessor chain sink → source.
// hyde-hot
inline void push_unit_along_path(std::vector<std::vector<FlowEdge>>& graph,
                                 const int* prev_node,
                                 const std::size_t* prev_edge, int source,
                                 int sink) {
  for (int v = sink; v != source; v = prev_node[v]) {
    const int u = prev_node[v];
    FlowEdge& e =
        graph[static_cast<std::size_t>(u)][prev_edge[static_cast<std::size_t>(
            v)]];
    e.cap -= 1;
    graph[static_cast<std::size_t>(e.to)][e.rev].cap += 1;
  }
}

class FlowNetwork {
 public:
  explicit FlowNetwork(int num_nodes) : graph_(static_cast<std::size_t>(num_nodes)) {}

  void add_edge(int from, int to, int cap, double cost) {
    graph_[static_cast<std::size_t>(from)].push_back(
        {to, cap, cost, graph_[static_cast<std::size_t>(to)].size()});
    graph_[static_cast<std::size_t>(to)].push_back(
        {from, 0, -cost, graph_[static_cast<std::size_t>(from)].size() - 1});
  }

  /// Augments unit flows along cheapest paths while the path cost is
  /// negative; returns total (negated) profit.
  double run_negative_paths(int source, int sink) {
    const int n = static_cast<int>(graph_.size());
    double total = 0.0;
    // Scratch labels hoisted out of the augmentation loop and reset per path.
    std::vector<double> dist(static_cast<std::size_t>(n));
    std::vector<int> prev_node(static_cast<std::size_t>(n));
    std::vector<std::size_t> prev_edge(static_cast<std::size_t>(n));
    while (true) {
      // Bellman-Ford (costs can be negative; graphs here are tiny).
      std::fill(dist.begin(), dist.end(),
                std::numeric_limits<double>::infinity());
      std::fill(prev_node.begin(), prev_node.end(), -1);
      std::fill(prev_edge.begin(), prev_edge.end(), std::size_t{0});
      dist[static_cast<std::size_t>(source)] = 0.0;
      for (int iter = 0; iter < n; ++iter) {
        if (!relax_all_edges(graph_, dist.data(), prev_node.data(),
                             prev_edge.data())) {
          break;
        }
      }
      if (!std::isfinite(dist[static_cast<std::size_t>(sink)]) ||
          dist[static_cast<std::size_t>(sink)] >= -1e-12) {
        break;  // no remaining path with positive profit
      }
      push_unit_along_path(graph_, prev_node.data(), prev_edge.data(), source,
                           sink);
      total += dist[static_cast<std::size_t>(sink)];
    }
    return total;
  }

  const std::vector<FlowEdge>& edges_from(int node) const {
    return graph_[static_cast<std::size_t>(node)];
  }

 private:
  std::vector<std::vector<FlowEdge>> graph_;
};

}  // namespace

BMatchResult max_weight_b_matching(int num_left, int num_right,
                                   const std::vector<int>& right_capacity,
                                   const std::vector<BMatchEdge>& edges) {
  if (static_cast<int>(right_capacity.size()) != num_right) {
    throw std::invalid_argument("max_weight_b_matching: capacity size mismatch");
  }
  // Node layout: 0 = source, 1..num_left = left, then right, then sink.
  const int source = 0;
  const int left_base = 1;
  const int right_base = left_base + num_left;
  const int sink = right_base + num_right;
  FlowNetwork net(sink + 1);
  for (int i = 0; i < num_left; ++i) net.add_edge(source, left_base + i, 1, 0.0);
  for (int j = 0; j < num_right; ++j) {
    net.add_edge(right_base + j, sink, right_capacity[static_cast<std::size_t>(j)], 0.0);
  }
  for (const auto& e : edges) {
    if (e.left < 0 || e.left >= num_left || e.right < 0 || e.right >= num_right) {
      throw std::invalid_argument("max_weight_b_matching: edge out of range");
    }
    net.add_edge(left_base + e.left, right_base + e.right, 1, -e.weight);
  }
  const double neg_profit = net.run_negative_paths(source, sink);

  BMatchResult result;
  result.left_match.assign(static_cast<std::size_t>(num_left), -1);
  result.total_weight = -neg_profit;
  for (int i = 0; i < num_left; ++i) {
    for (const auto& e : net.edges_from(left_base + i)) {
      // A saturated forward edge to a right node indicates a match.
      if (e.to >= right_base && e.to < sink && e.cap == 0 && e.cost <= 0.0) {
        result.left_match[static_cast<std::size_t>(i)] = e.to - right_base;
        break;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Edmonds' blossom maximum-cardinality matching
// ---------------------------------------------------------------------------

namespace {

class Blossom {
 public:
  Blossom(int n, const std::vector<std::pair<int, int>>& edges)
      : n_(n), adj_(static_cast<std::size_t>(n)) {
    for (const auto& [u, v] : edges) {
      if (u == v) continue;
      adj_[static_cast<std::size_t>(u)].push_back(v);
      adj_[static_cast<std::size_t>(v)].push_back(u);
    }
    match_.assign(static_cast<std::size_t>(n), -1);
  }

  std::vector<int> solve() {
    for (int v = 0; v < n_; ++v) {
      if (match_[static_cast<std::size_t>(v)] == -1) {
        const int u = find_augmenting_path(v);
        if (u != -1) augment(u);
      }
    }
    return match_;
  }

 private:
  int lca(int a, int b) {
    std::vector<char> used(static_cast<std::size_t>(n_), 0);
    while (true) {
      a = base_[static_cast<std::size_t>(a)];
      used[static_cast<std::size_t>(a)] = 1;
      if (match_[static_cast<std::size_t>(a)] == -1) break;
      a = parent_[static_cast<std::size_t>(match_[static_cast<std::size_t>(a)])];
    }
    while (true) {
      b = base_[static_cast<std::size_t>(b)];
      if (used[static_cast<std::size_t>(b)]) return b;
      b = parent_[static_cast<std::size_t>(match_[static_cast<std::size_t>(b)])];
    }
  }

  void mark_path(int v, int b, int child) {
    while (base_[static_cast<std::size_t>(v)] != b) {
      const int mv = match_[static_cast<std::size_t>(v)];
      blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(v)])] = 1;
      blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(mv)])] = 1;
      parent_[static_cast<std::size_t>(v)] = child;
      child = mv;
      v = parent_[static_cast<std::size_t>(mv)];
    }
  }

  int find_augmenting_path(int root) {
    used_.assign(static_cast<std::size_t>(n_), 0);
    parent_.assign(static_cast<std::size_t>(n_), -1);
    base_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) base_[static_cast<std::size_t>(i)] = i;

    used_[static_cast<std::size_t>(root)] = 1;
    std::queue<int> q;
    q.push(root);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const int to : adj_[static_cast<std::size_t>(v)]) {
        if (base_[static_cast<std::size_t>(v)] == base_[static_cast<std::size_t>(to)] ||
            match_[static_cast<std::size_t>(v)] == to) {
          continue;
        }
        if (to == root ||
            (match_[static_cast<std::size_t>(to)] != -1 &&
             parent_[static_cast<std::size_t>(match_[static_cast<std::size_t>(to)])] != -1)) {
          // Found a blossom; contract it.
          const int cur_base = lca(v, to);
          blossom_.assign(static_cast<std::size_t>(n_), 0);
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
          for (int i = 0; i < n_; ++i) {
            if (blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(i)])]) {
              base_[static_cast<std::size_t>(i)] = cur_base;
              if (!used_[static_cast<std::size_t>(i)]) {
                used_[static_cast<std::size_t>(i)] = 1;
                q.push(i);
              }
            }
          }
        } else if (parent_[static_cast<std::size_t>(to)] == -1) {
          parent_[static_cast<std::size_t>(to)] = v;
          if (match_[static_cast<std::size_t>(to)] == -1) {
            return to;  // augmenting path found
          }
          used_[static_cast<std::size_t>(match_[static_cast<std::size_t>(to)])] = 1;
          q.push(match_[static_cast<std::size_t>(to)]);
        }
      }
    }
    return -1;
  }

  void augment(int v) {
    while (v != -1) {
      const int pv = parent_[static_cast<std::size_t>(v)];
      const int ppv = match_[static_cast<std::size_t>(pv)];
      match_[static_cast<std::size_t>(v)] = pv;
      match_[static_cast<std::size_t>(pv)] = v;
      v = ppv;
    }
  }

  int n_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> match_, parent_, base_;
  std::vector<char> used_, blossom_;
};

}  // namespace

std::vector<int> max_cardinality_matching(
    int n, const std::vector<std::pair<int, int>>& edges) {
  return Blossom(n, edges).solve();
}

}  // namespace hyde::graph
