/// \file matching.hpp
/// \brief Graph algorithms backing the encoding procedure.
///
/// Three algorithms the paper relies on:
///  - clique partitioning (NP-complete; the polynomial heuristic of
///    Tseng/Siewiorek as presented in Gajski et al., "High-Level Synthesis"
///    [9]) — used for the don't-care assignment of Section 3.1;
///  - maximum-weight bipartite b-matching [12] — used for column-set
///    combination (Step 5 of the encoding algorithm, Figure 5);
///  - maximum-cardinality matching on general graphs [12] (Edmonds' blossom
///    algorithm) — used for row-set combination (Step 7).

#pragma once

#include <cstdint>
#include <vector>

namespace hyde::graph {

/// Partitions the vertices {0..n-1} of an undirected graph into a small
/// number of cliques, each vertex in exactly one clique.
///
/// \param n number of vertices.
/// \param adjacent symmetric adjacency matrix (self loops ignored).
/// \returns cliques as vertex-index lists; their union is {0..n-1}.
///
/// Heuristic: repeatedly merge the adjacent pair of super-vertices with the
/// largest number of common neighbours (ties broken by smaller index) until
/// no adjacent pair remains. Polynomial time, deterministic.
///
/// Implementation: packed bitset adjacency rows with common-neighbour counts
/// maintained incrementally across merges (AND + popcount). Produces exactly
/// the partition of clique_partition_reference — the selection order, the
/// tie-break, and the member order are all preserved.
std::vector<std::vector<int>> clique_partition(
    int n, const std::vector<std::vector<char>>& adjacent);

/// The original recount-from-scratch formulation of clique_partition, kept
/// verbatim as the equivalence oracle for the incremental implementation
/// (tests/graph/matching_property_test.cpp). O(n^4) worst case; use
/// clique_partition in production code.
std::vector<std::vector<int>> clique_partition_reference(
    int n, const std::vector<std::vector<char>>& adjacent);

/// One edge of a bipartite b-matching instance.
struct BMatchEdge {
  int left;       ///< left vertex index in [0, num_left)
  int right;      ///< right vertex index in [0, num_right)
  double weight;  ///< edge weight (only positive-weight edges can be chosen)
};

/// Result of max_weight_b_matching.
struct BMatchResult {
  /// For each left vertex, the matched right vertex or -1.
  std::vector<int> left_match;
  double total_weight = 0.0;
};

/// Maximum-weight bipartite b-matching: every left vertex is matched at most
/// once; right vertex j is matched at most right_capacity[j] times. Solved
/// exactly by successive shortest augmenting paths on a min-cost flow
/// network; augmentation stops when the best remaining path has non-positive
/// profit, so the result maximizes total weight (not cardinality).
BMatchResult max_weight_b_matching(int num_left, int num_right,
                                   const std::vector<int>& right_capacity,
                                   const std::vector<BMatchEdge>& edges);

/// Maximum-cardinality matching on a general undirected graph (Edmonds'
/// blossom algorithm, O(V^3)).
///
/// \param n number of vertices.
/// \param edges undirected edges as (u, v) vertex pairs.
/// \returns mate vector: mate[v] is v's partner or -1 if unmatched.
std::vector<int> max_cardinality_matching(
    int n, const std::vector<std::pair<int, int>>& edges);

}  // namespace hyde::graph
