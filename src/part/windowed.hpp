/// \file windowed.hpp
/// \brief Windowed decomposition engine: resynthesize a network of arbitrary
/// size one bounded window at a time.
///
/// `run_windowed_flow` partitions the host network into convex windows
/// (window.hpp), runs the existing decomposition flow (`core::run_flow`) on
/// each window that contains wide nodes — every window gets its own
/// `bdd::Manager` via its standalone sub-network, shared-nothing — and
/// stitches the per-window results back together in a deterministic,
/// topological-order merge. A single up-front extraction pass captures every
/// resynthesis candidate as a self-contained task (a plain-data
/// `WindowSnapshot`, or a prebuilt clone when a member is too wide for a
/// truth table), so workers materialize and resynthesize without ever
/// touching the host network, its manager, or any shared lock; split
/// fallback re-extracts from the worker's own materialized sub-network.
/// Window-level parallelism runs on `runtime::JobScheduler` via its
/// cost-ordered submit path (longest-processing-time placement plus work
/// stealing); results are collected by window index, so the stitched network
/// is bit-identical at every thread count and steal pattern. The worker
/// count auto-clamps to the number of resynthesis tasks, and a run with at
/// most one such task skips the scheduler entirely.
///
/// Memory governance: each window flow runs under a BDD node budget. A
/// window that blows past it is split in half (topological halves stay
/// convex) and retried; when the split depth is exhausted the window passes
/// through unmapped. A window whose resynthesis fails its local equivalence
/// check likewise passes through (counted, never silently wrong); windows
/// that are already k-feasible skip resynthesis entirely. The engine never
/// aborts the run for a budget reason.

#pragma once

#include <cstddef>

#include "core/flow.hpp"
#include "net/network.hpp"
#include "part/window.hpp"

namespace hyde::part {

struct WindowedFlowOptions {
  /// Extraction budgets. WindowOptions::k is overridden by flow.k.
  WindowOptions window;
  /// Per-window flow configuration (seed, encoding policy, engine knobs).
  core::FlowOptions flow;
  /// Worker threads for window-level parallelism. Result-identical at any
  /// value — per-window flows are shared-nothing and seeded independently of
  /// the schedule.
  int threads = 1;
  /// Per-window BDD node budget for the flow's global manager (0 = no
  /// limit). A window exceeding it is split or passed through, never fatal.
  std::size_t window_bdd_budget = std::size_t{1} << 20;
  /// How many times a budget-blown window may be halved before passing
  /// through unmapped.
  int max_split_depth = 3;
  /// Check each resynthesized window against its sub-network (exact for
  /// windows within the input budget; failures force pass-through).
  bool verify_windows = true;
  /// Run the mapper cleanup (dedup + collapse into fanouts) per window so
  /// the stitched network is mapping-quality, not just k-feasible.
  bool map_windows = true;
};

struct WindowedFlowResult {
  net::Network network;
  /// Per-window FlowStats summed in window-index order, plus the windows_*
  /// counters (extraction, fallbacks, peaks, phase wall-clock).
  core::FlowStats stats;
};

/// Resynthesizes \p input window by window; the result computes the same
/// primary outputs. Deterministic for fixed (input, options) at every thread
/// count.
WindowedFlowResult run_windowed_flow(const net::Network& input,
                                     const WindowedFlowOptions& options);

}  // namespace hyde::part
