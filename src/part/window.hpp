/// \file window.hpp
/// \brief Netlist windowing: partitioning a network into bounded-support,
/// convex windows for per-window resynthesis.
///
/// A window is a set of live logic nodes extracted from a host network
/// together with its boundary: *inputs* (signals the members read from
/// outside the window) and *roots* (members read from outside the window or
/// driving a primary output). Windows partition the live logic nodes — every
/// node belongs to exactly one window — and are **convex**: no path between
/// two members leaves the window. Convexity is what makes the per-window
/// results stitchable: the window condensation graph is acyclic, so windows
/// can be re-instantiated in extraction order with every input already
/// available.
///
/// Extraction walks a cone-affine topological order (depth-first from the
/// primary outputs, so a node's maximum-fanout-free cone lands contiguously)
/// and packs consecutive nodes into a window while the input and node
/// budgets hold. Contiguous intervals of a topological order are convex by
/// construction — any path between two interval members only visits nodes
/// with intermediate topological positions. Shared-fanout absorption falls
/// out of the same construction: a member whose readers are split between
/// the inside and the outside simply becomes an extra root instead of
/// blocking the window.

#pragma once

#include <vector>

#include "net/network.hpp"

namespace hyde::part {

struct WindowOptions {
  /// Budget on distinct signals a window reads from outside. A single node
  /// whose own fanin count exceeds this still forms a (flagged) singleton
  /// window — a node cannot be split.
  int max_inputs = 12;
  /// Budget on logic nodes per window.
  int max_nodes = 64;
  /// LUT feasibility threshold: a window whose members all have <= k fanins
  /// needs no resynthesis and is marked pass-through.
  int k = 5;
};

/// One extracted window over host-node ids.
struct Window {
  int index = 0;
  /// Member logic nodes in topological order (extraction order).
  std::vector<net::NodeId> members;
  /// Boundary signals read from outside: host PIs or members of
  /// earlier-indexed windows, in first-read order.
  std::vector<net::NodeId> inputs;
  /// Members visible outside: read by another window or driving a PO,
  /// in member order.
  std::vector<net::NodeId> roots;
  /// True when some member has more than WindowOptions::k fanins.
  bool needs_resynthesis = false;
  /// True for a singleton window whose node alone exceeds max_inputs.
  bool over_budget = false;
};

/// Per-node logic depth: PIs at level 0, a logic node one past its deepest
/// fanin. Indexed by NodeId; dead nodes get -1.
std::vector<int> levelize(const net::Network& network);

/// The maximum-fanout-free cone of \p root: every logic node (root included)
/// all of whose fanout paths run through \p root. Returned in topological
/// order, root last. Nodes driving a primary output other than through
/// \p root stay outside the cone.
std::vector<net::NodeId> mffc(const net::Network& network, net::NodeId root);

/// Partitions every live logic node of \p network into convex windows under
/// \p options. Deterministic: a pure function of the network and options.
std::vector<Window> extract_windows(const net::Network& network,
                                    const WindowOptions& options);

/// Rebuilds a window from an explicit member set (used when splitting a
/// window that blew its resynthesis budget). \p members must be a subset of
/// live logic nodes in topological order; inputs and roots are derived
/// against the host network with "outside" meaning "not in \p members".
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters): index labels the
// piece, k is the LUT size; both come straight from the split site's locals.
Window make_window(const net::Network& host, std::vector<net::NodeId> members,
                   int index, int k);

/// Materializes a window as a standalone network: window inputs become PIs
/// (named after the host signals), members are cloned with their host local
/// functions, roots become POs named after the host nodes they re-implement.
net::Network window_subnetwork(const net::Network& host, const Window& window);

/// Self-contained, manager-free capture of a window's standalone
/// sub-network: boundary names, member wiring and local functions as truth
/// tables. Plain data — no BDD handles, no reference into the host — so a
/// snapshot can be materialized on any worker thread without touching the
/// host network or its (non-atomic-refcount) manager.
struct WindowSnapshot {
  std::string model_name;
  /// PI names in Window::inputs order.
  std::vector<std::string> input_names;
  struct Member {
    std::string name;
    /// Fanins as signal indices: [0, input_names.size()) are the PIs, then
    /// earlier members offset by input_names.size().
    std::vector<int> fanins;
    /// Local function over the fanins (var i == fanins[i]).
    tt::TruthTable function;
  };
  /// Members in Window::members (topological) order.
  std::vector<Member> members;
  /// PO drivers as member indices, in Window::roots order.
  std::vector<int> roots;
};

/// Captures \p window as plain data, reading the host's BDDs (serialize
/// against other host-manager users — typically called from the single
/// up-front extraction pass). Returns false when some member's fanin count
/// exceeds tt::TruthTable::kMaxVars; such a window must be cloned with
/// window_subnetwork instead.
bool snapshot_window(const net::Network& host, const Window& window,
                     WindowSnapshot* out);

/// Materializes a snapshot as a standalone network with its own manager —
/// the same network window_subnetwork builds from the snapshot's source
/// (names, wiring, functions and output order all identical), but computed
/// from plain data, so it is safe on any thread.
net::Network materialize_snapshot(const WindowSnapshot& snapshot);

}  // namespace hyde::part
