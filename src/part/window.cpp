#include "part/window.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace hyde::part {

namespace {

/// Live logic nodes in a cone-affine topological order: iterative DFS from
/// the primary-output drivers (in output order), fanins first, then any
/// remaining live logic nodes in id order. Keeping each output cone
/// contiguous is what lets the interval packer approximate MFFC windows.
std::vector<net::NodeId> cone_topo_order(const net::Network& network) {
  std::vector<net::NodeId> order;
  order.reserve(static_cast<std::size_t>(network.num_nodes()));
  std::vector<char> state(static_cast<std::size_t>(network.num_nodes()), 0);

  const auto visit = [&](net::NodeId start) {
    if (state[static_cast<std::size_t>(start)] != 0) return;
    // Explicit stack of (node, next-fanin-index) frames: host networks can be
    // thousands of levels deep, too deep for recursion.
    std::vector<std::pair<net::NodeId, std::size_t>> stack{{start, 0}};
    state[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const net::Node& n = network.node(id);
      if (next < n.fanins.size()) {
        const net::NodeId f = n.fanins[next++];
        if (state[static_cast<std::size_t>(f)] == 0) {
          state[static_cast<std::size_t>(f)] = 1;
          stack.emplace_back(f, 0);
        }
        continue;
      }
      state[static_cast<std::size_t>(id)] = 2;
      if (n.kind == net::NodeKind::kLogic) order.push_back(id);
      stack.pop_back();
    }
  };

  for (const net::Output& o : network.outputs()) {
    if (o.driver != net::kNoNode) visit(o.driver);
  }
  for (net::NodeId id = 0; id < network.num_nodes(); ++id) {
    if (!network.node(id).dead) visit(id);
  }
  return order;
}

/// Reader lists (live logic nodes only) and PO-driver flags, both indexed by
/// NodeId.
struct FanoutInfo {
  std::vector<std::vector<net::NodeId>> readers;
  std::vector<char> drives_po;
};

FanoutInfo fanout_info(const net::Network& network) {
  FanoutInfo info;
  info.readers.resize(static_cast<std::size_t>(network.num_nodes()));
  info.drives_po.assign(static_cast<std::size_t>(network.num_nodes()), 0);
  for (net::NodeId id = 0; id < network.num_nodes(); ++id) {
    const net::Node& n = network.node(id);
    if (n.dead || n.kind != net::NodeKind::kLogic) continue;
    for (net::NodeId f : n.fanins) {
      info.readers[static_cast<std::size_t>(f)].push_back(id);
    }
  }
  for (const net::Output& o : network.outputs()) {
    if (o.driver != net::kNoNode) {
      info.drives_po[static_cast<std::size_t>(o.driver)] = 1;
    }
  }
  return info;
}

/// Fills a window's inputs, roots and flags from its member list.
void finish_window(const net::Network& host, const FanoutInfo& fanout,
                   Window* window, int k) {
  std::vector<char> in_window(static_cast<std::size_t>(host.num_nodes()), 0);
  for (net::NodeId m : window->members) {
    in_window[static_cast<std::size_t>(m)] = 1;
  }
  std::vector<char> seen_input(static_cast<std::size_t>(host.num_nodes()), 0);
  window->inputs.clear();
  window->roots.clear();
  window->needs_resynthesis = false;
  for (net::NodeId m : window->members) {
    const net::Node& n = host.node(m);
    if (static_cast<int>(n.fanins.size()) > k) window->needs_resynthesis = true;
    for (net::NodeId f : n.fanins) {
      if (in_window[static_cast<std::size_t>(f)] ||
          seen_input[static_cast<std::size_t>(f)]) {
        continue;
      }
      seen_input[static_cast<std::size_t>(f)] = 1;
      window->inputs.push_back(f);
    }
    bool is_root = fanout.drives_po[static_cast<std::size_t>(m)] != 0;
    for (net::NodeId r : fanout.readers[static_cast<std::size_t>(m)]) {
      if (!in_window[static_cast<std::size_t>(r)]) {
        is_root = true;
        break;
      }
    }
    if (is_root) window->roots.push_back(m);
  }
}

}  // namespace

std::vector<int> levelize(const net::Network& network) {
  std::vector<int> level(static_cast<std::size_t>(network.num_nodes()), -1);
  for (net::NodeId id : network.topo_order()) {
    const net::Node& n = network.node(id);
    if (n.kind != net::NodeKind::kLogic) {
      level[static_cast<std::size_t>(id)] = 0;
      continue;
    }
    int depth = 0;
    for (net::NodeId f : n.fanins) {
      depth = std::max(depth, level[static_cast<std::size_t>(f)] + 1);
    }
    level[static_cast<std::size_t>(id)] = depth;
  }
  return level;
}

std::vector<net::NodeId> mffc(const net::Network& network, net::NodeId root) {
  if (root < 0 || root >= network.num_nodes() ||
      network.node(root).kind != net::NodeKind::kLogic ||
      network.node(root).dead) {
    throw std::invalid_argument("mffc: root must be a live logic node");
  }
  const FanoutInfo fanout = fanout_info(network);

  // Transitive fanin of the root, in topological order.
  std::vector<net::NodeId> tfi;
  std::vector<char> in_tfi(static_cast<std::size_t>(network.num_nodes()), 0);
  {
    std::vector<net::NodeId> stack{root};
    in_tfi[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const net::NodeId id = stack.back();
      stack.pop_back();
      tfi.push_back(id);
      for (net::NodeId f : network.node(id).fanins) {
        if (network.node(f).kind != net::NodeKind::kLogic) continue;
        if (in_tfi[static_cast<std::size_t>(f)]) continue;
        in_tfi[static_cast<std::size_t>(f)] = 1;
        stack.push_back(f);
      }
    }
  }
  // Decide membership in reverse topological order (readers before their
  // fanins): a node joins when the root does, or when every reader already
  // joined and no PO escapes through it.
  std::vector<int> position(static_cast<std::size_t>(network.num_nodes()), -1);
  {
    int p = 0;
    for (net::NodeId id : network.topo_order()) {
      position[static_cast<std::size_t>(id)] = p++;
    }
  }
  std::sort(tfi.begin(), tfi.end(), [&](net::NodeId a, net::NodeId b) {
    return position[static_cast<std::size_t>(a)] >
           position[static_cast<std::size_t>(b)];
  });
  std::vector<char> in_cone(static_cast<std::size_t>(network.num_nodes()), 0);
  std::vector<net::NodeId> cone;
  for (net::NodeId id : tfi) {
    if (id != root) {
      if (fanout.drives_po[static_cast<std::size_t>(id)] != 0) continue;
      const auto& readers = fanout.readers[static_cast<std::size_t>(id)];
      if (readers.empty()) continue;
      bool contained = true;
      for (net::NodeId r : readers) {
        if (!in_cone[static_cast<std::size_t>(r)]) {
          contained = false;
          break;
        }
      }
      if (!contained) continue;
    }
    in_cone[static_cast<std::size_t>(id)] = 1;
    cone.push_back(id);
  }
  std::reverse(cone.begin(), cone.end());  // topological order, root last
  return cone;
}

std::vector<Window> extract_windows(const net::Network& network,
                                    const WindowOptions& options) {
  const int max_inputs = std::max(1, options.max_inputs);
  const int max_nodes = std::max(1, options.max_nodes);
  const std::vector<net::NodeId> order = cone_topo_order(network);
  const FanoutInfo fanout = fanout_info(network);

  std::vector<Window> windows;
  std::vector<char> in_current(static_cast<std::size_t>(network.num_nodes()), 0);
  std::vector<char> is_input(static_cast<std::size_t>(network.num_nodes()), 0);
  std::vector<net::NodeId> current;
  int current_inputs = 0;

  const auto close_current = [&]() {
    if (current.empty()) return;
    Window w;
    w.index = static_cast<int>(windows.size());
    w.members = current;
    w.over_budget = current.size() == 1 && current_inputs > max_inputs;
    finish_window(network, fanout, &w, options.k);
    windows.push_back(std::move(w));
    for (net::NodeId m : current) in_current[static_cast<std::size_t>(m)] = 0;
    // is_input is only ever set for the current window; reset via members'
    // fanins rather than a full clear.
    for (net::NodeId m : current) {
      for (net::NodeId f : network.node(m).fanins) {
        is_input[static_cast<std::size_t>(f)] = 0;
      }
    }
    current.clear();
    current_inputs = 0;
  };

  for (net::NodeId id : order) {
    const net::Node& n = network.node(id);
    // New external inputs this node would add. Members appear in topological
    // order, so a later node can never become an input of the current window
    // — the input set only grows.
    int fresh = 0;
    for (net::NodeId f : n.fanins) {
      if (!in_current[static_cast<std::size_t>(f)] &&
          !is_input[static_cast<std::size_t>(f)]) {
        ++fresh;
      }
    }
    const bool fits = !current.empty() &&
                      static_cast<int>(current.size()) < max_nodes &&
                      current_inputs + fresh <= max_inputs;
    if (!current.empty() && !fits) close_current();
    current.push_back(id);
    in_current[static_cast<std::size_t>(id)] = 1;
    for (net::NodeId f : n.fanins) {
      if (!in_current[static_cast<std::size_t>(f)] &&
          !is_input[static_cast<std::size_t>(f)]) {
        is_input[static_cast<std::size_t>(f)] = 1;
        ++current_inputs;
      }
    }
    // The node itself may have been registered as an input before being
    // absorbed — impossible here (topological order), but keep the invariant
    // explicit for the budget count.
    if (is_input[static_cast<std::size_t>(id)]) {
      is_input[static_cast<std::size_t>(id)] = 0;
      --current_inputs;
    }
  }
  close_current();
  return windows;
}

// NOLINTNEXTLINE(bugprone-easily-swappable-parameters): see window.hpp.
Window make_window(const net::Network& host, std::vector<net::NodeId> members,
                   int index, int k) {
  Window w;
  w.index = index;
  w.members = std::move(members);
  finish_window(host, fanout_info(host), &w, k);
  return w;
}

bool snapshot_window(const net::Network& host, const Window& window,
                     WindowSnapshot* out) {
  for (net::NodeId m : window.members) {
    if (static_cast<int>(host.node(m).fanins.size()) >
        tt::TruthTable::kMaxVars) {
      return false;
    }
  }
  out->model_name = host.model_name() + "_w" + std::to_string(window.index);
  out->input_names.clear();
  out->members.clear();
  out->roots.clear();
  std::unordered_map<net::NodeId, int> signal_index;
  out->input_names.reserve(window.inputs.size());
  for (net::NodeId i : window.inputs) {
    signal_index.emplace(i, static_cast<int>(signal_index.size()));
    out->input_names.push_back(host.node(i).name);
  }
  out->members.reserve(window.members.size());
  for (net::NodeId m : window.members) {
    const net::Node& n = host.node(m);
    WindowSnapshot::Member member;
    member.name = n.name;
    member.fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) member.fanins.push_back(signal_index.at(f));
    member.function = host.local_tt(m);
    signal_index.emplace(m, static_cast<int>(signal_index.size()));
    out->members.push_back(std::move(member));
  }
  const int num_inputs = static_cast<int>(window.inputs.size());
  out->roots.reserve(window.roots.size());
  for (net::NodeId r : window.roots) {
    out->roots.push_back(signal_index.at(r) - num_inputs);
  }
  return true;
}

net::Network materialize_snapshot(const WindowSnapshot& snapshot) {
  net::Network sub(snapshot.model_name);
  std::vector<net::NodeId> signal_ids;
  signal_ids.reserve(snapshot.input_names.size() + snapshot.members.size());
  for (const std::string& name : snapshot.input_names) {
    signal_ids.push_back(sub.add_input(name));
  }
  for (const WindowSnapshot::Member& m : snapshot.members) {
    std::vector<net::NodeId> fanins;
    fanins.reserve(m.fanins.size());
    for (int f : m.fanins) {
      fanins.push_back(signal_ids[static_cast<std::size_t>(f)]);
    }
    signal_ids.push_back(sub.add_logic_tt(m.name, std::move(fanins),
                                          m.function));
  }
  const std::size_t num_inputs = snapshot.input_names.size();
  for (int r : snapshot.roots) {
    sub.add_output(snapshot.members[static_cast<std::size_t>(r)].name,
                   signal_ids[num_inputs + static_cast<std::size_t>(r)]);
  }
  return sub;
}

net::Network window_subnetwork(const net::Network& host, const Window& window) {
  net::Network sub(host.model_name() + "_w" + std::to_string(window.index));
  std::unordered_map<net::NodeId, net::NodeId> host_to_sub;
  for (net::NodeId i : window.inputs) {
    host_to_sub.emplace(i, sub.add_input(host.node(i).name));
  }
  for (net::NodeId m : window.members) {
    const net::Node& n = host.node(m);
    std::vector<net::NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) fanins.push_back(host_to_sub.at(f));
    // Identity variable map: local var i is fanin i in both networks.
    std::vector<int> var_map(n.fanins.size());
    for (std::size_t i = 0; i < var_map.size(); ++i) {
      var_map[i] = static_cast<int>(i);
    }
    sub.manager().ensure_vars(static_cast<int>(n.fanins.size()));
    host_to_sub.emplace(
        m, sub.add_logic(n.name, std::move(fanins),
                         bdd::transfer(n.local, sub.manager(), var_map)));
  }
  for (net::NodeId r : window.roots) {
    sub.add_output(host.node(r).name, host_to_sub.at(r));
  }
  return sub;
}

}  // namespace hyde::part
