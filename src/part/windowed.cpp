#include "part/windowed.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <new>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapper/lutmap.hpp"
#include "net/verify.hpp"
#include "runtime/scheduler.hpp"

namespace hyde::part {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One stitchable unit: a (possibly split-descendant) window either carrying
/// its resynthesized sub-network or marked pass-through. The window's ids are
/// host ids — stitching never needs the worker-side materialization.
struct StitchPiece {
  Window window;
  bool resynthesized = false;
  net::Network mapped{"unmapped"};
};

/// Result of resynthesizing one extracted window, possibly as several split
/// pieces (topological order preserved).
struct WindowOutcome {
  std::vector<StitchPiece> pieces;
  core::FlowStats stats;
  /// Wall-clock for the whole job (materialization, flow, splits, verify).
  double seconds = 0.0;
};

/// Everything a worker needs to resynthesize one window without touching the
/// host network or its manager: the host-id window (for stitching and split
/// bookkeeping) and a self-contained capture of its sub-network. The capture
/// is a plain-data snapshot in the common case; a member too wide for a
/// truth table (> tt::TruthTable::kMaxVars fanins) forces a prebuilt clone
/// with its own manager, built during the serial extraction pass.
struct WindowTask {
  std::size_t slot = 0;  ///< outcome index (== window index)
  Window window;
  WindowSnapshot snapshot;
  net::Network prebuilt{"unmapped"};
  bool has_prebuilt = false;
  /// Scheduling estimate: node count x support width.
  std::uint64_t cost = 0;
};

/// Folds a per-window flow's counters into the engine totals (mirrors the
/// multipass accumulation in core::run_flow).
void accumulate_flow_stats(core::FlowStats* into, const core::FlowStats& s) {
  into->decomposition_steps += s.decomposition_steps;
  into->shannon_fallbacks += s.shannon_fallbacks;
  into->hyper_groups += s.hyper_groups;
  into->encoder_runs += s.encoder_runs;
  into->encoder_random_kept += s.encoder_random_kept;
  into->cache_lookups += s.cache_lookups;
  into->bdd_cache_hits += s.bdd_cache_hits;
  into->bdd_cache_misses += s.bdd_cache_misses;
  into->bdd_cache_overwrites += s.bdd_cache_overwrites;
  into->bdd_gc_runs += s.bdd_gc_runs;
  into->bdd_reorder_runs += s.bdd_reorder_runs;
  into->bdd_peak_live_nodes =
      std::max(into->bdd_peak_live_nodes, s.bdd_peak_live_nodes);
  into->absorb_search_and_phases(s);
}

/// Folds a nested outcome's full counter set (flow counters plus the
/// windows_* bookkeeping) into an enclosing outcome or the engine totals.
void fold_outcome_stats(core::FlowStats* into, const core::FlowStats& s) {
  accumulate_flow_stats(into, s);
  into->windows_resynthesized += s.windows_resynthesized;
  into->windows_passthrough += s.windows_passthrough;
  into->windows_budget_fallbacks += s.windows_budget_fallbacks;
  into->windows_split += s.windows_split;
  into->windows_verify_failures += s.windows_verify_failures;
  into->windows_extract_parallel += s.windows_extract_parallel;
}

WindowOutcome resynthesize_window(const net::Network& sub, Window window,
                                  const WindowedFlowOptions& options,
                                  int depth);

/// Handles one split half: pass-through when it needs no work, otherwise
/// clones the half out of the parent's already-materialized sub-network
/// (never the host) and recurses. \p sub_half is the half's window over
/// parent-sub ids; \p host_half is the same window translated to host ids.
WindowOutcome resynthesize_half(const net::Network& parent_sub,
                                const Window& sub_half, Window host_half,
                                const WindowedFlowOptions& options,
                                int depth) {
  if (!host_half.needs_resynthesis || host_half.roots.empty()) {
    WindowOutcome outcome;
    outcome.stats.windows_passthrough += 1;
    outcome.pieces.push_back(
        StitchPiece{std::move(host_half), false, net::Network("unmapped")});
    return outcome;
  }
  const net::Network half_sub = window_subnetwork(parent_sub, sub_half);
  return resynthesize_window(half_sub, std::move(host_half), options, depth);
}

/// Resynthesizes one window from its standalone sub-network, splitting on
/// budget blowouts; never throws for a budget reason. \p sub mirrors
/// \p window exactly — node id j < window.inputs.size() is the image of
/// window.inputs[j], id inputs.size()+i the image of window.members[i]
/// (window_subnetwork and materialize_snapshot both build in that order) —
/// so split recursion re-extracts from \p sub and translates ids back,
/// keeping the host untouched on worker threads.
WindowOutcome resynthesize_window(const net::Network& sub, Window window,
                                  const WindowedFlowOptions& options,
                                  int depth) {
  WindowOutcome outcome;
  core::FlowOptions flow_options = options.flow;
  flow_options.bdd_node_limit = options.window_bdd_budget;
  bool blew_budget = false;
  core::FlowResult flow;
  try {
    flow = core::run_flow(sub, flow_options);
  } catch (const std::length_error&) {
    blew_budget = true;
  } catch (const std::bad_alloc&) {
    blew_budget = true;
  }

  if (blew_budget) {
    outcome.stats.windows_budget_fallbacks += 1;
    if (depth < options.max_split_depth && window.members.size() >= 2) {
      // Halve along the member interval: topological halves of a convex
      // window stay convex, so the pieces remain stitchable in order. Host
      // and sub member lists run in lockstep (sub id = inputs + position),
      // so the halves are formed once over sub ids and translated back.
      outcome.stats.windows_split += 1;
      const std::size_t mid = window.members.size() / 2;
      const net::NodeId member_base =
          static_cast<net::NodeId>(window.inputs.size());
      std::vector<net::NodeId> sub_to_host(
          window.inputs.size() + window.members.size(), net::kNoNode);
      for (std::size_t j = 0; j < window.inputs.size(); ++j) {
        sub_to_host[j] = window.inputs[j];
      }
      for (std::size_t i = 0; i < window.members.size(); ++i) {
        sub_to_host[window.inputs.size() + i] = window.members[i];
      }
      const auto translate = [&sub_to_host](const std::vector<net::NodeId>& v) {
        std::vector<net::NodeId> host_ids;
        host_ids.reserve(v.size());
        for (net::NodeId id : v) {
          host_ids.push_back(sub_to_host[static_cast<std::size_t>(id)]);
        }
        return host_ids;
      };
      for (const auto& range :
           {std::pair<std::size_t, std::size_t>{0, mid},
            std::pair<std::size_t, std::size_t>{mid, window.members.size()}}) {
        std::vector<net::NodeId> sub_members;
        sub_members.reserve(range.second - range.first);
        for (std::size_t i = range.first; i < range.second; ++i) {
          sub_members.push_back(member_base + static_cast<net::NodeId>(i));
        }
        const Window sub_half = make_window(sub, std::move(sub_members),
                                            window.index, options.flow.k);
        Window host_half;
        host_half.index = sub_half.index;
        host_half.needs_resynthesis = sub_half.needs_resynthesis;
        host_half.over_budget = sub_half.over_budget;
        host_half.members = translate(sub_half.members);
        host_half.inputs = translate(sub_half.inputs);
        host_half.roots = translate(sub_half.roots);
        WindowOutcome part = resynthesize_half(sub, sub_half,
                                               std::move(host_half), options,
                                               depth + 1);
        fold_outcome_stats(&outcome.stats, part.stats);
        for (StitchPiece& piece : part.pieces) {
          outcome.pieces.push_back(std::move(piece));
        }
      }
      return outcome;
    }
    outcome.stats.windows_passthrough += 1;
    outcome.pieces.push_back(
        StitchPiece{std::move(window), false, net::Network("unmapped")});
    return outcome;
  }

  accumulate_flow_stats(&outcome.stats, flow.stats);
  if (options.map_windows) {
    const auto map_start = std::chrono::steady_clock::now();
    mapper::dedup_shared_nodes(flow.network);
    mapper::collapse_into_fanouts(flow.network, options.flow.k);
    mapper::dedup_shared_nodes(flow.network);
    outcome.stats.mapping_seconds += seconds_since(map_start);
  }

  if (options.verify_windows) {
    const bool ok = net::check_equivalence(sub, flow.network).equivalent;
    if (!ok) {
      // A failed local check means a bug somewhere upstream; degrade to
      // pass-through (counted, never silently wrong) instead of stitching a
      // bad window into the result.
      outcome.stats.windows_verify_failures += 1;
      outcome.stats.windows_passthrough += 1;
      outcome.pieces.push_back(
          StitchPiece{std::move(window), false, net::Network("unmapped")});
      return outcome;
    }
  }

  outcome.stats.windows_resynthesized += 1;
  outcome.pieces.push_back(
      StitchPiece{std::move(window), true, std::move(flow.network)});
  return outcome;
}

/// Runs one window task end to end on the calling thread: materialize the
/// captured sub-network, resynthesize, time the whole job for the per-window
/// high-water mark. Touches nothing but the task and its own materialization.
WindowOutcome run_window_task(WindowTask& task,
                              const WindowedFlowOptions& options,
                              bool on_worker) {
  const auto start = std::chrono::steady_clock::now();
  net::Network sub = task.has_prebuilt ? std::move(task.prebuilt)
                                       : materialize_snapshot(task.snapshot);
  WindowOutcome outcome =
      resynthesize_window(sub, std::move(task.window), options, 0);
  if (!task.has_prebuilt && on_worker) {
    outcome.stats.windows_extract_parallel += 1;
  }
  outcome.seconds = seconds_since(start);
  return outcome;
}

/// Clones a pass-through window's members verbatim (host names kept when
/// free; readers connect by id, so a rename is cosmetic).
void stitch_passthrough(const net::Network& host, const Window& window,
                        net::Network* result,
                        std::vector<net::NodeId>* host_to_result) {
  for (net::NodeId m : window.members) {
    const net::Node& n = host.node(m);
    std::vector<net::NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) {
      fanins.push_back((*host_to_result)[static_cast<std::size_t>(f)]);
    }
    std::vector<int> var_map(n.fanins.size());
    for (std::size_t i = 0; i < var_map.size(); ++i) {
      var_map[i] = static_cast<int>(i);
    }
    result->manager().ensure_vars(static_cast<int>(n.fanins.size()));
    const std::string name =
        result->find(n.name) == net::kNoNode ? n.name
                                             : result->fresh_name(n.name);
    (*host_to_result)[static_cast<std::size_t>(m)] = result->add_logic(
        name, std::move(fanins),
        bdd::transfer(n.local, result->manager(), var_map));
  }
}

/// Instantiates a resynthesized window's mapped sub-network into the result,
/// wiring its PIs to the already-stitched boundary signals and registering
/// its PO drivers as the window roots' new implementations.
void stitch_resynthesized(const net::Network& host, const StitchPiece& piece,
                          net::Network* result,
                          std::vector<net::NodeId>* host_to_result) {
  const Window& window = piece.window;
  const net::Network& mapped = piece.mapped;
  std::unordered_map<std::string, net::NodeId> input_by_name;
  for (net::NodeId i : window.inputs) {
    input_by_name.emplace(host.node(i).name, i);
  }
  const std::string prefix = "w" + std::to_string(window.index);
  std::vector<net::NodeId> mapped_to_result(
      static_cast<std::size_t>(mapped.num_nodes()), net::kNoNode);
  for (net::NodeId id : mapped.topo_order()) {
    const net::Node& n = mapped.node(id);
    if (n.kind == net::NodeKind::kInput) {
      const net::NodeId host_id = input_by_name.at(n.name);
      mapped_to_result[static_cast<std::size_t>(id)] =
          (*host_to_result)[static_cast<std::size_t>(host_id)];
      continue;
    }
    std::vector<net::NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) {
      fanins.push_back(mapped_to_result[static_cast<std::size_t>(f)]);
    }
    std::vector<int> var_map(n.fanins.size());
    for (std::size_t i = 0; i < var_map.size(); ++i) {
      var_map[i] = static_cast<int>(i);
    }
    result->manager().ensure_vars(static_cast<int>(n.fanins.size()));
    mapped_to_result[static_cast<std::size_t>(id)] = result->add_logic(
        result->fresh_name(prefix), std::move(fanins),
        bdd::transfer(n.local, result->manager(), var_map));
  }
  // Sub-network POs were declared in window.roots order by
  // window_subnetwork/materialize_snapshot, and run_flow plus the mapper
  // preserve output order.
  for (std::size_t j = 0; j < window.roots.size(); ++j) {
    (*host_to_result)[static_cast<std::size_t>(window.roots[j])] =
        mapped_to_result[static_cast<std::size_t>(
            mapped.outputs()[j].driver)];
  }
}

}  // namespace

WindowedFlowResult run_windowed_flow(const net::Network& input,
                                     const WindowedFlowOptions& options) {
  WindowedFlowResult result;
  core::FlowStats& stats = result.stats;

  WindowOptions window_options = options.window;
  window_options.k = options.flow.k;
  const auto extract_start = std::chrono::steady_clock::now();
  const std::vector<Window> windows = extract_windows(input, window_options);
  stats.windows_extracted = static_cast<int>(windows.size());
  for (const Window& w : windows) {
    stats.window_peak_inputs =
        std::max(stats.window_peak_inputs, static_cast<int>(w.inputs.size()));
    stats.window_peak_nodes =
        std::max(stats.window_peak_nodes, static_cast<int>(w.members.size()));
  }

  // Snapshot pass: one serial sweep over the host materializes every
  // resynthesis candidate as a self-contained task — plain-data snapshot in
  // the common case, a prebuilt clone when a member is too wide for a truth
  // table. This is the only phase that reads host BDDs (their handle
  // reference counts are not atomic); workers get handed the tasks and
  // never touch the host or a shared lock.
  std::vector<WindowOutcome> outcomes(windows.size());
  std::vector<WindowTask> tasks;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Window& w = windows[i];
    if (!w.needs_resynthesis || w.roots.empty()) {
      outcomes[i].stats.windows_passthrough += 1;
      outcomes[i].pieces.push_back(
          StitchPiece{w, false, net::Network("unmapped")});
      continue;
    }
    WindowTask task;
    task.slot = i;
    task.window = w;
    if (!snapshot_window(input, w, &task.snapshot)) {
      task.prebuilt = window_subnetwork(input, w);
      task.has_prebuilt = true;
    }
    task.cost = static_cast<std::uint64_t>(w.members.size()) *
                std::max<std::uint64_t>(1, w.inputs.size());
    tasks.push_back(std::move(task));
  }
  stats.window_extract_seconds = seconds_since(extract_start);

  // Worker count auto-clamps to the real resynthesis workload: no point
  // spinning up threads (or a scheduler at all) for fewer tasks than asked.
  const int effective_threads =
      std::min(options.threads, static_cast<int>(tasks.size()));
  if (effective_threads <= 1) {
    for (WindowTask& task : tasks) {
      outcomes[task.slot] = run_window_task(task, options, /*on_worker=*/false);
    }
  } else {
    std::vector<std::exception_ptr> errors(tasks.size());
    runtime::SchedulerStats sched;
    {
      runtime::JobScheduler pool(effective_threads);
      std::vector<runtime::OrderedTask> jobs;
      jobs.reserve(tasks.size());
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        jobs.push_back(runtime::OrderedTask{
            tasks[t].cost, [&tasks, &outcomes, &errors, &options, t] {
              try {
                outcomes[tasks[t].slot] =
                    run_window_task(tasks[t], options, /*on_worker=*/true);
              } catch (...) {
                errors[t] = std::current_exception();
              }
            }});
      }
      pool.submit_ordered(std::move(jobs));
      pool.wait_idle();
      sched = pool.stats();
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    stats.window_steals = sched.steals;
    stats.window_workers = static_cast<int>(sched.workers.size());
    for (const runtime::WorkerUtilization& u : sched.workers) {
      stats.window_worker_busy_seconds += u.busy_seconds;
      stats.window_worker_busy_peak_seconds =
          std::max(stats.window_worker_busy_peak_seconds, u.busy_seconds);
    }
  }

  // Deterministic stitch: windows in extraction order (their condensation is
  // acyclic by convexity), pieces in split order within each window.
  const auto stitch_start = std::chrono::steady_clock::now();
  net::Network& out = result.network;
  out.set_model_name(input.model_name());
  std::vector<net::NodeId> host_to_result(
      static_cast<std::size_t>(input.num_nodes()), net::kNoNode);
  for (net::NodeId pi : input.inputs()) {
    host_to_result[static_cast<std::size_t>(pi)] =
        out.add_input(input.node(pi).name);
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    WindowOutcome& outcome = outcomes[i];
    fold_outcome_stats(&stats, outcome.stats);
    if (outcome.seconds > stats.window_max_seconds) {
      stats.window_max_seconds = outcome.seconds;
      stats.window_max_index = static_cast<int>(i);
    }
    for (const StitchPiece& piece : outcome.pieces) {
      if (piece.resynthesized) {
        stitch_resynthesized(input, piece, &out, &host_to_result);
      } else {
        stitch_passthrough(input, piece.window, &out, &host_to_result);
      }
    }
  }
  for (const net::Output& o : input.outputs()) {
    out.add_output(o.name,
                   host_to_result[static_cast<std::size_t>(o.driver)]);
  }
  out.sweep();
  stats.window_stitch_seconds = seconds_since(stitch_start);
  return result;
}

}  // namespace hyde::part
