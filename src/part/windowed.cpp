#include "part/windowed.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapper/lutmap.hpp"
#include "net/verify.hpp"
#include "runtime/scheduler.hpp"

namespace hyde::part {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One stitchable unit: a (possibly split-descendant) window either carrying
/// its resynthesized sub-network or marked pass-through.
struct StitchPiece {
  Window window;
  bool resynthesized = false;
  net::Network mapped{"unmapped"};
};

/// Result of resynthesizing one extracted window, possibly as several split
/// pieces (topological order preserved).
struct WindowOutcome {
  std::vector<StitchPiece> pieces;
  core::FlowStats stats;
};

/// Folds a per-window flow's counters into the engine totals (mirrors the
/// multipass accumulation in core::run_flow).
void accumulate_flow_stats(core::FlowStats* into, const core::FlowStats& s) {
  into->decomposition_steps += s.decomposition_steps;
  into->shannon_fallbacks += s.shannon_fallbacks;
  into->hyper_groups += s.hyper_groups;
  into->encoder_runs += s.encoder_runs;
  into->encoder_random_kept += s.encoder_random_kept;
  into->cache_lookups += s.cache_lookups;
  into->bdd_cache_hits += s.bdd_cache_hits;
  into->bdd_cache_misses += s.bdd_cache_misses;
  into->bdd_cache_overwrites += s.bdd_cache_overwrites;
  into->bdd_gc_runs += s.bdd_gc_runs;
  into->bdd_reorder_runs += s.bdd_reorder_runs;
  into->bdd_peak_live_nodes =
      std::max(into->bdd_peak_live_nodes, s.bdd_peak_live_nodes);
  into->absorb_search_and_phases(s);
}

/// Resynthesizes one window, splitting on budget blowouts. Returns the final
/// pieces in topological order; never throws for a budget reason.
///
/// \p host_mutex serializes sub-network extraction: cloning a window reads
/// the host's BDDs, and even read-only BDD handle traffic bumps non-atomic
/// reference counts in the host manager. Everything after extraction runs on
/// the window's own manager, shared-nothing. Null means single-threaded.
WindowOutcome resynthesize_window(const net::Network& host, Window window,
                                  const WindowedFlowOptions& options,
                                  int depth, std::mutex* host_mutex) {
  WindowOutcome outcome;
  if (!window.needs_resynthesis || window.roots.empty()) {
    outcome.stats.windows_passthrough += 1;
    outcome.pieces.push_back(StitchPiece{std::move(window), false,
                                         net::Network("unmapped")});
    return outcome;
  }

  const net::Network sub = [&] {  // hyde-locked(host_mutex)
    std::unique_lock<std::mutex> lock;
    if (host_mutex != nullptr) lock = std::unique_lock<std::mutex>(*host_mutex);
    return window_subnetwork(host, window);
  }();
  core::FlowOptions flow_options = options.flow;
  flow_options.bdd_node_limit = options.window_bdd_budget;
  bool blew_budget = false;
  core::FlowResult flow;
  try {
    flow = core::run_flow(sub, flow_options);
  } catch (const std::length_error&) {
    blew_budget = true;
  } catch (const std::bad_alloc&) {
    blew_budget = true;
  }

  if (blew_budget) {
    outcome.stats.windows_budget_fallbacks += 1;
    if (depth < options.max_split_depth && window.members.size() >= 2) {
      // Halve along the member interval: topological halves of a convex
      // window stay convex, so the pieces remain stitchable in order.
      outcome.stats.windows_split += 1;
      const std::size_t mid = window.members.size() / 2;
      std::vector<net::NodeId> lo(window.members.begin(),
                                  window.members.begin() +
                                      static_cast<std::ptrdiff_t>(mid));
      std::vector<net::NodeId> hi(window.members.begin() +
                                      static_cast<std::ptrdiff_t>(mid),
                                  window.members.end());
      for (auto* half : {&lo, &hi}) {
        WindowOutcome part = resynthesize_window(
            host, make_window(host, std::move(*half), window.index,
                              options.flow.k),
            options, depth + 1, host_mutex);
        accumulate_flow_stats(&outcome.stats, part.stats);
        outcome.stats.windows_passthrough += part.stats.windows_passthrough;
        outcome.stats.windows_resynthesized +=
            part.stats.windows_resynthesized;
        outcome.stats.windows_budget_fallbacks +=
            part.stats.windows_budget_fallbacks;
        outcome.stats.windows_split += part.stats.windows_split;
        outcome.stats.windows_verify_failures +=
            part.stats.windows_verify_failures;
        for (StitchPiece& piece : part.pieces) {
          outcome.pieces.push_back(std::move(piece));
        }
      }
      return outcome;
    }
    outcome.stats.windows_passthrough += 1;
    outcome.pieces.push_back(StitchPiece{std::move(window), false,
                                         net::Network("unmapped")});
    return outcome;
  }

  accumulate_flow_stats(&outcome.stats, flow.stats);
  if (options.map_windows) {
    const auto map_start = std::chrono::steady_clock::now();
    mapper::dedup_shared_nodes(flow.network);
    mapper::collapse_into_fanouts(flow.network, options.flow.k);
    mapper::dedup_shared_nodes(flow.network);
    outcome.stats.mapping_seconds += seconds_since(map_start);
  }

  if (options.verify_windows) {
    const bool ok =
        net::check_equivalence(sub, flow.network).equivalent;
    if (!ok) {
      // A failed local check means a bug somewhere upstream; degrade to
      // pass-through (counted, never silently wrong) instead of stitching a
      // bad window into the result.
      outcome.stats.windows_verify_failures += 1;
      outcome.stats.windows_passthrough += 1;
      outcome.pieces.push_back(StitchPiece{std::move(window), false,
                                           net::Network("unmapped")});
      return outcome;
    }
  }

  outcome.stats.windows_resynthesized += 1;
  outcome.pieces.push_back(
      StitchPiece{std::move(window), true, std::move(flow.network)});
  return outcome;
}

/// Clones a pass-through window's members verbatim (host names kept when
/// free; readers connect by id, so a rename is cosmetic).
void stitch_passthrough(const net::Network& host, const Window& window,
                        net::Network* result,
                        std::vector<net::NodeId>* host_to_result) {
  for (net::NodeId m : window.members) {
    const net::Node& n = host.node(m);
    std::vector<net::NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) {
      fanins.push_back((*host_to_result)[static_cast<std::size_t>(f)]);
    }
    std::vector<int> var_map(n.fanins.size());
    for (std::size_t i = 0; i < var_map.size(); ++i) {
      var_map[i] = static_cast<int>(i);
    }
    result->manager().ensure_vars(static_cast<int>(n.fanins.size()));
    const std::string name =
        result->find(n.name) == net::kNoNode ? n.name
                                             : result->fresh_name(n.name);
    (*host_to_result)[static_cast<std::size_t>(m)] = result->add_logic(
        name, std::move(fanins),
        bdd::transfer(n.local, result->manager(), var_map));
  }
}

/// Instantiates a resynthesized window's mapped sub-network into the result,
/// wiring its PIs to the already-stitched boundary signals and registering
/// its PO drivers as the window roots' new implementations.
void stitch_resynthesized(const net::Network& host, const StitchPiece& piece,
                          net::Network* result,
                          std::vector<net::NodeId>* host_to_result) {
  const Window& window = piece.window;
  const net::Network& mapped = piece.mapped;
  std::unordered_map<std::string, net::NodeId> input_by_name;
  for (net::NodeId i : window.inputs) {
    input_by_name.emplace(host.node(i).name, i);
  }
  const std::string prefix = "w" + std::to_string(window.index);
  std::vector<net::NodeId> mapped_to_result(
      static_cast<std::size_t>(mapped.num_nodes()), net::kNoNode);
  for (net::NodeId id : mapped.topo_order()) {
    const net::Node& n = mapped.node(id);
    if (n.kind == net::NodeKind::kInput) {
      const net::NodeId host_id = input_by_name.at(n.name);
      mapped_to_result[static_cast<std::size_t>(id)] =
          (*host_to_result)[static_cast<std::size_t>(host_id)];
      continue;
    }
    std::vector<net::NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (net::NodeId f : n.fanins) {
      fanins.push_back(mapped_to_result[static_cast<std::size_t>(f)]);
    }
    std::vector<int> var_map(n.fanins.size());
    for (std::size_t i = 0; i < var_map.size(); ++i) {
      var_map[i] = static_cast<int>(i);
    }
    result->manager().ensure_vars(static_cast<int>(n.fanins.size()));
    mapped_to_result[static_cast<std::size_t>(id)] = result->add_logic(
        result->fresh_name(prefix), std::move(fanins),
        bdd::transfer(n.local, result->manager(), var_map));
  }
  // Sub-network POs were declared in window.roots order by
  // window_subnetwork, and run_flow plus the mapper preserve output order.
  for (std::size_t j = 0; j < window.roots.size(); ++j) {
    (*host_to_result)[static_cast<std::size_t>(window.roots[j])] =
        mapped_to_result[static_cast<std::size_t>(
            mapped.outputs()[j].driver)];
  }
}

}  // namespace

WindowedFlowResult run_windowed_flow(const net::Network& input,
                                     const WindowedFlowOptions& options) {
  WindowedFlowResult result;
  core::FlowStats& stats = result.stats;

  WindowOptions window_options = options.window;
  window_options.k = options.flow.k;
  const auto extract_start = std::chrono::steady_clock::now();
  const std::vector<Window> windows = extract_windows(input, window_options);
  stats.window_extract_seconds = seconds_since(extract_start);
  stats.windows_extracted = static_cast<int>(windows.size());
  for (const Window& w : windows) {
    stats.window_peak_inputs =
        std::max(stats.window_peak_inputs, static_cast<int>(w.inputs.size()));
    stats.window_peak_nodes =
        std::max(stats.window_peak_nodes, static_cast<int>(w.members.size()));
  }

  // Per-window resynthesis: shared-nothing jobs, results slotted by window
  // index so every downstream step is schedule-independent.
  std::vector<WindowOutcome> outcomes(windows.size());
  if (options.threads <= 1) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      outcomes[i] = resynthesize_window(input, windows[i], options, 0, nullptr);
    }
  } else {
    // Host-manager gate: window extraction reads host BDDs, whose handle
    // reference counts are not atomic. Flows themselves stay lock-free.
    std::mutex host_mutex;
    std::vector<std::exception_ptr> errors(windows.size());
    {
      runtime::JobScheduler pool(options.threads);
      for (std::size_t i = 0; i < windows.size(); ++i) {
        pool.submit([&, i] {
          try {
            outcomes[i] =
                resynthesize_window(input, windows[i], options, 0, &host_mutex);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Deterministic stitch: windows in extraction order (their condensation is
  // acyclic by convexity), pieces in split order within each window.
  const auto stitch_start = std::chrono::steady_clock::now();
  net::Network& out = result.network;
  out.set_model_name(input.model_name());
  std::vector<net::NodeId> host_to_result(
      static_cast<std::size_t>(input.num_nodes()), net::kNoNode);
  for (net::NodeId pi : input.inputs()) {
    host_to_result[static_cast<std::size_t>(pi)] =
        out.add_input(input.node(pi).name);
  }
  for (WindowOutcome& outcome : outcomes) {
    accumulate_flow_stats(&stats, outcome.stats);
    stats.windows_resynthesized += outcome.stats.windows_resynthesized;
    stats.windows_passthrough += outcome.stats.windows_passthrough;
    stats.windows_budget_fallbacks += outcome.stats.windows_budget_fallbacks;
    stats.windows_split += outcome.stats.windows_split;
    stats.windows_verify_failures += outcome.stats.windows_verify_failures;
    for (const StitchPiece& piece : outcome.pieces) {
      if (piece.resynthesized) {
        stitch_resynthesized(input, piece, &out, &host_to_result);
      } else {
        stitch_passthrough(input, piece.window, &out, &host_to_result);
      }
    }
  }
  for (const net::Output& o : input.outputs()) {
    out.add_output(o.name,
                   host_to_result[static_cast<std::size_t>(o.driver)]);
  }
  out.sweep();
  stats.window_stitch_seconds = seconds_since(stitch_start);
  return result;
}

}  // namespace hyde::part
