#include <algorithm>
#include <array>
#include <stdexcept>

#include "mcnc/benchmarks.hpp"

namespace hyde::mcnc {

namespace {

struct SplitMix {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

}  // namespace

net::Network seeded_pla(const std::string& name, int num_inputs, int num_outputs,
                        int support_size, int cubes_per_output, int group_size,
                        std::uint64_t seed) {
  if (support_size > num_inputs) {
    throw std::invalid_argument("seeded_pla: support larger than input count");
  }
  net::Network net(name);
  SplitMix rng{seed};
  std::vector<net::NodeId> pis;
  for (int i = 0; i < num_inputs; ++i) {
    pis.push_back(net.add_input("x" + std::to_string(i)));
  }
  for (int base = 0; base < num_outputs; base += group_size) {
    // Draw the group's shared support.
    std::vector<int> perm(static_cast<std::size_t>(num_inputs));
    for (int i = 0; i < num_inputs; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = num_inputs - 1; i > 0; --i) {
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(rng.below(
                    static_cast<std::uint64_t>(i + 1)))]);
    }
    std::vector<net::NodeId> support;
    for (int i = 0; i < support_size; ++i) {
      support.push_back(pis[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]);
    }
    // Real two-level benchmarks decompose well because their covers hide
    // cluster structure. Emulate it: split the support into clusters of ≤4
    // variables, draw a small pool of subfunctions per cluster, and make
    // each output a random combiner of one subfunction per cluster. Outputs
    // in the same group share subfunctions — exactly the common sub-logic
    // the decomposition flows compete on extracting.
    const int num_clusters = (support_size + 3) / 4;
    std::vector<std::vector<int>> clusters(static_cast<std::size_t>(num_clusters));
    for (int v = 0; v < support_size; ++v) {
      clusters[static_cast<std::size_t>(v % num_clusters)].push_back(v);
    }
    auto random_sop = [&rng](int arity, int cubes) {
      tt::TruthTable fn(arity);
      for (int c = 0; c < cubes; ++c) {
        tt::TruthTable cube = tt::TruthTable::ones(arity);
        for (int v = 0; v < arity; ++v) {
          const std::uint64_t r = rng.next();
          if ((r & 3) == 0) continue;
          const tt::TruthTable lit = tt::TruthTable::var(arity, v);
          cube &= (r & 4) ? lit : ~lit;
        }
        fn |= cube;
      }
      return fn;
    };
    // Two candidate subfunctions per cluster, embedded in the full support.
    std::vector<std::array<tt::TruthTable, 2>> sub_pool;
    for (const auto& cluster : clusters) {
      std::array<tt::TruthTable, 2> pair{
          random_sop(static_cast<int>(cluster.size()), 2)
              .expand(support_size, cluster),
          random_sop(static_cast<int>(cluster.size()), 3)
              .expand(support_size, cluster)};
      sub_pool.push_back(std::move(pair));
    }
    const int end = std::min(num_outputs, base + group_size);
    const int combiner_cubes = std::max(2, cubes_per_output / 4);
    for (int o = base; o < end; ++o) {
      const tt::TruthTable combiner = random_sop(num_clusters, combiner_cubes);
      tt::TruthTable function(support_size);
      for (std::uint64_t cm = 0; cm < combiner.size(); ++cm) {
        if (!combiner.bit(cm)) continue;
        tt::TruthTable minterm_fn = tt::TruthTable::ones(support_size);
        for (int cl = 0; cl < num_clusters; ++cl) {
          // Outputs alternate between the cluster's two subfunctions, so
          // group members overlap without being identical.
          const tt::TruthTable& chosen =
              sub_pool[static_cast<std::size_t>(cl)][(o + cl) & 1];
          minterm_fn &= ((cm >> cl) & 1) ? chosen : ~chosen;
        }
        function |= minterm_fn;
      }
      const std::string out_name = "o" + std::to_string(o);
      net.add_output(out_name,
                     net.add_logic_tt(out_name, support, function));
    }
  }
  return net;
}

net::Network random_multilevel(const std::string& name, int num_inputs,
                               int num_outputs, int num_nodes, int min_arity,
                               int max_arity, std::uint64_t seed) {
  net::Network net(name);
  SplitMix rng{seed};
  std::vector<net::NodeId> signals;
  for (int i = 0; i < num_inputs; ++i) {
    signals.push_back(net.add_input("x" + std::to_string(i)));
  }
  for (int n = 0; n < num_nodes; ++n) {
    const int arity = min_arity + static_cast<int>(rng.below(
                                      static_cast<std::uint64_t>(
                                          max_arity - min_arity + 1)));
    std::vector<net::NodeId> fanins;
    for (int a = 0; a < arity; ++a) {
      // Bias toward recent signals to create depth, but keep PI fanins too.
      net::NodeId pick;
      if ((rng.next() & 3) == 0 || signals.size() <= 4) {
        pick = signals[static_cast<std::size_t>(rng.below(signals.size()))];
      } else {
        const std::size_t window = std::min<std::size_t>(signals.size(), 24);
        pick = signals[signals.size() - 1 - static_cast<std::size_t>(rng.below(window))];
      }
      if (std::find(fanins.begin(), fanins.end(), pick) == fanins.end()) {
        fanins.push_back(pick);
      }
    }
    if (fanins.empty()) fanins.push_back(signals.front());
    const int real_arity = static_cast<int>(fanins.size());
    // Gate-like local functions: an OR of a few cubes (optionally XORed with
    // one input), the texture of technology-independent multi-level logic.
    tt::TruthTable function(real_arity);
    const int cubes = 1 + static_cast<int>(rng.below(3));
    for (int c = 0; c < cubes; ++c) {
      tt::TruthTable cube = tt::TruthTable::ones(real_arity);
      for (int v = 0; v < real_arity; ++v) {
        const std::uint64_t r = rng.next();
        if ((r & 3) == 0) continue;
        const tt::TruthTable lit = tt::TruthTable::var(real_arity, v);
        cube &= (r & 4) ? lit : ~lit;
      }
      function |= cube;
    }
    if ((rng.next() & 7) == 0) {
      function ^= tt::TruthTable::var(
          real_arity, static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(real_arity))));
    }
    signals.push_back(net.add_logic_tt("n" + std::to_string(n), fanins, function));
  }
  for (int o = 0; o < num_outputs; ++o) {
    // Prefer recent nodes as outputs so most of the DAG stays live.
    const std::size_t window =
        std::min<std::size_t>(static_cast<std::size_t>(num_nodes),
                              static_cast<std::size_t>(2 * num_outputs + 8));
    const net::NodeId driver =
        signals[signals.size() - 1 - static_cast<std::size_t>(rng.below(window))];
    net.add_output("o" + std::to_string(o), driver);
  }
  net.sweep();
  return net;
}

}  // namespace hyde::mcnc
