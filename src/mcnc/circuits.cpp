#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <stdexcept>

#include "mcnc/benchmarks.hpp"

namespace hyde::mcnc {

namespace {

using net::Network;
using net::NodeId;
using tt::TruthTable;

// ---------------------------------------------------------------------------
// Exact / arithmetic circuits
// ---------------------------------------------------------------------------

/// Adds one wide node per output bit of an arithmetic word function.
Network word_function(const std::string& name, int num_inputs, int num_outputs,
                      const std::function<std::uint64_t(std::uint64_t)>& word) {
  Network net(name);
  std::vector<NodeId> pis;
  for (int i = 0; i < num_inputs; ++i) {
    pis.push_back(net.add_input("x" + std::to_string(i)));
  }
  for (int o = 0; o < num_outputs; ++o) {
    const TruthTable bit = TruthTable::from_lambda(
        num_inputs, [&word, o](std::uint64_t m) { return ((word(m) >> o) & 1) != 0; });
    const std::string out_name = "y" + std::to_string(o);
    net.add_output(out_name, net.add_logic_tt(out_name, pis, bit));
  }
  return net;
}

Network make_9sym() {
  Network net("9sym");
  std::vector<NodeId> pis;
  for (int i = 0; i < 9; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const NodeId f =
      net.add_logic_tt("f", pis, TruthTable::symmetric(9, {3, 4, 5, 6}));
  net.add_output("f", f);
  return net;
}

Network make_rd(const std::string& name, int bits, int out_bits) {
  return word_function(name, bits, out_bits, [](std::uint64_t m) {
    return static_cast<std::uint64_t>(std::popcount(m));
  });
}

Network make_z4ml() {
  // 3-bit + 3-bit + carry-in -> 4-bit sum (an adder slice, like the
  // original "4-bit adder" z4ml).
  return word_function("z4ml", 7, 4, [](std::uint64_t m) {
    const std::uint64_t a = m & 7, b = (m >> 3) & 7, cin = (m >> 6) & 1;
    return a + b + cin;
  });
}

Network make_5xp1() {
  // Arithmetic-PLA stand-in: Y = X^2 + X + 1 (low 10 bits) over 7-bit X.
  return word_function("5xp1", 7, 10, [](std::uint64_t m) {
    return (m * m + m + 1) & 0x3FFull;
  });
}

Network make_f51m() {
  // 4x4 multiplier (8 output bits), an arithmetic circuit of f51m's size.
  return word_function("f51m", 8, 8, [](std::uint64_t m) {
    return (m & 15) * ((m >> 4) & 15);
  });
}

Network make_clip() {
  // Signed 9-bit input clipped to the signed 5-bit range [-15, 15]
  // (the original clip is a saturator of this shape).
  return word_function("clip", 9, 5, [](std::uint64_t m) {
    int x = static_cast<int>(m & 0xFF);
    if (m & 0x100) x -= 256;  // sign bit
    const int clipped = std::clamp(x, -15, 15);
    return static_cast<std::uint64_t>(clipped) & 0x1Full;
  });
}

std::uint64_t alu_word(std::uint64_t a, std::uint64_t b, std::uint64_t op,
                       int width) {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t r = 0;
  std::uint64_t cout = 0;
  switch (op) {
    case 0:
      r = a + b;
      cout = (r >> width) & 1;
      r &= mask;
      break;
    case 1:
      r = a & b;
      break;
    case 2:
      r = a | b;
      break;
    case 3:
      r = a ^ b;
      break;
  }
  const std::uint64_t zero = (r == 0) ? 1 : 0;
  return r | (cout << width) | (zero << (width + 1));
}

Network make_alu2() {
  // 4-bit ALU slice: a[3:0] b[3:0] op[1:0] -> r[3:0] cout zero.
  return word_function("alu2", 10, 6, [](std::uint64_t m) {
    return alu_word(m & 15, (m >> 4) & 15, (m >> 8) & 3, 4);
  });
}

Network make_alu4() {
  // 6-bit ALU slice: a[5:0] b[5:0] op[1:0] -> r[5:0] cout zero.
  return word_function("alu4", 14, 8, [](std::uint64_t m) {
    return alu_word(m & 63, (m >> 6) & 63, (m >> 12) & 3, 6);
  });
}

// ---------------------------------------------------------------------------
// Structural circuits
// ---------------------------------------------------------------------------

Network make_count() {
  // 16-bit incrementer-with-enables: d[15:0] en[15:0] cin ctl0 ctl1.
  Network net("count");
  std::vector<NodeId> d, en;
  for (int i = 0; i < 16; ++i) d.push_back(net.add_input("d" + std::to_string(i)));
  for (int i = 0; i < 16; ++i) en.push_back(net.add_input("en" + std::to_string(i)));
  const NodeId cin = net.add_input("cin");
  const NodeId ctl0 = net.add_input("ctl0");
  const NodeId ctl1 = net.add_input("ctl1");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const TruthTable or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
  const TruthTable xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  NodeId carry = cin;
  for (int i = 0; i < 16; ++i) {
    // out_i = d_i ^ (carry & ctl0); carry' = carry & (d_i | (en_i & ctl1)).
    const NodeId gated =
        net.add_logic_tt("g" + std::to_string(i), {carry, ctl0}, and2);
    const NodeId out =
        net.add_logic_tt("s" + std::to_string(i), {d[static_cast<std::size_t>(i)], gated}, xor2);
    net.add_output("q" + std::to_string(i), out);
    const NodeId en_g =
        net.add_logic_tt("eg" + std::to_string(i), {en[static_cast<std::size_t>(i)], ctl1}, and2);
    const NodeId either =
        net.add_logic_tt("e" + std::to_string(i), {d[static_cast<std::size_t>(i)], en_g}, or2);
    carry = net.add_logic_tt("c" + std::to_string(i), {carry, either}, and2);
  }
  return net;
}

Network make_e64() {
  // 65-way priority encoder texture: out_i = x_i & !(x_0 | ... | x_{i-1}).
  Network net("e64");
  std::vector<NodeId> x;
  for (int i = 0; i < 65; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
  const TruthTable andn2 = TruthTable::var(2, 0) & ~TruthTable::var(2, 1);
  net.add_output("o0", x[0]);
  NodeId prefix = x[0];
  for (int i = 1; i < 65; ++i) {
    const NodeId out =
        net.add_logic_tt("p" + std::to_string(i), {x[static_cast<std::size_t>(i)], prefix}, andn2);
    net.add_output("o" + std::to_string(i), out);
    if (i < 64) {
      prefix = net.add_logic_tt("pre" + std::to_string(i),
                                {prefix, x[static_cast<std::size_t>(i)]}, or2);
    }
  }
  return net;
}

Network make_des() {
  // DES-like S-box network: 32 boxes of 6 shared inputs and 4 outputs each
  // (the same-support sharing the paper exploited by partial collapsing),
  // plus XOR combiners for the remaining outputs. 256 PIs / 245 POs.
  Network net("des");
  std::vector<NodeId> x;
  for (int i = 0; i < 256; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  std::uint64_t state = 0xDE5DE5DE5ull;
  auto rnd = [&state]() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  std::vector<NodeId> sbox_outs;
  int produced = 0;
  for (int box = 0; box < 32; ++box) {
    std::vector<NodeId> support;
    for (int j = 0; j < 6; ++j) {
      support.push_back(x[static_cast<std::size_t>((box * 8 + j * 5) % 256)]);
    }
    for (int o = 0; o < 4; ++o) {
      const TruthTable fn = TruthTable::from_lambda(
          6, [&rnd](std::uint64_t) { return (rnd() & 1) != 0; });
      const std::string name = "sb" + std::to_string(box) + "_" + std::to_string(o);
      const NodeId node = net.add_logic_tt(name, support, fn);
      sbox_outs.push_back(node);
      net.add_output(name, node);
      ++produced;
    }
  }
  const TruthTable xor3 = TruthTable::var(3, 0) ^ TruthTable::var(3, 1) ^
                          TruthTable::var(3, 2);
  int combiner = 0;
  while (produced < 245) {
    const NodeId a = sbox_outs[static_cast<std::size_t>(rnd() % sbox_outs.size())];
    const NodeId b = sbox_outs[static_cast<std::size_t>(rnd() % sbox_outs.size())];
    const NodeId c = x[static_cast<std::size_t>(rnd() % 256)];
    const std::string name = "cmb" + std::to_string(combiner++);
    const NodeId node = net.add_logic_tt(name, {a, b, c}, xor3);
    net.add_output(name, node);
    ++produced;
  }
  return net;
}

Network make_c499() {
  // Single-error-correction texture (C499 is a 32-bit SEC circuit):
  // syndrome bits from XOR trees, wide decoders sharing the syndrome, and
  // output correctors d_i ^ (en & dec_i). 41 PIs / 32 POs.
  Network net("C499");
  std::vector<NodeId> d, c;
  for (int i = 0; i < 32; ++i) d.push_back(net.add_input("d" + std::to_string(i)));
  for (int j = 0; j < 8; ++j) c.push_back(net.add_input("c" + std::to_string(j)));
  const NodeId en = net.add_input("en");
  auto h = [](int i) {  // pseudo-Hamming column for data bit i
    return static_cast<unsigned>((static_cast<unsigned>(i) * 2654435761u) >> 24) & 0xFFu;
  };
  const TruthTable xor4 = TruthTable::from_lambda(4, [](std::uint64_t m) {
    return std::popcount(m) % 2 == 1;
  });
  const TruthTable xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  std::vector<NodeId> syndrome;
  for (int j = 0; j < 8; ++j) {
    // Balanced XOR tree over the participating data bits plus the check bit.
    std::vector<NodeId> layer{c[static_cast<std::size_t>(j)]};
    for (int i = 0; i < 32; ++i) {
      if ((h(i) >> j) & 1) layer.push_back(d[static_cast<std::size_t>(i)]);
    }
    int chunk_id = 0;
    while (layer.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t p = 0; p < layer.size(); p += 4) {
        const std::size_t width = std::min<std::size_t>(4, layer.size() - p);
        if (width == 1) {
          next.push_back(layer[p]);
          continue;
        }
        std::vector<NodeId> fanins(layer.begin() + static_cast<std::ptrdiff_t>(p),
                                   layer.begin() + static_cast<std::ptrdiff_t>(p + width));
        const TruthTable fn =
            width == 4 ? xor4
                       : TruthTable::from_lambda(static_cast<int>(width),
                                                 [](std::uint64_t m) {
                                                   return std::popcount(m) % 2 == 1;
                                                 });
        next.push_back(net.add_logic_tt(
            "sx" + std::to_string(j) + "_" + std::to_string(chunk_id++), fanins, fn));
      }
      layer = std::move(next);
    }
    syndrome.push_back(layer[0]);
  }
  for (int i = 0; i < 32; ++i) {
    // Wide decoder over the 8 shared syndrome bits (same support for all i).
    const unsigned pattern = h(i);
    const TruthTable dec = TruthTable::from_lambda(8, [pattern](std::uint64_t m) {
      return m == pattern;
    });
    const NodeId dec_node =
        net.add_logic_tt("dec" + std::to_string(i), syndrome, dec);
    const TruthTable gate = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    const NodeId gated =
        net.add_logic_tt("gd" + std::to_string(i), {dec_node, en}, gate);
    const NodeId out = net.add_logic_tt(
        "cor" + std::to_string(i), {d[static_cast<std::size_t>(i)], gated}, xor2);
    net.add_output("y" + std::to_string(i), out);
  }
  return net;
}

Network make_c880() {
  // 12-bit masked ALU texture (C880 is an 8-bit ALU): 60 PIs / 26 POs.
  Network net("C880");
  std::vector<NodeId> a, b, m, k;
  for (int i = 0; i < 12; ++i) a.push_back(net.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 12; ++i) b.push_back(net.add_input("b" + std::to_string(i)));
  for (int i = 0; i < 12; ++i) m.push_back(net.add_input("m" + std::to_string(i)));
  std::vector<NodeId> sel;
  for (int i = 0; i < 4; ++i) sel.push_back(net.add_input("sel" + std::to_string(i)));
  for (int i = 0; i < 20; ++i) k.push_back(net.add_input("k" + std::to_string(i)));

  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const TruthTable xor4 = TruthTable::from_lambda(4, [](std::uint64_t v) {
    return std::popcount(v) % 2 == 1;
  });
  // Ripple adder with masking: full adder cells of arity 3, result AND mask.
  const TruthTable sum3 = TruthTable::from_lambda(3, [](std::uint64_t v) {
    return std::popcount(v) % 2 == 1;
  });
  const TruthTable carry3 = TruthTable::from_lambda(3, [](std::uint64_t v) {
    return std::popcount(v) >= 2;
  });
  NodeId carry = sel[3];  // carry-in doubles as a select line
  for (int i = 0; i < 12; ++i) {
    const std::vector<NodeId> cell{a[static_cast<std::size_t>(i)],
                                   b[static_cast<std::size_t>(i)], carry};
    const NodeId s = net.add_logic_tt("s" + std::to_string(i), cell, sum3);
    carry = net.add_logic_tt("c" + std::to_string(i), cell, carry3);
    const NodeId masked = net.add_logic_tt(
        "r" + std::to_string(i), {s, m[static_cast<std::size_t>(i)]}, and2);
    net.add_output("r" + std::to_string(i), masked);
  }
  net.add_output("cout", carry);
  // Logic unit: g_i = mux(sel, a&k, a|k, a^k, !a) — 5-input cells sharing sel.
  const TruthTable logic_cell = TruthTable::from_lambda(4, [](std::uint64_t v) {
    const bool av = (v & 1) != 0, kv = (v & 2) != 0;
    switch ((v >> 2) & 3) {
      case 0: return av && kv;
      case 1: return av || kv;
      case 2: return av != kv;
      default: return !av;
    }
  });
  for (int i = 0; i < 8; ++i) {
    const NodeId g = net.add_logic_tt(
        "g" + std::to_string(i),
        {a[static_cast<std::size_t>(i)], k[static_cast<std::size_t>(i)], sel[0], sel[1]},
        logic_cell);
    net.add_output("g" + std::to_string(i), g);
  }
  // Reduction outputs: parity of a, any(m), and a couple of k-mixes.
  auto tree = [&net](const std::string& prefix, const std::vector<NodeId>& leaves,
                     bool parity) {
    std::vector<NodeId> layer = leaves;
    int idx = 0;
    while (layer.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t p = 0; p < layer.size(); p += 4) {
        const std::size_t width = std::min<std::size_t>(4, layer.size() - p);
        if (width == 1) {
          next.push_back(layer[p]);
          continue;
        }
        std::vector<NodeId> fanins(layer.begin() + static_cast<std::ptrdiff_t>(p),
                                   layer.begin() + static_cast<std::ptrdiff_t>(p + width));
        const TruthTable fn = TruthTable::from_lambda(
            static_cast<int>(width), [parity](std::uint64_t v) {
              return parity ? std::popcount(v) % 2 == 1 : v != 0;
            });
        next.push_back(net.add_logic_tt(prefix + std::to_string(idx++), fanins, fn));
      }
      layer = std::move(next);
    }
    return layer[0];
  };
  net.add_output("par_a", tree("pa", a, true));
  net.add_output("any_m", tree("am", m, false));
  net.add_output("par_k", tree("pk", k, true));
  net.add_output("any_k", tree("ak", k, false));
  net.add_output("sel_mix",
                 net.add_logic_tt("selmix", {sel[0], sel[1], sel[2], sel[3]}, xor4));
  return net;
}

// ---------------------------------------------------------------------------
// Registry and paper data
// ---------------------------------------------------------------------------

using Builder = std::function<Network()>;

const std::map<std::string, Builder>& registry() {
  static const std::map<std::string, Builder> kRegistry = {
      {"5xp1", make_5xp1},
      {"9sym", make_9sym},
      {"alu2", make_alu2},
      {"alu4", make_alu4},
      {"apex4", [] { return seeded_pla("apex4", 9, 19, 9, 12, 4, 0xA4); }},
      {"apex6", [] { return random_multilevel("apex6", 135, 99, 260, 2, 7, 0xA6); }},
      {"apex7", [] { return random_multilevel("apex7", 49, 37, 110, 2, 6, 0xA7); }},
      {"b9", [] { return random_multilevel("b9", 41, 21, 80, 2, 5, 0xB9); }},
      {"clip", make_clip},
      {"count", make_count},
      {"des", make_des},
      {"duke2", [] { return seeded_pla("duke2", 22, 29, 10, 10, 4, 0xD2); }},
      {"e64", make_e64},
      {"f51m", make_f51m},
      {"misex1", [] { return seeded_pla("misex1", 8, 7, 8, 6, 4, 0x31); }},
      {"misex2", [] { return seeded_pla("misex2", 25, 18, 8, 5, 3, 0x32); }},
      {"misex3", [] { return seeded_pla("misex3", 14, 14, 14, 16, 5, 0x33); }},
      {"rd73", [] { return make_rd("rd73", 7, 3); }},
      {"rd84", [] { return make_rd("rd84", 8, 4); }},
      {"rot", [] { return random_multilevel("rot", 135, 107, 300, 2, 8, 0x407); }},
      {"sao2", [] { return seeded_pla("sao2", 10, 4, 10, 14, 4, 0x5A); }},
      {"vg2", [] { return seeded_pla("vg2", 25, 8, 12, 8, 4, 0x62); }},
      {"z4ml", make_z4ml},
      {"C499", make_c499},
      {"C880", make_c880},
  };
  return kRegistry;
}

}  // namespace

Network make_circuit(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("make_circuit: unknown benchmark " + name);
  }
  return it->second();
}

std::vector<std::string> all_circuits() {
  std::vector<std::string> names;
  for (const auto& [name, builder] : registry()) names.push_back(name);
  return names;
}

const std::vector<Table1Row>& paper_table1() {
  static const std::vector<Table1Row> kTable = {
      {"5xp1", 9, 9, 10, 1.3},     {"9sym", 7, 7, 6, 22.8},
      {"alu2", 46, 55, 43, 554.4}, {"alu4", 168, 56, 140, 911.7},
      {"apex6", 129, 181, 135, 108.7}, {"apex7", 41, 43, 39, 9.6},
      {"clip", 12, 18, 11, 407.2}, {"count", 26, 23, 24, 1.6},
      {"des", 489, -1, 408, 236.6}, {"duke2", 122, 85, 75, 28.0},
      {"e64", 55, 44, 48, 0.0},    {"f51m", 8, 8, 8, 10.4},
      {"misex1", 9, 8, 9, 11.8},   {"misex2", 21, 22, 22, 3.3},
      {"rd73", 5, 5, 5, 3.0},      {"rd84", 8, 8, 7, 16.0},
      {"rot", 127, 136, 125, 132.7}, {"sao2", 17, 25, 17, 117.5},
      {"vg2", 19, 17, 18, 3.6},    {"z4ml", 4, 4, 4, 2.7},
      {"C499", 50, 54, 50, 2.9},   {"C880", 81, 87, 68, 69.8},
  };
  return kTable;
}

const std::vector<Table2Row>& paper_table2() {
  static const std::vector<Table2Row> kTable = {
      {"5xp1", 15, 11, 10, 13},   {"9sym", 7, 7, 7, 6},
      {"alu2", 48, 48, 48, 50},   {"alu4", 172, 90, 56, 206},
      {"apex4", 374, 374, 374, 354}, {"apex6", 192, 161, 155, 186},
      {"apex7", 120, 61, 54, 54}, {"b9", 53, 39, 37, 36},
      {"clip", 18, 11, 14, 14},   {"count", 52, 31, 31, 31},
      {"des", -1, -1, -1, 561},   {"duke2", 175, 155, 150, 116},
      {"e64", -1, -1, -1, 80},    {"f51m", 12, 10, 8, 12},
      {"misex1", 12, 10, 10, 13}, {"misex2", 40, 36, 36, 29},
      {"misex3", 195, 213, 120, 131}, {"rd73", 8, 6, 6, 6},
      {"rd84", 12, 7, 8, 9},      {"rot", -1, -1, -1, 185},
      {"sao2", 23, 21, 21, 22},   {"vg2", 44, 21, 17, 18},
      {"z4ml", 6, 5, 4, 5},       {"C499", -1, -1, -1, 70},
      {"C880", -1, -1, -1, 81},
  };
  return kTable;
}

}  // namespace hyde::mcnc
