/// \file benchmarks.hpp
/// \brief Synthetic MCNC-like benchmark suite.
///
/// The original MCNC netlists are not redistributable here, so every circuit
/// of the paper's Tables 1 and 2 gets a deterministic generator with the
/// same name, the same PI/PO counts and the same structural character
/// (see DESIGN.md §3 for the substitution argument):
///  - exact public functions where known (9sym, rd73, rd84, z4ml, clip,
///    f51m, count, C499-style SEC, ALU slices for alu2/alu4/C880);
///  - seeded PLA stand-ins for the two-level circuits (misex*, duke2, sao2,
///    apex4, e64, vg2, 5xp1);
///  - seeded multi-level DAGs for the large circuits (apex6, apex7, rot,
///    b9) and a DES-like S-box network for des (groups of outputs sharing
///    supports — the paper's "partially collapsed" treatment).
///
/// All generators are pure functions of the circuit name: repeated calls
/// return identical networks.

#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace hyde::mcnc {

/// Builds the named benchmark circuit. Throws std::invalid_argument for
/// unknown names. Deterministic.
net::Network make_circuit(const std::string& name);

/// Every circuit name this registry can build, alphabetical.
std::vector<std::string> all_circuits();

/// Paper Table 1 (XC3000 CLB counts; -1 marks the '-' entries).
struct Table1Row {
  std::string circuit;
  int imodec_clb;
  int fgsyn_clb;
  int hyde_clb;
  double cpu_seconds;
};
const std::vector<Table1Row>& paper_table1();

/// Paper Table 2 (5-input LUT counts; -1 marks the '-' entries).
struct Table2Row {
  std::string circuit;
  int noresub_lut;
  int resub_lut;
  int po_lut;
  int hyde_lut;
};
const std::vector<Table2Row>& paper_table2();

// --- Generic generators (exposed for tests and extra experiments) ---------

/// Seeded two-level (PLA-style) circuit: outputs are grouped, each group
/// shares one randomly drawn input support of \p support_size; each output
/// is an OR of \p cubes_per_output random cubes over that support.
net::Network seeded_pla(const std::string& name, int num_inputs, int num_outputs,
                        int support_size, int cubes_per_output, int group_size,
                        std::uint64_t seed);

/// Seeded multi-level random DAG with node arities in
/// [\p min_arity, \p max_arity], biased toward recent signals.
net::Network random_multilevel(const std::string& name, int num_inputs,
                               int num_outputs, int num_nodes, int min_arity,
                               int max_arity, std::uint64_t seed);

}  // namespace hyde::mcnc
