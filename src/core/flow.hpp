/// \file flow.hpp
/// \brief End-to-end technology-mapping flows: HYDE and the knobs that turn
/// it into the published baselines it is compared against.
///
/// The flow turns an arbitrary Boolean network into a k-feasible network
/// (every node ≤ k inputs) by recursive Roth–Karp decomposition:
///
///  - *collapse mode* (small circuits, as in the paper's experimental setup):
///    primary-output global functions are decomposed directly;
///  - *per-node mode* (large circuits): each wide node is decomposed over its
///    fanins; wide nodes sharing identical supports can be grouped into
///    hyper-functions (the paper's partially-collapsed **des** treatment).
///
/// Knobs map to the systems of Tables 1 and 2 (see DESIGN.md §3):
///  - HYDE: hyper-functions + compatible-class encoding + clique-partition DC
///    assignment, PPIs biased to the free set (Section 4.3);
///  - FGSyn-like [4]: hyper-functions with PPIs *always* free (column
///    encoding as the degenerate case), random encoding;
///  - IMODEC-like [5]: per-output decomposition, rigid random encoding,
///    DC merging on (sharing comes from downstream functional dedup);
///  - Sawada-like [8] (no resub): per-output decomposition, random encoding,
///    distinct-column classes (no clique partitioning).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/pool.hpp"
#include "core/decomp_cache.hpp"
#include "core/encoder.hpp"
#include "decomp/search.hpp"
#include "core/hyper.hpp"
#include "net/network.hpp"

namespace hyde::core {

/// How compatible classes (and hyper-function ingredients) are encoded.
enum class EncodingPolicy {
  kRandom,           ///< Step-1 random encoding only
  kCompatibleClass,  ///< the paper's Figure-3 procedure
  kCubeCount,        ///< Murgai et al. [3]: minimize the image's cube count
};

/// How a multi-output group is realized.
enum class GroupChoice {
  kAuto,         ///< decompose both ways, keep the cheaper (Section 4.3)
  kAlwaysHyper,  ///< always take the hyper-function result
  kNeverHyper,   ///< always take the per-output result
};

struct FlowOptions {
  int k = 5;  ///< LUT input count
  EncodingPolicy encoding = EncodingPolicy::kCompatibleClass;
  decomp::DcPolicy dc_policy = decomp::DcPolicy::kCliquePartition;
  /// Weight of the encoder's same-column-set tearing penalty in the Step-6
  /// row benefit (threaded into EncoderOptions::tear_penalty_scale; the
  /// paper subtracts the matched Gc edge weight, i.e. factor 1).
  /// Result-affecting — it steers which rows pair — so non-default values
  /// enter the NPN-cache fingerprint.
  double tear_penalty_scale = 1.0;
  bool use_hyper = true;   ///< group outputs into hyper-functions
  GroupChoice group_choice = GroupChoice::kAuto;
  bool ppi_hard_mu = false;  ///< FGSyn-like: PPIs never enter a bound set
  int max_group_size = 4;  ///< ingredients per hyper-function
  /// PI-count threshold for collapse mode; wider circuits run per-node.
  int max_collapse_support = 16;
  std::uint64_t seed = 1;
  /// Number of flow applications (the paper re-applies its multi-level
  /// script "several times"); each pass feeds the previous pass's network.
  int passes = 1;
  /// Optional NPN decomposition memo shared across flows/threads (see
  /// decomp_cache.hpp for the determinism and thread-safety contracts).
  /// Null keeps the historical uncached behaviour.
  DecompCache* cache = nullptr;
  /// Functions with support in (k, cache_max_support] go through the cache;
  /// capped at tt::kMaxExactNpnVars by the canonicalizer.
  int cache_max_support = 7;

  // Bound-set search engine knobs (decomp/search.hpp). All three are
  // result-neutral — they change how fast the greedy search converges,
  // never which bound sets (hence which network) it produces — so they are
  // deliberately excluded from the NPN-cache fingerprint.
  /// Threads evaluating candidate bound sets inside one flow. Keep at 1 when
  /// flows themselves run on a batch worker pool; raise for single large
  /// flows.
  int search_threads = 1;
  /// Memoize chart column counts across the flow's repeated searches.
  bool search_memo = true;
  /// Abandon candidate charts once they exceed the incumbent column count.
  bool search_pruning = true;
  /// Memo entry cap before a wholesale clear.
  std::size_t search_memo_capacity = std::size_t{1} << 14;

  // Class-computation and encoder engine knobs (decomp/compatible.hpp,
  // core/encoder.hpp). Result-neutral like the search knobs — identical
  // classes, encodings and networks at every setting — so they are likewise
  // excluded from the NPN-cache fingerprint.
  /// Decide column compatibility with packed row signatures (word ops) when
  /// the row space fits class_signature_rows; off forces the per-pair BDD
  /// disjointness tests.
  bool class_signatures = true;
  /// Row-space bound for the signature fast path (rows = 2^|support union|).
  int class_signature_rows = 4096;
  /// Worker threads for the encoder's snapshot-parallel Step 4 (per-class Π
  /// computation) and Step 8 (random-vs-structured image-class counts).
  int encoder_threads = 1;

  /// Hard cap on live nodes in the flow's global BDD manager (0 = no limit).
  /// Exceeding it makes the flow throw std::length_error; the windowed
  /// engine (part/windowed.hpp) catches it and splits or passes the window
  /// through. Result-neutral whenever the flow completes, so excluded from
  /// the NPN-cache fingerprint like the other engine knobs.
  std::size_t bdd_node_limit = 0;

  /// Dynamic variable reordering in the flow's global BDD manager (see
  /// docs/REORDER.md). kSift arms the soft-budget ladder (half the hard
  /// bdd_node_limit when one is set), kAuto adds the growth trigger. Unlike
  /// the engine knobs above these are **result-affecting**: the variable
  /// order steers one_path_count cube costs and which windows fit a budget,
  /// so both enter the NPN-cache fingerprint.
  bdd::ReorderMode reorder = bdd::ReorderMode::kOff;
  /// kAuto growth trigger: reorder when live nodes exceed this factor of the
  /// watermark left by the last reorder. Must be > 1.
  double reorder_max_growth = 2.0;

  /// Optional pool of warmed managers (bdd/pool.hpp): the flow acquires its
  /// global manager from the pool and releases it on exit instead of
  /// constructing/destroying one per invocation. Purely an allocation-reuse
  /// knob — never result-affecting — so excluded from the fingerprint. The
  /// pool must outlive every flow using it; it is safe to share one pool
  /// across batch worker threads.
  bdd::ManagerPool* manager_pool = nullptr;
};

/// Flow outcome counters (area is the post-sweep logic node count; the
/// mapper refines it with functional dedup / CLB packing).
struct FlowStats {
  int decomposition_steps = 0;
  int shannon_fallbacks = 0;
  int hyper_groups = 0;
  int encoder_runs = 0;
  int encoder_random_kept = 0;  ///< Step-8 chose the random encoding
  bool collapse_mode = false;
  /// NPN-cache consultations by this flow (schedule-independent; global
  /// hit/miss totals live on the cache itself, which is shared state).
  int cache_lookups = 0;

  // Persistent-store counters (src/store/persistent_cache.hpp), populated
  // only when FlowOptions::cache has a persistent tier. Volatile: whether a
  // key is served from memory or disk depends on which thread warmed the
  // memory tier first, so these are only emitted in volatile report
  // sections. Store-level byte/eviction counters live on the store itself.
  std::uint64_t store_disk_hits = 0;    ///< lookups served by the disk tier
  std::uint64_t store_disk_misses = 0;  ///< lookups that missed every tier

  // BDD-kernel counters summed over every manager the flow created (the
  // global manager plus one per NPN-cache template miss). Volatile in the
  // sense of run reports: they vary with cache hit patterns and thread
  // schedule, so they are only emitted in volatile report sections.
  std::uint64_t bdd_cache_hits = 0;
  std::uint64_t bdd_cache_misses = 0;
  std::uint64_t bdd_cache_overwrites = 0;
  std::uint64_t bdd_gc_runs = 0;
  std::uint64_t bdd_reorder_runs = 0;
  std::uint64_t bdd_peak_live_nodes = 0;  ///< max over managers, not a sum

  // Bound-set search engine counters (decomp/search.hpp). Volatile like the
  // bdd_* block: pruning depth and memo contents depend on evaluation order
  // and thread count, so these only appear in volatile report sections.
  std::uint64_t search_selects = 0;
  std::uint64_t search_candidates_evaluated = 0;
  std::uint64_t search_candidates_pruned = 0;
  std::uint64_t search_memo_hits = 0;
  std::uint64_t search_memo_clears = 0;

  // Class-computation / encoder engine counters (decomp/compatible.hpp,
  // core/encoder.hpp). Volatile like the search block: they record which
  // fast path fired and how many tasks hit worker threads, never anything
  // the results depend on.
  std::uint64_t class_signature_pairs = 0;
  std::uint64_t class_bdd_pairs = 0;
  std::uint64_t encoder_parallel_tasks = 0;

  // Windowed-decomposition counters (part/windowed.hpp). Deterministic for
  // fixed (input, options) — extraction, budget fallbacks and splits never
  // depend on the window thread count — but only the windowed engine
  // populates them, so they are reported in the volatile sections next to
  // the other engine blocks.
  int windows_extracted = 0;
  int windows_resynthesized = 0;
  int windows_passthrough = 0;
  int windows_budget_fallbacks = 0;  ///< window flows that blew the BDD budget
  int windows_split = 0;             ///< windows halved after a budget blowout
  int windows_verify_failures = 0;   ///< per-window checks that forced pass-through
  int window_peak_inputs = 0;        ///< widest extracted window (boundary signals)
  int window_peak_nodes = 0;         ///< largest extracted window (members)
  double window_extract_seconds = 0.0;  ///< volatile wall clock
  double window_stitch_seconds = 0.0;   ///< volatile wall clock

  // Windowed scheduling telemetry (volatile: thread count, steal pattern and
  // wall clock all vary run to run — keep these out of any determinism
  // checksum).
  int windows_extract_parallel = 0;  ///< snapshots materialized on workers
  std::uint64_t window_steals = 0;   ///< tasks stolen across worker deques
  int window_workers = 0;            ///< scheduler workers (0 = serial path)
  double window_worker_busy_seconds = 0.0;       ///< summed worker busy time
  double window_worker_busy_peak_seconds = 0.0;  ///< busiest single worker
  double window_max_seconds = 0.0;  ///< slowest single window, wall clock
  int window_max_index = -1;        ///< extraction index of that window

  // Per-phase wall-clock breakdown (volatile; seconds). varpart is the
  // bound-set search engine's self-timed total, classes covers
  // compatible-class computation, encoding is encoder wall time net of the
  // nested bound-set searches it triggers, mapping is filled in by the
  // baseline mapper after the flow proper.
  double varpart_seconds = 0.0;
  double classes_seconds = 0.0;
  double encoding_seconds = 0.0;
  double mapping_seconds = 0.0;

  /// Folds one manager's counters into the flow totals.
  void absorb_bdd_stats(const bdd::ManagerStats& s) {
    bdd_cache_hits += s.cache_hits;
    bdd_cache_misses += s.cache_misses;
    bdd_cache_overwrites += s.cache_overwrites;
    bdd_gc_runs += static_cast<std::uint64_t>(s.gc_runs);
    bdd_reorder_runs += static_cast<std::uint64_t>(s.reorder_runs);
    if (s.peak_live_nodes > bdd_peak_live_nodes) {
      bdd_peak_live_nodes = s.peak_live_nodes;
    }
  }

  /// Folds one search engine's counters into the flow totals; the engine's
  /// self-timed wall clock is the varpart phase.
  void absorb_search_stats(const decomp::SearchStats& s) {
    search_selects += s.selects;
    search_candidates_evaluated += s.candidates_evaluated;
    search_candidates_pruned += s.candidates_pruned;
    search_memo_hits += s.memo_hits;
    search_memo_clears += s.memo_clears;
    varpart_seconds += s.seconds;
  }

  /// Folds another flow's search counters and phase timings into this one
  /// (multi-pass accumulation, NPN-template sub-flows).
  void absorb_search_and_phases(const FlowStats& s) {
    search_selects += s.search_selects;
    search_candidates_evaluated += s.search_candidates_evaluated;
    search_candidates_pruned += s.search_candidates_pruned;
    search_memo_hits += s.search_memo_hits;
    search_memo_clears += s.search_memo_clears;
    class_signature_pairs += s.class_signature_pairs;
    class_bdd_pairs += s.class_bdd_pairs;
    encoder_parallel_tasks += s.encoder_parallel_tasks;
    store_disk_hits += s.store_disk_hits;
    store_disk_misses += s.store_disk_misses;
    varpart_seconds += s.varpart_seconds;
    classes_seconds += s.classes_seconds;
    encoding_seconds += s.encoding_seconds;
    mapping_seconds += s.mapping_seconds;
  }
};

struct FlowResult {
  net::Network network;
  FlowStats stats;
};

/// Runs the configured flow over \p input and returns a k-feasible network
/// computing the same primary outputs.
///
/// \p external_dc optionally supplies per-output external don't cares (e.g.
/// from a PLA's `-` outputs or a BLIF `.exdc` section): a network with the
/// same primary-input names whose output named like one of \p input's POs
/// gives that PO's don't-care function. Honoured in collapse mode (the mode
/// used for the circuits small enough to exploit DCs globally); per-node
/// mode ignores it.
FlowResult run_flow(const net::Network& input, const FlowOptions& options,
                    const net::Network* external_dc = nullptr);

/// Convenience preset builders for the published points of comparison.
FlowOptions hyde_options(int k);
FlowOptions fgsyn_like_options(int k);
FlowOptions imodec_like_options(int k);
FlowOptions sawada_like_options(int k);

}  // namespace hyde::core
