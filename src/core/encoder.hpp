/// \file encoder.hpp
/// \brief The paper's compatible class encoding algorithm (Section 3.2,
/// Figure 3): choose class codes that minimize the number of compatible
/// classes arising in the *subsequent* decomposition of the image function.
///
/// Outline (the numbered steps of Figure 3):
///  1. encode at random → trial image g';
///  2. if g' is κ-feasible, any encoding works — done;
///  3. run variable partitioning on g' to fix λ' (which α bits land in the
///     image's bound set → chart columns #C; the rest → rows #R) and which
///     free variables Y1 become partition positions;
///  4. compute the partitions Π of the class functions w.r.t. Y1;
///  5. CombineColumnSets: group partitions sharing positions-with-same-
///     content (Psc) into column sets via maximum-weight b-matching on the
///     bipartite column graph Gc (Figures 4/5);
///  6-7. CombineRowSets: merge row sets by the benefit σ·Br + τ·Bc using
///     maximum-cardinality matching on the row graph Gr, iterating until
///     ≤ #R rows and ≤ #C column sets (Figures 6/7);
///  8. keep the random encoding if it happens to yield fewer classes;
///  9. emit codes: row-set index → row bits, column-set index → column bits
///     (exact codes are irrelevant by Theorem 3.2).
///
/// The same routine encodes hyper-function ingredients (Theorems 4.1/4.2):
/// ingredients are the "class functions" and pseudo primary inputs the
/// "α variables".

#pragma once

#include <cstdint>
#include <vector>

#include "decomp/compatible.hpp"
#include "decomp/partition.hpp"
#include "decomp/step.hpp"
#include "decomp/varpart.hpp"

namespace hyde::decomp {
class BoundSetSearch;
}  // namespace hyde::decomp

namespace hyde::core {

struct EncoderOptions {
  int k = 5;                ///< LUT input count (κ-feasibility bound)
  std::uint64_t seed = 1;   ///< seed for the Step-1 random encoding
  decomp::DcPolicy dc_policy = decomp::DcPolicy::kCliquePartition;
  /// Weight of the same-column-set tearing penalty in the row benefit; the
  /// paper subtracts the matched Gc edge weight (factor 1).
  double tear_penalty_scale = 1.0;
  /// Optional bound-set search engine for Step 3 (must be bound to the same
  /// manager the encoder runs in). Null falls back to the one-shot
  /// select_bound_set; either way the selected λ' is identical — the engine
  /// only adds memo reuse across the flow's repeated searches.
  decomp::BoundSetSearch* search = nullptr;
  /// Engine knobs for every compatible-class computation the encoder runs
  /// (the Step-8 image-class counts). Result-neutral.
  // hyde-knob-ok: composite the flow fills from CLI-reachable FlowOptions.
  decomp::ClassComputeOptions class_options;
  /// Worker threads for the snapshot-parallel Step 4 (per-class Π
  /// computation) and Step 8 (random-vs-structured image-class counts).
  /// Result-neutral: every thread count produces identical encodings — the
  /// parallel paths reduce in class-index order and fall back to the serial
  /// code on any worker failure.
  int threads = 1;
  /// Optional volatile counter: encoder tasks dispatched to worker threads.
  // hyde-knob-ok: counter sink; totals surface via FlowStats, not a flag.
  std::uint64_t* parallel_tasks = nullptr;
};

/// One Psc record of the Figure 4 table.
struct PscRecord {
  std::vector<int> positions;   ///< the positions sharing content
  std::vector<int> partitions;  ///< partitions exhibiting this Psc
};

/// Everything the algorithm decided, for reports, tests and the figures
/// demo; indices refer to class/ingredient order.
struct EncodingTrace {
  bool trivially_feasible = false;  ///< Step-2 early exit
  bool theorem31_exit = false;      ///< all α's on one side of λ' — encoding moot
  bool used_random = false;         ///< Step-8 kept the random encoding
  std::vector<int> lambda_prime;    ///< λ' from Step 3 (manager variables)
  std::vector<int> column_alpha_bits;  ///< α bit indices in λ' (columns)
  std::vector<int> row_alpha_bits;     ///< α bit indices in μ (rows)
  std::vector<int> position_vars;      ///< Y1: free variables in λ'
  int num_rows = 0;                 ///< #R
  int num_cols = 0;                 ///< #C
  std::vector<decomp::Partition> partitions;  ///< Π per class function
  std::vector<PscRecord> psc_table;           ///< Figure 4(b)
  std::vector<std::vector<int>> column_sets;  ///< after Step 5 (Figure 5)
  std::vector<std::vector<int>> row_sets;     ///< final rows (Figure 7(a))
  std::vector<std::vector<int>> final_column_sets;  ///< final (Figure 7(a))
  int random_image_classes = -1;    ///< Step-8 comparison: random encoding
  int chosen_image_classes = -1;    ///< Step-8 comparison: structured encoding
  int step7_iterations = 0;
};

struct EncodingChoice {
  decomp::Encoding encoding;
  /// Suggested λ' for the image's subsequent decomposition (α variables that
  /// became columns plus Y1); empty when the image is already κ-feasible.
  std::vector<int> lambda_hint;
  EncodingTrace trace;
};

/// Runs the full Figure-3 procedure over arbitrary class/ingredient
/// functions. \p input_vars is the variable universe of the functions (the
/// original free set Y); \p alpha_vars supplies the code-bit variables
/// (α's or pseudo primary inputs).
EncodingChoice encode_functions(bdd::Manager& mgr,
                                const std::vector<decomp::IsfBdd>& functions,
                                const std::vector<int>& input_vars,
                                const std::vector<int>& alpha_vars,
                                const EncoderOptions& options);

/// Convenience wrapper for a ClassResult from compute_compatible_classes.
EncodingChoice encode_classes(bdd::Manager& mgr,
                              const decomp::ClassResult& classes,
                              const std::vector<int>& free_vars,
                              const std::vector<int>& alpha_vars,
                              const EncoderOptions& options);

/// The row/column grouping produced by Steps 5-7 for a given chart geometry.
/// Exposed so the Example-3.2 reproduction (Figures 4-7) can drive the
/// assembly directly from literal partitions.
struct ChartAssembly {
  bool success = false;
  std::vector<PscRecord> psc_table;                 ///< Figure 4(b)
  std::vector<std::vector<int>> column_sets;        ///< Step 5 (Figure 5)
  std::vector<std::vector<int>> row_sets;           ///< final (Figure 7(a))
  std::vector<std::vector<int>> final_column_sets;  ///< final (Figure 7(a))
  std::vector<int> row_of;  ///< per partition: final row-set index
  std::vector<int> col_of;  ///< per partition: final column-set rank
  int iterations = 0;       ///< Step-7 passes
};

/// Runs Steps 5-7 of Figure 3 over \p partitions for a #R x #C chart:
/// column-set combination by b-matching on the column graph, then iterated
/// row-set merging by benefit-weighted maximum matching.
ChartAssembly assemble_chart(const std::vector<decomp::Partition>& partitions,
                             int num_rows, int num_cols,
                             double tear_penalty_scale = 1.0);

/// The cube-count-minimizing encoding of Murgai et al. [3] — the paper's
/// point of contrast for Problem 2 ("those counts may not be a good cost
/// function for LUT-based FPGA synthesis"). Hill-climbs from the seeded
/// random encoding, swapping class codes (and moving classes to unused
/// codes) while the image's 1-path count shrinks. Strict by construction.
decomp::Encoding encode_cube_min(bdd::Manager& mgr,
                                 const decomp::ClassResult& classes,
                                 const std::vector<int>& alpha_vars,
                                 std::uint64_t seed, int max_passes = 3);

/// Step-7 benefit ingredients, exposed for tests and the figures demo.
/// Br = n − (n_ij − n_i) − (n_ij − n_j); Bc = Σ_{S in both} (cnt(S) − k),
/// k = m/n (see DESIGN.md for the interpretation of the paper's formula).
double row_benefit_br(const decomp::Partition& a, const decomp::Partition& b,
                      int total_symbol_kinds);
double row_benefit_bc(const decomp::Partition& a, const decomp::Partition& b,
                      int total_symbol_kinds);

}  // namespace hyde::core
