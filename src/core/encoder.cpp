#include "core/encoder.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "bdd/transfer.hpp"
#include "decomp/search.hpp"
#include "graph/matching.hpp"
#include "runtime/scheduler.hpp"

namespace hyde::core {

namespace {

using decomp::Encoding;
using decomp::IsfBdd;
using decomp::Partition;

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

std::map<int, int> symbol_counts(const Partition& p) {
  std::map<int, int> counts;
  for (int s : p.symbols) ++counts[s];
  return counts;
}

int total_symbol_kinds(const std::vector<Partition>& parts) {
  std::set<int> all;
  for (const Partition& p : parts) all.insert(p.symbols.begin(), p.symbols.end());
  return static_cast<int>(all.size());
}

/// Number of compatible classes of the image built from \p functions under
/// \p encoding, decomposed with bound set \p lambda (the Step-8 cost).
int image_class_cost(bdd::Manager& mgr, const std::vector<IsfBdd>& functions,
                     const Encoding& encoding, const std::vector<int>& alpha_vars,
                     const std::vector<int>& lambda,
                     const std::vector<int>& all_vars,
                     decomp::DcPolicy dc_policy,
                     const decomp::ClassComputeOptions& class_options) {
  decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = decomp::build_image(mgr, functions, encoding, alpha_vars);
  spec.bound = lambda;
  for (int v : all_vars) {
    if (std::find(lambda.begin(), lambda.end(), v) == lambda.end()) {
      spec.free.push_back(v);
    }
  }
  return decomp::count_compatible_classes(spec, dc_policy, class_options);
}

/// A private single-threaded manager holding copies of the class functions
/// for one encoder worker. Mirrors the bound-set search's snapshot contract:
/// even read-only BDD traversal takes handle copies (reference-count writes),
/// so concurrent jobs must never share a manager.
struct EncoderSnapshot {
  std::unique_ptr<bdd::Manager> mgr;
  std::vector<IsfBdd> functions;
};

std::vector<int> identity_var_map(const bdd::Manager& mgr) {
  std::vector<int> identity(static_cast<std::size_t>(mgr.num_vars()));
  for (std::size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<int>(i);
  }
  return identity;
}

}  // namespace

double row_benefit_br(const Partition& a, const Partition& b,
                      int total_kinds) {
  const auto ca = symbol_counts(a);
  const auto cb = symbol_counts(b);
  int only_a = 0, only_b = 0;
  for (const auto& [s, cnt] : ca) {
    if (cb.find(s) == cb.end()) ++only_a;
  }
  for (const auto& [s, cnt] : cb) {
    if (ca.find(s) == ca.end()) ++only_b;
  }
  // n_ij - n_i counts symbols of b missing from a and vice versa.
  return static_cast<double>(total_kinds) - only_b - only_a;
}

double row_benefit_bc(const Partition& a, const Partition& b,
                      int total_kinds) {
  const auto ca = symbol_counts(a);
  const auto cb = symbol_counts(b);
  const double m = static_cast<double>(a.symbols.size() + b.symbols.size());
  const double k = total_kinds > 0 ? m / total_kinds : 0.0;
  double benefit = 0.0;
  for (const auto& [s, cnt] : ca) {
    const auto it = cb.find(s);
    if (it != cb.end()) {
      benefit += static_cast<double>(cnt + it->second) - k;
    }
  }
  return benefit;
}

ChartAssembly assemble_chart(const std::vector<Partition>& partitions,
                             int num_rows, int num_cols,
                             double tear_penalty_scale) {
  const int n = static_cast<int>(partitions.size());
  ChartAssembly assembly;
  const int total_kinds = total_symbol_kinds(partitions);

  // ---- Step 5: CombineColumnSets — Psc table + column-graph b-matching.
  // A partition "has" Psc S when one of its same-content position groups
  // *contains* S (Figure 4(b) lists Π7 under p0p3 because Π7's group is
  // p0p1p3). Candidates are the maximal groups observed in any partition.
  std::vector<std::vector<std::vector<int>>> groups_of(
      static_cast<std::size_t>(n));
  std::set<std::vector<int>> candidates;
  for (int i = 0; i < n; ++i) {
    groups_of[static_cast<std::size_t>(i)] =
        partitions[static_cast<std::size_t>(i)].same_content_position_sets();
    for (const auto& g : groups_of[static_cast<std::size_t>(i)]) {
      candidates.insert(g);
    }
  }
  std::map<std::vector<int>, std::vector<int>> psc_map;
  for (const auto& candidate : candidates) {
    for (int i = 0; i < n; ++i) {
      for (const auto& g : groups_of[static_cast<std::size_t>(i)]) {
        if (std::includes(g.begin(), g.end(), candidate.begin(),
                          candidate.end())) {
          psc_map[candidate].push_back(i);
          break;
        }
      }
    }
  }
  std::vector<graph::BMatchEdge> gc_edges;
  std::vector<int> u_capacity;
  std::vector<int> u_psc;  // psc_table entry realized by each u vertex
  for (auto& [positions, parts] : psc_map) {
    if (parts.size() < 2) continue;
    assembly.psc_table.push_back(PscRecord{positions, parts});
    const int record = static_cast<int>(assembly.psc_table.size()) - 1;
    const int copies =
        (static_cast<int>(parts.size()) - 1 + num_rows - 1) / num_rows;
    const double weight =
        static_cast<double>(positions.size()) + static_cast<double>(parts.size());
    for (int c = 0; c < copies; ++c) {
      const int u = static_cast<int>(u_capacity.size());
      u_capacity.push_back(num_rows);
      u_psc.push_back(record);
      for (int p : parts) {
        gc_edges.push_back(graph::BMatchEdge{p, u, weight});
      }
    }
  }
  const auto gc_match = graph::max_weight_b_matching(
      n, static_cast<int>(u_capacity.size()), u_capacity, gc_edges);

  std::vector<int> colset_of(static_cast<std::size_t>(n), -1);
  std::vector<double> gc_weight(static_cast<std::size_t>(n), 0.0);
  std::vector<std::vector<int>> colsets;
  {
    std::map<int, std::vector<int>> by_u;
    for (int i = 0; i < n; ++i) {
      const int u = gc_match.left_match[static_cast<std::size_t>(i)];
      if (u >= 0) {
        by_u[u].push_back(i);
        const PscRecord& rec =
            assembly.psc_table[static_cast<std::size_t>(u_psc[static_cast<std::size_t>(u)])];
        gc_weight[static_cast<std::size_t>(i)] =
            static_cast<double>(rec.positions.size()) +
            static_cast<double>(rec.partitions.size());
      }
    }
    for (auto& [u, members] : by_u) {
      for (int m : members) {
        colset_of[static_cast<std::size_t>(m)] = static_cast<int>(colsets.size());
      }
      colsets.push_back(members);
    }
    for (int i = 0; i < n; ++i) {
      if (colset_of[static_cast<std::size_t>(i)] < 0) {
        colset_of[static_cast<std::size_t>(i)] = static_cast<int>(colsets.size());
        colsets.push_back({i});
      }
    }
    assembly.column_sets = colsets;
  }

  // ---- Steps 6-7: merge row sets (and column sets) until the chart fits.
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = {i};

  auto row_rep = [&](const std::vector<int>& members) {
    std::vector<Partition> parts;
    for (int m : members) parts.push_back(partitions[static_cast<std::size_t>(m)]);
    return decomp::disjunction(parts);
  };
  auto live_colsets = [&]() {
    int count = 0;
    for (const auto& cs : colsets) {
      if (!cs.empty()) ++count;
    }
    return count;
  };
  auto merge_rows = [&](std::size_t r1, std::size_t r2) {
    // Step-7 priority: members of r2 clashing with r1's column sets are torn
    // out of their column set into fresh singletons.
    std::set<int> used;
    for (int m : rows[r1]) used.insert(colset_of[static_cast<std::size_t>(m)]);
    for (int m : rows[r2]) {
      int& cs = colset_of[static_cast<std::size_t>(m)];
      if (used.count(cs) != 0) {
        auto& old_members = colsets[static_cast<std::size_t>(cs)];
        old_members.erase(std::find(old_members.begin(), old_members.end(), m));
        cs = static_cast<int>(colsets.size());
        colsets.push_back({m});
      }
      used.insert(cs);
    }
    rows[r1].insert(rows[r1].end(), rows[r2].begin(), rows[r2].end());
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(r2));
  };

  bool assembled = true;
  const int max_iterations = 4 * (bits_for(n) + 4);
  while (static_cast<int>(rows.size()) > num_rows || live_colsets() > num_cols) {
    if (++assembly.iterations > max_iterations) {
      assembled = false;
      break;
    }
    const int sigma = std::max(0, static_cast<int>(rows.size()) - num_rows);
    const int tau = std::max(0, live_colsets() - num_cols);

    if (static_cast<int>(rows.size()) > num_rows) {
      // Benefits over current row sets (represented by their Πd).
      std::vector<Partition> reps;
      reps.reserve(rows.size());
      for (const auto& members : rows) reps.push_back(row_rep(members));
      std::vector<std::pair<int, int>> gr_edges;
      std::map<std::pair<int, int>, double> benefit;
      for (std::size_t a = 0; a < rows.size(); ++a) {
        for (std::size_t b = a + 1; b < rows.size(); ++b) {
          if (static_cast<int>(rows[a].size() + rows[b].size()) > num_cols) {
            continue;  // the merged row could not be encoded
          }
          double w = sigma * row_benefit_br(reps[a], reps[b], total_kinds) +
                     tau * row_benefit_bc(reps[a], reps[b], total_kinds);
          // Same-column-set tearing penalty.
          std::set<int> cs_a;
          for (int m : rows[a]) cs_a.insert(colset_of[static_cast<std::size_t>(m)]);
          for (int m : rows[b]) {
            if (cs_a.count(colset_of[static_cast<std::size_t>(m)]) != 0) {
              w -= tear_penalty_scale * gc_weight[static_cast<std::size_t>(m)];
            }
          }
          gr_edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
          benefit[{static_cast<int>(a), static_cast<int>(b)}] = w;
        }
      }
      const auto mate =
          graph::max_cardinality_matching(static_cast<int>(rows.size()), gr_edges);
      std::vector<std::pair<double, std::pair<int, int>>> chosen;
      for (int v = 0; v < static_cast<int>(rows.size()); ++v) {
        const int u = mate[static_cast<std::size_t>(v)];
        if (u > v) {
          chosen.push_back({benefit[{v, u}], {v, u}});
        }
      }
      std::sort(chosen.begin(), chosen.end(), [](const auto& x, const auto& y) {
        if (x.first != y.first) return x.first > y.first;
        return x.second < y.second;
      });
      // Merge matched pairs, best first, until the row budget is met.
      std::vector<std::vector<int>> merged_pairs;
      for (const auto& [w, pair] : chosen) {
        if (static_cast<int>(rows.size()) - static_cast<int>(merged_pairs.size()) <=
            num_rows) {
          break;
        }
        merged_pairs.push_back({pair.first, pair.second});
      }
      if (!merged_pairs.empty()) {
        // Apply merges from the highest indices downward so indices stay valid.
        std::sort(merged_pairs.begin(), merged_pairs.end(),
                  [](const auto& x, const auto& y) { return x[1] > y[1]; });
        for (const auto& pair : merged_pairs) {
          merge_rows(static_cast<std::size_t>(pair[0]),
                     static_cast<std::size_t>(pair[1]));
        }
        continue;
      }
      // No matching progress: redistribute the smallest row set.
      std::size_t smallest = 0;
      for (std::size_t r = 1; r < rows.size(); ++r) {
        if (rows[r].size() < rows[smallest].size()) smallest = r;
      }
      std::vector<int> homeless = rows[smallest];
      rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(smallest));
      for (int m : homeless) {
        bool placed = false;
        for (auto& row : rows) {
          if (static_cast<int>(row.size()) < num_cols) {
            std::set<int> used;
            for (int x : row) used.insert(colset_of[static_cast<std::size_t>(x)]);
            int& cs = colset_of[static_cast<std::size_t>(m)];
            if (used.count(cs) != 0) {
              auto& old_members = colsets[static_cast<std::size_t>(cs)];
              old_members.erase(
                  std::find(old_members.begin(), old_members.end(), m));
              cs = static_cast<int>(colsets.size());
              colsets.push_back({m});
            }
            row.push_back(m);
            placed = true;
            break;
          }
        }
        if (!placed) {
          assembled = false;
          break;
        }
      }
      if (!assembled) break;
      continue;
    }

    // Rows fit; too many column sets: merge the pair with the smallest
    // conjunction-multiplicity increase among row-compatible pairs.
    int best_c1 = -1, best_c2 = -1;
    long best_increase = std::numeric_limits<long>::max();
    long best_mult = std::numeric_limits<long>::max();
    auto colset_conjunction_mult = [&](const std::vector<int>& members) {
      std::vector<Partition> parts;
      for (int m : members) parts.push_back(partitions[static_cast<std::size_t>(m)]);
      return static_cast<long>(decomp::conjunction(parts).multiplicity());
    };
    auto row_of_member = [&](int member) {
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (std::find(rows[r].begin(), rows[r].end(), member) != rows[r].end()) {
          return static_cast<int>(r);
        }
      }
      return -1;
    };
    for (std::size_t c1 = 0; c1 < colsets.size(); ++c1) {
      if (colsets[c1].empty()) continue;
      for (std::size_t c2 = c1 + 1; c2 < colsets.size(); ++c2) {
        if (colsets[c2].empty()) continue;
        // Row compatibility: no row may contain members of both sets.
        std::set<int> rows1;
        for (int m : colsets[c1]) rows1.insert(row_of_member(m));
        bool conflict = false;
        for (int m : colsets[c2]) {
          if (rows1.count(row_of_member(m)) != 0) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        std::vector<int> combined = colsets[c1];
        combined.insert(combined.end(), colsets[c2].begin(), colsets[c2].end());
        const long mult = colset_conjunction_mult(combined);
        const long base = std::max(colset_conjunction_mult(colsets[c1]),
                                   colset_conjunction_mult(colsets[c2]));
        const long increase = mult - base;
        if (increase < best_increase ||
            (increase == best_increase && mult < best_mult)) {
          best_increase = increase;
          best_mult = mult;
          best_c1 = static_cast<int>(c1);
          best_c2 = static_cast<int>(c2);
        }
      }
    }
    if (best_c1 < 0) {
      assembled = false;
      break;
    }
    for (int m : colsets[static_cast<std::size_t>(best_c2)]) {
      colset_of[static_cast<std::size_t>(m)] = best_c1;
      colsets[static_cast<std::size_t>(best_c1)].push_back(m);
    }
    colsets[static_cast<std::size_t>(best_c2)].clear();
  }

  if (!assembled) {
    // The benefit-driven merger dead-ended (tight charts can exhaust the
    // row-compatible column merges). Fall back to an arbitrary valid
    // placement: row r = partitions [r*#C, (r+1)*#C), column = offset.
    // Theorem 3.2 guarantees this is still a correct strict encoding; the
    // caller's Step-8 comparison guards against quality loss.
    rows.clear();
    colsets.assign(static_cast<std::size_t>(num_cols), {});
    for (int m = 0; m < n; ++m) {
      const int r = m / num_cols;
      const int c = m % num_cols;
      if (r >= static_cast<int>(rows.size())) rows.emplace_back();
      rows[static_cast<std::size_t>(r)].push_back(m);
      colsets[static_cast<std::size_t>(c)].push_back(m);
      colset_of[static_cast<std::size_t>(m)] = c;
    }
    if (static_cast<int>(rows.size()) > num_rows) {
      return assembly;  // n > #R * #C: genuinely impossible
    }
  }

  // Final grouping: rank live column sets, record per-partition coordinates.
  std::vector<int> col_rank(colsets.size(), -1);
  int next_rank = 0;
  for (std::size_t c = 0; c < colsets.size(); ++c) {
    if (!colsets[c].empty()) {
      col_rank[c] = next_rank++;
      assembly.final_column_sets.push_back(colsets[c]);
    }
  }
  assembly.row_sets = rows;
  assembly.row_of.assign(static_cast<std::size_t>(n), -1);
  assembly.col_of.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (int m : rows[r]) {
      assembly.row_of[static_cast<std::size_t>(m)] = static_cast<int>(r);
      assembly.col_of[static_cast<std::size_t>(m)] =
          col_rank[static_cast<std::size_t>(colset_of[static_cast<std::size_t>(m)])];
    }
  }
  assembly.success = true;
  return assembly;
}

decomp::Encoding encode_cube_min(bdd::Manager& mgr,
                                 const decomp::ClassResult& classes,
                                 const std::vector<int>& alpha_vars,
                                 std::uint64_t seed, int max_passes) {
  const int n = classes.num_classes();
  Encoding enc = decomp::random_encoding(n, seed);
  if (n <= 1) return enc;
  std::vector<IsfBdd> functions;
  functions.reserve(static_cast<std::size_t>(n));
  for (const auto& cls : classes.classes) functions.push_back(cls.function);

  auto cost = [&](const Encoding& candidate) {
    const IsfBdd image =
        decomp::build_image(mgr, functions, candidate, alpha_vars);
    return mgr.one_path_count(image.on);
  };
  double best_cost = cost(enc);
  const std::uint32_t code_space = 1u << enc.num_bits;

  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    // Swap pairs of class codes.
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        Encoding candidate = enc;
        std::swap(candidate.codes[static_cast<std::size_t>(a)],
                  candidate.codes[static_cast<std::size_t>(b)]);
        const double c = cost(candidate);
        if (c < best_cost) {
          best_cost = c;
          enc = std::move(candidate);
          improved = true;
        }
      }
    }
    // Move classes onto unused code words.
    std::vector<char> used(code_space, 0);
    for (std::uint32_t c : enc.codes) used[c] = 1;
    for (int a = 0; a < n; ++a) {
      for (std::uint32_t w = 0; w < code_space; ++w) {
        if (used[w]) continue;
        Encoding candidate = enc;
        candidate.codes[static_cast<std::size_t>(a)] = w;
        const double c = cost(candidate);
        if (c < best_cost) {
          best_cost = c;
          used[enc.codes[static_cast<std::size_t>(a)]] = 0;
          used[w] = 1;
          enc = std::move(candidate);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return enc;
}

EncodingChoice encode_classes(bdd::Manager& mgr,
                              const decomp::ClassResult& classes,
                              const std::vector<int>& free_vars,
                              const std::vector<int>& alpha_vars,
                              const EncoderOptions& options) {
  std::vector<IsfBdd> functions;
  functions.reserve(classes.classes.size());
  for (const auto& cls : classes.classes) functions.push_back(cls.function);
  return encode_functions(mgr, functions, free_vars, alpha_vars, options);
}

EncodingChoice encode_functions(bdd::Manager& mgr,
                                const std::vector<IsfBdd>& functions,
                                const std::vector<int>& input_vars,
                                const std::vector<int>& alpha_vars,
                                const EncoderOptions& options) {
  const int n = static_cast<int>(functions.size());
  if (n == 0) throw std::invalid_argument("encode_functions: no functions");
  const int t = bits_for(n);
  if (static_cast<int>(alpha_vars.size()) != t) {
    throw std::invalid_argument("encode_functions: need ceil(log2 n) alpha vars");
  }

  EncodingChoice choice;
  choice.encoding = decomp::random_encoding(n, options.seed);
  if (n == 1) {
    choice.trace.trivially_feasible = true;
    return choice;
  }

  // Step 1: the trial image under a random encoding.
  const Encoding random_enc = choice.encoding;
  const IsfBdd g_trial =
      decomp::build_image(mgr, functions, random_enc, alpha_vars);

  // Step 2: if g' is already κ-feasible any encoding does.
  std::set<int> support_set;
  for (int v : mgr.support(g_trial.on)) support_set.insert(v);
  for (int v : mgr.support(g_trial.dc)) support_set.insert(v);
  const std::vector<int> support(support_set.begin(), support_set.end());
  if (static_cast<int>(support.size()) <= options.k) {
    choice.trace.trivially_feasible = true;
    return choice;
  }

  // Step 3: variable partitioning of g' picks λ'.
  decomp::VarPartitionOptions vp_options;
  vp_options.bound_size = std::min(options.k, static_cast<int>(support.size()) - 1);
  vp_options.require_nontrivial = false;
  vp_options.dc_policy = options.dc_policy;
  const auto vp = options.search != nullptr
                      ? options.search->select(g_trial, support, vp_options)
                      : decomp::select_bound_set(mgr, g_trial, support,
                                                 vp_options);
  if (!vp.success) {
    choice.trace.trivially_feasible = true;  // nothing sensible to do
    return choice;
  }
  EncodingTrace& trace = choice.trace;
  trace.lambda_prime = vp.bound;
  choice.lambda_hint = vp.bound;

  // Split λ' into α bits (columns) and free variables (positions Y1).
  for (int j = 0; j < t; ++j) {
    const int v = alpha_vars[static_cast<std::size_t>(j)];
    if (std::find(vp.bound.begin(), vp.bound.end(), v) != vp.bound.end()) {
      trace.column_alpha_bits.push_back(j);
    } else {
      trace.row_alpha_bits.push_back(j);
    }
  }
  for (int v : vp.bound) {
    if (std::find(alpha_vars.begin(), alpha_vars.end(), v) == alpha_vars.end()) {
      trace.position_vars.push_back(v);
    }
  }

  // Theorem 3.1: with all α's on one side the encoding cannot matter.
  if (trace.column_alpha_bits.empty() ||
      static_cast<int>(trace.column_alpha_bits.size()) == t) {
    trace.theorem31_exit = true;
    return choice;
  }

  const int num_cols = 1 << trace.column_alpha_bits.size();
  const int num_rows = 1 << trace.row_alpha_bits.size();
  trace.num_cols = num_cols;
  trace.num_rows = num_rows;

  // Step 4: partitions of the class functions w.r.t. Y1. With worker threads
  // the per-class pattern enumeration runs in manager-private snapshots; the
  // patterns come back through an identity transfer and are interned in
  // class-index → visit order, which is the exact serial interning sequence
  // (BDD canonicity: transferring a pattern lands on the same node the serial
  // cofactor walk would have built), so the SymbolTable — and every symbol id
  // downstream — is bit-identical at any thread count.
  decomp::SymbolTable symbols;
  const int step4_threads = std::min(options.threads, n);
  if (step4_threads > 1 && !trace.position_vars.empty()) {
    const std::vector<int> identity = identity_var_map(mgr);
    std::vector<EncoderSnapshot> snapshots(
        static_cast<std::size_t>(step4_threads));
    for (EncoderSnapshot& snap : snapshots) {
      snap.mgr = std::make_unique<bdd::Manager>(mgr.num_vars());
    }
    for (int j = 0; j < n; ++j) {
      EncoderSnapshot& snap =
          snapshots[static_cast<std::size_t>(j % step4_threads)];
      const IsfBdd& fn = functions[static_cast<std::size_t>(j)];
      snap.functions.push_back(IsfBdd{bdd::transfer(fn.on, *snap.mgr, identity),
                                      bdd::transfer(fn.dc, *snap.mgr, identity)});
    }
    std::vector<std::vector<decomp::PositionPattern>> patterns(
        static_cast<std::size_t>(n));
    std::vector<char> failed(static_cast<std::size_t>(n), 0);
    {
      runtime::JobScheduler pool(step4_threads);
      for (int worker = 0; worker < step4_threads; ++worker) {
        EncoderSnapshot& snap = snapshots[static_cast<std::size_t>(worker)];
        pool.submit([&, worker]() {
          int slot = 0;
          for (int j = worker; j < n; j += step4_threads, ++slot) {
            try {
              patterns[static_cast<std::size_t>(j)] = decomp::partition_patterns(
                  *snap.mgr, snap.functions[static_cast<std::size_t>(slot)],
                  trace.position_vars);
            } catch (...) {
              failed[static_cast<std::size_t>(j)] = 1;
            }
          }
        });
      }
      pool.wait_idle();
    }
    if (options.parallel_tasks != nullptr) {
      *options.parallel_tasks += static_cast<std::uint64_t>(step4_threads);
    }
    for (int j = 0; j < n; ++j) {
      if (failed[static_cast<std::size_t>(j)]) {
        // Deterministic fallback: redo this class serially on the caller's
        // manager, still in class-index order.
        trace.partitions.push_back(decomp::make_partition(
            mgr, functions[static_cast<std::size_t>(j)], trace.position_vars,
            symbols));
        continue;
      }
      std::vector<decomp::PositionPattern> local;
      local.reserve(patterns[static_cast<std::size_t>(j)].size());
      for (const decomp::PositionPattern& p :
           patterns[static_cast<std::size_t>(j)]) {
        local.push_back(decomp::PositionPattern{
            p.position,
            IsfBdd{bdd::transfer(p.pattern.on, mgr, identity),
                   bdd::transfer(p.pattern.dc, mgr, identity)}});
      }
      trace.partitions.push_back(decomp::intern_partition(
          local, static_cast<int>(trace.position_vars.size()), symbols));
    }
  } else {
    for (const IsfBdd& fn : functions) {
      trace.partitions.push_back(
          decomp::make_partition(mgr, fn, trace.position_vars, symbols));
    }
  }

  // Steps 5-7.
  const ChartAssembly assembly = assemble_chart(
      trace.partitions, num_rows, num_cols, options.tear_penalty_scale);
  trace.psc_table = assembly.psc_table;
  trace.column_sets = assembly.column_sets;
  trace.step7_iterations = assembly.iterations;

  Encoding structured;
  bool assembled = assembly.success;
  if (assembled) {
    // Step 9: row index → row α bits, column-set rank → column α bits.
    structured.num_bits = t;
    structured.codes.assign(static_cast<std::size_t>(n), 0);
    for (int m = 0; m < n; ++m) {
      std::uint32_t code = 0;
      const int col = assembly.col_of[static_cast<std::size_t>(m)];
      const int row = assembly.row_of[static_cast<std::size_t>(m)];
      for (std::size_t bit = 0; bit < trace.column_alpha_bits.size(); ++bit) {
        if ((static_cast<std::uint32_t>(col) >> bit) & 1) {
          code |= 1u << trace.column_alpha_bits[bit];
        }
      }
      for (std::size_t bit = 0; bit < trace.row_alpha_bits.size(); ++bit) {
        if ((static_cast<std::uint32_t>(row) >> bit) & 1) {
          code |= 1u << trace.row_alpha_bits[bit];
        }
      }
      structured.codes[static_cast<std::size_t>(m)] = code;
    }
    trace.row_sets = assembly.row_sets;
    trace.final_column_sets = assembly.final_column_sets;
    try {
      structured.validate(n);
    } catch (const std::invalid_argument&) {
      assembled = false;
    }
  }

  // Step 8: keep whichever encoding yields fewer image classes. When both
  // encodings are in play and worker threads are available, the two counts
  // run concurrently in manager-private snapshots — a class count is a purely
  // functional quantity, identical in any manager with the same variable
  // order — and their counters merge random-first to match the serial stream.
  std::vector<int> all_vars = input_vars;
  all_vars.insert(all_vars.end(), alpha_vars.begin(), alpha_vars.end());
  bool step8_done = false;
  if (options.threads > 1 && assembled) {
    const std::vector<int> identity = identity_var_map(mgr);
    std::vector<EncoderSnapshot> snapshots(2);
    for (EncoderSnapshot& snap : snapshots) {
      snap.mgr = std::make_unique<bdd::Manager>(mgr.num_vars());
      snap.functions.reserve(functions.size());
      for (const IsfBdd& fn : functions) {
        snap.functions.push_back(
            IsfBdd{bdd::transfer(fn.on, *snap.mgr, identity),
                   bdd::transfer(fn.dc, *snap.mgr, identity)});
      }
    }
    std::vector<int> counts(2, -1);
    std::vector<decomp::ClassStats> local_stats(2);
    std::vector<char> failed(2, 0);
    {
      runtime::JobScheduler pool(2);
      for (int e = 0; e < 2; ++e) {
        EncoderSnapshot& snap = snapshots[static_cast<std::size_t>(e)];
        pool.submit([&, e]() {
          const Encoding& enc = e == 0 ? random_enc : structured;
          decomp::ClassComputeOptions job_options = options.class_options;
          job_options.stats = &local_stats[static_cast<std::size_t>(e)];
          try {
            counts[static_cast<std::size_t>(e)] = image_class_cost(
                *snap.mgr, snap.functions, enc, alpha_vars, vp.bound, all_vars,
                options.dc_policy, job_options);
          } catch (...) {
            failed[static_cast<std::size_t>(e)] = 1;
          }
        });
      }
      pool.wait_idle();
    }
    if (failed[0] == 0 && failed[1] == 0) {
      trace.random_image_classes = counts[0];
      trace.chosen_image_classes = counts[1];
      if (options.class_options.stats != nullptr) {
        *options.class_options.stats += local_stats[0];
        *options.class_options.stats += local_stats[1];
      }
      if (options.parallel_tasks != nullptr) *options.parallel_tasks += 2;
      step8_done = true;
    }
  }
  if (!step8_done) {
    trace.random_image_classes =
        image_class_cost(mgr, functions, random_enc, alpha_vars, vp.bound,
                         all_vars, options.dc_policy, options.class_options);
    if (assembled) {
      trace.chosen_image_classes =
          image_class_cost(mgr, functions, structured, alpha_vars, vp.bound,
                           all_vars, options.dc_policy, options.class_options);
    }
  }
  if (!assembled ||
      trace.random_image_classes < trace.chosen_image_classes) {
    trace.used_random = true;
    choice.encoding = random_enc;
  } else {
    choice.encoding = structured;
  }
  return choice;
}

}  // namespace hyde::core
