/// \file timemux.hpp
/// \brief Time-multiplexed reconfigurable computing (paper Section 6).
///
/// Functions active in different time slots are combined into one
/// hyper-function whose pseudo primary inputs are promoted to real *mode*
/// inputs. Unlike multi-output recovery, nothing is duplicated: one network
/// serves every slot, selected by the mode word. The paper proposes exactly
/// this as a hyper-function application ("we don't have to duplicate the
/// duplication cone at all").

#pragma once

#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/flow.hpp"
#include "net/network.hpp"

namespace hyde::core {

struct TimeMultiplexed {
  net::Network network;        ///< k-feasible; PIs = data inputs + mode bits
  std::vector<std::uint32_t> slot_codes;  ///< mode word per slot
  int num_mode_bits = 0;
  EncodingTrace trace;         ///< what the slot encoder decided
};

/// Builds a k-feasible network computing slot i's function whenever the mode
/// inputs spell slot_codes[i]. \p slots are functions over \p data_vars in
/// \p mgr; data input i is named data_names[i] and the mode bits
/// "mode0"... Slot codes come from the compatible-class encoder (a good
/// coding makes the multiplexed network more decomposable, Theorem 4.2).
TimeMultiplexed build_time_multiplexed(bdd::Manager& mgr,
                                       const std::vector<decomp::IsfBdd>& slots,
                                       const std::vector<int>& data_vars,
                                       const std::vector<std::string>& data_names,
                                       const FlowOptions& options);

}  // namespace hyde::core
