/// \file hyper.hpp
/// \brief Hyper-function decomposition (paper Section 4).
///
/// A set of single-output functions ("ingredients") is merged into one
/// function by ⌈log2 n⌉ pseudo primary inputs (PPIs, Definition 4.1); the
/// ingredient → code assignment reuses the compatible-class encoder
/// (Theorems 4.1/4.2). After the hyper-function is decomposed into a network,
/// the *duplication source* (DS, Definition 4.3) is the set of nodes fed
/// directly by a PPI, the *duplication cone* (DC, Definition 4.4) its
/// transitive fanout, and DSet_m (Definition 4.5) the nodes lying in the
/// TFO of exactly m PPIs. Recovery duplicates the cone once per ingredient
/// code, collapses the PPI constants, and leaves everything outside the cone
/// shared among the ingredients.

#pragma once

#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "net/network.hpp"

namespace hyde::core {

/// A constructed hyper-function.
struct HyperFunction {
  decomp::IsfBdd function;        ///< H over ppi_vars ∪ input_vars
  std::vector<int> ppi_vars;      ///< η manager variables
  std::vector<int> input_vars;    ///< union of ingredient supports
  decomp::Encoding codes;         ///< ingredient → PPI code
  EncodingTrace trace;            ///< what the ingredient encoder decided
};

/// Builds a hyper-function from \p ingredients (functions over
/// \p input_vars) using \p ppi_vars as pseudo primary inputs. The encoding
/// of ingredients follows the compatible-class encoder when \p use_encoder
/// is set, otherwise the Step-1 random encoding.
HyperFunction build_hyper_function(bdd::Manager& mgr,
                                   const std::vector<decomp::IsfBdd>& ingredients,
                                   const std::vector<int>& input_vars,
                                   const std::vector<int>& ppi_vars,
                                   const EncoderOptions& options,
                                   bool use_encoder = true);

/// Structural duplication analysis of a decomposed network.
struct DuplicationAnalysis {
  std::vector<net::NodeId> sources;  ///< DS: nodes with a PPI direct fanin
  std::vector<net::NodeId> cone;     ///< DC: union of TFOs of DS
  /// layer[id] = m: the node lies in the TFOs of m distinct PPIs (DSet_m);
  /// 0 for nodes outside the cone.
  std::vector<int> layer;

  bool in_cone(net::NodeId id) const {
    return layer[static_cast<std::size_t>(id)] > 0;
  }
  /// Total extra node copies recovery will create: a DSet_m node (m < n_ppi)
  /// gets 2^m - 1 extra copies; a DSet_{n_ppi} node gets (#ingredients - 1).
  int extra_copies(int num_ppis, int num_ingredients) const;
};

/// Computes DS / DC / DSet_m for \p network, where \p ppi_nodes lists the
/// primary-input nodes acting as pseudo primary inputs.
DuplicationAnalysis analyze_duplication(const net::Network& network,
                                        const std::vector<net::NodeId>& ppi_nodes);

/// Recovers the ingredients of a decomposed hyper-function: for each code,
/// duplicates the duplication cone with the PPIs fixed to that code
/// (constants collapse into the fanout nodes). Nodes outside the cone remain
/// shared among the ingredients. Returns the per-ingredient root nodes, in
/// code order; callers wire them to primary outputs or internal signals and
/// sweep() to retire the PPI-dependent originals.
std::vector<net::NodeId> recover_ingredients(
    net::Network& network, net::NodeId hyper_root,
    const std::vector<net::NodeId>& ppi_nodes, const decomp::Encoding& codes);

}  // namespace hyde::core
