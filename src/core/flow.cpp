#include "core/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "tt/npn.hpp"

namespace hyde::core {

namespace {

using decomp::IsfBdd;

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

decomp::SearchOptions search_options_from(const FlowOptions& options) {
  decomp::SearchOptions s;
  s.threads = options.search_threads;
  s.use_memo = options.search_memo;
  s.use_pruning = options.search_pruning;
  s.memo_capacity = options.search_memo_capacity;
  return s;
}

/// Digest of every FlowOptions knob that shapes a cached template
/// decomposition. Part of the cache key: runs with different policies never
/// share entries (job seeds deliberately excluded — templates derive their
/// seed from the canonical function, see compute_template).
std::uint64_t cache_fingerprint(const FlowOptions& options) {
  std::uint64_t h = 0x243F6A8885A308D3ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(options.k));
  mix(static_cast<std::uint64_t>(options.encoding));
  mix(static_cast<std::uint64_t>(options.dc_policy));
  mix(options.ppi_hard_mu ? 1 : 0);
  // The tearing-penalty weight steers the encoder's Step-6 row pairing, so
  // non-default values get their own cache universe; the guard keeps
  // default-configuration fingerprints identical to historical ones.
  if (options.tear_penalty_scale != 1.0) {
    std::uint64_t tear_bits = 0;
    static_assert(sizeof(tear_bits) == sizeof(options.tear_penalty_scale));
    std::memcpy(&tear_bits, &options.tear_penalty_scale, sizeof(tear_bits));
    mix(tear_bits);
  }
  // Reorder knobs are result-affecting (the variable order steers cube-min
  // costs and budget outcomes), so templates computed under different
  // reorder policies must not be shared. The manager pool is allocation
  // reuse only and stays out.
  if (options.reorder != bdd::ReorderMode::kOff) {
    mix(static_cast<std::uint64_t>(options.reorder));
    std::uint64_t growth_bits = 0;
    static_assert(sizeof(growth_bits) == sizeof(options.reorder_max_growth));
    std::memcpy(&growth_bits, &options.reorder_max_growth,
                sizeof(growth_bits));
    mix(growth_bits);
  }
  return h;
}

/// Recursive Roth–Karp decomposer writing k-feasible nodes into a network.
class Decomposer {
 public:
  /// \p cache_ceiling caps the support size consulted in the NPN cache; the
  /// default derives it from the options. Template sub-decomposers pass their
  /// own function's arity minus one so the top-level call cannot look itself
  /// up while it is being computed.
  Decomposer(bdd::Manager& gm, net::Network& out, const FlowOptions& options,
             FlowStats& stats, int cache_ceiling = -1)
      : gm_(gm),
        out_(out),
        options_(options),
        stats_(stats),
        cache_ceiling_(cache_ceiling >= 0
                           ? cache_ceiling
                           : std::min(options.cache_max_support,
                                      tt::kMaxExactNpnVars)),
        search_(gm, search_options_from(options)) {}

  /// The flow-lifetime bound-set search engine: its memo spans every
  /// decomposition step and encoder trial over gm_. The engine's counters
  /// are folded into FlowStats at the end of the flow (and its self-timed
  /// seconds become the varpart phase).
  decomp::BoundSetSearch& search() { return search_; }

  /// Class-computation knobs bound to this decomposer's counter sink.
  decomp::ClassComputeOptions class_options() {
    decomp::ClassComputeOptions c;
    c.use_signatures = options_.class_signatures;
    c.signature_max_rows = options_.class_signature_rows;
    c.stats = &class_stats_;
    return c;
  }
  const decomp::ClassStats& class_stats() const { return class_stats_; }
  std::uint64_t encoder_parallel_tasks() const {
    return encoder_parallel_tasks_;
  }

  /// Threads the flow's encoder-engine knobs (worker threads, class-engine
  /// options) and counter sinks into an EncoderOptions.
  void fill_encoder_engine(EncoderOptions* enc) {
    enc->threads = options_.encoder_threads;
    enc->class_options = class_options();
    enc->parallel_tasks = &encoder_parallel_tasks_;
  }

  /// Declares that manager variable \p var is computed by network node.
  void map_var(int var, net::NodeId node) { var_node_[var] = node; }

  void set_ppi_vars(std::vector<int> ppis) { ppi_vars_ = std::move(ppis); }

  int alloc_var() {
    const int v = next_var_ >= gm_.num_vars() ? next_var_ : gm_.num_vars();
    next_var_ = v + 1;
    gm_.ensure_vars(next_var_);
    return v;
  }
  void reserve_vars(int count) {
    next_var_ = std::max(next_var_, count);
    gm_.ensure_vars(next_var_);
  }

  /// Decomposes f into k-feasible nodes; returns the root node.
  net::NodeId decompose(IsfBdd f, std::vector<int> preferred = {}) {
    f = reduce_support(f);
    const std::vector<int> support = isf_support(f);
    if (static_cast<int>(support.size()) <= options_.k) {
      return leaf(f, support);
    }

    if (options_.cache != nullptr &&
        static_cast<int>(support.size()) <= cache_ceiling_) {
      const net::NodeId cached = from_cache(f, support);
      if (cached != net::kNoNode) return cached;
    }

    // Bound-set selection: honour a caller hint (the encoder's λ'), else
    // search sizes k down to 2; hard-μ mode keeps PPIs out of the candidates.
    decomp::VarPartitionResult vp;
    preferred = filter_to(preferred, support);
    if (static_cast<int>(preferred.size()) >= 2 &&
        static_cast<int>(preferred.size()) <= options_.k &&
        preferred.size() < support.size()) {
      decomp::DecompSpec spec = make_spec(f, support, preferred);
      const auto classes_start = std::chrono::steady_clock::now();
      const int classes =
          decomp::count_compatible_classes(spec, options_.dc_policy,
                                           class_options());
      stats_.classes_seconds += seconds_since(classes_start);
      if (bits_for(classes) < static_cast<int>(preferred.size())) {
        vp.success = true;
        vp.bound = preferred;
        vp.free = spec.free;
        vp.num_classes = classes;
      }
    }
    if (!vp.success) {
      std::vector<int> candidates = support;
      if (options_.ppi_hard_mu) {
        std::vector<int> filtered;
        for (int v : support) {
          if (!is_ppi(v)) filtered.push_back(v);
        }
        if (static_cast<int>(filtered.size()) > 2) candidates = filtered;
      }
      for (int size = std::min(options_.k,
                               static_cast<int>(candidates.size()) - 1);
           size >= 2 && !vp.success; --size) {
        decomp::VarPartitionOptions vp_options;
        vp_options.bound_size = size;
        vp_options.dc_policy = options_.dc_policy;
        vp_options.require_nontrivial = true;
        if (!options_.ppi_hard_mu) vp_options.avoid = ppi_vars_;
        vp = search_.select(f, candidates, vp_options);
        if (vp.success && candidates.size() != support.size()) {
          // Re-derive the free set over the full support.
          vp.free.clear();
          for (int v : support) {
            if (std::find(vp.bound.begin(), vp.bound.end(), v) == vp.bound.end()) {
              vp.free.push_back(v);
            }
          }
        }
      }
    }
    if (!vp.success) return shannon(f, support);

    decomp::DecompSpec spec;
    spec.mgr = &gm_;
    spec.f = f;
    spec.bound = vp.bound;
    spec.free = vp.free;
    const auto classes_start = std::chrono::steady_clock::now();
    const auto classes =
        decomp::compute_compatible_classes(spec, options_.dc_policy,
                                           class_options());
    stats_.classes_seconds += seconds_since(classes_start);
    if (classes.num_classes() == 1) {
      // The function does not truly depend on the bound set.
      return decompose(classes.classes[0].function);
    }

    const int t = classes.code_bits();
    std::vector<int> alpha_vars;
    for (int j = 0; j < t; ++j) alpha_vars.push_back(alloc_var());

    decomp::Encoding encoding;
    std::vector<int> lambda_hint;
    // Encoder wall time is booked net of the nested bound-set searches the
    // encoder triggers (those are varpart time, self-timed by the engine).
    const double search_before = search_.stats().seconds;
    const auto encode_start = std::chrono::steady_clock::now();
    if (options_.encoding == EncodingPolicy::kCompatibleClass) {
      ++stats_.encoder_runs;
      EncoderOptions enc_options;
      enc_options.k = options_.k;
      enc_options.seed = options_.seed + static_cast<std::uint64_t>(
                                             stats_.decomposition_steps);
      enc_options.dc_policy = options_.dc_policy;
      enc_options.tear_penalty_scale = options_.tear_penalty_scale;
      enc_options.search = &search_;
      fill_encoder_engine(&enc_options);
      EncodingChoice choice =
          encode_classes(gm_, classes, vp.free, alpha_vars, enc_options);
      encoding = choice.encoding;
      lambda_hint = choice.lambda_hint;
      if (choice.trace.used_random) ++stats_.encoder_random_kept;
    } else if (options_.encoding == EncodingPolicy::kCubeCount) {
      encoding = encode_cube_min(
          gm_, classes, alpha_vars,
          options_.seed + static_cast<std::uint64_t>(stats_.decomposition_steps));
    } else {
      encoding = decomp::random_encoding(
          classes.num_classes(),
          options_.seed + static_cast<std::uint64_t>(stats_.decomposition_steps));
    }
    stats_.encoding_seconds += seconds_since(encode_start) -
                               (search_.stats().seconds - search_before);

    const auto step = decomp::build_step(gm_, classes, vp.bound, vp.free,
                                         encoding, alpha_vars);
    ++stats_.decomposition_steps;
    for (int j = 0; j < t; ++j) {
      // α-functions range over the bound set (≤ k variables): always leaves.
      const net::NodeId alpha_node =
          decompose(IsfBdd{step.alphas[static_cast<std::size_t>(j)], gm_.zero()});
      map_var(alpha_vars[static_cast<std::size_t>(j)], alpha_node);
    }
    return decompose(step.image, lambda_hint);
  }

 private:
  /// Realizes f through the NPN memo: canonicalize, look up (computing and
  /// publishing the template on a miss), then replay the template over the
  /// actual support with the NPN transform folded into the instantiated LUTs.
  /// Returns kNoNode for degenerate templates, falling back to the normal
  /// recursion.
  net::NodeId from_cache(const IsfBdd& f, const std::vector<int>& support) {
    ++stats_.cache_lookups;
    const tt::Isf table{gm_.to_truth_table(f.on, support),
                        gm_.to_truth_table(f.dc, support)};
    const tt::NpnCanonization canon = tt::npn_canonize(table);
    const NpnCacheKey key{canon.canonical.on, canon.canonical.dc,
                          cache_fingerprint(options_)};
    LookupTier tier = LookupTier::kMiss;
    auto entry = options_.cache->lookup_tiered(key, &tier);
    if (tier == LookupTier::kDisk) ++stats_.store_disk_hits;
    if (entry == nullptr) {
      if (options_.cache->has_persistent_tier()) ++stats_.store_disk_misses;
      CachedDecomposition fresh = compute_template(key);
      if (fresh.root < fresh.num_inputs) return net::kNoNode;
      entry = options_.cache->insert(key, std::move(fresh));
    }
    // Identical on hits and misses, so FlowStats (and the encoder seeds they
    // feed) never depend on which job populated the cache first.
    stats_.decomposition_steps += entry->stats.decomposition_steps;
    stats_.shannon_fallbacks += entry->stats.shannon_fallbacks;
    stats_.encoder_runs += entry->stats.encoder_runs;
    stats_.encoder_random_kept += entry->stats.encoder_random_kept;
    return instantiate(*entry, canon.transform, support);
  }

  /// Decomposes the canonical function in a private manager/network and packs
  /// the result into a plain, shareable template. Pure function of \p key:
  /// the sub-flow's seed comes from the key content, never from the job.
  CachedDecomposition compute_template(const NpnCacheKey& key) {
    const int n = key.on.num_vars();
    net::Network tmpl("npn_template");
    bdd::Manager tm(std::max(2, n));
    FlowOptions sub_options = options_;
    sub_options.seed = key.hash() | 1;
    FlowStats sub_stats;
    Decomposer sub(tm, tmpl, sub_options, sub_stats, n - 1);
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) {
      vars.push_back(i);
      sub.map_var(i, tmpl.add_input("x" + std::to_string(i)));
    }
    sub.reserve_vars(n);
    const IsfBdd g{tm.from_truth_table(key.on, vars),
                   tm.from_truth_table(key.dc, vars)};
    tmpl.add_output("f", sub.decompose(g));
    tmpl.sweep();

    CachedDecomposition entry;
    entry.num_inputs = n;
    std::unordered_map<net::NodeId, int> index;
    for (std::size_t i = 0; i < tmpl.inputs().size(); ++i) {
      index.emplace(tmpl.inputs()[i], static_cast<int>(i));
    }
    for (net::NodeId id : tmpl.topo_order()) {
      const net::Node& node = tmpl.node(id);
      if (node.kind != net::NodeKind::kLogic) continue;
      TemplateNode tn;
      for (net::NodeId fi : node.fanins) tn.fanins.push_back(index.at(fi));
      tn.table = tmpl.local_tt(id);
      index.emplace(id,
                    n + static_cast<int>(entry.nodes.size()));
      entry.nodes.push_back(std::move(tn));
    }
    entry.root = index.at(tmpl.outputs()[0].driver);
    entry.stats.decomposition_steps = sub_stats.decomposition_steps;
    entry.stats.shannon_fallbacks = sub_stats.shannon_fallbacks;
    entry.stats.encoder_runs = sub_stats.encoder_runs;
    entry.stats.encoder_random_kept = sub_stats.encoder_random_kept;
    // Kernel counters go straight to this flow's totals, not into the shared
    // template: replaying a cached template costs no BDD work, so charging
    // them per-hit would fabricate work that only the miss performed. Search
    // counters and phase timings follow the same policy — they are volatile,
    // so the deterministic cached entry.stats never carries them.
    stats_.absorb_bdd_stats(tm.stats());
    sub_stats.absorb_search_stats(sub.search().stats());
    sub_stats.class_signature_pairs += sub.class_stats().signature_pairs;
    sub_stats.class_bdd_pairs += sub.class_stats().bdd_pairs;
    sub_stats.encoder_parallel_tasks += sub.encoder_parallel_tasks();
    stats_.absorb_search_and_phases(sub_stats);
    return entry;
  }

  /// Replays a template into the output network. Canonical input j reads the
  /// node of support[transform.perm[j]]; input negations are folded into the
  /// consuming LUTs' tables and the output negation into the root LUT, so the
  /// instantiation adds exactly nodes.size() nodes.
  net::NodeId instantiate(const CachedDecomposition& entry,
                          const tt::NpnTransform& t,
                          const std::vector<int>& support) {
    const int n = entry.num_inputs;
    std::vector<net::NodeId> ref(static_cast<std::size_t>(n) +
                                 entry.nodes.size());
    std::vector<char> negated(static_cast<std::size_t>(n), 0);
    for (int j = 0; j < n; ++j) {
      const int var = support[static_cast<std::size_t>(t.perm[static_cast<std::size_t>(j)])];
      const auto it = var_node_.find(var);
      if (it == var_node_.end()) {
        throw std::logic_error("Decomposer: unmapped variable in template");
      }
      ref[static_cast<std::size_t>(j)] = it->second;
      negated[static_cast<std::size_t>(j)] = (t.input_negations >> j) & 1;
    }
    for (std::size_t i = 0; i < entry.nodes.size(); ++i) {
      const TemplateNode& tn = entry.nodes[i];
      tt::TruthTable local = tn.table;
      std::vector<net::NodeId> fanins;
      fanins.reserve(tn.fanins.size());
      for (std::size_t p = 0; p < tn.fanins.size(); ++p) {
        const int fi = tn.fanins[p];
        if (fi < n && negated[static_cast<std::size_t>(fi)]) {
          local = local.flip_var(static_cast<int>(p));
        }
        fanins.push_back(ref[static_cast<std::size_t>(fi)]);
      }
      if (static_cast<int>(n + i) == entry.root && t.output_negated) {
        local = ~local;
      }
      ref[static_cast<std::size_t>(n) + i] =
          out_.add_logic_tt(out_.fresh_name("n"), std::move(fanins), local);
    }
    return ref[static_cast<std::size_t>(entry.root)];
  }

  bool is_ppi(int v) const {
    return std::find(ppi_vars_.begin(), ppi_vars_.end(), v) != ppi_vars_.end();
  }

  static std::vector<int> filter_to(const std::vector<int>& vars,
                                    const std::vector<int>& support) {
    std::vector<int> result;
    for (int v : vars) {
      if (std::find(support.begin(), support.end(), v) != support.end()) {
        result.push_back(v);
      }
    }
    return result;
  }

  decomp::DecompSpec make_spec(const IsfBdd& f, const std::vector<int>& support,
                               const std::vector<int>& bound) {
    decomp::DecompSpec spec;
    spec.mgr = &gm_;
    spec.f = f;
    spec.bound = bound;
    for (int v : support) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        spec.free.push_back(v);
      }
    }
    return spec;
  }

  std::vector<int> isf_support(const IsfBdd& f) {
    std::set<int> vars;
    for (int v : gm_.support(f.on)) vars.insert(v);
    for (int v : gm_.support(f.dc)) vars.insert(v);
    return {vars.begin(), vars.end()};
  }

  /// Drops every variable whose two cofactors are compatible (the ISF does
  /// not need to depend on it), merging the cofactors.
  IsfBdd reduce_support(IsfBdd f) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (int v : isf_support(f)) {
        const IsfBdd f0{gm_.cofactor(f.on, v, false), gm_.cofactor(f.dc, v, false)};
        const IsfBdd f1{gm_.cofactor(f.on, v, true), gm_.cofactor(f.dc, v, true)};
        if (decomp::columns_compatible(gm_, f0, f1)) {
          const bdd::Bdd on = f0.on | f1.on;
          const bdd::Bdd care = f0.on | f0.off() | f1.on | f1.off();
          f = IsfBdd{on, ~care};
          changed = true;
        }
      }
    }
    return f;
  }

  /// Materializes a ≤k-support function as one LUT node (don't cares are
  /// completed to 0 — the completion does not change the LUT count).
  net::NodeId leaf(const IsfBdd& f, const std::vector<int>& support) {
    const tt::TruthTable table = gm_.to_truth_table(f.on, support);
    std::vector<net::NodeId> fanins;
    fanins.reserve(support.size());
    for (int v : support) {
      const auto it = var_node_.find(v);
      if (it == var_node_.end()) {
        throw std::logic_error("Decomposer: unmapped variable in leaf");
      }
      fanins.push_back(it->second);
    }
    return out_.add_logic_tt(out_.fresh_name("n"), std::move(fanins), table);
  }

  /// Shannon-expansion fallback when no non-trivial bound set exists:
  /// f = x ? f1 : f0 with a 3-input mux node (requires k >= 3).
  net::NodeId shannon(const IsfBdd& f, const std::vector<int>& support) {
    if (options_.k < 3) {
      throw std::logic_error("Decomposer: Shannon fallback needs k >= 3");
    }
    ++stats_.shannon_fallbacks;
    // Prefer splitting on a non-PPI variable (Section 4.3: keep PPIs out).
    int v = support.front();
    for (int candidate : support) {
      if (!is_ppi(candidate)) {
        v = candidate;
        break;
      }
    }
    const IsfBdd f0{gm_.cofactor(f.on, v, false), gm_.cofactor(f.dc, v, false)};
    const IsfBdd f1{gm_.cofactor(f.on, v, true), gm_.cofactor(f.dc, v, true)};
    const net::NodeId n0 = decompose(f0);
    const net::NodeId n1 = decompose(f1);
    if (n0 == n1) return n0;
    const auto it = var_node_.find(v);
    if (it == var_node_.end()) {
      throw std::logic_error("Decomposer: unmapped Shannon variable");
    }
    // mux(sel, lo, hi) with sel as variable 0.
    const tt::TruthTable sel = tt::TruthTable::var(3, 0);
    const tt::TruthTable lo = tt::TruthTable::var(3, 1);
    const tt::TruthTable hi = tt::TruthTable::var(3, 2);
    const tt::TruthTable mux = (sel & hi) | (~sel & lo);
    return out_.add_logic_tt(out_.fresh_name("mux"), {it->second, n0, n1}, mux);
  }

  bdd::Manager& gm_;
  net::Network& out_;
  const FlowOptions& options_;
  FlowStats& stats_;
  std::unordered_map<int, net::NodeId> var_node_;
  std::vector<int> ppi_vars_;
  int next_var_ = 0;
  int cache_ceiling_ = 0;
  decomp::BoundSetSearch search_;
  decomp::ClassStats class_stats_;
  std::uint64_t encoder_parallel_tasks_ = 0;
};

/// Greedy support-overlap grouping of primary outputs for hyper-functions.
std::vector<std::vector<int>> group_outputs(
    const std::vector<std::vector<int>>& supports, int max_group_size) {
  std::vector<std::vector<int>> groups;
  std::vector<std::set<int>> group_support;
  for (int o = 0; o < static_cast<int>(supports.size()); ++o) {
    const auto& sup = supports[static_cast<std::size_t>(o)];
    bool placed = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (static_cast<int>(groups[g].size()) >= max_group_size) continue;
      int overlap = 0;
      for (int v : sup) {
        if (group_support[g].count(v) != 0) ++overlap;
      }
      const int smaller = std::min(static_cast<int>(sup.size()),
                                   static_cast<int>(group_support[g].size()));
      if (smaller == 0 || 2 * overlap >= smaller) {
        groups[g].push_back(o);
        group_support[g].insert(sup.begin(), sup.end());
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back({o});
      group_support.emplace_back(sup.begin(), sup.end());
    }
  }
  return groups;
}

/// Decomposes one hyper-function group and returns per-ingredient roots.
std::vector<net::NodeId> run_hyper_group_raw(
    bdd::Manager& gm, net::Network& out, Decomposer& decomposer,
    const FlowOptions& options, FlowStats& stats,
    const std::vector<IsfBdd>& ingredients, const std::vector<int>& input_vars,
    std::vector<net::NodeId>& ppi_nodes_accum) {
  const int n = static_cast<int>(ingredients.size());
  std::vector<int> ppi_vars;
  std::vector<net::NodeId> ppi_nodes;
  for (int b = 0; b < bits_for(n); ++b) {
    const int v = decomposer.alloc_var();
    ppi_vars.push_back(v);
    const net::NodeId node = out.add_input(out.fresh_name("__ppi"));
    ppi_nodes.push_back(node);
    decomposer.map_var(v, node);
    ppi_nodes_accum.push_back(node);
  }
  EncoderOptions enc_options;
  enc_options.k = options.k;
  enc_options.seed = options.seed;
  enc_options.dc_policy = options.dc_policy;
  enc_options.tear_penalty_scale = options.tear_penalty_scale;
  enc_options.search = &decomposer.search();
  decomposer.fill_encoder_engine(&enc_options);
  const double search_before = decomposer.search().stats().seconds;
  const auto encode_start = std::chrono::steady_clock::now();
  const HyperFunction hyper = build_hyper_function(
      gm, ingredients, input_vars, ppi_vars, enc_options,
      options.encoding == EncodingPolicy::kCompatibleClass);
  stats.encoding_seconds +=
      seconds_since(encode_start) -
      (decomposer.search().stats().seconds - search_before);
  ++stats.hyper_groups;
  if (options.encoding == EncodingPolicy::kCompatibleClass) {
    ++stats.encoder_runs;
    if (hyper.trace.used_random) ++stats.encoder_random_kept;
  }
  decomposer.set_ppi_vars(ppi_vars);
  const net::NodeId root =
      decomposer.decompose(hyper.function, hyper.trace.lambda_prime);
  decomposer.set_ppi_vars({});
  return recover_ingredients(out, root, ppi_nodes, hyper.codes);
}

/// Decomposes a multi-output group both ways — per-output and as a
/// hyper-function — and keeps whichever created fewer nodes. This is the
/// Section-4.3 trade-off in practice: hyper-sharing wins when the extracted
/// common sub-logic outweighs the duplication cone, and loses on functions
/// (e.g. symmetric ones) whose per-output decompositions are already tight.
/// The losing candidate's nodes die at the final sweep.
std::vector<net::NodeId> run_group_best(
    bdd::Manager& gm, net::Network& out, Decomposer& decomposer,
    const FlowOptions& options, FlowStats& stats,
    const std::vector<IsfBdd>& ingredients, const std::vector<int>& input_vars,
    std::vector<net::NodeId>& ppi_nodes_accum) {
  if (options.group_choice == GroupChoice::kAlwaysHyper) {
    return run_hyper_group_raw(gm, out, decomposer, options, stats, ingredients,
                               input_vars, ppi_nodes_accum);
  }
  const int before_solo = out.num_nodes();
  std::vector<net::NodeId> solo_roots;
  for (const IsfBdd& f : ingredients) {
    solo_roots.push_back(decomposer.decompose(f));
  }
  if (options.group_choice == GroupChoice::kNeverHyper) return solo_roots;
  const int solo_cost = out.num_nodes() - before_solo;

  const int before_hyper = out.num_nodes();
  const auto hyper_roots =
      run_hyper_group_raw(gm, out, decomposer, options, stats, ingredients,
                          input_vars, ppi_nodes_accum);
  const int hyper_cost = out.num_nodes() - before_hyper;

  return hyper_cost <= solo_cost ? hyper_roots : solo_roots;
}

}  // namespace

namespace {
FlowResult run_flow_once(const net::Network& input, const FlowOptions& options,
                         const net::Network* external_dc);
}  // namespace

FlowResult run_flow(const net::Network& input, const FlowOptions& options,
                    const net::Network* external_dc) {
  FlowResult result = run_flow_once(input, options, external_dc);
  for (int pass = 1; pass < options.passes; ++pass) {
    // Re-apply the flow to its own output (external DCs only make sense on
    // the original interface, so they only feed the first pass).
    FlowResult next = run_flow_once(result.network, options, nullptr);
    next.stats.decomposition_steps += result.stats.decomposition_steps;
    next.stats.shannon_fallbacks += result.stats.shannon_fallbacks;
    next.stats.hyper_groups += result.stats.hyper_groups;
    next.stats.encoder_runs += result.stats.encoder_runs;
    next.stats.encoder_random_kept += result.stats.encoder_random_kept;
    next.stats.cache_lookups += result.stats.cache_lookups;
    next.stats.bdd_cache_hits += result.stats.bdd_cache_hits;
    next.stats.bdd_cache_misses += result.stats.bdd_cache_misses;
    next.stats.bdd_cache_overwrites += result.stats.bdd_cache_overwrites;
    next.stats.bdd_gc_runs += result.stats.bdd_gc_runs;
    next.stats.bdd_reorder_runs += result.stats.bdd_reorder_runs;
    next.stats.bdd_peak_live_nodes =
        std::max(next.stats.bdd_peak_live_nodes,
                 result.stats.bdd_peak_live_nodes);
    next.stats.absorb_search_and_phases(result.stats);
    result = std::move(next);
  }
  return result;
}

namespace {

/// Owns the flow's global manager for the duration of run_flow_once and, when
/// a pool is configured, returns it on every exit path (including the
/// std::length_error unwind the windowed engine relies on). Declared before
/// every Bdd local so the manager is destroyed/released last.
struct GlobalManagerGuard {
  bdd::ManagerPool* pool = nullptr;
  std::unique_ptr<bdd::Manager> mgr;

  GlobalManagerGuard(bdd::ManagerPool* p, int num_vars) : pool(p) {
    mgr = pool != nullptr ? pool->acquire(num_vars)
                          : std::make_unique<bdd::Manager>(num_vars);
  }
  ~GlobalManagerGuard() {
    if (pool != nullptr && mgr != nullptr) pool->release(std::move(mgr));
  }
};

FlowResult run_flow_once(const net::Network& input, const FlowOptions& options,
                         const net::Network* external_dc) {
  FlowResult result;
  FlowStats& stats = result.stats;
  net::Network& out = result.network;
  out.set_model_name(input.model_name());

  GlobalManagerGuard gm_guard(options.manager_pool,
                              std::max(2, input.num_nodes()));
  bdd::Manager& gm = *gm_guard.mgr;
  if (options.bdd_node_limit != 0) gm.set_node_limit(options.bdd_node_limit);
  if (options.reorder != bdd::ReorderMode::kOff) {
    gm.set_reorder_mode(options.reorder, options.reorder_max_growth);
    // Soft budget at half the hard cap: GC, then sifting, get a chance to
    // shrink the DAG before growth runs into the std::length_error rung.
    if (options.bdd_node_limit != 0) {
      gm.set_soft_node_limit(options.bdd_node_limit / 2);
    }
  }
  Decomposer decomposer(gm, out, options, stats);

  stats.collapse_mode =
      static_cast<int>(input.inputs().size()) <= options.max_collapse_support;

  std::vector<net::NodeId> ppi_nodes;

  if (stats.collapse_mode) {
    // Collapse mode: decompose primary-output global functions directly.
    std::vector<int> pi_var;
    for (std::size_t i = 0; i < input.inputs().size(); ++i) {
      const int v = static_cast<int>(i);
      pi_var.push_back(v);
      const net::NodeId pi =
          out.add_input(input.node(input.inputs()[i]).name);
      decomposer.map_var(v, pi);
    }
    decomposer.reserve_vars(static_cast<int>(input.inputs().size()));

    std::vector<net::NodeId> roots;
    for (const auto& o : input.outputs()) roots.push_back(o.driver);
    const auto bdds = input.global_bdds(roots, gm, pi_var);

    // External don't cares: per-output DC functions matched by PO name and
    // mapped over the same PI variables (inputs matched by name).
    std::vector<bdd::Bdd> dcs(bdds.size(), gm.zero());
    if (external_dc != nullptr) {
      std::vector<int> dc_pi_var(external_dc->inputs().size(), -1);
      for (std::size_t i = 0; i < external_dc->inputs().size(); ++i) {
        const std::string& name =
            external_dc->node(external_dc->inputs()[i]).name;
        for (std::size_t j = 0; j < input.inputs().size(); ++j) {
          if (input.node(input.inputs()[j]).name == name) {
            dc_pi_var[i] = pi_var[j];
            break;
          }
        }
        if (dc_pi_var[i] < 0) {
          throw std::invalid_argument(
              "run_flow: external DC input not found in the network: " + name);
        }
      }
      for (std::size_t o = 0; o < input.outputs().size(); ++o) {
        for (const auto& dc_out : external_dc->outputs()) {
          if (dc_out.name != input.outputs()[o].name) continue;
          const auto dc_bdds = external_dc->global_bdds(
              {dc_out.driver}, gm, dc_pi_var);
          // Keep the ISF consistent: DC may not overlap the onset.
          dcs[o] = dc_bdds[0] & ~bdds[o];
          break;
        }
      }
    }

    std::vector<std::vector<int>> supports;
    for (const auto& b : bdds) supports.push_back(gm.support(b));
    std::vector<std::vector<int>> groups =
        options.use_hyper
            ? group_outputs(supports, options.max_group_size)
            : std::vector<std::vector<int>>{};
    if (!options.use_hyper) {
      for (int o = 0; o < static_cast<int>(bdds.size()); ++o) groups.push_back({o});
    }

    // Collect every output's root first, then declare POs in the original
    // order (groups are processed out of order).
    std::vector<net::NodeId> out_root(bdds.size(), net::kNoNode);
    for (const auto& group : groups) {
      if (group.size() == 1 || !options.use_hyper) {
        for (int o : group) {
          out_root[static_cast<std::size_t>(o)] = decomposer.decompose(
              IsfBdd{bdds[static_cast<std::size_t>(o)],
                     dcs[static_cast<std::size_t>(o)]});
        }
        continue;
      }
      std::vector<IsfBdd> ingredients;
      std::set<int> input_var_set;
      for (int o : group) {
        ingredients.push_back(IsfBdd{bdds[static_cast<std::size_t>(o)],
                                     dcs[static_cast<std::size_t>(o)]});
        input_var_set.insert(supports[static_cast<std::size_t>(o)].begin(),
                             supports[static_cast<std::size_t>(o)].end());
      }
      const std::vector<int> input_vars(input_var_set.begin(), input_var_set.end());
      const auto group_roots =
          run_group_best(gm, out, decomposer, options, stats, ingredients,
                          input_vars, ppi_nodes);
      for (std::size_t i = 0; i < group.size(); ++i) {
        out_root[static_cast<std::size_t>(group[i])] = group_roots[i];
      }
    }
    for (std::size_t o = 0; o < bdds.size(); ++o) {
      out.add_output(input.outputs()[o].name, out_root[o]);
    }
  } else {
    // Per-node mode: clone narrow nodes, decompose wide ones; wide nodes
    // sharing an identical fanin set can form a hyper-function.
    decomposer.reserve_vars(input.num_nodes());
    std::unordered_map<net::NodeId, net::NodeId> node_map;
    for (std::size_t i = 0; i < input.inputs().size(); ++i) {
      const net::NodeId pi = out.add_input(input.node(input.inputs()[i]).name);
      node_map.emplace(input.inputs()[i], pi);
      decomposer.map_var(static_cast<int>(input.inputs()[i]), pi);
    }

    // Group wide nodes by identical fanin sets.
    const auto topo = input.topo_order();
    std::unordered_map<net::NodeId, int> wide_group_of;
    std::vector<std::vector<net::NodeId>> wide_groups;
    if (options.use_hyper) {
      std::map<std::vector<net::NodeId>, std::vector<net::NodeId>> by_fanins;
      for (net::NodeId id : topo) {
        const net::Node& node = input.node(id);
        if (node.kind != net::NodeKind::kLogic ||
            static_cast<int>(node.fanins.size()) <= options.k) {
          continue;
        }
        std::vector<net::NodeId> key = node.fanins;
        std::sort(key.begin(), key.end());
        key.erase(std::unique(key.begin(), key.end()), key.end());
        by_fanins[key].push_back(id);
      }
      for (auto& [key, members] : by_fanins) {
        for (std::size_t start = 0; start < members.size();
             start += static_cast<std::size_t>(options.max_group_size)) {
          const std::size_t end = std::min(
              members.size(), start + static_cast<std::size_t>(options.max_group_size));
          if (end - start >= 2) {
            std::vector<net::NodeId> chunk(members.begin() + static_cast<std::ptrdiff_t>(start),
                                           members.begin() + static_cast<std::ptrdiff_t>(end));
            for (net::NodeId m : chunk) {
              wide_group_of[m] = static_cast<int>(wide_groups.size());
            }
            wide_groups.push_back(std::move(chunk));
          }
        }
      }
    }
    std::vector<char> group_done(wide_groups.size(), 0);

    for (net::NodeId id : topo) {
      const net::Node& node = input.node(id);
      if (node.kind != net::NodeKind::kLogic || node_map.count(id) != 0) continue;
      const auto make_target = [&](net::NodeId target) {
        std::vector<bdd::Bdd> subst;
        for (net::NodeId f : input.node(target).fanins) {
          gm.ensure_vars(static_cast<int>(f) + 1);
          subst.push_back(gm.var(static_cast<int>(f)));
        }
        return IsfBdd{net::transfer_compose(input.node(target).local, gm, subst),
                      gm.zero()};
      };
      if (static_cast<int>(node.fanins.size()) <= options.k) {
        std::vector<net::NodeId> fanins;
        for (net::NodeId f : node.fanins) fanins.push_back(node_map.at(f));
        const net::NodeId clone =
            out.add_logic_tt(out.fresh_name("c"), std::move(fanins),
                             input.local_tt(id));
        node_map.emplace(id, clone);
        decomposer.map_var(static_cast<int>(id), clone);
        continue;
      }
      const auto group_it = wide_group_of.find(id);
      if (group_it == wide_group_of.end()) {
        const net::NodeId root = decomposer.decompose(make_target(id));
        node_map.emplace(id, root);
        decomposer.map_var(static_cast<int>(id), root);
        continue;
      }
      if (group_done[static_cast<std::size_t>(group_it->second)]) continue;
      group_done[static_cast<std::size_t>(group_it->second)] = 1;
      const auto& members = wide_groups[static_cast<std::size_t>(group_it->second)];
      std::vector<IsfBdd> ingredients;
      std::set<int> input_var_set;
      for (net::NodeId m : members) {
        ingredients.push_back(make_target(m));
        for (net::NodeId f : input.node(m).fanins) {
          input_var_set.insert(static_cast<int>(f));
        }
      }
      const std::vector<int> input_vars(input_var_set.begin(), input_var_set.end());
      const auto roots =
          run_group_best(gm, out, decomposer, options, stats, ingredients,
                          input_vars, ppi_nodes);
      for (std::size_t i = 0; i < members.size(); ++i) {
        node_map.emplace(members[i], roots[i]);
        decomposer.map_var(static_cast<int>(members[i]), roots[i]);
      }
    }
    for (const auto& o : input.outputs()) {
      out.add_output(o.name, node_map.at(o.driver));
    }
  }

  out.sweep();
  out.drop_unused_inputs(ppi_nodes);
  stats.absorb_bdd_stats(gm.stats());
  stats.absorb_search_stats(decomposer.search().stats());
  stats.class_signature_pairs += decomposer.class_stats().signature_pairs;
  stats.class_bdd_pairs += decomposer.class_stats().bdd_pairs;
  stats.encoder_parallel_tasks += decomposer.encoder_parallel_tasks();
  return result;
}
}  // namespace

FlowOptions hyde_options(int k) {
  FlowOptions options;
  options.k = k;
  options.encoding = EncodingPolicy::kCompatibleClass;
  options.dc_policy = decomp::DcPolicy::kCliquePartition;
  options.use_hyper = true;
  options.ppi_hard_mu = false;
  return options;
}

FlowOptions fgsyn_like_options(int k) {
  FlowOptions options;
  options.k = k;
  options.encoding = EncodingPolicy::kRandom;
  options.dc_policy = decomp::DcPolicy::kCliquePartition;
  options.use_hyper = true;
  options.ppi_hard_mu = true;  // column encoding: PPIs always stay free
  return options;
}

FlowOptions imodec_like_options(int k) {
  FlowOptions options;
  options.k = k;
  options.encoding = EncodingPolicy::kRandom;
  options.dc_policy = decomp::DcPolicy::kCliquePartition;
  options.use_hyper = false;
  return options;
}

FlowOptions sawada_like_options(int k) {
  FlowOptions options;
  options.k = k;
  options.encoding = EncodingPolicy::kRandom;
  options.dc_policy = decomp::DcPolicy::kDistinctColumns;
  options.use_hyper = false;
  return options;
}

}  // namespace hyde::core
