#include "core/timemux.hpp"

#include <stdexcept>

#include "core/hyper.hpp"

namespace hyde::core {

namespace {

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

TimeMultiplexed build_time_multiplexed(bdd::Manager& mgr,
                                       const std::vector<decomp::IsfBdd>& slots,
                                       const std::vector<int>& data_vars,
                                       const std::vector<std::string>& data_names,
                                       const FlowOptions& options) {
  if (slots.empty()) {
    throw std::invalid_argument("build_time_multiplexed: no slots");
  }
  if (data_names.size() != data_vars.size()) {
    throw std::invalid_argument("build_time_multiplexed: name/var mismatch");
  }
  const int t = bits_for(static_cast<int>(slots.size()));

  // Mode variables: fresh manager indices above the data variables.
  int next_var = mgr.num_vars();
  for (int v : data_vars) next_var = std::max(next_var, v + 1);
  std::vector<int> mode_vars;
  for (int b = 0; b < t; ++b) mode_vars.push_back(next_var + b);
  mgr.ensure_vars(next_var + t);

  EncoderOptions enc_options;
  enc_options.k = options.k;
  enc_options.seed = options.seed;
  enc_options.dc_policy = options.dc_policy;
  enc_options.tear_penalty_scale = options.tear_penalty_scale;
  const HyperFunction hyper = build_hyper_function(
      mgr, slots, data_vars, mode_vars, enc_options,
      options.encoding == EncodingPolicy::kCompatibleClass);

  // Realize the hyper-function as a network whose mode bits are ordinary
  // primary inputs — no recovery, no duplication (Section 6).
  net::Network shell("tmux");
  std::vector<net::NodeId> fanins;
  for (std::size_t i = 0; i < data_vars.size(); ++i) {
    fanins.push_back(shell.add_input(data_names[i]));
  }
  for (int b = 0; b < t; ++b) {
    fanins.push_back(shell.add_input("mode" + std::to_string(b)));
  }
  std::vector<int> all_vars = data_vars;
  all_vars.insert(all_vars.end(), mode_vars.begin(), mode_vars.end());
  // Wide shell node carrying the hyper-function (onset completion of the
  // unused slots' don't cares is left to the decomposition flow via exdc).
  const tt::TruthTable on_tt = mgr.to_truth_table(hyper.function.on, all_vars);
  shell.add_output("y", shell.add_logic_tt("H", fanins, on_tt));

  net::Network dc_shell("tmux_dc");
  std::vector<net::NodeId> dc_fanins;
  for (std::size_t i = 0; i < data_vars.size(); ++i) {
    dc_fanins.push_back(dc_shell.add_input(data_names[i]));
  }
  for (int b = 0; b < t; ++b) {
    dc_fanins.push_back(dc_shell.add_input("mode" + std::to_string(b)));
  }
  const tt::TruthTable dc_tt = mgr.to_truth_table(hyper.function.dc, all_vars);
  dc_shell.add_output("y", dc_shell.add_logic_tt("H", dc_fanins, dc_tt));

  TimeMultiplexed result;
  result.slot_codes = hyper.codes.codes;
  result.num_mode_bits = t;
  result.trace = hyper.trace;
  FlowResult flow = run_flow(shell, options, &dc_shell);
  result.network = std::move(flow.network);
  return result;
}

}  // namespace hyde::core
