/// \file decomp_cache.hpp
/// \brief Cross-flow memoization interface for small-support decompositions.
///
/// The flow's recursive decomposer spends most of its time re-decomposing
/// functions it has seen before — the same NPN class shows up across outputs,
/// across circuits of a batch sweep, and across the solo/hyper candidate runs
/// of `GroupChoice::kAuto`. A `DecompCache` memoizes one decomposition per
/// NPN-canonical (onset, dcset) pair and replays it everywhere else.
///
/// Determinism contract (load-bearing for the parallel batch runtime): the
/// value stored under a key must be a *pure function of the key*. The flow
/// guarantees this by decomposing the canonical representative with a seed
/// derived from the key content (never from FlowOptions::seed or from which
/// job got there first), so racing workers that miss on the same key compute
/// bit-identical entries and it does not matter whose insert wins. A batch
/// run's results are therefore independent of scheduling order and worker
/// count.
///
/// Thread-safety contract: implementations must allow concurrent lookup and
/// insert from many threads. Cached values are immutable after insert and are
/// deliberately stored as plain truth-table node lists — *not* as
/// `net::Network`, whose BDD manager mutates its operation cache even on
/// reads and must never be shared across threads.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tt/truth_table.hpp"

namespace hyde::core {

/// One node of a cached decomposition template. Fanin index i < num_inputs
/// denotes template input i (canonical variable i); index num_inputs + j
/// denotes template node j. Nodes are stored in topological order.
struct TemplateNode {
  std::vector<int> fanins;
  tt::TruthTable table;  ///< local function, variable p == fanins[p]
};

/// Counters a cached decomposition contributes to the using flow's stats —
/// added identically on hits and misses so FlowStats stay schedule-independent.
struct TemplateStats {
  int decomposition_steps = 0;
  int shannon_fallbacks = 0;
  int encoder_runs = 0;
  int encoder_random_kept = 0;
};

/// A memoized k-feasible realization of one NPN-canonical function.
struct CachedDecomposition {
  int num_inputs = 0;
  std::vector<TemplateNode> nodes;
  int root = -1;  ///< combined index (num_inputs + node offset) of the output
  TemplateStats stats;
};

/// Cache key: the NPN-canonical (onset, dcset) pair plus a fingerprint of
/// every FlowOptions knob that shapes the template decomposition (k, encoding
/// policy, DC policy, ...). Keys with different fingerprints never share
/// entries, so e.g. an IMODEC-like sweep cannot replay HYDE decompositions.
struct NpnCacheKey {
  tt::TruthTable on;
  tt::TruthTable dc;
  std::uint64_t options_fingerprint = 0;

  bool operator==(const NpnCacheKey&) const = default;

  std::uint64_t hash() const {
    std::uint64_t h = on.hash() * 0x9E3779B97F4A7C15ull;
    h ^= dc.hash() + 0x517CC1B727220A95ull + (h << 6) + (h >> 2);
    h ^= options_fingerprint + 0x2545F4914F6CDD1Dull + (h << 6) + (h >> 2);
    return h;
  }
};

/// Which tier of a (possibly multi-level) cache served a lookup. Flows use
/// this to split their cache-hit stats into memory hits and disk hits
/// without knowing the cache topology.
enum class LookupTier {
  kMiss = 0,
  kMemory = 1,
  kDisk = 2,
};

/// Abstract memo table. The concrete sharded implementation lives in
/// src/runtime/npn_cache; core only needs the interface so FlowOptions can
/// carry an optional cache pointer without depending on the runtime layer.
/// The persistent second level (src/store/persistent_cache) layers behind it
/// through the same interface via `lookup_tiered`/`has_persistent_tier`.
class DecompCache {
 public:
  virtual ~DecompCache() = default;

  /// Returns the entry for \p key, or nullptr on miss.
  virtual std::shared_ptr<const CachedDecomposition> lookup(
      const NpnCacheKey& key) = 0;

  /// Like lookup, but additionally reports which tier served the entry
  /// (when \p tier is non-null). Single-level caches report kMemory on hit.
  virtual std::shared_ptr<const CachedDecomposition> lookup_tiered(
      const NpnCacheKey& key, LookupTier* tier) {
    auto entry = lookup(key);
    if (tier != nullptr) {
      *tier = entry ? LookupTier::kMemory : LookupTier::kMiss;
    }
    return entry;
  }

  /// True when misses fall through to an on-disk tier; flows then count
  /// their misses as disk misses in the store stats.
  virtual bool has_persistent_tier() const { return false; }

  /// Publishes \p value under \p key and returns the entry now stored there.
  /// When another thread raced the computation, the first insert wins and its
  /// (bit-identical, see determinism contract) entry is returned instead.
  virtual std::shared_ptr<const CachedDecomposition> insert(
      const NpnCacheKey& key, CachedDecomposition value) = 0;
};

}  // namespace hyde::core
