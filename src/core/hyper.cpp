#include "core/hyper.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace hyde::core {

namespace {

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

HyperFunction build_hyper_function(bdd::Manager& mgr,
                                   const std::vector<decomp::IsfBdd>& ingredients,
                                   const std::vector<int>& input_vars,
                                   const std::vector<int>& ppi_vars,
                                   const EncoderOptions& options,
                                   bool use_encoder) {
  const int n = static_cast<int>(ingredients.size());
  if (n == 0) {
    throw std::invalid_argument("build_hyper_function: no ingredients");
  }
  if (static_cast<int>(ppi_vars.size()) != bits_for(n)) {
    throw std::invalid_argument(
        "build_hyper_function: need ceil(log2 n) pseudo primary inputs");
  }
  HyperFunction hyper;
  hyper.ppi_vars = ppi_vars;
  hyper.input_vars = input_vars;
  if (use_encoder) {
    EncodingChoice choice =
        encode_functions(mgr, ingredients, input_vars, ppi_vars, options);
    hyper.codes = choice.encoding;
    hyper.trace = choice.trace;
  } else {
    hyper.codes = decomp::random_encoding(n, options.seed);
  }
  hyper.function = decomp::build_image(mgr, ingredients, hyper.codes, ppi_vars);
  return hyper;
}

int DuplicationAnalysis::extra_copies(int num_ppis, int num_ingredients) const {
  int total = 0;
  for (std::size_t id = 0; id < layer.size(); ++id) {
    const int m = layer[id];
    if (m <= 0) continue;
    if (m < num_ppis) {
      total += (1 << m) - 1;
    } else {
      total += num_ingredients - 1;
    }
  }
  return total;
}

DuplicationAnalysis analyze_duplication(const net::Network& network,
                                        const std::vector<net::NodeId>& ppi_nodes) {
  DuplicationAnalysis analysis;
  analysis.layer.assign(static_cast<std::size_t>(network.num_nodes()), 0);

  // Fanout adjacency over live nodes.
  std::vector<std::vector<net::NodeId>> fanouts(
      static_cast<std::size_t>(network.num_nodes()));
  for (net::NodeId id : network.topo_order()) {
    for (net::NodeId f : network.node(id).fanins) {
      fanouts[static_cast<std::size_t>(f)].push_back(id);
    }
  }

  // layer[v] = number of PPIs reaching v.
  for (net::NodeId ppi : ppi_nodes) {
    std::vector<char> reached(static_cast<std::size_t>(network.num_nodes()), 0);
    std::vector<net::NodeId> stack{ppi};
    reached[static_cast<std::size_t>(ppi)] = 1;
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      for (net::NodeId w : fanouts[static_cast<std::size_t>(v)]) {
        if (!reached[static_cast<std::size_t>(w)]) {
          reached[static_cast<std::size_t>(w)] = 1;
          stack.push_back(w);
        }
      }
    }
    for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
      if (reached[static_cast<std::size_t>(v)] &&
          network.node(v).kind == net::NodeKind::kLogic) {
        ++analysis.layer[static_cast<std::size_t>(v)];
      }
    }
  }

  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    const net::Node& node = network.node(v);
    if (node.dead || node.kind != net::NodeKind::kLogic) continue;
    if (analysis.layer[static_cast<std::size_t>(v)] > 0) {
      analysis.cone.push_back(v);
    }
    for (net::NodeId f : node.fanins) {
      if (std::find(ppi_nodes.begin(), ppi_nodes.end(), f) != ppi_nodes.end()) {
        analysis.sources.push_back(v);
        break;
      }
    }
  }
  return analysis;
}

std::vector<net::NodeId> recover_ingredients(
    net::Network& network, net::NodeId hyper_root,
    const std::vector<net::NodeId>& ppi_nodes, const decomp::Encoding& codes) {
  std::vector<net::NodeId> roots;
  const DuplicationAnalysis analysis = analyze_duplication(network, ppi_nodes);
  const auto topo = network.topo_order();

  auto ppi_bit = [&](net::NodeId id) {
    for (std::size_t j = 0; j < ppi_nodes.size(); ++j) {
      if (ppi_nodes[j] == id) return static_cast<int>(j);
    }
    return -1;
  };

  for (std::size_t i = 0; i < codes.codes.size(); ++i) {
    const std::uint32_t code = codes.codes[i];
    std::unordered_map<net::NodeId, net::NodeId> copy;
    for (net::NodeId id : topo) {
      const net::Node& node = network.node(id);
      if (node.kind != net::NodeKind::kLogic || !analysis.in_cone(id)) continue;
      // Specialize: substitute PPI fanins by the code's constants and remap
      // cone fanins to the per-ingredient copies.
      tt::TruthTable table = network.local_tt(id);
      std::vector<net::NodeId> fanins;
      std::vector<int> kept_positions;
      for (std::size_t pos = 0; pos < node.fanins.size(); ++pos) {
        const net::NodeId f = node.fanins[pos];
        const int bit = ppi_bit(f);
        if (bit >= 0) {
          table = table.cofactor(static_cast<int>(pos), ((code >> bit) & 1) != 0);
        } else {
          kept_positions.push_back(static_cast<int>(pos));
          fanins.push_back(copy.count(f) != 0 ? copy.at(f) : f);
        }
      }
      table = table.project(kept_positions);
      const net::NodeId specialized = network.add_logic_tt(
          network.fresh_name(node.name + "_f" + std::to_string(i)),
          std::move(fanins), table);
      copy.emplace(id, specialized);
    }
    roots.push_back(copy.count(hyper_root) != 0 ? copy.at(hyper_root)
                                                : hyper_root);
  }
  return roots;
}

}  // namespace hyde::core
