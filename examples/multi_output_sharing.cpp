/// Hyper-function decomposition on a multi-output arithmetic slice: shows
/// the ingredient encoding, the duplication source/cone analysis
/// (Definitions 4.3-4.5) and how much logic the recovered outputs share.

#include <cstdio>

#include "core/flow.hpp"
#include "core/hyper.hpp"
#include "mapper/lutmap.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace hyde;

  // A 8-input comparator bank: four outputs over the same support.
  net::Network input("cmpbank");
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 8; ++i) {
    pis.push_back(input.add_input("x" + std::to_string(i)));
  }
  auto word = [](std::uint64_t m, int lo) { return (m >> lo) & 15; };
  const auto eq = tt::TruthTable::from_lambda(
      8, [&](std::uint64_t m) { return word(m, 0) == word(m, 4); });
  const auto lt = tt::TruthTable::from_lambda(
      8, [&](std::uint64_t m) { return word(m, 0) < word(m, 4); });
  const auto sum_par = tt::TruthTable::from_lambda(
      8, [&](std::uint64_t m) { return ((word(m, 0) + word(m, 4)) & 1) != 0; });
  const auto carry = tt::TruthTable::from_lambda(
      8, [&](std::uint64_t m) { return word(m, 0) + word(m, 4) > 15; });
  input.add_output("eq", input.add_logic_tt("eq", pis, eq));
  input.add_output("lt", input.add_logic_tt("lt", pis, lt));
  input.add_output("spar", input.add_logic_tt("spar", pis, sum_par));
  input.add_output("cout", input.add_logic_tt("cout", pis, carry));

  // Encode the four ingredients into a hyper-function by hand to inspect it.
  bdd::Manager gm(16);
  std::vector<int> pi_var{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<net::NodeId> drivers;
  for (const auto& o : input.outputs()) drivers.push_back(o.driver);
  const auto bdds = input.global_bdds(drivers, gm, pi_var);
  std::vector<decomp::IsfBdd> ingredients;
  for (const auto& b : bdds) ingredients.push_back(decomp::IsfBdd{b, gm.zero()});
  core::EncoderOptions enc_options;
  enc_options.k = 5;
  const auto hyper =
      core::build_hyper_function(gm, ingredients, pi_var, {12, 13}, enc_options);
  std::printf("hyper-function H(eta0,eta1,x0..x7) built; ingredient codes:");
  for (std::size_t i = 0; i < hyper.codes.codes.size(); ++i) {
    std::printf(" %s=%u", input.outputs()[i].name.c_str(), hyper.codes.codes[i]);
  }
  std::printf("\n");

  // Run both policies and compare.
  for (const auto choice : {core::GroupChoice::kNeverHyper,
                            core::GroupChoice::kAlwaysHyper,
                            core::GroupChoice::kAuto}) {
    core::FlowOptions options = core::hyde_options(5);
    options.group_choice = choice;
    auto flow = core::run_flow(input, options);
    mapper::dedup_shared_nodes(flow.network);
    mapper::collapse_into_fanouts(flow.network, 5);
    const char* label = choice == core::GroupChoice::kNeverHyper ? "per-output"
                        : choice == core::GroupChoice::kAlwaysHyper
                            ? "hyper     "
                            : "auto      ";
    std::printf("%s: %3d LUTs, depth %d\n", label,
                mapper::lut_count(flow.network),
                mapper::network_depth(flow.network));
  }

  // Duplication analysis of a forced hyper decomposition.
  core::FlowOptions options = core::hyde_options(5);
  options.group_choice = core::GroupChoice::kAlwaysHyper;
  auto flow = core::run_flow(input, options);
  std::printf("\nforced-hyper network recovered to %zu outputs over %zu PIs; ",
              flow.network.outputs().size(), flow.network.inputs().size());
  std::printf("equivalence: ");
  for (std::uint64_t m = 0; m < 256; ++m) {
    std::vector<bool> assign(8);
    for (int i = 0; i < 8; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    if (input.eval(assign) != flow.network.eval(assign)) {
      std::printf("FAILED at %llu\n", static_cast<unsigned long long>(m));
      return 1;
    }
  }
  std::printf("exhaustive over 256 vectors, OK\n");
  return 0;
}
