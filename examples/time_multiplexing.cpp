/// Section 6's proposed application: time-multiplexed reconfigurable
/// computing. Functions active in different time slots are combined into one
/// hyper-function whose pseudo primary inputs become real *mode* inputs —
/// one network serves all slots, and nothing is duplicated.

#include <cstdio>

#include "core/timemux.hpp"
#include "mapper/lutmap.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace hyde;

  // Three "time slot" behaviours over the same 6 data inputs: a CRC-ish
  // parity mix, a threshold detector and a pattern matcher.
  bdd::Manager mgr(16);
  const std::vector<int> data_vars{0, 1, 2, 3, 4, 5};
  const bdd::Bdd x0 = mgr.var(0), x1 = mgr.var(1), x2 = mgr.var(2),
                 x3 = mgr.var(3), x4 = mgr.var(4), x5 = mgr.var(5);
  const std::vector<decomp::IsfBdd> slots{
      decomp::IsfBdd{x0 ^ x2 ^ (x3 & x5) ^ x4, mgr.zero()},
      decomp::IsfBdd{mgr.from_truth_table(tt::TruthTable::symmetric(6, {4, 5, 6})),
                     mgr.zero()},
      decomp::IsfBdd{(x0 & ~x1 & x2) | (~x3 & x4 & ~x5), mgr.zero()},
  };

  const auto tmux = core::build_time_multiplexed(
      mgr, slots, data_vars, {"d0", "d1", "d2", "d3", "d4", "d5"},
      core::hyde_options(5));
  std::printf("time slots encoded as modes:");
  for (std::size_t i = 0; i < tmux.slot_codes.size(); ++i) {
    std::printf(" slot%zu=%u", i, tmux.slot_codes[i]);
  }
  std::printf(" (%d mode bits; the unused 4th word is a don't care)\n",
              tmux.num_mode_bits);

  net::Network network = std::move(const_cast<core::TimeMultiplexed&>(tmux).network);
  mapper::dedup_shared_nodes(network);
  mapper::collapse_into_fanouts(network, 5);
  std::printf("mapped time-multiplexed network: %d LUTs, depth %d, "
              "%zu inputs (6 data + %d mode)\n",
              mapper::lut_count(network), mapper::network_depth(network),
              network.inputs().size(), tmux.num_mode_bits);

  // Cross-check every slot against its specification.
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    const std::uint32_t code = tmux.slot_codes[slot];
    for (std::uint64_t m = 0; m < 64; ++m) {
      std::vector<bool> assign(8);
      for (int i = 0; i < 6; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
      assign[6] = (code & 1) != 0;
      assign[7] = (code & 2) != 0;
      std::vector<bool> data_assign(static_cast<std::size_t>(mgr.num_vars()), false);
      for (int i = 0; i < 6; ++i) data_assign[static_cast<std::size_t>(i)] = assign[static_cast<std::size_t>(i)];
      const bool expected = mgr.eval(slots[slot].on, data_assign);
      if (network.eval(assign)[0] != expected) {
        std::printf("slot %zu MISMATCH at %llu\n", slot,
                    static_cast<unsigned long long>(m));
        return 1;
      }
    }
    std::printf("slot %zu verified over all 64 data vectors\n", slot);
  }
  std::printf("\nCompare with duplication-based recovery: 3 separate cones "
              "vs 1 shared network + %d mode wires.\n", tmux.num_mode_bits);
  return 0;
}
