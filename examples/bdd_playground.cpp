/// Tour of the BDD substrate: building functions, canonical equality,
/// quantification, satisfy counts, static reordering and Graphviz export.
/// (The decomposition engine sits on exactly these primitives.)

#include <cstdio>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace hyde;
  bdd::Manager mgr(12);

  // Build a 6-pair "comparator hit" function the hard way and the easy way.
  bdd::Bdd f = mgr.zero();
  for (int i = 0; i < 6; ++i) {
    f = f | (mgr.var(i) & mgr.var(6 + i));
  }
  const tt::TruthTable table = tt::TruthTable::from_lambda(12, [](std::uint64_t m) {
    return ((m & 63) & (m >> 6)) != 0;
  });
  const bdd::Bdd g = mgr.from_truth_table(table);
  std::printf("canonical equality of two constructions: %s\n",
              f == g ? "equal" : "DIFFERENT");

  std::printf("nodes: %zu, onset minterms: %.0f of %d\n", mgr.node_count(f),
              mgr.sat_count(f, 12), 1 << 12);

  // Quantify away one side of the comparator.
  const bdd::Bdd any_b = mgr.exists(f, {6, 7, 8, 9, 10, 11});
  const bdd::Bdd a_nonzero = ~(mgr.nvar(0) & mgr.nvar(1) & mgr.nvar(2) &
                               mgr.nvar(3) & mgr.nvar(4) & mgr.nvar(5));
  std::printf("exists(b): reduces to 'a != 0': %s\n",
              any_b == a_nonzero ? "yes" : "no");

  // Static reordering: the blocked order is exponential, sifting finds the
  // interleaved one.
  const auto sift = bdd::sift_order(mgr, f, 3);
  std::printf("sifting: %zu nodes -> %zu nodes in %d rounds; order:",
              sift.initial_nodes, sift.final_nodes, sift.rounds_used);
  for (int v : sift.order) std::printf(" x%d", v);
  std::printf("\n");

  // Graphviz dump of the small reordered BDD.
  bdd::Manager pretty(static_cast<int>(sift.order.size()));
  const bdd::Bdd moved = bdd::apply_order(f, pretty, sift.order);
  const std::string dot = pretty.to_dot(moved, "comparator");
  std::printf("\n%s", dot.c_str());
  std::printf("(pipe through `dot -Tpng` to render)\n");
  return 0;
}
