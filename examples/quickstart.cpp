/// Quickstart: build a Boolean network, run the HYDE flow, inspect and
/// export the mapped k-LUT network.
///
///   $ ./examples/quickstart
///
/// Walks through the three layers of the public API:
///   1. net::Network + tt::TruthTable to describe the input logic,
///   2. core::run_flow to decompose it into 5-input LUTs,
///   3. mapper::* to clean up and count, net::write_blif to export.

#include <cstdio>

#include "core/flow.hpp"
#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"
#include "net/blif.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace hyde;

  // 1. Describe the logic: a 9-input majority-ish voter with two outputs.
  net::Network input("voter");
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 9; ++i) {
    pis.push_back(input.add_input("x" + std::to_string(i)));
  }
  const tt::TruthTable majority = tt::TruthTable::symmetric(9, {5, 6, 7, 8, 9});
  const tt::TruthTable near_tie = tt::TruthTable::symmetric(9, {4, 5});
  input.add_output("win", input.add_logic_tt("win", pis, majority));
  input.add_output("close", input.add_logic_tt("close", pis, near_tie));
  std::printf("input:  %s\n", input.stats().c_str());

  // 2. Decompose into 5-input LUTs with the paper's flow (compatible-class
  //    encoding + hyper-function sharing).
  const core::FlowOptions options = core::hyde_options(/*k=*/5);
  core::FlowResult flow = core::run_flow(input, options);
  std::printf("flow:   %d decomposition steps, %d hyper groups, %d encoder runs\n",
              flow.stats.decomposition_steps, flow.stats.hyper_groups,
              flow.stats.encoder_runs);

  // 3. Clean up, count, pack and export.
  mapper::dedup_shared_nodes(flow.network);
  mapper::collapse_into_fanouts(flow.network, 5);
  const auto packing = mapper::pack_xc3000(flow.network);
  std::printf("mapped: %d LUTs, depth %d, %d XC3000 CLBs (%d paired)\n",
              mapper::lut_count(flow.network),
              mapper::network_depth(flow.network), packing.num_clbs,
              packing.paired);

  // Sanity: the mapped network computes the same outputs.
  int checked = 0;
  for (std::uint64_t m = 0; m < 512; m += 37) {
    std::vector<bool> assign(9);
    for (int i = 0; i < 9; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    if (input.eval(assign) != flow.network.eval(assign)) {
      std::printf("MISMATCH at %llu\n", static_cast<unsigned long long>(m));
      return 1;
    }
    ++checked;
  }
  std::printf("verify: %d probe vectors match\n", checked);

  std::printf("\nBLIF of the mapped network:\n%s",
              net::write_blif_string(flow.network).c_str());
  return 0;
}
