/// Maps a ripple-carry adder onto the XC3000 CLB architecture, comparing
/// HYDE against the baseline flows on the same netlist — a miniature of the
/// Table-1 experiment on a circuit whose exact function is easy to audit.

#include <cstdio>

#include "baseline/flows.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace hyde;

  // 6-bit + 6-bit + carry-in ripple adder built from full-adder cells.
  net::Network input("adder6");
  std::vector<net::NodeId> a, b;
  for (int i = 0; i < 6; ++i) a.push_back(input.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 6; ++i) b.push_back(input.add_input("b" + std::to_string(i)));
  const net::NodeId cin = input.add_input("cin");
  const auto sum3 = tt::TruthTable::from_lambda(3, [](std::uint64_t m) {
    return std::popcount(m) % 2 == 1;
  });
  const auto maj3 = tt::TruthTable::symmetric(3, {2, 3});
  net::NodeId carry = cin;
  for (int i = 0; i < 6; ++i) {
    const std::vector<net::NodeId> cell{a[static_cast<std::size_t>(i)],
                                        b[static_cast<std::size_t>(i)], carry};
    input.add_output("s" + std::to_string(i),
                     input.add_logic_tt("s" + std::to_string(i), cell, sum3));
    carry = input.add_logic_tt("c" + std::to_string(i), cell, maj3);
  }
  input.add_output("cout", carry);
  std::printf("input: %s\n\n", input.stats().c_str());

  std::printf("%-12s | %6s %6s %6s %7s %9s\n", "system", "LUTs", "CLBs",
              "depth", "sec", "verified");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (const auto system :
       {baseline::System::kSawadaLike, baseline::System::kSawadaResubLike,
        baseline::System::kImodecLike, baseline::System::kFgsynLike,
        baseline::System::kHyde}) {
    const auto result = baseline::run_system(input, system, 5, 512);
    std::printf("%-12s | %6d %6d %6d %7.3f %9s\n",
                baseline::system_name(system).c_str(), result.luts,
                result.clbs, result.depth, result.seconds,
                result.verified ? "yes" : "NO");
    if (!result.verified) return 1;
  }
  std::printf("\nThe covering pass absorbs the 3-input full-adder cells into "
              "wider LUTs; every flow lands on the same tight mapping for "
              "this regular carry chain.\n");
  return 0;
}
