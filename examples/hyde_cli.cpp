/// hyde_cli — command-line front end for the whole flow.
///
///   hyde_cli [options] <circuit.blif|circuit.pla|@benchmark>
///
///   -k <n>        LUT input count (default 5)
///   -s <system>   hyde | imodec | fgsyn | rk | rk-resub | all (default hyde)
///   -o <file>     write the mapped network as BLIF (default: no output file)
///   --pla-out <f> write the mapped network as a flattened PLA
///   --no-verify   skip the random-vector equivalence check
///
/// `@name` pulls a circuit from the built-in MCNC-like suite (e.g. @9sym).
/// PLA inputs with `-` outputs feed their don't cares into the flow.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baseline/flows.hpp"
#include "core/flow.hpp"
#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/pla.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hyde_cli [-k n] [-s hyde|imodec|fgsyn|rk|rk-resub|all] "
               "[-o out.blif] [--pla-out out.pla] [--no-verify] "
               "<circuit.blif|circuit.pla|@benchmark>\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyde;
  int k = 5;
  std::string system_name = "hyde";
  std::string out_blif, out_pla, source;
  bool verify = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k" && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (arg == "-s" && i + 1 < argc) {
      system_name = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      out_blif = argv[++i];
    } else if (arg == "--pla-out" && i + 1 < argc) {
      out_pla = argv[++i];
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      source = arg;
    }
  }
  if (source.empty() || k < 3 || k > 8) return usage();

  // Load the circuit (and possible external don't cares).
  net::Network input("empty");
  net::Network dc("empty_dc");
  bool has_dc = false;
  try {
    if (source[0] == '@') {
      input = mcnc::make_circuit(source.substr(1));
    } else if (ends_with(source, ".pla")) {
      std::ifstream in(source);
      if (!in) throw std::runtime_error("cannot open " + source);
      net::PlaModel model = net::read_pla(in, source);
      input = std::move(model.onset);
      dc = std::move(model.dont_care);
      has_dc = model.has_dont_cares;
    } else {
      std::ifstream in(source);
      if (!in) throw std::runtime_error("cannot open " + source);
      net::BlifModel model = net::read_blif_model(in);
      input = std::move(model.network);
      dc = std::move(model.dont_care);
      has_dc = model.has_dont_cares;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading %s: %s\n", source.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %s%s\n", input.stats().c_str(),
              has_dc ? " (+ external don't cares)" : "");

  const std::vector<std::pair<std::string, baseline::System>> known{
      {"hyde", baseline::System::kHyde},
      {"imodec", baseline::System::kImodecLike},
      {"fgsyn", baseline::System::kFgsynLike},
      {"rk", baseline::System::kSawadaLike},
      {"rk-resub", baseline::System::kSawadaResubLike},
  };

  net::Network best_network("none");
  int best_luts = -1;
  for (const auto& [name, system] : known) {
    if (system_name != "all" && system_name != name) continue;
    // For DC-aware runs use the core flow directly (baseline::run_system
    // does not thread external don't cares).
    if (has_dc && system == baseline::System::kHyde) {
      auto flow = core::run_flow(input, core::hyde_options(k), &dc);
      mapper::dedup_shared_nodes(flow.network);
      mapper::collapse_into_fanouts(flow.network, k);
      const int luts = mapper::lut_count(flow.network);
      std::printf("%-10s %5d LUTs  depth %2d  (with external DCs; "
                  "equivalence holds on the care set only)\n",
                  name.c_str(), luts, mapper::network_depth(flow.network));
      if (best_luts < 0 || luts < best_luts) {
        best_luts = luts;
        best_network = std::move(flow.network);
      }
      continue;
    }
    auto result = baseline::run_system(input, system, k, verify ? 256 : 0);
    std::printf("%-10s %5d LUTs", name.c_str(), result.luts);
    if (k == 5) std::printf("  %5d CLBs", result.clbs);
    std::printf("  depth %2d  %.3fs  %s\n", result.depth, result.seconds,
                !verify          ? "unverified"
                : result.verified ? "verified"
                                  : "VERIFY FAILED");
    if (verify && !result.verified) return 1;
    if (best_luts < 0 || result.luts < best_luts) {
      best_luts = result.luts;
      best_network = std::move(result.network);
    }
  }
  if (best_luts < 0) return usage();

  if (!out_blif.empty()) {
    std::ofstream out(out_blif);
    net::write_blif(best_network, out);
    std::printf("wrote %s\n", out_blif.c_str());
  }
  if (!out_pla.empty()) {
    std::ofstream out(out_pla);
    net::write_pla(best_network, out);
    std::printf("wrote %s\n", out_pla.c_str());
  }
  return 0;
}
