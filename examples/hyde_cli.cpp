/// hyde_cli — command-line front end for the whole flow.
///
///   hyde_cli [options] <circuit.blif|circuit.pla|@benchmark>
///   hyde_cli --batch [options]
///
///   -k <n>        LUT input count, 3..8 (default 5)
///   -s <system>   hyde | imodec | fgsyn | rk | rk-resub | all (default hyde)
///   -o <file>     write the mapped network as BLIF (default: no output file)
///   --pla-out <f> write the mapped network as a flattened PLA
///   --no-verify   skip the random-vector equivalence check
///   --profile     print the per-phase wall-clock breakdown (varpart /
///                 classes / encoding / mapping) plus search-engine counters;
///                 the same numbers always land in the volatile RunReport
///                 JSON/CSV sections regardless of this flag
///   --search-threads <n>  parallelize candidate bound-set evaluation inside
///                 each flow (decomp/search.hpp; results are bit-identical
///                 at any thread count)
///   --reorder <m>  dynamic BDD variable reordering: off (default), sift
///                 (soft-budget ladder) or auto (adds the growth trigger);
///                 see docs/REORDER.md. Result-affecting: runs with
///                 different --reorder settings are different experiments.
///   --reorder-max-growth <x>  auto-reorder growth factor, > 1.0 (default 2.0)
///   --manager-pool  recycle warmed BDD managers across flow invocations
///                 (bdd/pool.hpp); result-neutral allocation reuse
///   --read-latches  accept sequential BLIF by extracting the combinational
///                 core (latch outputs become PIs, latch inputs become POs)
///
/// Flow-shaping knobs (single-circuit and --in windowed runs; they override
/// the -s system preset, so e.g. `-s hyde --encoding random` is HYDE with
/// Step-1 random encoding only). Batch mode runs the preset systems as
/// published and rejects these, except --cache-max-support and
/// --no-class-signatures which map onto batch options:
///
///   --encoding random|classes|cubes   class-encoding policy
///   --dc-policy columns|clique        DC assignment (distinct columns vs
///                 the paper's clique partitioning)
///   --no-hyper            never group outputs into hyper-functions
///   --group-choice auto|always|never  how a multi-output group is realized
///   --ppi-hard-mu         FGSyn-like: PPIs never enter a bound set
///   --max-group-size <n>  ingredients per hyper-function (default 4)
///   --collapse-support <n>  PI-count threshold for collapse mode
///   --passes <n>          flow re-applications (default 1)
///   --cache-max-support <n>  NPN-cache support ceiling (default 7)
///   --no-search-memo      disable chart-column memoization
///   --no-search-pruning   disable incumbent-based chart pruning
///   --no-class-signatures force per-pair BDD compatibility tests
///   --signature-rows <n>  row-space bound for the signature fast path
///   --node-limit <n>      live-BDD-node hard cap (0 = unlimited)
///   --tear-penalty <x>    encoder tearing-penalty weight (default 1.0)
///
/// Windowed mode handles netlists too large to decompose whole by
/// resynthesizing bounded windows (src/part/) and stitching them back:
///
///   --in <file.blif>      run the windowed flow on a BLIF file; the mapped
///                 result goes to -o. Output is bit-identical at every
///                 --window-threads value. A `.blif.gz` archive is inflated
///                 transparently (zlib builds; trailing garbage after the
///                 gzip stream rejects the file). Positional BLIF arguments
///                 accept `.gz` the same way.
///   --window-inputs <n>   per-window external-signal budget (default 12)
///   --window-nodes <n>    per-window logic-node budget (default 64)
///   --window-threads <n>  windows resynthesized concurrently (default 1)
///
/// Batch mode sweeps the whole built-in MCNC-like suite (times the selected
/// systems) in parallel through the runtime scheduler and NPN result cache:
///
///   --batch           run the suite sweep instead of a single circuit
///   --workers <n>     thread-pool size (default: hardware concurrency)
///   --seed <n>        base seed for every job (default 1)
///   --json <file>     write the full RunReport as JSON
///   --csv <file>      write per-job rows as CSV
///   --deterministic-json  strip volatile fields (wall-clock, worker count,
///                     observed cache hits) from the JSON output, leaving the
///                     schedule-independent subset
///   --no-cache        disable the shared NPN decomposition cache
///
/// Persistent cache (all three modes; docs/CACHE.md): a fingerprint-keyed
/// on-disk store (src/store/) layered behind the in-memory NPN cache. Warm
/// runs replay cached decompositions bit-identically, including across
/// separate hyde_cli processes sharing one directory:
///
///   --cache-dir <dir>     attach the on-disk template store rooted at <dir>
///                 (created if missing). In single-circuit and --in modes the
///                 cache is only active when this flag is given.
///   --cache-readonly      consult the store but never write or evict
///   --cache-max-bytes <n> on-disk byte budget enforced at flush by
///                 LRU-by-generation eviction (0 = unlimited)
///
/// `@name` pulls a circuit from the built-in MCNC-like suite (e.g. @9sym).
/// PLA inputs with `-` outputs feed their don't cares into the flow.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "baseline/flows.hpp"
#include "core/flow.hpp"
#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/gzio.hpp"
#include "net/pla.hpp"
#include "runtime/batch.hpp"
#include "runtime/npn_cache.hpp"
#include "store/persistent_cache.hpp"

namespace {

const std::vector<std::pair<std::string, hyde::baseline::System>>&
known_systems() {
  static const std::vector<std::pair<std::string, hyde::baseline::System>> k{
      {"hyde", hyde::baseline::System::kHyde},
      {"imodec", hyde::baseline::System::kImodecLike},
      {"fgsyn", hyde::baseline::System::kFgsynLike},
      {"rk", hyde::baseline::System::kSawadaLike},
      {"rk-resub", hyde::baseline::System::kSawadaResubLike},
  };
  return k;
}

int usage() {
  std::fprintf(stderr,
               "usage: hyde_cli [-k n] [-s hyde|imodec|fgsyn|rk|rk-resub|all] "
               "[-o out.blif] [--pla-out out.pla] [--no-verify] [--profile] "
               "[--search-threads n] [--encoder-threads n] "
               "[--reorder off|sift|auto] [--reorder-max-growth x] "
               "[--manager-pool] [flow knobs] "
               "<circuit.blif|circuit.pla|@benchmark>\n"
               "  flow knobs: [--encoding random|classes|cubes] "
               "[--dc-policy columns|clique] [--no-hyper] "
               "[--group-choice auto|always|never] [--ppi-hard-mu] "
               "[--max-group-size n] [--collapse-support n] [--passes n] "
               "[--cache-max-support n] [--no-search-memo] "
               "[--no-search-pruning] [--no-class-signatures] "
               "[--signature-rows n] [--node-limit n] [--tear-penalty x]\n"
               "       hyde_cli --batch [--circuits a,b,c] [-k n] "
               "[-s system|all] [--workers n] "
               "[--seed n] [--json file] [--csv file] [--deterministic-json] "
               "[--no-cache] [--no-verify] [--profile] [--search-threads n] "
               "[--encoder-threads n] [--reorder off|sift|auto] "
               "[--reorder-max-growth x] [--manager-pool]\n"
               "       hyde_cli --in circuit.blif [-k n] [-s system] "
               "[-o out.blif] [--window-inputs n] [--window-nodes n] "
               "[--window-threads n] [--reorder off|sift|auto] "
               "[--reorder-max-growth x] [--manager-pool] [--read-latches] "
               "[--no-verify] [--profile]\n"
               "  persistent cache (all modes): [--cache-dir dir] "
               "[--cache-readonly] [--cache-max-bytes n]\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads a BLIF model from \p path, transparently inflating `.gz` archives
/// (net/gzio.hpp). Gzip errors — truncation, corruption, trailing garbage —
/// surface as exceptions naming the file, exactly like a missing file.
hyde::net::BlifModel load_blif_model(const std::string& path,
                                     const hyde::net::BlifReadOptions& options) {
  if (hyde::net::is_gzip_name(path)) {
    const std::string text = hyde::net::gunzip_file(path);
    std::istringstream in(text);
    return hyde::net::read_blif_model(in, options);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return hyde::net::read_blif_model(in, options);
}

/// Strict decimal parse: the whole argument must be a number. Guards against
/// `-k banana` silently becoming k=0 through atoi.
bool parse_long(const std::string& arg, long* out) {
  if (arg.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(arg.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

/// Strict decimal parse for floating-point knobs; same contract as
/// parse_long (the whole argument must be a number).
bool parse_double(const std::string& arg, double* out) {
  if (arg.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(arg.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

/// Maps a --reorder argument to the kernel mode; false on unknown names.
bool parse_reorder_mode(const std::string& arg, hyde::bdd::ReorderMode* out) {
  if (arg == "off") {
    *out = hyde::bdd::ReorderMode::kOff;
  } else if (arg == "sift") {
    *out = hyde::bdd::ReorderMode::kSift;
  } else if (arg == "auto") {
    *out = hyde::bdd::ReorderMode::kAuto;
  } else {
    return false;
  }
  return true;
}

/// Maps an --encoding argument to the flow policy; false on unknown names.
bool parse_encoding(const std::string& arg, hyde::core::EncodingPolicy* out) {
  if (arg == "random") {
    *out = hyde::core::EncodingPolicy::kRandom;
  } else if (arg == "classes") {
    *out = hyde::core::EncodingPolicy::kCompatibleClass;
  } else if (arg == "cubes") {
    *out = hyde::core::EncodingPolicy::kCubeCount;
  } else {
    return false;
  }
  return true;
}

/// Maps a --dc-policy argument to the class policy; false on unknown names.
bool parse_dc_policy(const std::string& arg, hyde::decomp::DcPolicy* out) {
  if (arg == "columns") {
    *out = hyde::decomp::DcPolicy::kDistinctColumns;
  } else if (arg == "clique") {
    *out = hyde::decomp::DcPolicy::kCliquePartition;
  } else {
    return false;
  }
  return true;
}

/// Maps a --group-choice argument to the realization rule.
bool parse_group_choice(const std::string& arg, hyde::core::GroupChoice* out) {
  if (arg == "auto") {
    *out = hyde::core::GroupChoice::kAuto;
  } else if (arg == "always") {
    *out = hyde::core::GroupChoice::kAlwaysHyper;
  } else if (arg == "never") {
    *out = hyde::core::GroupChoice::kNeverHyper;
  } else {
    return false;
  }
  return true;
}

/// FlowOptions overrides collected from the flow-shaping flags. Every field
/// starts "unset" so the -s system preset keeps its published defaults
/// unless the user explicitly turned a knob.
struct FlowOverrides {
  bool has_encoding = false;
  hyde::core::EncodingPolicy encoding =
      hyde::core::EncodingPolicy::kCompatibleClass;
  bool has_dc_policy = false;
  hyde::decomp::DcPolicy dc_policy = hyde::decomp::DcPolicy::kCliquePartition;
  bool no_hyper = false;
  bool has_group_choice = false;
  hyde::core::GroupChoice group_choice = hyde::core::GroupChoice::kAuto;
  bool ppi_hard_mu = false;
  int max_group_size = 0;        ///< 0 = unset
  int max_collapse_support = 0;  ///< 0 = unset
  int passes = 0;                ///< 0 = unset
  int cache_max_support = -1;    ///< -1 = unset
  bool no_search_memo = false;
  bool no_search_pruning = false;
  bool no_class_signatures = false;
  int class_signature_rows = 0;  ///< 0 = unset
  bool has_node_limit = false;
  std::size_t bdd_node_limit = 0;
  bool has_tear_penalty = false;
  double tear_penalty_scale = 1.0;

  void apply(hyde::core::FlowOptions* o) const {
    if (has_encoding) o->encoding = encoding;
    if (has_dc_policy) o->dc_policy = dc_policy;
    if (no_hyper) o->use_hyper = false;
    if (has_group_choice) o->group_choice = group_choice;
    if (ppi_hard_mu) o->ppi_hard_mu = true;
    if (max_group_size > 0) o->max_group_size = max_group_size;
    if (max_collapse_support > 0) {
      o->max_collapse_support = max_collapse_support;
    }
    if (passes > 0) o->passes = passes;
    if (cache_max_support >= 0) o->cache_max_support = cache_max_support;
    if (no_search_memo) o->search_memo = false;
    if (no_search_pruning) o->search_pruning = false;
    if (no_class_signatures) o->class_signatures = false;
    if (class_signature_rows > 0) {
      o->class_signature_rows = class_signature_rows;
    }
    if (has_node_limit) o->bdd_node_limit = bdd_node_limit;
    if (has_tear_penalty) o->tear_penalty_scale = tear_penalty_scale;
  }
};

void print_profile(const hyde::core::FlowStats& stats, const char* indent) {
  std::printf(
      "%svarpart %.3fs (selects %llu, evaluated %llu, pruned %llu, "
      "memo hits %llu) | classes %.3fs | encoding %.3fs | mapping %.3fs\n",
      indent, stats.varpart_seconds,
      static_cast<unsigned long long>(stats.search_selects),
      static_cast<unsigned long long>(stats.search_candidates_evaluated),
      static_cast<unsigned long long>(stats.search_candidates_pruned),
      static_cast<unsigned long long>(stats.search_memo_hits),
      stats.classes_seconds, stats.encoding_seconds, stats.mapping_seconds);
}

/// One-line summary of the persistent store's traffic. Printed with a stable
/// shape in every mode that attaches --cache-dir: the cross-process reuse
/// test and the CI cold→warm job grep this line for the disk-hit count.
void print_store_summary(std::uint64_t disk_hits, std::uint64_t disk_misses,
                         std::uint64_t records, std::uint64_t appends,
                         std::uint64_t bytes_read, std::uint64_t bytes_written,
                         double codec_ratio, std::uint64_t evictions,
                         std::uint64_t corrupt_records, bool readonly,
                         std::uint64_t job_hits, std::uint64_t job_appends) {
  std::printf("store: %llu disk hits, %llu disk misses, %llu records "
              "(%llu appended), %llu bytes read, %llu bytes written, "
              "codec ratio %.3f, %llu evictions, %llu corrupt, "
              "%llu job replays (%llu committed)%s\n",
              static_cast<unsigned long long>(disk_hits),
              static_cast<unsigned long long>(disk_misses),
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(appends),
              static_cast<unsigned long long>(bytes_read),
              static_cast<unsigned long long>(bytes_written), codec_ratio,
              static_cast<unsigned long long>(evictions),
              static_cast<unsigned long long>(corrupt_records),
              static_cast<unsigned long long>(job_hits),
              static_cast<unsigned long long>(job_appends),
              readonly ? " (readonly)" : "");
}

int run_batch_mode(const std::string& system_name, int k, int workers,
                   std::uint64_t seed, bool verify, bool use_cache,
                   const std::string& json_path, const std::string& csv_path,
                   bool deterministic_json, bool profile, int search_threads,
                   int encoder_threads, int cache_max_support,
                   bool class_signatures, hyde::bdd::ReorderMode reorder,
                   double reorder_max_growth, bool manager_pool,
                   const std::string& cache_dir, bool cache_readonly,
                   std::uint64_t cache_max_bytes,
                   const std::string& circuits_filter) {
  using namespace hyde;
  std::vector<baseline::System> systems;
  for (const auto& [name, system] : known_systems()) {
    if (system_name == "all" || system_name == name) systems.push_back(system);
  }

  std::vector<std::string> circuits = mcnc::all_circuits();
  if (!circuits_filter.empty()) {
    // --circuits a,b,c: restrict the suite, keeping the given order. Unknown
    // names fail fast instead of silently shrinking the batch.
    circuits.clear();
    std::stringstream stream(circuits_filter);
    std::string name;
    while (std::getline(stream, name, ',')) {
      if (name.empty()) continue;
      const std::vector<std::string> known = mcnc::all_circuits();
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::fprintf(stderr, "error: unknown circuit in --circuits: %s\n",
                     name.c_str());
        return 2;
      }
      circuits.push_back(name);
    }
    if (circuits.empty()) {
      std::fprintf(stderr, "error: --circuits selected no circuits\n");
      return 2;
    }
  }
  const auto jobs = runtime::suite_jobs(circuits, systems, k, seed);
  runtime::BatchOptions options;
  options.workers = workers;
  options.verify_vectors = verify ? 128 : 0;
  options.use_cache = use_cache;
  options.cache_max_support = cache_max_support;
  options.search_threads = search_threads;
  options.encoder_threads = encoder_threads;
  options.class_signatures = class_signatures;
  options.reorder = reorder;
  options.reorder_max_growth = reorder_max_growth;
  options.manager_pool = manager_pool;
  options.cache_dir = cache_dir;
  options.cache_readonly = cache_readonly;
  options.cache_max_bytes = cache_max_bytes;

  std::printf("batch: %zu jobs (%zu circuits x %zu systems), k=%d, "
              "%d workers, cache %s\n",
              jobs.size(), circuits.size(), systems.size(), k, options.workers,
              use_cache ? "on" : "off");
  const runtime::RunReport report = runtime::run_batch(jobs, options);

  std::printf("%-10s %-10s %6s %6s %6s  %s\n", "circuit", "system", "LUTs",
              "CLBs", "depth", verify ? "verified" : "unverified");
  for (const auto& job : report.jobs) {
    if (!job.error.empty()) {
      std::printf("%-10s %-10s  ERROR: %s\n", job.circuit.c_str(),
                  job.system.c_str(), job.error.c_str());
      continue;
    }
    std::printf("%-10s %-10s %6d %6d %6d  %s\n", job.circuit.c_str(),
                job.system.c_str(), job.luts, job.clbs, job.depth,
                !verify           ? "-"
                : job.verified    ? "ok"
                                  : "FAILED");
    if (profile) print_profile(job.stats, "             ");
  }
  if (profile) {
    std::printf("\nsearch engine: %llu selects, %llu candidates evaluated, "
                "%llu pruned, %llu memo hits, %llu memo clears\n",
                static_cast<unsigned long long>(report.search.selects),
                static_cast<unsigned long long>(
                    report.search.candidates_evaluated),
                static_cast<unsigned long long>(
                    report.search.candidates_pruned),
                static_cast<unsigned long long>(report.search.memo_hits),
                static_cast<unsigned long long>(report.search.memo_clears));
  }
  std::printf("\n%zu jobs in %.2fs wall on %d workers\n", report.jobs.size(),
              report.wall_seconds, report.workers);
  std::printf("NPN cache: %llu lookups, %llu unique functions, "
              "%llu hits / %llu misses observed (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(report.cache.flow_lookups),
              static_cast<unsigned long long>(report.cache.unique_functions),
              static_cast<unsigned long long>(report.cache.hits),
              static_cast<unsigned long long>(report.cache.misses),
              100.0 * report.cache.hit_rate());
  if (report.store.enabled) {
    print_store_summary(report.store.disk_hits, report.store.disk_misses,
                        report.store.records, report.store.appends,
                        report.store.bytes_read, report.store.bytes_written,
                        report.store.codec_ratio(), report.store.evictions,
                        report.store.corrupt_records, report.store.readonly,
                        report.store.job_hits, report.store.job_appends);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << runtime::to_json(report, !deterministic_json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << runtime::to_csv(report);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return report.all_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyde;
  int k = 5;
  std::string system_name = "hyde";
  std::string out_blif, out_pla, source, json_path, csv_path;
  bool verify = true;
  bool batch = false;
  bool use_cache = true;
  bool deterministic_json = false;
  bool profile = false;
  int workers = runtime::default_worker_count();
  int search_threads = 1;
  int encoder_threads = 1;
  std::uint64_t seed = 1;
  std::string in_file;
  int window_inputs = 12;
  int window_nodes = 64;
  int window_threads = 1;
  bool read_latches = false;
  bdd::ReorderMode reorder = bdd::ReorderMode::kOff;
  double reorder_max_growth = 2.0;
  bool manager_pool = false;
  std::string cache_dir;
  bool cache_readonly = false;
  std::uint64_t cache_max_bytes = 0;
  std::string batch_circuits;
  FlowOverrides ov;
  // First flow-shaping flag seen; batch mode rejects these (it runs the
  // preset systems as published), so remember the name for the error.
  std::string shape_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 2) {
        std::fprintf(stderr,
                     "error: -k expects an integer >= 2, got '%s'\n", argv[i]);
        return 2;
      }
      if (value < 3 || value > 8) {
        std::fprintf(stderr,
                     "error: -k %ld is outside the supported range 3..8\n",
                     value);
        return 2;
      }
      k = static_cast<int>(value);
    } else if (arg == "-s" && i + 1 < argc) {
      system_name = argv[++i];
      bool known = system_name == "all";
      for (const auto& [name, system] : known_systems()) {
        (void)system;
        known = known || system_name == name;
      }
      if (!known) {
        std::fprintf(stderr,
                     "error: unknown system '%s' for -s; expected one of "
                     "hyde, imodec, fgsyn, rk, rk-resub, all\n",
                     system_name.c_str());
        return 2;
      }
    } else if (arg == "-o" && i + 1 < argc) {
      out_blif = argv[++i];
    } else if (arg == "--pla-out" && i + 1 < argc) {
      out_pla = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 1024) {
        std::fprintf(stderr,
                     "error: --workers expects an integer in 1..1024, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      workers = static_cast<int>(value);
    } else if (arg == "--seed" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 0) {
        std::fprintf(stderr, "error: --seed expects a non-negative integer, "
                             "got '%s'\n",
                     argv[i]);
        return 2;
      }
      seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--search-threads" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 256) {
        std::fprintf(stderr,
                     "error: --search-threads expects an integer in 1..256, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      search_threads = static_cast<int>(value);
    } else if (arg == "--encoder-threads" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 256) {
        std::fprintf(stderr,
                     "error: --encoder-threads expects an integer in 1..256, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      encoder_threads = static_cast<int>(value);
    } else if (arg == "--in" && i + 1 < argc) {
      in_file = argv[++i];
    } else if (arg == "--window-inputs" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 64) {
        std::fprintf(stderr,
                     "error: --window-inputs expects an integer in 1..64, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      window_inputs = static_cast<int>(value);
    } else if (arg == "--window-nodes" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 100000) {
        std::fprintf(stderr,
                     "error: --window-nodes expects an integer in 1..100000, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      window_nodes = static_cast<int>(value);
    } else if (arg == "--window-threads" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 256) {
        std::fprintf(stderr,
                     "error: --window-threads expects an integer in 1..256, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      window_threads = static_cast<int>(value);
    } else if (arg == "--encoding" && i + 1 < argc) {
      if (!parse_encoding(argv[++i], &ov.encoding)) {
        std::fprintf(stderr,
                     "error: --encoding expects random, classes or cubes, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.has_encoding = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--dc-policy" && i + 1 < argc) {
      if (!parse_dc_policy(argv[++i], &ov.dc_policy)) {
        std::fprintf(stderr,
                     "error: --dc-policy expects columns or clique, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.has_dc_policy = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--no-hyper") {
      ov.no_hyper = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--group-choice" && i + 1 < argc) {
      if (!parse_group_choice(argv[++i], &ov.group_choice)) {
        std::fprintf(stderr,
                     "error: --group-choice expects auto, always or never, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.has_group_choice = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--ppi-hard-mu") {
      ov.ppi_hard_mu = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--max-group-size" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 64) {
        std::fprintf(stderr,
                     "error: --max-group-size expects an integer in 1..64, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.max_group_size = static_cast<int>(value);
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--collapse-support" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 64) {
        std::fprintf(stderr,
                     "error: --collapse-support expects an integer in 1..64, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.max_collapse_support = static_cast<int>(value);
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--passes" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 || value > 16) {
        std::fprintf(stderr,
                     "error: --passes expects an integer in 1..16, got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.passes = static_cast<int>(value);
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--cache-max-support" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 0 || value > 32) {
        std::fprintf(stderr,
                     "error: --cache-max-support expects an integer in "
                     "0..32, got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.cache_max_support = static_cast<int>(value);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
      if (cache_dir.empty()) {
        std::fprintf(stderr, "error: --cache-dir expects a directory path\n");
        return 2;
      }
    } else if (arg == "--cache-readonly") {
      cache_readonly = true;
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 0) {
        std::fprintf(stderr,
                     "error: --cache-max-bytes expects a non-negative integer "
                     "(0 = unlimited), got '%s'\n",
                     argv[i]);
        return 2;
      }
      cache_max_bytes = static_cast<std::uint64_t>(value);
    } else if (arg == "--no-search-memo") {
      ov.no_search_memo = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--no-search-pruning") {
      ov.no_search_pruning = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--no-class-signatures") {
      ov.no_class_signatures = true;
    } else if (arg == "--signature-rows" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 1 ||
          value > (1L << 24)) {
        std::fprintf(stderr,
                     "error: --signature-rows expects an integer in "
                     "1..16777216, got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.class_signature_rows = static_cast<int>(value);
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--node-limit" && i + 1 < argc) {
      long value = 0;
      if (!parse_long(argv[++i], &value) || value < 0) {
        std::fprintf(stderr,
                     "error: --node-limit expects a non-negative integer "
                     "(0 = unlimited), got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.bdd_node_limit = static_cast<std::size_t>(value);
      ov.has_node_limit = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--tear-penalty" && i + 1 < argc) {
      double value = 0.0;
      if (!parse_double(argv[++i], &value) || !(value >= 0.0) ||
          !(value <= 1024.0)) {
        std::fprintf(stderr,
                     "error: --tear-penalty expects a number in [0, 1024], "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      ov.tear_penalty_scale = value;
      ov.has_tear_penalty = true;
      if (shape_flag.empty()) shape_flag = arg;
    } else if (arg == "--reorder" && i + 1 < argc) {
      const std::string mode_name = argv[++i];
      if (!parse_reorder_mode(mode_name, &reorder)) {
        std::fprintf(stderr,
                     "error: --reorder expects off, sift or auto, got '%s'\n",
                     mode_name.c_str());
        return 2;
      }
    } else if (arg == "--reorder-max-growth" && i + 1 < argc) {
      double value = 0.0;
      if (!parse_double(argv[++i], &value) || !(value > 1.0) ||
          !(value <= 64.0)) {
        std::fprintf(stderr,
                     "error: --reorder-max-growth expects a number in "
                     "(1.0, 64.0], got '%s'\n",
                     argv[i]);
        return 2;
      }
      reorder_max_growth = value;
    } else if (arg == "--manager-pool") {
      manager_pool = true;
    } else if (arg == "--read-latches") {
      read_latches = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--circuits" && i + 1 < argc) {
      batch_circuits = argv[++i];
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--deterministic-json") {
      deterministic_json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      source = arg;
    }
  }

  if (cache_dir.empty() && (cache_readonly || cache_max_bytes != 0)) {
    std::fprintf(stderr,
                 "error: --cache-readonly and --cache-max-bytes only apply "
                 "to a persistent store; add --cache-dir\n");
    return 2;
  }
  if (!cache_dir.empty() && !use_cache) {
    std::fprintf(stderr,
                 "error: --cache-dir layers the store behind the NPN cache; "
                 "drop --no-cache\n");
    return 2;
  }

  if (!batch_circuits.empty() && !batch) {
    std::fprintf(stderr,
                 "error: --circuits filters the --batch suite; add --batch\n");
    return 2;
  }

  if (batch) {
    if (!source.empty()) {
      std::fprintf(stderr,
                   "error: --batch sweeps the built-in suite; drop the "
                   "circuit argument '%s'\n",
                   source.c_str());
      return 2;
    }
    if (!shape_flag.empty()) {
      std::fprintf(stderr,
                   "error: %s shapes a single flow; --batch runs the preset "
                   "systems as published (only --cache-max-support and "
                   "--no-class-signatures carry over to batch options)\n",
                   shape_flag.c_str());
      return 2;
    }
    return run_batch_mode(system_name, k, workers, seed, verify, use_cache,
                          json_path, csv_path, deterministic_json, profile,
                          search_threads, encoder_threads,
                          ov.cache_max_support >= 0 ? ov.cache_max_support : 7,
                          !ov.no_class_signatures, reorder,
                          reorder_max_growth, manager_pool, cache_dir,
                          cache_readonly, cache_max_bytes, batch_circuits);
  }

  if (!in_file.empty()) {
    if (!source.empty()) {
      std::fprintf(stderr,
                   "error: --in runs the windowed flow; drop the positional "
                   "circuit argument '%s'\n",
                   source.c_str());
      return 2;
    }
    if (system_name == "all") {
      std::fprintf(stderr, "error: --in needs a single system for -s\n");
      return 2;
    }
    baseline::System system = baseline::System::kHyde;
    for (const auto& [name, sys] : known_systems()) {
      if (system_name == name) system = sys;
    }
    net::Network input("empty");
    int latches = 0;
    try {
      net::BlifReadOptions read_options;
      read_options.latch_combinational = read_latches;
      net::BlifModel model = load_blif_model(in_file, read_options);
      input = std::move(model.network);
      latches = model.latches;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading %s: %s\n", in_file.c_str(),
                   e.what());
      return 1;
    }
    std::printf("loaded %s", input.stats().c_str());
    if (latches > 0) std::printf(" (combinational core of %d latches)", latches);
    std::printf("\n");

    part::WindowedFlowOptions options;
    options.flow = baseline::system_flow_options(system, k);
    options.flow.seed = seed;
    options.flow.search_threads = search_threads;
    options.flow.encoder_threads = encoder_threads;
    options.flow.reorder = reorder;
    options.flow.reorder_max_growth = reorder_max_growth;
    ov.apply(&options.flow);
    // One warmed pool shared by all window workers; it must outlive the run,
    // so it lives in this scope rather than inside the windowed engine.
    bdd::ManagerPool window_pool;
    if (manager_pool) options.flow.manager_pool = &window_pool;
    options.window.max_inputs = window_inputs;
    options.window.max_nodes = window_nodes;
    options.threads = window_threads;
    // Attaching a cache is result-affecting versus the historical uncached
    // windowed run (sub-flow seeds derive from cache keys), so the tiered
    // memory+disk cache is opt-in via --cache-dir here.
    runtime::NpnResultCache window_mem_cache;
    std::unique_ptr<store::PersistentStore> window_disk;
    std::unique_ptr<store::TieredCache> window_tiered;
    if (!cache_dir.empty()) {
      window_disk = std::make_unique<store::PersistentStore>(
          store::StoreOptions{cache_dir, cache_readonly, cache_max_bytes});
      window_tiered = std::make_unique<store::TieredCache>(&window_mem_cache,
                                                           window_disk.get());
      options.flow.cache = window_tiered.get();
    }
    const baseline::BaselineResult result =
        baseline::run_windowed_system(input, options, verify ? 256 : 0);
    const core::FlowStats& stats = result.stats;
    std::printf("%-10s %5d LUTs", system_name.c_str(), result.luts);
    if (k == 5 && result.clbs > 0) std::printf("  %5d CLBs", result.clbs);
    std::printf("  depth %2d  %.3fs  %s\n", result.depth, result.seconds,
                !verify           ? "unverified"
                : result.verified ? "verified"
                                  : "VERIFY FAILED");
    std::printf("windows: %d extracted (peak %d inputs, %d nodes), "
                "%d resynthesized, %d pass-through, %d budget fallbacks, "
                "%d split, %d local verify failures\n",
                stats.windows_extracted, stats.window_peak_inputs,
                stats.window_peak_nodes, stats.windows_resynthesized,
                stats.windows_passthrough, stats.windows_budget_fallbacks,
                stats.windows_split, stats.windows_verify_failures);
    if (stats.window_workers > 0) {
      std::printf("scheduling: %d workers, %d snapshots materialized on "
                  "workers, %llu steals, busy %.3fs total / %.3fs peak\n",
                  stats.window_workers, stats.windows_extract_parallel,
                  static_cast<unsigned long long>(stats.window_steals),
                  stats.window_worker_busy_seconds,
                  stats.window_worker_busy_peak_seconds);
    }
    if (stats.window_max_index >= 0) {
      std::printf("slowest window: #%d at %.3fs\n", stats.window_max_index,
                  stats.window_max_seconds);
    }
    if (window_disk != nullptr) {
      window_disk->flush();
      const store::StoreCounters sc = window_disk->counters();
      print_store_summary(sc.disk_hits, sc.disk_misses, sc.records, sc.appends,
                          sc.bytes_read, sc.bytes_written, sc.codec_ratio(),
                          sc.evictions, sc.corrupt_records, cache_readonly,
                          sc.job_hits, sc.job_appends);
    }
    if (profile) {
      print_profile(stats, "  ");
      std::printf("  extract %.3fs | stitch %.3fs\n",
                  stats.window_extract_seconds, stats.window_stitch_seconds);
    }
    if (!out_blif.empty()) {
      std::ofstream out(out_blif);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", out_blif.c_str());
        return 1;
      }
      net::write_blif(result.network, out);
      std::printf("wrote %s\n", out_blif.c_str());
    }
    if (!out_pla.empty()) {
      std::ofstream out(out_pla);
      net::write_pla(result.network, out);
      std::printf("wrote %s\n", out_pla.c_str());
    }
    return (verify && !result.verified) ? 1 : 0;
  }

  if (source.empty()) return usage();

  // Load the circuit (and possible external don't cares).
  net::Network input("empty");
  net::Network dc("empty_dc");
  bool has_dc = false;
  try {
    if (source[0] == '@') {
      input = mcnc::make_circuit(source.substr(1));
    } else if (ends_with(source, ".pla")) {
      std::ifstream in(source);
      if (!in) throw std::runtime_error("cannot open " + source);
      net::PlaModel model = net::read_pla(in, source);
      input = std::move(model.onset);
      dc = std::move(model.dont_care);
      has_dc = model.has_dont_cares;
    } else {
      net::BlifReadOptions read_options;
      read_options.latch_combinational = read_latches;
      net::BlifModel model = load_blif_model(source, read_options);
      input = std::move(model.network);
      dc = std::move(model.dont_care);
      has_dc = model.has_dont_cares;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading %s: %s\n", source.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %s%s\n", input.stats().c_str(),
              has_dc ? " (+ external don't cares)" : "");

  net::Network best_network("none");
  int best_luts = -1;
  // Shared across the per-system runs below so a manager warmed by one
  // system seeds the next; only handed out when --manager-pool was given.
  bdd::ManagerPool single_run_pool;
  // Opt-in persistent cache, shared by every -s system run: the FlowOptions
  // fingerprint inside each cache key keeps entries from different systems
  // apart, exactly as in batch mode.
  runtime::NpnResultCache single_mem_cache;
  std::unique_ptr<store::PersistentStore> single_disk;
  std::unique_ptr<store::TieredCache> single_tiered;
  if (!cache_dir.empty()) {
    single_disk = std::make_unique<store::PersistentStore>(
        store::StoreOptions{cache_dir, cache_readonly, cache_max_bytes});
    single_tiered = std::make_unique<store::TieredCache>(&single_mem_cache,
                                                         single_disk.get());
  }
  for (const auto& [name, system] : known_systems()) {
    if (system_name != "all" && system_name != name) continue;
    // For DC-aware runs use the core flow directly (baseline::run_system
    // does not thread external don't cares).
    if (has_dc && system == baseline::System::kHyde) {
      core::FlowOptions dc_flow_options = core::hyde_options(k);
      ov.apply(&dc_flow_options);
      if (single_tiered != nullptr) dc_flow_options.cache = single_tiered.get();
      auto flow = core::run_flow(input, dc_flow_options, &dc);
      mapper::dedup_shared_nodes(flow.network);
      mapper::collapse_into_fanouts(flow.network, k);
      const int luts = mapper::lut_count(flow.network);
      std::printf("%-10s %5d LUTs  depth %2d  (with external DCs; "
                  "equivalence holds on the care set only)\n",
                  name.c_str(), luts, mapper::network_depth(flow.network));
      if (best_luts < 0 || luts < best_luts) {
        best_luts = luts;
        best_network = std::move(flow.network);
      }
      continue;
    }
    core::FlowOptions flow_options = baseline::system_flow_options(system, k);
    flow_options.search_threads = search_threads;
    flow_options.encoder_threads = encoder_threads;
    flow_options.reorder = reorder;
    flow_options.reorder_max_growth = reorder_max_growth;
    flow_options.manager_pool = manager_pool ? &single_run_pool : nullptr;
    ov.apply(&flow_options);
    if (single_tiered != nullptr) flow_options.cache = single_tiered.get();
    auto result =
        baseline::run_system(input, system, flow_options, verify ? 256 : 0);
    std::printf("%-10s %5d LUTs", name.c_str(), result.luts);
    if (k == 5) std::printf("  %5d CLBs", result.clbs);
    std::printf("  depth %2d  %.3fs  %s\n", result.depth, result.seconds,
                !verify          ? "unverified"
                : result.verified ? "verified"
                                  : "VERIFY FAILED");
    if (profile) print_profile(result.stats, "  ");
    if (verify && !result.verified) return 1;
    if (best_luts < 0 || result.luts < best_luts) {
      best_luts = result.luts;
      best_network = std::move(result.network);
    }
  }
  if (single_disk != nullptr) {
    single_disk->flush();
    const store::StoreCounters sc = single_disk->counters();
    print_store_summary(sc.disk_hits, sc.disk_misses, sc.records, sc.appends,
                        sc.bytes_read, sc.bytes_written, sc.codec_ratio(),
                        sc.evictions, sc.corrupt_records, cache_readonly,
                        sc.job_hits, sc.job_appends);
  }
  if (best_luts < 0) return usage();

  if (!out_blif.empty()) {
    std::ofstream out(out_blif);
    net::write_blif(best_network, out);
    std::printf("wrote %s\n", out_blif.c_str());
  }
  if (!out_pla.empty()) {
    std::ofstream out(out_pla);
    net::write_pla(best_network, out);
    std::printf("wrote %s\n", out_pla.c_str());
  }
  return 0;
}
