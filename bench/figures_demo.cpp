/// Regenerates the data behind the paper's worked figures.
///
///  §fig1/2  Example 3.1: a function with 3 compatible classes whose class
///           encoding changes the class count of the image's next
///           decomposition (Figure 2's 4-vs-3 spread).
///  §fig4-7  Example 3.2: the ten literal partitions Π0..Π9 driven through
///           Steps 5-7 (Psc table, column graph matching, row merging, final
///           4x4 chart and codes).
///  §fig8/9  Example 4.1: a four-ingredient hyper-function, its duplication
///           source/cone/DSet_m analysis and the recovered network.
///  §fig10   Example 4.2: containment (Definition 4.6) makes a pliable
///           encoding share all three decomposition functions.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/encoder.hpp"
#include "core/flow.hpp"
#include "core/hyper.hpp"
#include "mapper/lutmap.hpp"
#include "tt/truth_table.hpp"

namespace {

using namespace hyde;
using bdd::Bdd;
using bdd::Manager;
using decomp::IsfBdd;
using decomp::Partition;

void figure_1_and_2() {
  std::printf("== Figures 1-2 (Example 3.1): encoding changes the image's "
              "class count ==\n");
  Manager mgr(16);
  // f(a,b,c,x,y,z): vars 0,1,2 bound; 3,4,5 free. Three compatible classes
  // with class functions fc0 = x&y, fc1 = x^y^z, fc2 = z.
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const Bdd x = mgr.var(3), y = mgr.var(4), z = mgr.var(5);
  const Bdd fc0 = x & y;
  const Bdd fc1 = x ^ y ^ z;
  const Bdd fc2 = z;
  // Class regions over (a,b,c): {000,001}, {01-,10-}, {11-}.
  const Bdd r0 = ~a & ~b;
  const Bdd r1 = (a ^ b);
  const Bdd r2 = a & b;
  const Bdd f = (r0 & fc0) | (r1 & fc1) | (r2 & fc2);
  (void)c;

  decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = IsfBdd{f, mgr.zero()};
  spec.bound = {0, 1, 2};
  spec.free = {3, 4, 5};
  const auto classes = decomp::compute_compatible_classes(spec);
  std::printf("  compatible classes with lambda={a,b,c}: %d (paper: 3)\n",
              classes.num_classes());

  // Enumerate every strict encoding into 2 bits and count the classes of
  // g(alpha0, alpha1, x, y, z) with lambda' = {alpha0, x, y}.
  const std::vector<int> alpha_vars{8, 9};
  std::vector<int> counts;
  std::vector<std::uint32_t> codes{0, 1, 2, 3};
  std::sort(codes.begin(), codes.end());
  int best = 1 << 20, worst = 0;
  do {
    decomp::Encoding enc;
    enc.num_bits = 2;
    enc.codes = {codes[0], codes[1], codes[2]};
    const auto step = decomp::build_step(mgr, classes, spec.bound, spec.free,
                                         enc, alpha_vars);
    decomp::DecompSpec next;
    next.mgr = &mgr;
    next.f = step.image;
    next.bound = {8, 3, 4};  // {alpha0, x, y}
    next.free = {9, 5};      // {alpha1, z}
    const int count = decomp::count_compatible_classes(next);
    best = std::min(best, count);
    worst = std::max(worst, count);
  } while (std::next_permutation(codes.begin(), codes.end()));
  std::printf("  over all strict encodings, image classes range %d..%d "
              "(paper's Figure 2 shows a 3-vs-4 spread)\n", best, worst);

  core::EncoderOptions options;
  options.k = 4;
  const auto choice =
      core::encode_classes(mgr, classes, spec.free, alpha_vars, options);
  if (choice.trace.chosen_image_classes >= 0) {
    std::printf("  the Figure-3 encoder achieves %d classes (random draw: %d)\n\n",
                choice.trace.used_random ? choice.trace.random_image_classes
                                         : choice.trace.chosen_image_classes,
                choice.trace.random_image_classes);
  } else {
    std::printf("  encoder exit: %s\n\n",
                choice.trace.trivially_feasible ? "image already k-feasible"
                                                : "theorem 3.1 (encoding moot)");
  }
}

void print_sets(const char* label, const std::vector<std::vector<int>>& sets) {
  std::printf("  %s:", label);
  for (const auto& s : sets) {
    std::printf(" {");
    for (std::size_t i = 0; i < s.size(); ++i) {
      std::printf("%sP%d", i ? "," : "", s[i]);
    }
    std::printf("}");
  }
  std::printf("\n");
}

void figures_4_to_7() {
  std::printf("== Figures 4-7 (Example 3.2): ten partitions into a 4x4 chart ==\n");
  const std::vector<Partition> partitions = {
      {{0, 1, 2, 3}}, {{0, 2, 1, 3}}, {{3, 0, 1, 3}}, {{2, 1, 0, 1}},
      {{0, 1, 3, 1}}, {{0, 1, 0, 2}}, {{1, 0, 0, 0}}, {{1, 1, 2, 1}},
      {{1, 2, 1, 2}}, {{3, 2, 1, 0}}};
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    std::printf("  P%zu = %s\n", i, partitions[i].to_string().c_str());
  }
  const auto assembly = core::assemble_chart(partitions, 4, 4);
  std::printf("  Figure 4(b) Psc table:\n");
  for (const auto& rec : assembly.psc_table) {
    std::printf("    positions {");
    for (std::size_t i = 0; i < rec.positions.size(); ++i) {
      std::printf("%sp%d", i ? "," : "", rec.positions[i]);
    }
    std::printf("} <- partitions {");
    for (std::size_t i = 0; i < rec.partitions.size(); ++i) {
      std::printf("%sP%d", i ? "," : "", rec.partitions[i]);
    }
    std::printf("}\n");
  }
  print_sets("Figure 5 column sets (Step 5)", assembly.column_sets);
  std::printf("    (the paper's {P3,P4,P6,P8}/{P2,P7} grouping and ours are "
              "both weight-40 optima of Gc)\n");
  print_sets("Figure 7(a) final row sets", assembly.row_sets);
  print_sets("Figure 7(a) final column sets", assembly.final_column_sets);
  std::printf("  Figure 7(b) chart cells (partition -> row,col):\n   ");
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    std::printf(" P%zu=(%d,%d)", i, assembly.row_of[i], assembly.col_of[i]);
  }
  std::printf("\n  Step-7 iterations: %d\n\n", assembly.iterations);
}

void figures_8_and_9() {
  std::printf("== Figures 8-9 (Example 4.1): hyper-function duplication and "
              "recovery ==\n");
  // Four ingredients with the paper's supports: f0 over i0..i5,i7,i8;
  // f1 over i0..i6; f2, f3 over i0..i5.
  Manager mgr(16);
  std::vector<Bdd> in;
  for (int i = 0; i < 9; ++i) in.push_back(mgr.var(i));
  const std::vector<IsfBdd> ingredients{
      IsfBdd{(in[0] & in[1]) ^ (in[2] | (in[3] & in[4] & in[5])) ^
                 (in[7] & in[8]),
             mgr.zero()},
      IsfBdd{(in[0] | in[1]) & (in[2] ^ in[3]) & (in[4] | in[5] | in[6]),
             mgr.zero()},
      IsfBdd{(in[0] & in[1] & in[2]) | (in[3] & in[4] & in[5]), mgr.zero()},
      IsfBdd{in[0] ^ in[1] ^ in[2] ^ in[3] ^ in[4] ^ in[5], mgr.zero()}};

  net::Network netw("example41");
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 9; ++i) {
    pis.push_back(netw.add_input("i" + std::to_string(i)));
  }
  // Realize each ingredient as one wide node, then run the HYDE flow with
  // forced hyper-grouping so the four outputs merge.
  std::vector<int> vars{0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t i = 0; i < ingredients.size(); ++i) {
    const auto table = mgr.to_truth_table(ingredients[i].on, vars);
    netw.add_output("f" + std::to_string(i),
                    netw.add_logic_tt("f" + std::to_string(i), pis, table));
  }
  core::FlowOptions options = core::hyde_options(5);
  options.group_choice = core::GroupChoice::kAlwaysHyper;
  options.max_group_size = 4;
  const auto result = core::run_flow(netw, options);
  std::printf("  ingredients: 4, pseudo primary inputs: 2 (codes 00,10,01,11)\n");
  std::printf("  decomposed network: %d LUTs (k=5), depth %d, hyper groups %d\n",
              result.network.num_logic_nodes(),
              mapper::network_depth(result.network), result.stats.hyper_groups);

  // Report the ingredient coding of a directly constructed hyper-function.
  {
    std::vector<int> ppi_vars{12, 13};
    core::EncoderOptions enc_options;
    enc_options.k = 5;
    const auto hyper = core::build_hyper_function(mgr, ingredients, vars,
                                                  ppi_vars, enc_options);
    std::printf("  ingredient codes:");
    for (std::size_t i = 0; i < hyper.codes.codes.size(); ++i) {
      std::printf(" f%zu=%u%u", i, hyper.codes.codes[i] & 1,
                  (hyper.codes.codes[i] >> 1) & 1);
    }
    std::printf("  (Figure 8(a) assigns 00/10/01/11)\n");
  }
  std::printf("  after recovery all PPIs are collapsed: %zu PIs remain "
              "(Figure 9(b))\n\n", result.network.inputs().size());
}

void figure_10() {
  std::printf("== Figure 10 (Example 4.2): containment enables pliable "
              "sharing ==\n");
  const Partition p0{{0, 0, 1, 0, 1, 2, 2, 0, 3, 2, 0, 0, 0, 0, 0, 2}};
  const Partition p1{{0, 1, 2, 0, 2, 3, 3, 2, 4, 3, 0, 2, 1, 5, 1, 3}};
  const Partition p2{{0, 1, 1, 0, 1, 2, 2, 3, 3, 2, 0, 3, 1, 4, 5, 2}};
  const Partition pc12 = decomp::conjunction({p1, p2});
  const Partition pc012 = decomp::conjunction({p0, p1, p2});
  std::printf("  multiplicities: P0=%d P1=%d P2=%d Pc{P1,P2}=%d Pc{P0,P1,P2}=%d\n",
              p0.multiplicity(), p1.multiplicity(), p2.multiplicity(),
              pc12.multiplicity(), pc012.multiplicity());
  std::printf("  P0 contained by Pc{P1,P2}: %s (Definition 4.6)\n",
              decomp::contained_in(p0, pc12) ? "yes" : "no");
  // Pliable sharing: ceil(log2 8) = 3 alpha functions serve all three
  // functions; rigid per-function encoding needs 2 (f0) + 3 (f1) + 3 (f2)
  // with at most the f1/f2 pair shared -> 2 extra LUTs (Figure 10(b)).
  const int shared = 3;
  const int rigid_f0 = 2;
  std::printf("  pliable encoding: %d shared decomposition functions\n", shared);
  std::printf("  rigid encoding: %d extra LUTs for f0's own alphas "
              "(paper: 'two more LUTs')\n\n", rigid_f0);
}

}  // namespace

int main() {
  figure_1_and_2();
  figures_4_to_7();
  figures_8_and_9();
  figure_10();
  std::printf("figures_demo: done\n");
  return 0;
}
