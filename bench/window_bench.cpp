/// \file window_bench.cpp
/// \brief Windowed-flow benchmark: the memory-governance and determinism
/// proof for the part/ subsystem, emitting JSON rows for BENCH_window.json.
///
/// Three netlists (the two committed tests/data fixtures regenerated
/// in-process, plus a ~19k-node tiled netlist no fixture could reasonably
/// hold) run under every engine configuration:
///
///  - `*_t1/_t2/_t4`: the windowed flow at 1/2/4 worker threads. The engine
///    contract is bit-identical output at every thread count, so the three
///    rows of one base name must share a checksum — the harness verifies
///    this itself and fails (exit 1) on any mismatch, making a committed
///    BENCH_window.json a determinism proof for the machine that produced
///    it.
///  - `*reorder_t1/_t2/_t4`: the same windowed flow with auto variable
///    reordering and the warmed manager pool enabled inside every window
///    (docs/REORDER.md). Same thread-identity contract; reordering must
///    never map fewer windows than the identity order.
///  - `scalestress*`: the large netlist again (one row per configuration,
///    at 4 threads), with window caps wide enough that its order-adversarial
///    cones (make_scale) stay whole. Identity order must blow the 2^17
///    budget on those windows (split fallbacks); the reorder row must map
///    strictly more windows — fewer pass-throughs + splits — under the very
///    same budget. This is the reorder payoff gate.
///  - `*whole_gov/_free`: the whole-network flow under the same per-manager
///    BDD node budget the windowed engine gives each window, and unbounded.
///    On the fixture-sized netlists both complete with identical networks
///    (the budget knob is result-neutral when the flow fits), so they share
///    a base name too.  On the large netlist the governed run MUST throw —
///    one global manager cannot hold a 19k-node netlist inside a budget any
///    single window sits far below — and the harness fails if it completes,
///    making the committed JSON a memory-governance proof as well.
///
/// Scaling gates: resynthesis is shared-nothing end to end (snapshot
/// extraction, no host lock), so the thread sweep doubles as a speedup
/// claim — `scale` must run >= 2.5x faster at t4 than t1, and the
/// fixture-sized sweeps must at least break even. Each gate arms only when
/// `std::thread::hardware_concurrency()` provides enough CPUs to make the
/// claim falsifiable; on a smaller host it records itself as "skipped" in
/// the JSON (with the observed ratio) rather than passing or failing on
/// noise. The committed BENCH_window.json therefore states the machine's
/// CPU count alongside every gate verdict.
///
/// Protocol:
///
///     window_bench --label=windowed --out=BENCH_window.json   (full run)
///     window_bench --quick                                    (CI smoke)
///
/// --quick drops the large netlist and runs the fixture-sized workloads
/// only; the thread-identity, budget-neutrality and fixture-scaling gates
/// still apply.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/flows.hpp"
#include "bdd/pool.hpp"
#include "tt/truth_table.hpp"
#include "mapper/lutmap.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/verify.hpp"
#include "part/windowed.hpp"

namespace {

using hyde::core::FlowOptions;
using hyde::net::Network;
using hyde::part::WindowedFlowOptions;

/// The per-manager BDD node budget shared by every configuration: each
/// window's flow runs under it, and the `whole_gov` rows give the
/// whole-network flow the very same cap.  Chosen with ~6x headroom over the
/// largest per-window peak yet a factor of two below what the whole-network
/// path needs on the large netlist.
constexpr std::size_t kBudget = std::size_t{1} << 17;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFull;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

struct WorkloadResult {
  std::string name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< schedule-independent functional invariant
  bool completed = true;       ///< false: blew the budget (expected for gov)
  int luts = 0;
  /// Windows the engine could not map under the budget (pass-throughs plus
  /// splits); the reorder gate compares this between the off and reorder
  /// configurations of the scale netlist.
  std::uint64_t unmapped = 0;
  // Scheduling telemetry (volatile, never folded into the checksum).
  std::uint64_t steals = 0;
  double max_window_seconds = 0.0;  ///< slowest single window wall clock
  int max_window_index = -1;        ///< extraction index of that window
};

/// One self-gated scaling claim. Speedup gates arm only when the machine has
/// enough CPUs to make the claim falsifiable — a single-core host cannot
/// demonstrate (or refute) a multi-thread win, so the gate records itself as
/// skipped instead of rubber-stamping noise either way.
struct GateResult {
  std::string name;
  double required = 0.0;  ///< minimum t1/t4 speedup the claim demands
  double observed = 0.0;
  unsigned cpus_needed = 0;
  bool armed = false;  ///< hardware_concurrency() >= cpus_needed
  bool pass = true;    ///< vacuously true when not armed
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The two committed tests/data fixtures, regenerated bit-for-bit (the
/// generators are pure functions of their arguments — see tests/data/README).
Network make_mid() {
  return hyde::mcnc::random_multilevel("win_mid", 32, 8, 700, 2, 9, 5);
}
Network make_wide() {
  return hyde::mcnc::random_multilevel("win_wide", 40, 10, 1500, 3, 10, 9);
}

/// Pairs per order-adversarial cone (see add_adversarial_cone).
constexpr int kConePairs = 15;
/// Cones appended to the scale netlist by make_scale.
constexpr int kConeCount = 6;
/// Window caps for the `scalestress*` rows: wide enough that extraction
/// keeps a whole adversarial cone (2*kConePairs boundary inputs) in one
/// window, so the per-window manager actually faces the bad identity order.
constexpr int kStressInputs = 2 * kConePairs + 2;
constexpr int kStressNodes = 96;

/// Appends one order-sensitive cone to \p out: two outputs over shared
/// inputs x1..xn, y1..yn,
///
///     f = (x1 & ... & xn) | OR_i (xi & yi)
///     g = OR_i (xi & y_{i+1 mod n})
///
/// built entirely from 2-input nodes as *linear* chains — one apply per
/// network node, which is exactly the granularity at which the manager's
/// governance ladder gets to run (operation entry points).  The leading
/// all-x AND *spine* makes every x the first-referenced fanin of the cone,
/// so a window cloning it registers its boundary inputs as x1..xn, y1..yn —
/// the order under which either disjoint quadratic form needs ~2^n BDD
/// nodes.  Any interleaved order (xi adjacent to its partners) is linear,
/// which is what converging sifting finds: under the 2^17 per-window budget
/// the identity order must blow the window while auto reordering maps it.
void add_adversarial_cone(Network& out, int index) {
  namespace htt = hyde::tt;
  const std::string p = "adv" + std::to_string(index) + "_";
  const int n = kConePairs;
  std::vector<hyde::net::NodeId> xs(n);
  std::vector<hyde::net::NodeId> ys(n);
  for (int i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = out.add_input(p + "x" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    ys[static_cast<std::size_t>(i)] = out.add_input(p + "y" + std::to_string(i));
  }
  const htt::TruthTable and2 =
      htt::TruthTable::var(2, 0) & htt::TruthTable::var(2, 1);
  const htt::TruthTable or2 =
      htt::TruthTable::var(2, 0) | htt::TruthTable::var(2, 1);
  // The spine: AND of all x's as a 2-input chain. A depth-first window clone
  // dives here before touching any product, so the x block registers first.
  hyde::net::NodeId spine = xs[0];
  for (int i = 1; i < n; ++i) {
    spine = out.add_logic_tt(p + "s" + std::to_string(i),
                             {spine, xs[static_cast<std::size_t>(i)]}, and2);
  }
  hyde::net::NodeId acc = spine;
  for (int i = 0; i < n; ++i) {
    const hyde::net::NodeId prod = out.add_logic_tt(
        p + "fp" + std::to_string(i),
        {xs[static_cast<std::size_t>(i)], ys[static_cast<std::size_t>(i)]},
        and2);
    acc = out.add_logic_tt(p + "fo" + std::to_string(i), {acc, prod}, or2);
  }
  out.add_output(p + "f", acc);
  // g chain: same inputs, shifted pairing. Its own identity order is equally
  // bad, and both chains are linear under any interleaved order, so one
  // sifted order serves the whole window.
  hyde::net::NodeId gcc = hyde::net::kNoNode;
  for (int i = 0; i < n; ++i) {
    const hyde::net::NodeId prod = out.add_logic_tt(
        p + "gp" + std::to_string(i),
        {xs[static_cast<std::size_t>(i)],
         ys[static_cast<std::size_t>((i + 1) % n)]},
        and2);
    gcc = (i == 0) ? prod
                   : out.add_logic_tt(p + "go" + std::to_string(i),
                                      {gcc, prod}, or2);
  }
  out.add_output(p + "g", gcc);
}

/// Large workload: two independently seeded multilevel DAGs tiled side by
/// side into one ~19k-node netlist (random_multilevel's live cone saturates
/// around 6k nodes, so scale comes from tiling), plus a handful of
/// order-adversarial cones (add_adversarial_cone) whose windows are
/// unmappable under the identity variable order but trivial after sifting.
/// Deterministic.
Network make_scale() {
  Network out("scale");
  for (int c = 0; c < 2; ++c) {
    const Network tile = hyde::mcnc::random_multilevel(
        "scale_tile", 64, 16, 40000, 3, 9, 21 + static_cast<std::uint64_t>(c));
    std::unordered_map<hyde::net::NodeId, hyde::net::NodeId> map;
    const std::string prefix = "t" + std::to_string(c) + "_";
    for (hyde::net::NodeId id : tile.topo_order()) {
      const hyde::net::Node& n = tile.node(id);
      if (n.kind == hyde::net::NodeKind::kInput) {
        map[id] = out.add_input(prefix + n.name);
        continue;
      }
      std::vector<hyde::net::NodeId> fanins;
      fanins.reserve(n.fanins.size());
      for (hyde::net::NodeId f : n.fanins) fanins.push_back(map.at(f));
      map[id] = out.add_logic_tt(prefix + n.name, fanins, tile.local_tt(id));
    }
    for (const hyde::net::Output& po : tile.outputs()) {
      out.add_output(prefix + po.name, map.at(po.driver));
    }
  }
  for (int c = 0; c < kConeCount; ++c) add_adversarial_cone(out, c);
  return out;
}

FlowOptions hyde_flow_options() {
  return hyde::baseline::system_flow_options(hyde::baseline::System::kHyde, 5);
}

/// Windowed flow at \p threads workers; checksum mixes the stitched BLIF
/// text with every windows_* counter, so the thread sweep proves both the
/// network and the bookkeeping are schedule-independent.
WorkloadResult bench_windowed(const std::string& base, const Network& input,
                              int threads, bool reorder = false,
                              int max_inputs = 0, int max_nodes = 0) {
  WindowedFlowOptions options;
  options.flow = hyde_flow_options();
  options.threads = threads;
  options.window_bdd_budget = kBudget;
  if (max_inputs > 0) {
    options.window.max_inputs = max_inputs;
    // Widened windows only exercise the reorder-sensitive path if the
    // per-window flow still collapses the whole window into one global
    // function; lift the collapse ceiling to match the window cap.
    options.flow.max_collapse_support =
        std::max(options.flow.max_collapse_support, max_inputs);
  }
  if (max_nodes > 0) options.window.max_nodes = max_nodes;
  hyde::bdd::ManagerPool pool;
  if (reorder) {
    // The governance configuration under test: auto sifting inside every
    // window manager plus warmed-manager recycling across windows. Both are
    // deterministic, so the t1/t2/t4 checksum gate applies unchanged.
    options.flow.reorder = hyde::bdd::ReorderMode::kAuto;
    options.flow.manager_pool = &pool;
  }

  WorkloadResult result;
  result.name = base + "_t" + std::to_string(threads);
  const auto start = std::chrono::steady_clock::now();
  const hyde::part::WindowedFlowResult flow =
      hyde::part::run_windowed_flow(input, options);
  result.seconds = seconds_since(start);

  std::uint64_t checksum = fnv1a_string(0xCBF29CE484222325ull,
                                        hyde::net::write_blif_string(flow.network));
  checksum = fnv1a(checksum, static_cast<std::uint64_t>(flow.stats.windows_extracted));
  checksum = fnv1a(checksum, flow.stats.windows_resynthesized);
  checksum = fnv1a(checksum, flow.stats.windows_passthrough);
  checksum = fnv1a(checksum, flow.stats.windows_budget_fallbacks);
  checksum = fnv1a(checksum, flow.stats.windows_split);
  checksum = fnv1a(checksum, flow.stats.windows_verify_failures);
  result.checksum = checksum;
  result.luts = hyde::mapper::lut_count(flow.network);
  result.unmapped =
      static_cast<std::uint64_t>(flow.stats.windows_passthrough) +
      static_cast<std::uint64_t>(flow.stats.windows_split);
  result.steals = flow.stats.window_steals;
  result.max_window_seconds = flow.stats.window_max_seconds;
  result.max_window_index = flow.stats.window_max_index;
  std::fprintf(stderr,
               "window_bench: %s extracted=%d resynth=%d passthrough=%d "
               "fallbacks=%d split=%d reorders=%llu steals=%llu "
               "extract_par=%d maxwin=%.3fs@%d\n",
               result.name.c_str(), flow.stats.windows_extracted,
               flow.stats.windows_resynthesized, flow.stats.windows_passthrough,
               flow.stats.windows_budget_fallbacks, flow.stats.windows_split,
               static_cast<unsigned long long>(flow.stats.bdd_reorder_runs),
               static_cast<unsigned long long>(flow.stats.window_steals),
               flow.stats.windows_extract_parallel,
               flow.stats.window_max_seconds, flow.stats.window_max_index);

  if (flow.stats.windows_verify_failures != 0) {
    std::fprintf(stderr, "window_bench: %s had window verify failures\n",
                 result.name.c_str());
    std::exit(1);
  }
  if (!flow.network.is_k_feasible(options.flow.k)) {
    std::fprintf(stderr, "window_bench: %s result is not k-feasible\n",
                 result.name.c_str());
    std::exit(1);
  }
  if (threads == 1 &&
      !hyde::net::check_equivalence(input, flow.network).equivalent) {
    std::fprintf(stderr, "window_bench: %s result is not equivalent\n",
                 result.name.c_str());
    std::exit(1);
  }
  return result;
}

/// Whole-network flow; \p budget 0 = unbounded.  A std::length_error is the
/// expected outcome for the governed run on the large netlist and is
/// recorded, not fatal (the caller asserts which way it must go).
WorkloadResult bench_whole(const std::string& name, const Network& input,
                           std::size_t budget) {
  FlowOptions options = hyde_flow_options();
  options.bdd_node_limit = budget;

  WorkloadResult result;
  result.name = name;
  const auto start = std::chrono::steady_clock::now();
  try {
    const hyde::core::FlowResult flow = hyde::core::run_flow(input, options);
    result.seconds = seconds_since(start);
    result.checksum = fnv1a_string(0xCBF29CE484222325ull,
                                   hyde::net::write_blif_string(flow.network));
    result.luts = hyde::mapper::lut_count(flow.network);
  } catch (const std::length_error&) {
    result.seconds = seconds_since(start);
    result.completed = false;
    result.checksum = fnv1a_string(0xCBF29CE484222325ull, "did-not-complete");
  }
  return result;
}

void append_json(std::string& out, const WorkloadResult& r, bool last) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu, "
                "\"completed\": %s, \"luts\": %d, \"unmapped\": %llu, "
                "\"steals\": %llu, \"max_window_seconds\": %.6f, "
                "\"max_window_index\": %d}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum),
                r.completed ? "true" : "false", r.luts,
                static_cast<unsigned long long>(r.unmapped),
                static_cast<unsigned long long>(r.steals),
                r.max_window_seconds, r.max_window_index, last ? "" : ",");
  out += buf;
}

void append_gate_json(std::string& out, const GateResult& g, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"required_speedup\": %.2f, "
                "\"observed_speedup\": %.3f, \"cpus_needed\": %u, "
                "\"status\": \"%s\"}%s\n",
                g.name.c_str(), g.required, g.observed, g.cpus_needed,
                g.armed ? (g.pass ? "pass" : "fail") : "skipped",
                last ? "" : ",");
  out += buf;
}

/// Workloads with the same base name must agree on the checksum across every
/// configuration; returns false (and reports) on any divergence.
bool checksums_agree(const std::vector<WorkloadResult>& results) {
  std::map<std::string, std::uint64_t> expected;
  bool ok = true;
  for (const auto& r : results) {
    const std::size_t cut = r.name.rfind('_');
    const std::string base = r.name.substr(0, cut);
    const auto [it, inserted] = expected.emplace(base, r.checksum);
    if (!inserted && it->second != r.checksum) {
      std::fprintf(stderr,
                   "window_bench: checksum mismatch for %s (%llu != %llu)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(it->second));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "windowed";
  std::string out_path;
  bool quick = false;
  bool probe = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--probe") {
      probe = true;
    } else {
      std::fprintf(stderr,
                   "usage: window_bench [--label=NAME] [--out=FILE] [--quick] "
                   "[--probe]\n");
      return 2;
    }
  }

  if (probe) {
    const Network input = make_scale();
    std::fprintf(stderr, "probe: scale netlist has %d logic nodes\n",
                 input.num_logic_nodes());
    const std::pair<int, int> sizes[] = {{0, 0},
                                         {kStressInputs, kStressNodes}};
    for (const auto& [mi, mn] : sizes) {
      for (const bool ro : {false, true}) {
        char name[64];
        std::snprintf(name, sizeof(name), "probe_i%d_n%d_%s", mi, mn,
                      ro ? "reorder" : "off");
        bench_windowed(name, input, /*threads=*/4, ro, mi, mn);
      }
    }
    return 0;
  }

  std::vector<WorkloadResult> results;

  // Fixture-sized netlists: thread sweep plus governed/unbounded whole-path
  // rows (same base → the budget knob must be result-neutral when it fits).
  const std::pair<std::string, Network (*)()> small[] = {
      {"mid", &make_mid}, {"wide", &make_wide}};
  for (const auto& [base, make] : small) {
    const Network input = make();
    for (int threads : {1, 2, 4}) {
      results.push_back(bench_windowed(base, input, threads));
    }
    // Reorder + pool configuration: own base name (its counters differ from
    // the off rows by design), same thread-identity gate.
    for (int threads : {1, 2, 4}) {
      results.push_back(
          bench_windowed(base + "reorder", input, threads, /*reorder=*/true));
    }
    results.push_back(bench_whole(base + "whole_gov", input, kBudget));
    results.push_back(bench_whole(base + "whole_free", input, 0));
  }

  if (!quick) {
    const Network input = make_scale();
    std::fprintf(stderr, "window_bench: scale netlist has %d logic nodes\n",
                 input.num_logic_nodes());
    for (int threads : {1, 2, 4}) {
      results.push_back(bench_windowed("scale", input, threads));
    }
    // At the default window caps the adversarial cones are chopped into
    // narrow, order-insensitive windows, so reordering must simply never be
    // worse here.
    const std::uint64_t off_unmapped = results.back().unmapped;
    for (int threads : {1, 2, 4}) {
      results.push_back(
          bench_windowed("scalereorder", input, threads, /*reorder=*/true));
    }
    if (results.back().unmapped > off_unmapped) {
      std::fprintf(stderr,
                   "window_bench: reorder increased unmapped windows on "
                   "the scale netlist (%llu -> %llu)\n",
                   static_cast<unsigned long long>(off_unmapped),
                   static_cast<unsigned long long>(results.back().unmapped));
      return 1;
    }
    // The reorder payoff claim: with windows wide enough to hold a whole
    // adversarial cone, the identity order blows the 2^17 budget (split
    // fallbacks) while auto sifting must map strictly more windows — fewer
    // pass-throughs and splits — under the identical budget.
    // One row per configuration: the stressed windows do orders of magnitude
    // more BDD work than the default caps (every blown window builds to the
    // budget before splitting), and thread-count identity is already proven
    // by the default rows above and by windowed_reorder_test.
    results.push_back(bench_windowed("scalestress", input, /*threads=*/4,
                                     /*reorder=*/false, kStressInputs,
                                     kStressNodes));
    const std::uint64_t stress_off_unmapped = results.back().unmapped;
    results.push_back(bench_windowed("scalestressreorder", input,
                                     /*threads=*/4, /*reorder=*/true,
                                     kStressInputs, kStressNodes));
    if (results.back().unmapped >= stress_off_unmapped) {
      std::fprintf(stderr,
                   "window_bench: reorder did not reduce unmapped windows on "
                   "the stressed scale netlist (%llu -> %llu)\n",
                   static_cast<unsigned long long>(stress_off_unmapped),
                   static_cast<unsigned long long>(results.back().unmapped));
      return 1;
    }
    if (stress_off_unmapped == 0) {
      std::fprintf(stderr,
                   "window_bench: stress rows exerted no budget pressure "
                   "(identity order mapped everything)\n");
      return 1;
    }
    // The governance claim: under the budget every window sits far below,
    // one global manager for the whole netlist must blow up.
    WorkloadResult gov = bench_whole("scalegov_whole", input, kBudget);
    if (gov.completed) {
      std::fprintf(stderr,
                   "window_bench: whole-network flow unexpectedly fit the "
                   "window budget on the scale netlist\n");
      return 1;
    }
    results.push_back(gov);
    // Unbounded whole-path row for wall-clock context.
    results.push_back(bench_whole("scalefree_whole", input, 0));
  }

  if (!checksums_agree(results)) return 1;

  // Scaling gates: snapshot extraction removed every shared lock from the
  // resynthesis phase, so on a machine with real parallelism the thread
  // sweep must show it. Each gate arms only when the host has enough CPUs
  // for the claim to be falsifiable and records itself either way.
  const unsigned cpus = std::thread::hardware_concurrency();
  std::vector<GateResult> gates;
  const auto seconds_of = [&results](const std::string& name) {
    for (const WorkloadResult& r : results) {
      if (r.name == name) return r.seconds;
    }
    return -1.0;
  };
  const auto speedup_gate = [&](const std::string& base, double required,
                                unsigned cpus_needed) {
    const double t1 = seconds_of(base + "_t1");
    const double t4 = seconds_of(base + "_t4");
    if (t1 < 0.0 || t4 < 0.0) return;
    GateResult g;
    g.name = base + "_t4_speedup";
    g.required = required;
    g.observed = t4 > 0.0 ? t1 / t4 : 0.0;
    g.cpus_needed = cpus_needed;
    g.armed = cpus >= cpus_needed;
    g.pass = !g.armed || g.observed >= required;
    gates.push_back(g);
    if (!g.armed) {
      std::fprintf(stderr,
                   "window_bench: gate %s skipped (%u CPUs < %u needed); "
                   "observed %.3fx\n",
                   g.name.c_str(), cpus, cpus_needed, g.observed);
    }
  };
  // Fixture-sized rows: with 4 CPUs the parallel path must at least break
  // even against serial (0.95 absorbs timer noise on sub-second runs).
  speedup_gate("mid", 0.95, 4);
  speedup_gate("wide", 0.95, 4);
  if (!quick) {
    // The headline claim: ~400 shared-nothing windows must scale. 2.5x at
    // four threads is far below linear but far above anything a shared
    // host lock would allow.
    speedup_gate("scale", 2.5, 4);
  }
  bool gates_ok = true;
  for (const GateResult& g : gates) {
    if (g.armed && !g.pass) {
      std::fprintf(stderr,
                   "window_bench: gate %s FAILED (%.3fx < required %.2fx)\n",
                   g.name.c_str(), g.observed, g.required);
      gates_ok = false;
    }
  }
  if (!gates_ok) return 1;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_window.v1\",\n";
  json += "  \"engine\": \"" + label + "\",\n";
  json += "  \"budget\": " + std::to_string(kBudget) + ",\n";
  json += "  \"cpus\": " + std::to_string(cpus) + ",\n";
  json += "  \"configs\": [\"t1\", \"t2\", \"t4\", \"reorder_t1..t4\", "
          "\"stress_t4\", \"whole_gov\", \"whole_free\"],\n";
  json += "  \"gates\": [\n";
  for (std::size_t i = 0; i < gates.size(); ++i) {
    append_gate_json(json, gates[i], i + 1 == gates.size());
  }
  json += "  ],\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "window_bench: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
