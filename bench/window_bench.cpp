/// \file window_bench.cpp
/// \brief Windowed-flow benchmark: the memory-governance and determinism
/// proof for the part/ subsystem, emitting JSON rows for BENCH_window.json.
///
/// Three netlists (the two committed tests/data fixtures regenerated
/// in-process, plus a ~19k-node tiled netlist no fixture could reasonably
/// hold) run under every engine configuration:
///
///  - `*_t1/_t2/_t4`: the windowed flow at 1/2/4 worker threads. The engine
///    contract is bit-identical output at every thread count, so the three
///    rows of one base name must share a checksum — the harness verifies
///    this itself and fails (exit 1) on any mismatch, making a committed
///    BENCH_window.json a determinism proof for the machine that produced
///    it.
///  - `*whole_gov/_free`: the whole-network flow under the same per-manager
///    BDD node budget the windowed engine gives each window, and unbounded.
///    On the fixture-sized netlists both complete with identical networks
///    (the budget knob is result-neutral when the flow fits), so they share
///    a base name too.  On the large netlist the governed run MUST throw —
///    one global manager cannot hold a 19k-node netlist inside a budget any
///    single window sits far below — and the harness fails if it completes,
///    making the committed JSON a memory-governance proof as well.
///
/// Protocol:
///
///     window_bench --label=windowed --out=BENCH_window.json   (full run)
///     window_bench --quick                                    (CI smoke)
///
/// --quick drops the large netlist and runs the fixture-sized workloads
/// only; the thread-identity and budget-neutrality gates still apply.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/flows.hpp"
#include "mapper/lutmap.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/verify.hpp"
#include "part/windowed.hpp"

namespace {

using hyde::core::FlowOptions;
using hyde::net::Network;
using hyde::part::WindowedFlowOptions;

/// The per-manager BDD node budget shared by every configuration: each
/// window's flow runs under it, and the `whole_gov` rows give the
/// whole-network flow the very same cap.  Chosen with ~6x headroom over the
/// largest per-window peak yet a factor of two below what the whole-network
/// path needs on the large netlist.
constexpr std::size_t kBudget = std::size_t{1} << 17;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFull;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

struct WorkloadResult {
  std::string name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< schedule-independent functional invariant
  bool completed = true;       ///< false: blew the budget (expected for gov)
  int luts = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The two committed tests/data fixtures, regenerated bit-for-bit (the
/// generators are pure functions of their arguments — see tests/data/README).
Network make_mid() {
  return hyde::mcnc::random_multilevel("win_mid", 32, 8, 700, 2, 9, 5);
}
Network make_wide() {
  return hyde::mcnc::random_multilevel("win_wide", 40, 10, 1500, 3, 10, 9);
}

/// Large workload: two independently seeded multilevel DAGs tiled side by
/// side into one ~19k-node netlist (random_multilevel's live cone saturates
/// around 6k nodes, so scale comes from tiling).  Deterministic.
Network make_scale() {
  Network out("scale");
  for (int c = 0; c < 2; ++c) {
    const Network tile = hyde::mcnc::random_multilevel(
        "scale_tile", 64, 16, 40000, 3, 9, 21 + static_cast<std::uint64_t>(c));
    std::unordered_map<hyde::net::NodeId, hyde::net::NodeId> map;
    const std::string prefix = "t" + std::to_string(c) + "_";
    for (hyde::net::NodeId id : tile.topo_order()) {
      const hyde::net::Node& n = tile.node(id);
      if (n.kind == hyde::net::NodeKind::kInput) {
        map[id] = out.add_input(prefix + n.name);
        continue;
      }
      std::vector<hyde::net::NodeId> fanins;
      fanins.reserve(n.fanins.size());
      for (hyde::net::NodeId f : n.fanins) fanins.push_back(map.at(f));
      map[id] = out.add_logic_tt(prefix + n.name, fanins, tile.local_tt(id));
    }
    for (const hyde::net::Output& po : tile.outputs()) {
      out.add_output(prefix + po.name, map.at(po.driver));
    }
  }
  return out;
}

FlowOptions hyde_flow_options() {
  return hyde::baseline::system_flow_options(hyde::baseline::System::kHyde, 5);
}

/// Windowed flow at \p threads workers; checksum mixes the stitched BLIF
/// text with every windows_* counter, so the thread sweep proves both the
/// network and the bookkeeping are schedule-independent.
WorkloadResult bench_windowed(const std::string& base, const Network& input,
                              int threads) {
  WindowedFlowOptions options;
  options.flow = hyde_flow_options();
  options.threads = threads;
  options.window_bdd_budget = kBudget;

  WorkloadResult result;
  result.name = base + "_t" + std::to_string(threads);
  const auto start = std::chrono::steady_clock::now();
  const hyde::part::WindowedFlowResult flow =
      hyde::part::run_windowed_flow(input, options);
  result.seconds = seconds_since(start);

  std::uint64_t checksum = fnv1a_string(0xCBF29CE484222325ull,
                                        hyde::net::write_blif_string(flow.network));
  checksum = fnv1a(checksum, static_cast<std::uint64_t>(flow.stats.windows_extracted));
  checksum = fnv1a(checksum, flow.stats.windows_resynthesized);
  checksum = fnv1a(checksum, flow.stats.windows_passthrough);
  checksum = fnv1a(checksum, flow.stats.windows_budget_fallbacks);
  checksum = fnv1a(checksum, flow.stats.windows_split);
  checksum = fnv1a(checksum, flow.stats.windows_verify_failures);
  result.checksum = checksum;
  result.luts = hyde::mapper::lut_count(flow.network);

  if (flow.stats.windows_verify_failures != 0) {
    std::fprintf(stderr, "window_bench: %s had window verify failures\n",
                 result.name.c_str());
    std::exit(1);
  }
  if (!flow.network.is_k_feasible(options.flow.k)) {
    std::fprintf(stderr, "window_bench: %s result is not k-feasible\n",
                 result.name.c_str());
    std::exit(1);
  }
  if (threads == 1 &&
      !hyde::net::check_equivalence(input, flow.network).equivalent) {
    std::fprintf(stderr, "window_bench: %s result is not equivalent\n",
                 result.name.c_str());
    std::exit(1);
  }
  return result;
}

/// Whole-network flow; \p budget 0 = unbounded.  A std::length_error is the
/// expected outcome for the governed run on the large netlist and is
/// recorded, not fatal (the caller asserts which way it must go).
WorkloadResult bench_whole(const std::string& name, const Network& input,
                           std::size_t budget) {
  FlowOptions options = hyde_flow_options();
  options.bdd_node_limit = budget;

  WorkloadResult result;
  result.name = name;
  const auto start = std::chrono::steady_clock::now();
  try {
    const hyde::core::FlowResult flow = hyde::core::run_flow(input, options);
    result.seconds = seconds_since(start);
    result.checksum = fnv1a_string(0xCBF29CE484222325ull,
                                   hyde::net::write_blif_string(flow.network));
    result.luts = hyde::mapper::lut_count(flow.network);
  } catch (const std::length_error&) {
    result.seconds = seconds_since(start);
    result.completed = false;
    result.checksum = fnv1a_string(0xCBF29CE484222325ull, "did-not-complete");
  }
  return result;
}

void append_json(std::string& out, const WorkloadResult& r, bool last) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu, "
                "\"completed\": %s, \"luts\": %d}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum),
                r.completed ? "true" : "false", r.luts, last ? "" : ",");
  out += buf;
}

/// Workloads with the same base name must agree on the checksum across every
/// configuration; returns false (and reports) on any divergence.
bool checksums_agree(const std::vector<WorkloadResult>& results) {
  std::map<std::string, std::uint64_t> expected;
  bool ok = true;
  for (const auto& r : results) {
    const std::size_t cut = r.name.rfind('_');
    const std::string base = r.name.substr(0, cut);
    const auto [it, inserted] = expected.emplace(base, r.checksum);
    if (!inserted && it->second != r.checksum) {
      std::fprintf(stderr,
                   "window_bench: checksum mismatch for %s (%llu != %llu)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(it->second));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "windowed";
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: window_bench [--label=NAME] [--out=FILE] [--quick]\n");
      return 2;
    }
  }

  std::vector<WorkloadResult> results;

  // Fixture-sized netlists: thread sweep plus governed/unbounded whole-path
  // rows (same base → the budget knob must be result-neutral when it fits).
  const std::pair<std::string, Network (*)()> small[] = {
      {"mid", &make_mid}, {"wide", &make_wide}};
  for (const auto& [base, make] : small) {
    const Network input = make();
    for (int threads : {1, 2, 4}) {
      results.push_back(bench_windowed(base, input, threads));
    }
    results.push_back(bench_whole(base + "whole_gov", input, kBudget));
    results.push_back(bench_whole(base + "whole_free", input, 0));
  }

  if (!quick) {
    const Network input = make_scale();
    std::fprintf(stderr, "window_bench: scale netlist has %d logic nodes\n",
                 input.num_logic_nodes());
    for (int threads : {1, 2, 4}) {
      results.push_back(bench_windowed("scale", input, threads));
    }
    // The governance claim: under the budget every window sits far below,
    // one global manager for the whole netlist must blow up.
    WorkloadResult gov = bench_whole("scalegov_whole", input, kBudget);
    if (gov.completed) {
      std::fprintf(stderr,
                   "window_bench: whole-network flow unexpectedly fit the "
                   "window budget on the scale netlist\n");
      return 1;
    }
    results.push_back(gov);
    // Unbounded whole-path row for wall-clock context.
    results.push_back(bench_whole("scalefree_whole", input, 0));
  }

  if (!checksums_agree(results)) return 1;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_window.v1\",\n";
  json += "  \"engine\": \"" + label + "\",\n";
  json += "  \"budget\": " + std::to_string(kBudget) + ",\n";
  json += "  \"configs\": [\"t1\", \"t2\", \"t4\", \"whole_gov\", \"whole_free\"],\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "window_bench: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
