/// Micro-benchmarks of the substrate libraries (google-benchmark): BDD
/// operations, chart enumeration, compatible classes, graph matching and the
/// encoder itself.

#include <benchmark/benchmark.h>

#include <random>

#include "core/encoder.hpp"
#include "decomp/compatible.hpp"
#include "decomp/varpart.hpp"
#include "graph/matching.hpp"
#include "tt/truth_table.hpp"

namespace {

using namespace hyde;

tt::TruthTable random_table(int vars, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return tt::TruthTable::from_lambda(
      vars, [&rng](std::uint64_t) { return (rng() & 1) != 0; });
}

void BM_BddFromTruthTable(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto table = random_table(vars, 42);
  for (auto _ : state) {
    bdd::Manager mgr(vars);
    benchmark::DoNotOptimize(mgr.from_truth_table(table));
  }
}
BENCHMARK(BM_BddFromTruthTable)->Arg(8)->Arg(12)->Arg(16);

void BM_BddApplyChain(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::Manager mgr(vars);
    bdd::Bdd acc = mgr.zero();
    for (int i = 0; i + 1 < vars; ++i) {
      acc = acc ^ (mgr.var(i) & mgr.var(i + 1));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BddApplyChain)->Arg(16)->Arg(32)->Arg(64);

void BM_EnumerateColumns(benchmark::State& state) {
  const int bound = static_cast<int>(state.range(0));
  bdd::Manager mgr(16);
  const auto f = mgr.from_truth_table(random_table(12, 7));
  decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = decomp::IsfBdd{f, mgr.zero()};
  for (int v = 0; v < 12; ++v) {
    (v < bound ? spec.bound : spec.free).push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::enumerate_columns(spec));
  }
}
BENCHMARK(BM_EnumerateColumns)->Arg(4)->Arg(6)->Arg(8);

void BM_CompatibleClassesIsf(benchmark::State& state) {
  bdd::Manager mgr(16);
  std::mt19937_64 rng(11);
  const auto on = mgr.from_truth_table(random_table(10, 3));
  const auto dc_raw = mgr.from_truth_table(random_table(10, 5));
  decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = decomp::IsfBdd{on & ~dc_raw, dc_raw & ~on};
  spec.bound = {0, 1, 2, 3, 4};
  spec.free = {5, 6, 7, 8, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::compute_compatible_classes(spec));
  }
}
BENCHMARK(BM_CompatibleClassesIsf);

void BM_VariablePartitioning(benchmark::State& state) {
  bdd::Manager mgr(16);
  const auto f = mgr.from_truth_table(random_table(12, 9));
  const auto support = mgr.support(f);
  decomp::VarPartitionOptions options;
  options.bound_size = 5;
  options.require_nontrivial = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decomp::select_bound_set(mgr, decomp::IsfBdd{f, mgr.zero()}, support,
                                 options));
  }
}
BENCHMARK(BM_VariablePartitioning);

void BM_CliquePartition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(5);
  std::vector<std::vector<char>> adj(static_cast<std::size_t>(n),
                                     std::vector<char>(static_cast<std::size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng() % 3 == 0) {
        adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
        adj[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = 1;
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::clique_partition(n, adj));
  }
}
BENCHMARK(BM_CliquePartition)->Arg(16)->Arg(32)->Arg(64);

void BM_BlossomMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(13);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng() % 4 == 0) edges.emplace_back(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_cardinality_matching(n, edges));
  }
}
BENCHMARK(BM_BlossomMatching)->Arg(16)->Arg(64)->Arg(128);

void BM_CountColumnsCutVsEnum(benchmark::State& state) {
  // state.range(0): 0 = enumeration, 1 = BDD-cut method ([2]).
  bdd::Manager mgr(16);
  const auto f = mgr.from_truth_table(random_table(14, 21));
  decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = decomp::IsfBdd{f, mgr.zero()};
  for (int v = 0; v < 14; ++v) {
    (v < 7 ? spec.bound : spec.free).push_back(v);
  }
  const bool use_cut = state.range(0) == 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(use_cut ? decomp::count_columns_via_cut(spec)
                                     : decomp::count_columns(spec));
  }
}
BENCHMARK(BM_CountColumnsCutVsEnum)->Arg(0)->Arg(1);

void BM_ChartAssembly(benchmark::State& state) {
  // Example 3.2's ten partitions, the canonical encoder workload.
  const std::vector<decomp::Partition> partitions = {
      {{0, 1, 2, 3}}, {{0, 2, 1, 3}}, {{3, 0, 1, 3}}, {{2, 1, 0, 1}},
      {{0, 1, 3, 1}}, {{0, 1, 0, 2}}, {{1, 0, 0, 0}}, {{1, 1, 2, 1}},
      {{1, 2, 1, 2}}, {{3, 2, 1, 0}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::assemble_chart(partitions, 4, 4));
  }
}
BENCHMARK(BM_ChartAssembly);

}  // namespace

BENCHMARK_MAIN();
