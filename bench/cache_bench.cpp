/// \file cache_bench.cpp
/// \brief Persistent-store benchmark: the warm-over-cold payoff and codec
/// proof for the store/ subsystem, emitting BENCH_cache.json.
///
/// Three batch runs over the same job list (every registry circuit under the
/// HYDE system at k=5, seed 1 — the `hyde_cli --batch -s hyde` workload):
///
///  - `memory`: the in-memory NPN cache only, for wall-clock context.
///  - `cold`: a fresh --cache-dir. Every job synthesizes, every template and
///    every finished job outcome is entropy-coded and committed to disk.
///  - `warm`: the same --cache-dir again in a fresh process state (new
///    NpnResultCache, new store handle). Every job must replay from disk.
///
/// Self-gates (exit 1 on violation), making a committed BENCH_cache.json a
/// determinism-and-payoff proof for the machine that produced it:
///
///  - cold and warm must agree byte-for-byte on the deterministic report
///    subset (`to_json(report, /*include_volatile=*/false)`) — checksummed
///    here, so the JSON rows carry the proof.
///  - the warm run must replay every job from disk (job_replays == jobs) and
///    synthesize nothing (appends == 0).
///  - the cold run's entropy-coded bytes must be < 0.6 of the fixed-width
///    payload bytes (the Huffman codec earns its keep).
///  - full runs only: warm wall-clock must beat cold by >= 3x.
///
/// Protocol:
///
///     cache_bench --label=store --out=BENCH_cache.json   (full run)
///     cache_bench --quick                                (CI smoke)
///
/// --quick shrinks the suite to two circuits and drops the 3x wall-clock
/// gate (sub-second workloads are all noise); the identity, replay and codec
/// gates still apply.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "baseline/flows.hpp"
#include "mcnc/benchmarks.hpp"
#include "runtime/batch.hpp"
#include "runtime/report.hpp"

#include <unistd.h>

namespace {

namespace fs = std::filesystem;

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct RunResult {
  std::string name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< fnv1a over the deterministic JSON subset
  std::uint64_t disk_hits = 0;
  std::uint64_t job_replays = 0;
  std::uint64_t appends = 0;
  double codec_ratio = 0.0;  ///< coded/raw for this run's puts (0: no puts)
  bool all_ok = false;
};

/// One whole batch over \p jobs; empty \p cache_dir keeps the cache
/// memory-only. Each call builds a fresh NpnResultCache and store handle, so
/// a second run against the same directory models a separate process.
RunResult run_once(const std::string& name,
                   const std::vector<hyde::runtime::BatchJob>& jobs,
                   const std::string& cache_dir) {
  hyde::runtime::BatchOptions options;
  options.workers = hyde::runtime::default_worker_count();
  options.cache_dir = cache_dir;

  RunResult result;
  result.name = name;
  const auto start = std::chrono::steady_clock::now();
  const hyde::runtime::RunReport report = hyde::runtime::run_batch(jobs, options);
  result.seconds = seconds_since(start);

  result.checksum = fnv1a_string(
      0xCBF29CE484222325ull,
      hyde::runtime::to_json(report, /*include_volatile=*/false));
  result.disk_hits = report.store.disk_hits;
  result.job_replays = report.store.job_hits;
  result.appends = report.store.appends;
  result.codec_ratio = report.store.codec_ratio();
  result.all_ok = report.all_ok();
  std::fprintf(stderr,
               "cache_bench: %s %.3fs, %llu disk hits, %llu job replays, "
               "%llu appends, codec ratio %.3f\n",
               name.c_str(), result.seconds,
               static_cast<unsigned long long>(result.disk_hits),
               static_cast<unsigned long long>(result.job_replays),
               static_cast<unsigned long long>(result.appends),
               result.codec_ratio);
  return result;
}

void append_json(std::string& out, const RunResult& r, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu, "
                "\"disk_hits\": %llu, \"job_replays\": %llu, "
                "\"appends\": %llu, \"codec_ratio\": %.4f}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum),
                static_cast<unsigned long long>(r.disk_hits),
                static_cast<unsigned long long>(r.job_replays),
                static_cast<unsigned long long>(r.appends), r.codec_ratio,
                last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "store";
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: cache_bench [--label=NAME] [--out=FILE] [--quick]\n");
      return 2;
    }
  }

  std::vector<std::string> circuits = hyde::mcnc::all_circuits();
  if (quick) circuits = {"rd73", "misex1"};
  const std::vector<hyde::runtime::BatchJob> jobs = hyde::runtime::suite_jobs(
      circuits, {hyde::baseline::System::kHyde}, /*k=*/5, /*base_seed=*/1);

  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("hyde_cache_bench_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(cache_dir);

  std::vector<RunResult> results;
  if (!quick) {
    results.push_back(run_once("memory", jobs, ""));
  }
  results.push_back(run_once("cold", jobs, cache_dir.string()));
  const RunResult& cold = results.back();
  results.push_back(run_once("warm", jobs, cache_dir.string()));
  const RunResult& warm = results.back();
  fs::remove_all(cache_dir);

  bool ok = true;
  for (const RunResult& r : results) {
    if (!r.all_ok) {
      std::fprintf(stderr, "cache_bench: %s run had job failures\n",
                   r.name.c_str());
      ok = false;
    }
  }
  if (cold.checksum != warm.checksum) {
    std::fprintf(stderr,
                 "cache_bench: warm output diverged from cold "
                 "(%llu != %llu)\n",
                 static_cast<unsigned long long>(warm.checksum),
                 static_cast<unsigned long long>(cold.checksum));
    ok = false;
  }
  if (warm.job_replays != jobs.size()) {
    std::fprintf(stderr,
                 "cache_bench: warm run replayed %llu of %zu jobs\n",
                 static_cast<unsigned long long>(warm.job_replays),
                 jobs.size());
    ok = false;
  }
  if (warm.appends != 0) {
    std::fprintf(stderr,
                 "cache_bench: warm run appended %llu records (expected 0)\n",
                 static_cast<unsigned long long>(warm.appends));
    ok = false;
  }
  if (cold.codec_ratio <= 0.0 || cold.codec_ratio >= 0.6) {
    std::fprintf(stderr,
                 "cache_bench: cold codec ratio %.4f outside (0, 0.6)\n",
                 cold.codec_ratio);
    ok = false;
  }
  if (!quick && warm.seconds * 3.0 > cold.seconds) {
    std::fprintf(stderr,
                 "cache_bench: warm run not >= 3x faster than cold "
                 "(%.3fs vs %.3fs)\n",
                 warm.seconds, cold.seconds);
    ok = false;
  }
  if (!ok) return 1;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_cache.v1\",\n";
  json += "  \"engine\": \"" + label + "\",\n";
  json += "  \"jobs\": " + std::to_string(jobs.size()) + ",\n";
  char speedup[64];
  std::snprintf(speedup, sizeof(speedup), "  \"warm_speedup\": %.2f,\n",
                warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0);
  json += speedup;
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cache_bench: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
