/// Ablation C: hyper-function policy. Compares per-output decomposition,
/// forced hyper-grouping, the cost-based auto choice (Section 4.3's
/// duplication-cone trade-off), and the FGSyn-style PPIs-always-free rule.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/flow.hpp"
#include "mapper/lutmap.hpp"

namespace {

int run_luts(const hyde::net::Network& input, hyde::core::FlowOptions options) {
  auto flow = hyde::core::run_flow(input, options);
  hyde::mapper::dedup_shared_nodes(flow.network);
  hyde::mapper::collapse_into_fanouts(flow.network, options.k);
  return hyde::mapper::lut_count(flow.network);
}

}  // namespace

int main() {
  using namespace hyde;
  const std::vector<std::string> circuits{
      "rd84", "z4ml", "5xp1", "alu2", "clip", "sao2", "apex4", "misex3",
      "duke2", "f51m", "des", "C499"};
  std::printf("Ablation C: hyper-function policy (k=5)\n");
  std::printf("%-8s | %10s %10s %10s %12s\n", "circuit", "never", "always",
              "auto", "hard-mu PPIs");
  std::printf("%s\n", std::string(62, '-').c_str());
  long total_never = 0, total_always = 0, total_auto = 0, total_hard = 0;
  for (const auto& name : circuits) {
    const auto input = mcnc::make_circuit(name);
    core::FlowOptions never = core::hyde_options(5);
    never.use_hyper = false;
    core::FlowOptions always = core::hyde_options(5);
    always.group_choice = core::GroupChoice::kAlwaysHyper;
    core::FlowOptions automatic = core::hyde_options(5);
    core::FlowOptions hard = core::hyde_options(5);
    hard.group_choice = core::GroupChoice::kAlwaysHyper;
    hard.ppi_hard_mu = true;

    const int l_never = run_luts(input, never);
    const int l_always = run_luts(input, always);
    const int l_auto = run_luts(input, automatic);
    const int l_hard = run_luts(input, hard);
    total_never += l_never;
    total_always += l_always;
    total_auto += l_auto;
    total_hard += l_hard;
    std::printf("%-8s | %10d %10d %10d %12d\n", name.c_str(), l_never,
                l_always, l_auto, l_hard);
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(62, '-').c_str());
  std::printf("%-8s | %10ld %10ld %10ld %12ld\n", "Total", total_never,
              total_always, total_auto, total_hard);
  std::printf("\n(auto should track min(never, always); hard-mu is the "
              "column-encoding special case of Section 4.3)\n");
  return 0;
}
