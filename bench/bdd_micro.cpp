/// \file bdd_micro.cpp
/// \brief BDD-kernel microbenchmark: the workloads every HYDE step bottoms
/// out in (apply/ITE chains, repeated cofactoring, quantification/compose and
/// chart-column enumeration), timed and emitted as JSON.
///
/// The harness is deliberately written against the public Manager/chart API
/// only, so the *same* source runs on the seed kernel (per-call memo maps,
/// unordered_map ITE cache) and on the unified-computed-table kernel; the
/// committed BENCH_bdd.json holds one run of each, produced by
///
///     bdd_micro --label=seed      (at the pre-overhaul commit)
///     bdd_micro --label=unified   (after)
///
/// Checksums are function-level invariants (satisfy counts, column counts) so
/// a kernel change that alters results — not just speed — is caught here too.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "decomp/chart.hpp"
#include "tt/truth_table.hpp"

namespace {

using hyde::bdd::Bdd;
using hyde::bdd::Manager;
using hyde::tt::TruthTable;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Bdd random_bdd(Manager& mgr, int num_vars, std::uint64_t& state) {
  const TruthTable table = TruthTable::from_lambda(
      num_vars, [&state](std::uint64_t) { return (splitmix64(state) & 1) != 0; });
  return mgr.from_truth_table(table);
}

struct WorkloadResult {
  std::string name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< kernel-independent functional invariant
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Pairwise AND/XOR/OR/NOT chains over a pool of random 12-var functions —
/// the shape of image construction and encoder trials.
WorkloadResult bench_apply_mix(int rounds) {
  const int n = 12;
  Manager mgr(n);
  std::uint64_t state = 0x5EEDull;
  std::vector<Bdd> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(random_bdd(mgr, n, state));

  WorkloadResult result;
  result.name = "apply_mix";
  const auto start = std::chrono::steady_clock::now();
  double sat_sum = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        const Bdd conj = pool[i] & pool[j];
        const Bdd parity = pool[i] ^ pool[j];
        const Bdd mix = conj | ~parity;
        // Checksum sparsely: sat_count is not a kernel under test and would
        // otherwise dominate the loop.
        if ((i + j) % 8 == 0) sat_sum += mgr.sat_count(mix, n);
      }
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = static_cast<std::uint64_t>(sat_sum);
  return result;
}

/// Repeated single-variable cofactoring of the same functions — the access
/// pattern of the greedy bound-set search (column_cost probes every
/// candidate variable against the same f over and over).
WorkloadResult bench_cofactor_sweep(int rounds) {
  const int n = 14;
  Manager mgr(n);
  std::uint64_t state = 0xC0Full;
  const Bdd f = random_bdd(mgr, n, state);
  const Bdd g = random_bdd(mgr, n, state);

  WorkloadResult result;
  result.name = "cofactor_sweep";
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t count = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int v = 0; v < n; ++v) {
      for (int value = 0; value < 2; ++value) {
        const Bdd fc = mgr.cofactor(f, v, value != 0);
        const Bdd gc = mgr.cofactor(g, v, value != 0);
        for (int w = v + 1; w < n; ++w) {
          const Bdd fcw = mgr.cofactor(fc, w, true);
          const Bdd gcw = mgr.cofactor(gc, w, false);
          if (w == v + 1) {
            count += mgr.node_count(fcw) + mgr.node_count(gcw);
          } else {
            count += fcw.is_constant() ? 1u : 0u;
          }
        }
      }
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = count;
  return result;
}

/// Quantification and composition over fixed variable sets — the shape of
/// image verification (vector_compose) and support manipulation.
WorkloadResult bench_quantify_compose(int rounds) {
  const int n = 12;
  Manager mgr(n);
  std::uint64_t state = 0x9047ull;
  const Bdd f = random_bdd(mgr, n, state);
  Manager small_mgr(4);
  std::vector<std::vector<int>> var_sets = {
      {0, 1}, {2, 3, 4}, {5, 6, 7, 8}, {0, 4, 8}, {9, 10, 11}};

  WorkloadResult result;
  result.name = "quantify_compose";
  const auto start = std::chrono::steady_clock::now();
  double sat_sum = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& vars : var_sets) {
      const Bdd ex = mgr.exists(f, vars);
      const Bdd fa = mgr.forall(f, vars);
      const Bdd sub = mgr.var(vars[0]) ^ mgr.var((vars[0] + 5) % n);
      const Bdd comp = mgr.compose(f, vars.back(), sub);
      if (r % 10 == 0) {
        sat_sum += mgr.sat_count(ex, n) - mgr.sat_count(fa, n);
        sat_sum += mgr.sat_count(comp, n);
      }
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = static_cast<std::uint64_t>(sat_sum);
  return result;
}

hyde::decomp::DecompSpec chart_spec(Manager& mgr, const Bdd& f, int num_vars,
                                    int bound_size) {
  hyde::decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = hyde::decomp::IsfBdd{f, mgr.zero()};
  for (int v = 0; v < bound_size; ++v) spec.bound.push_back(v);
  for (int v = bound_size; v < num_vars; ++v) spec.free.push_back(v);
  return spec;
}

/// Column counting at growing bound-set sizes: the recursive-cofactor
/// reference vs whatever count_columns dispatches to in this kernel.
std::vector<WorkloadResult> bench_count_columns(int max_bound) {
  const int n = 14;
  std::vector<WorkloadResult> results;
  for (int bound_size = 8; bound_size <= max_bound; ++bound_size) {
    Manager mgr(n);
    std::uint64_t state = 0xC071 + static_cast<std::uint64_t>(bound_size);
    const Bdd f = random_bdd(mgr, n, state);
    const auto spec = chart_spec(mgr, f, n, bound_size);

    WorkloadResult res;
    res.name = "count_columns_x" + std::to_string(bound_size);
    const auto start = std::chrono::steady_clock::now();
    const int count = hyde::decomp::count_columns(spec);
    res.seconds = seconds_since(start);
    res.checksum = static_cast<std::uint64_t>(count);
    results.push_back(res);

    WorkloadResult cut;
    cut.name = "count_columns_cut_x" + std::to_string(bound_size);
    const auto cut_start = std::chrono::steady_clock::now();
    const int cut_count = hyde::decomp::count_columns_via_cut(spec);
    cut.seconds = seconds_since(cut_start);
    cut.checksum = static_cast<std::uint64_t>(cut_count);
    results.push_back(cut);
  }
  return results;
}

/// Reorder workload: the interleaved pairing pattern OR_i (x_i & x_{p+i}),
/// exponential under the identity order and linear once sifted.  The same
/// function is built twice — once untouched, once through reorder_sift — and
/// both paths fold the identical semantic checksum (sat count plus oracle
/// evaluation on shared pseudo-random assignments, both order-invariant), so
/// the two rows must agree bit for bit: that parity is the self-check the
/// harness enforces in main, together with the >=25% live-node reduction.
struct ReorderOutcome {
  WorkloadResult off;
  WorkloadResult sift;
  std::size_t live_before = 0;
  std::size_t live_after = 0;
};

std::uint64_t reorder_checksum(Manager& mgr, const Bdd& f, int n, int probes) {
  std::uint64_t state = 0x0DDE4ull;
  std::uint64_t checksum =
      static_cast<std::uint64_t>(mgr.sat_count(f, n)) * 0x9E3779B97F4A7C15ull;
  std::vector<bool> assignment(static_cast<std::size_t>(n));
  for (int p = 0; p < probes; ++p) {
    const std::uint64_t bits = splitmix64(state);
    for (int v = 0; v < n; ++v) assignment[v] = ((bits >> v) & 1) != 0;
    checksum = checksum * 31 + (mgr.eval(f, assignment) ? 1 : 0);
  }
  return checksum;
}

ReorderOutcome bench_reorder(int pairs, int probes) {
  const int n = 2 * pairs;
  ReorderOutcome outcome;
  const auto build = [pairs](Manager& mgr) {
    Bdd f = mgr.zero();
    for (int i = 0; i < pairs; ++i) {
      f = f | (mgr.var(i) & mgr.var(pairs + i));
    }
    return f;
  };

  {
    Manager mgr(n);
    outcome.off.name = "reorder_off";
    const auto start = std::chrono::steady_clock::now();
    const Bdd f = build(mgr);
    outcome.off.checksum = reorder_checksum(mgr, f, n, probes);
    outcome.off.seconds = seconds_since(start);
  }
  {
    Manager mgr(n);
    outcome.sift.name = "reorder_sift";
    const auto start = std::chrono::steady_clock::now();
    const Bdd f = build(mgr);
    outcome.live_before = mgr.live_node_count();
    mgr.reorder_sift();
    outcome.live_after = mgr.live_node_count();
    outcome.sift.checksum = reorder_checksum(mgr, f, n, probes);
    outcome.sift.seconds = seconds_since(start);
  }
  return outcome;
}

/// Full chart construction (patterns + indicators + minterm lists).
std::vector<WorkloadResult> bench_enumerate_columns(int max_bound) {
  const int n = 14;
  std::vector<WorkloadResult> results;
  for (int bound_size = 8; bound_size <= max_bound; ++bound_size) {
    Manager mgr(n);
    std::uint64_t state = 0xE4471 + static_cast<std::uint64_t>(bound_size);
    const Bdd f = random_bdd(mgr, n, state);
    const auto spec = chart_spec(mgr, f, n, bound_size);

    WorkloadResult res;
    res.name = "enumerate_columns_x" + std::to_string(bound_size);
    const auto start = std::chrono::steady_clock::now();
    const auto columns = hyde::decomp::enumerate_columns(spec);
    res.seconds = seconds_since(start);
    std::uint64_t checksum = columns.size();
    for (const auto& c : columns) checksum += c.minterms.size() * 31;
    res.checksum = checksum;
    results.push_back(res);
  }
  return results;
}

void append_json(std::string& out, const WorkloadResult& r, bool last) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum), last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "unified";
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bdd_micro [--label=NAME] [--out=FILE] [--quick]\n");
      return 2;
    }
  }

  const int apply_rounds = quick ? 1 : 6;
  const int cofactor_rounds = quick ? 4 : 40;
  const int quantify_rounds = quick ? 10 : 100;
  const int max_bound = quick ? 9 : 12;

  std::vector<WorkloadResult> results;
  results.push_back(bench_apply_mix(apply_rounds));
  results.push_back(bench_cofactor_sweep(cofactor_rounds));
  results.push_back(bench_quantify_compose(quantify_rounds));
  for (auto& r : bench_count_columns(max_bound)) results.push_back(r);
  for (auto& r : bench_enumerate_columns(max_bound)) results.push_back(r);

  // Reorder workload with its two self-checks: semantic parity between the
  // untouched and sifted paths, and the live-node reduction the sifter must
  // deliver on the pairing pattern.
  const int reorder_pairs = quick ? 10 : 13;
  const ReorderOutcome reorder = bench_reorder(reorder_pairs, 256);
  if (reorder.off.checksum != reorder.sift.checksum) {
    std::fprintf(stderr,
                 "bdd_micro: reorder checksum parity FAILED (%llu != %llu)\n",
                 static_cast<unsigned long long>(reorder.off.checksum),
                 static_cast<unsigned long long>(reorder.sift.checksum));
    return 1;
  }
  if (reorder.live_after * 4 > reorder.live_before * 3) {
    std::fprintf(stderr,
                 "bdd_micro: reorder live-node reduction below 25%% "
                 "(%zu -> %zu)\n",
                 reorder.live_before, reorder.live_after);
    return 1;
  }
  results.push_back(reorder.off);
  results.push_back(reorder.sift);
  WorkloadResult live_before;
  live_before.name = "reorder_live_before";
  live_before.checksum = reorder.live_before;
  results.push_back(live_before);
  WorkloadResult live_after;
  live_after.name = "reorder_live_after";
  live_after.checksum = reorder.live_after;
  results.push_back(live_after);

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_bdd.v1\",\n";
  json += "  \"kernel\": \"" + label + "\",\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bdd_micro: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
