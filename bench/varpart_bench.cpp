/// \file varpart_bench.cpp
/// \brief Bound-set search benchmark: times the greedy variable-partition
/// engine (decomp::BoundSetSearch) and whole HYDE flows under the engine's
/// configurations, and emits JSON rows for BENCH_varpart.json.
///
/// The "plain" configuration (serial, no chart memo, no bounded-count
/// pruning) is the seed code path: it evaluates every candidate with a full
/// column count, exactly like the historical select_bound_set.  The other
/// configurations layer on the memo, the monotone lower-bound pruning and
/// snapshot-parallel candidate evaluation.  Every configuration of the same
/// workload must produce the identical checksum — the harness verifies this
/// itself and fails (exit 1) on any mismatch, so a committed BENCH_varpart.json
/// is also a functional-equivalence proof for the machine that produced it.
///
/// Protocol:
///
///     varpart_bench --label=seed --out=BENCH_varpart.json        (full run)
///     varpart_bench --quick                                      (CI smoke)
///
/// Checksums are FNV-1a mixes of the selected bound sets, compatible-class
/// counts and the mapped networks' BLIF text — function-level invariants that
/// the engine's knobs must never change.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/flow.hpp"
#include "decomp/search.hpp"
#include "decomp/varpart.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "tt/truth_table.hpp"

namespace {

using hyde::bdd::Bdd;
using hyde::bdd::Manager;
using hyde::tt::TruthTable;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Bdd random_bdd(Manager& mgr, int num_vars, std::uint64_t& state) {
  const TruthTable table = TruthTable::from_lambda(
      num_vars, [&state](std::uint64_t) { return (splitmix64(state) & 1) != 0; });
  return mgr.from_truth_table(table);
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFull;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

struct WorkloadResult {
  std::string name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< config-independent functional invariant
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// An engine configuration under test.  "plain" reproduces the seed path.
struct EngineConfig {
  const char* tag;
  int threads;
  bool memo;
  bool pruning;
};

const EngineConfig kConfigs[] = {
    {"plain", 1, false, false},
    {"pruned", 1, false, true},
    {"memo", 1, true, true},
    {"parallel2", 2, true, true},
    {"parallel4", 4, true, true},
};

hyde::decomp::SearchOptions search_options(const EngineConfig& config) {
  hyde::decomp::SearchOptions options;
  options.threads = config.threads;
  options.use_memo = config.memo;
  options.use_pruning = config.pruning;
  return options;
}

/// Greedy bound-set selection over random functions, replaying the flow's
/// re-search pattern: every function is partitioned at bound sizes k down
/// to 2, which is exactly the sequence the decomposer retries when a trial
/// fails — the memoized engine answers the shared greedy prefix from the
/// chart memo instead of recounting columns.
WorkloadResult bench_greedy_research(const EngineConfig& config, int num_vars,
                                     int functions, int rounds) {
  Manager mgr(num_vars);
  std::uint64_t state = 0x5EA2C4 + static_cast<std::uint64_t>(num_vars);
  std::vector<Bdd> pool;
  for (int i = 0; i < functions; ++i) {
    pool.push_back(random_bdd(mgr, num_vars, state));
  }
  std::vector<int> support;
  for (int v = 0; v < num_vars; ++v) support.push_back(v);

  hyde::decomp::BoundSetSearch search(mgr, search_options(config));

  WorkloadResult result;
  result.name = "greedy_research_x" + std::to_string(num_vars) + "_" +
                config.tag;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t checksum = 0xCBF29CE484222325ull;
  for (int r = 0; r < rounds; ++r) {
    for (const Bdd& f : pool) {
      const hyde::decomp::IsfBdd isf{f, mgr.zero()};
      for (int bound_size = 6; bound_size >= 2; --bound_size) {
        hyde::decomp::VarPartitionOptions options;
        options.bound_size = bound_size;
        options.require_nontrivial = false;
        const auto vp = search.select(isf, support, options);
        checksum = fnv1a(checksum, vp.success ? 1u : 0u);
        for (int v : vp.bound) {
          checksum = fnv1a(checksum, static_cast<std::uint64_t>(v));
        }
        checksum = fnv1a(checksum, static_cast<std::uint64_t>(vp.num_classes));
      }
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = checksum;
  return result;
}

/// Whole HYDE flow (decomposition + encoding, no mapping) over a registry
/// circuit with the engine knobs wired through FlowOptions.
WorkloadResult bench_flow(const EngineConfig& config, const std::string& circuit) {
  const hyde::net::Network input = hyde::mcnc::make_circuit(circuit);

  WorkloadResult result;
  result.name = "flow_" + circuit + "_" + config.tag;
  const auto start = std::chrono::steady_clock::now();
  hyde::core::FlowOptions options = hyde::core::hyde_options(5);
  options.search_threads = config.threads;
  options.search_memo = config.memo;
  options.search_pruning = config.pruning;
  hyde::core::FlowResult flow = hyde::core::run_flow(input, options);
  result.seconds = seconds_since(start);

  std::ostringstream blif;
  hyde::net::write_blif(flow.network, blif);
  std::uint64_t checksum = fnv1a_string(0xCBF29CE484222325ull, blif.str());
  checksum = fnv1a(checksum, flow.stats.decomposition_steps);
  checksum = fnv1a(checksum, flow.stats.hyper_groups);
  result.checksum = checksum;
  return result;
}

void append_json(std::string& out, const WorkloadResult& r, bool last) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum), last ? "" : ",");
  out += buf;
}

/// Workloads with the same base name must agree on the checksum across every
/// engine configuration; returns false (and reports) on any divergence.
bool checksums_agree(const std::vector<WorkloadResult>& results) {
  std::map<std::string, std::uint64_t> expected;
  bool ok = true;
  for (const auto& r : results) {
    const std::size_t cut = r.name.rfind('_');
    const std::string base = r.name.substr(0, cut);
    const auto [it, inserted] = expected.emplace(base, r.checksum);
    if (!inserted && it->second != r.checksum) {
      std::fprintf(stderr,
                   "varpart_bench: checksum mismatch for %s (%llu != %llu)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(it->second));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "engine";
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: varpart_bench [--label=NAME] [--out=FILE] [--quick]\n");
      return 2;
    }
  }

  const int num_vars = quick ? 12 : 14;
  const int functions = quick ? 2 : 4;
  const int rounds = quick ? 1 : 2;
  const std::vector<std::string> circuits =
      quick ? std::vector<std::string>{"rd73", "duke2"}
            : std::vector<std::string>{"5xp1", "rd73", "misex1", "duke2",
                                       "alu2", "vg2"};

  std::vector<WorkloadResult> results;
  for (const EngineConfig& config : kConfigs) {
    results.push_back(bench_greedy_research(config, num_vars, functions, rounds));
  }
  for (const std::string& circuit : circuits) {
    for (const EngineConfig& config : kConfigs) {
      results.push_back(bench_flow(config, circuit));
    }
  }

  if (!checksums_agree(results)) return 1;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_varpart.v1\",\n";
  json += "  \"engine\": \"" + label + "\",\n";
  json += "  \"configs\": [";
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    json += std::string("\"") + kConfigs[i].tag + "\"";
    if (i + 1 < std::size(kConfigs)) json += ", ";
  }
  json += "],\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "varpart_bench: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
