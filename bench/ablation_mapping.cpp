/// Ablation D: mapping backend — decomposition-based (HYDE, area-oriented)
/// versus FlowMap (depth-optimal for its subject graph). The classic
/// mid-90s area/depth trade-off, reproduced on the synthetic suite.

#include <cstdio>

#include "baseline/flows.hpp"
#include "mapper/flowmap.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/verify.hpp"

int main() {
  using namespace hyde;
  const std::vector<std::string> circuits{
      "9sym", "rd73", "rd84", "z4ml", "5xp1", "clip", "alu2", "misex1",
      "sao2", "count", "apex7", "b9", "C880"};
  std::printf("Ablation D: mapping backend (k=5)\n");
  std::printf("%-8s | %12s %12s | %12s %12s | %s\n", "circuit", "HYDE LUTs",
              "HYDE depth", "FlowMap LUTs", "FM depth", "ok");
  std::printf("%s\n", std::string(78, '-').c_str());
  long hyde_luts = 0, hyde_depth = 0, fm_luts = 0, fm_depth = 0;
  bool all_ok = true;
  for (const auto& name : circuits) {
    const auto input = mcnc::make_circuit(name);
    const auto hyde =
        baseline::run_system(input, baseline::System::kHyde, 5, 128);
    const auto fm = mapper::flowmap(input, 5);
    const bool fm_ok = net::check_equivalence(input, fm.network).equivalent;
    all_ok = all_ok && hyde.verified && fm_ok;
    hyde_luts += hyde.luts;
    hyde_depth += hyde.depth;
    fm_luts += fm.luts;
    fm_depth += fm.depth;
    std::printf("%-8s | %12d %12d | %12d %12d | %s\n", name.c_str(), hyde.luts,
                hyde.depth, fm.luts, fm.depth,
                hyde.verified && fm_ok ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("%-8s | %12ld %12ld | %12ld %12ld\n", "Total", hyde_luts,
              hyde_depth, fm_luts, fm_depth);
  std::printf("\n(Expected shape: FlowMap wins or ties on depth, the "
              "decomposition flow wins on area.)\n");
  return all_ok ? 0 : 1;
}
