/// Ablation A: how much does the compatible-class encoding buy over random
/// encoding (DESIGN.md §5)? Runs the HYDE flow with the encoding policy
/// toggled, everything else fixed.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/flow.hpp"
#include "mapper/lutmap.hpp"

int main() {
  using namespace hyde;
  const std::vector<std::string> circuits{
      "9sym", "rd73", "rd84", "z4ml", "5xp1", "clip", "alu2", "misex1",
      "sao2", "apex4", "misex3", "duke2", "f51m"};
  std::printf("Ablation A: encoding policy (HYDE flow, k=5)\n");
  std::printf("%-8s | %10s %10s %10s | %10s %12s\n", "circuit", "random",
              "cube-min", "class-min", "enc runs", "random kept");
  std::printf("%s\n", std::string(76, '-').c_str());
  long total_random = 0, total_cube = 0, total_paper = 0;
  for (const auto& name : circuits) {
    const auto input = mcnc::make_circuit(name);
    auto luts_for = [&input](core::EncodingPolicy policy,
                             core::FlowStats* stats_out) {
      core::FlowOptions options = core::hyde_options(5);
      options.encoding = policy;
      auto flow = core::run_flow(input, options);
      mapper::dedup_shared_nodes(flow.network);
      mapper::collapse_into_fanouts(flow.network, 5);
      if (stats_out != nullptr) *stats_out = flow.stats;
      return mapper::lut_count(flow.network);
    };
    core::FlowStats paper_stats;
    const int random_luts = luts_for(core::EncodingPolicy::kRandom, nullptr);
    const int cube_luts = luts_for(core::EncodingPolicy::kCubeCount, nullptr);
    const int paper_luts =
        luts_for(core::EncodingPolicy::kCompatibleClass, &paper_stats);
    total_random += random_luts;
    total_cube += cube_luts;
    total_paper += paper_luts;
    std::printf("%-8s | %10d %10d %10d | %10d %12d\n", name.c_str(),
                random_luts, cube_luts, paper_luts, paper_stats.encoder_runs,
                paper_stats.encoder_random_kept);
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(76, '-').c_str());
  std::printf("%-8s | %10ld %10ld %10ld   (paper claim: class-min beats the "
              "[3]-style cube objective for LUTs)\n",
              "Total", total_random, total_cube, total_paper);
  return 0;
}
