/// \file bench_util.hpp
/// \brief Shared helpers for the table-reproduction harnesses.

#pragma once

#include <cstdio>
#include <string>

#include "baseline/flows.hpp"
#include "mcnc/benchmarks.hpp"

namespace hyde::benchutil {

/// Formats a paper number, printing '-' for the missing entries.
inline std::string paper_cell(int value) {
  return value < 0 ? std::string("-") : std::to_string(value);
}

/// Runs one system over one circuit with verification and returns the result.
inline baseline::BaselineResult run(const std::string& circuit,
                                    baseline::System system, int k) {
  const auto input = mcnc::make_circuit(circuit);
  return baseline::run_system(input, system, k, /*verify_vectors=*/128);
}

}  // namespace hyde::benchutil
