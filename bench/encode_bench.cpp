/// \file encode_bench.cpp
/// \brief Classes-and-encoding benchmark: times compatible-class computation
/// and the Figure-3 encoder under the engine's configurations, and emits
/// JSON rows for BENCH_encode.json.
///
/// The "plain" configuration is the seed code path: column compatibility by
/// per-pair BDD disjointness (off() recomputed per pair in the seed; here the
/// hoisted form, which is checksum-identical), clique partitioning by the
/// recount-from-scratch reference, and a serial encoder.  The other
/// configurations layer on the packed row-signature compatibility test, the
/// incrementally maintained clique partitioner and the snapshot-parallel
/// encoder Steps 4 and 8.  Every configuration of the same workload must
/// produce the identical checksum — the harness verifies this itself and
/// fails (exit 1) on any mismatch, so a committed BENCH_encode.json is also
/// a functional-equivalence proof for the machine that produced it.
///
/// Protocol:
///
///     encode_bench --label=seed --out=BENCH_encode.json       (full run)
///     encode_bench --quick                                    (CI smoke)
///
/// Checksums are FNV-1a mixes of the class column lists, the chosen codes
/// and the encoder trace geometry — invariants the knobs must never change.
/// The JSON additionally reports, per configuration, the summed seconds over
/// all workloads and the speedup against "plain" (the combined
/// classes+encoding phase ratio).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/encoder.hpp"
#include "decomp/compatible.hpp"
#include "tt/truth_table.hpp"

namespace {

using hyde::bdd::Bdd;
using hyde::bdd::Manager;
using hyde::decomp::IsfBdd;
using hyde::tt::TruthTable;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFull;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

struct WorkloadResult {
  std::string name;
  std::string tag;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< config-independent functional invariant
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// An engine configuration under test.  "plain" reproduces the seed path.
struct EngineConfig {
  const char* tag;
  bool signatures;
  bool reference_clique;
  int threads;
};

const EngineConfig kConfigs[] = {
    {"plain", false, true, 1},
    {"signatures", true, true, 1},
    {"incremental", true, false, 1},
    {"parallel2", true, false, 2},
    {"parallel4", true, false, 4},
};

hyde::decomp::ClassComputeOptions class_options(const EngineConfig& config) {
  hyde::decomp::ClassComputeOptions options;
  options.use_signatures = config.signatures;
  options.use_reference_clique = config.reference_clique;
  return options;
}

/// A DC-rich random decomposition instance. Minterms are on with probability
/// 1/on_mod and (when off) don't-care with probability 1/dc_mod. The classes
/// workload uses a sparse on-set with half the space don't-care — a dense
/// column-compatibility graph where clique partitioning genuinely merges
/// columns (the regime the paper's Section-3.1 don't-care assignment
/// targets); the encoder workload uses lighter don't-cares so many classes
/// survive into the Figure-3 steps.
hyde::decomp::DecompSpec random_spec(Manager& mgr, int num_vars, int bound_vars,
                                     int on_mod, int dc_mod,
                                     std::uint64_t& state) {
  const Bdd on = mgr.from_truth_table(TruthTable::from_lambda(
      num_vars, [&state, on_mod](std::uint64_t) {
        return splitmix64(state) % static_cast<std::uint64_t>(on_mod) == 0;
      }));
  const Bdd dc_raw = mgr.from_truth_table(TruthTable::from_lambda(
      num_vars, [&state, dc_mod](std::uint64_t) {
        return splitmix64(state) % static_cast<std::uint64_t>(dc_mod) == 0;
      }));
  hyde::decomp::DecompSpec spec;
  spec.mgr = &mgr;
  spec.f = IsfBdd{on, dc_raw & ~on};
  for (int v = 0; v < bound_vars; ++v) spec.bound.push_back(v);
  for (int v = bound_vars; v < num_vars; ++v) spec.free.push_back(v);
  return spec;
}

std::uint64_t fold_classes(std::uint64_t checksum,
                           const hyde::decomp::ClassResult& classes) {
  checksum = fnv1a(checksum, static_cast<std::uint64_t>(classes.columns.size()));
  checksum = fnv1a(checksum, static_cast<std::uint64_t>(classes.classes.size()));
  for (const auto& cls : classes.classes) {
    for (int c : cls.columns) {
      checksum = fnv1a(checksum, static_cast<std::uint64_t>(c));
    }
    checksum = fnv1a(checksum, 0xC1A55ull);
  }
  return checksum;
}

/// Compatible-class computation over wide DC-rich charts: the pairwise
/// compatibility test (quadratic in columns) and the clique partitioner are
/// the whole cost; the signature and incremental paths attack exactly those.
WorkloadResult bench_classes(const EngineConfig& config, int num_vars,
                             int bound_vars, int functions, int rounds) {
  WorkloadResult result;
  result.name = "classes_x" + std::to_string(num_vars) + "_" + config.tag;
  result.tag = config.tag;
  const auto options = class_options(config);
  std::uint64_t checksum = 0xCBF29CE484222325ull;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t state = 0xC0FFEE + static_cast<std::uint64_t>(num_vars);
    Manager mgr(num_vars);
    for (int i = 0; i < functions; ++i) {
      const auto spec = random_spec(mgr, num_vars, bound_vars, /*on_mod=*/5,
                                    /*dc_mod=*/2, state);
      const auto classes = hyde::decomp::compute_compatible_classes(
          spec, hyde::decomp::DcPolicy::kCliquePartition, options);
      checksum = fold_classes(checksum, classes);
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = checksum;
  return result;
}

/// Class computation followed by the full Figure-3 encoder (Steps 1-9): the
/// configured class engine also backs the encoder's Step-8 image-class
/// counts, and the thread knob engages the snapshot-parallel Steps 4 and 8.
WorkloadResult bench_encode(const EngineConfig& config, int num_vars,
                            int bound_vars, int functions, int rounds) {
  WorkloadResult result;
  result.name = "encode_x" + std::to_string(num_vars) + "_" + config.tag;
  result.tag = config.tag;
  const auto options = class_options(config);
  std::uint64_t checksum = 0xCBF29CE484222325ull;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t state = 0xE2C0DE + static_cast<std::uint64_t>(num_vars);
    for (int i = 0; i < functions; ++i) {
      // Managers sized past num_vars so α code bits get fresh variables.
      Manager mgr(num_vars + 6);
      const auto spec = random_spec(mgr, num_vars, bound_vars, /*on_mod=*/3,
                                    /*dc_mod=*/4, state);
      const auto classes = hyde::decomp::compute_compatible_classes(
          spec, hyde::decomp::DcPolicy::kCliquePartition, options);
      checksum = fold_classes(checksum, classes);
      if (classes.num_classes() < 2) continue;
      std::vector<int> alpha_vars;
      for (int j = 0; j < classes.code_bits(); ++j) {
        alpha_vars.push_back(num_vars + j);
      }
      hyde::core::EncoderOptions enc;
      enc.k = 4;  // small κ forces the non-trivial Steps 3-8 to run
      enc.seed = static_cast<std::uint64_t>(i) + 1;
      enc.class_options = options;
      enc.threads = config.threads;
      const auto choice = hyde::core::encode_classes(mgr, classes, spec.free,
                                                     alpha_vars, enc);
      checksum = fnv1a(checksum, static_cast<std::uint64_t>(choice.encoding.num_bits));
      for (std::uint32_t code : choice.encoding.codes) {
        checksum = fnv1a(checksum, code);
      }
      checksum = fnv1a(checksum, choice.trace.used_random ? 1u : 0u);
      checksum = fnv1a(checksum,
                       static_cast<std::uint64_t>(choice.trace.num_rows + 16));
      checksum = fnv1a(checksum,
                       static_cast<std::uint64_t>(choice.trace.num_cols + 16));
      checksum = fnv1a(
          checksum,
          static_cast<std::uint64_t>(choice.trace.random_image_classes + 16));
      checksum = fnv1a(
          checksum,
          static_cast<std::uint64_t>(choice.trace.chosen_image_classes + 16));
    }
  }
  result.seconds = seconds_since(start);
  result.checksum = checksum;
  return result;
}

void append_json(std::string& out, const WorkloadResult& r, bool last) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"checksum\": %llu}%s\n",
                r.name.c_str(), r.seconds,
                static_cast<unsigned long long>(r.checksum), last ? "" : ",");
  out += buf;
}

/// Workloads with the same base name must agree on the checksum across every
/// engine configuration; returns false (and reports) on any divergence.
bool checksums_agree(const std::vector<WorkloadResult>& results) {
  std::map<std::string, std::uint64_t> expected;
  bool ok = true;
  for (const auto& r : results) {
    const std::size_t cut = r.name.rfind('_');
    const std::string base = r.name.substr(0, cut);
    const auto [it, inserted] = expected.emplace(base, r.checksum);
    if (!inserted && it->second != r.checksum) {
      std::fprintf(stderr,
                   "encode_bench: checksum mismatch for %s (%llu != %llu)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(it->second));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "engine";
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: encode_bench [--label=NAME] [--out=FILE] [--quick]\n");
      return 2;
    }
  }

  const int classes_vars = quick ? 11 : 13;
  const int classes_bound = quick ? 7 : 9;
  const int classes_functions = quick ? 1 : 2;
  const int classes_rounds = quick ? 1 : 2;
  // Three free variables keep the image small enough that the Step-3 λ'
  // must mix α and position variables — the full Figure-3 pipeline (Psc
  // table, b-matching, row merging, Step-8 comparison) runs on every
  // instance instead of exiting through Theorem 3.1.
  const int encode_vars = quick ? 7 : 9;
  const int encode_bound = quick ? 4 : 6;
  const int encode_functions = quick ? 2 : 5;
  const int encode_rounds = quick ? 1 : 3;

  std::vector<WorkloadResult> results;
  for (const EngineConfig& config : kConfigs) {
    results.push_back(bench_classes(config, classes_vars, classes_bound,
                                    classes_functions, classes_rounds));
  }
  for (const EngineConfig& config : kConfigs) {
    results.push_back(bench_encode(config, encode_vars, encode_bound,
                                   encode_functions, encode_rounds));
  }

  if (!checksums_agree(results)) return 1;

  // Combined classes+encoding seconds per configuration, and the speedup
  // each configuration achieves over the seed-equivalent "plain" path.
  std::map<std::string, double> totals;
  for (const auto& r : results) totals[r.tag] += r.seconds;
  const double plain_total = totals["plain"];

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyde.bench_encode.v1\",\n";
  json += "  \"engine\": \"" + label + "\",\n";
  json += "  \"configs\": [";
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    json += std::string("\"") + kConfigs[i].tag + "\"";
    if (i + 1 < std::size(kConfigs)) json += ", ";
  }
  json += "],\n";
  json += "  \"totals\": [\n";
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const double total = totals[kConfigs[i].tag];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"config\": \"%s\", \"seconds\": %.6f, "
                  "\"speedup_vs_plain\": %.3f}%s\n",
                  kConfigs[i].tag, total,
                  total > 0.0 ? plain_total / total : 0.0,
                  i + 1 < std::size(kConfigs) ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "encode_bench: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
