/// Reproduces paper Table 1: XC3000 CLB counts of IMODEC [5], FGSyn [4] and
/// HYDE over the MCNC-like suite, plus CPU seconds.
///
/// Absolute counts are not expected to match the 1998 publication (the
/// circuits are documented synthetic stand-ins, see DESIGN.md §3); the claim
/// under reproduction is the *relative* shape: HYDE's total at or below the
/// baselines' on the common subset.
///
/// All (circuit, system) jobs run through the runtime batch scheduler with
/// the shared NPN result cache; per-job results are identical to the former
/// serial loop because job seeds and cache contents never depend on the
/// schedule (see docs/RUNTIME.md).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "runtime/batch.hpp"

int main() {
  using hyde::baseline::System;
  using hyde::benchutil::paper_cell;

  const auto rows = hyde::mcnc::paper_table1();
  std::vector<hyde::runtime::BatchJob> jobs;
  for (const auto& row : rows) {
    for (System system :
         {System::kImodecLike, System::kFgsynLike, System::kHyde}) {
      jobs.push_back(hyde::runtime::BatchJob{row.circuit, system, 5, 1});
    }
  }
  hyde::runtime::BatchOptions options;
  options.workers = hyde::runtime::default_worker_count();
  const hyde::runtime::RunReport report = hyde::runtime::run_batch(jobs, options);

  std::printf("Table 1: Experimental Results for XC3000 Device (CLB counts)\n");
  std::printf(
      "%-8s | %8s %8s %8s %8s | %8s %8s %8s %9s | %s\n", "circuit",
      "IMODEC*", "FGSyn*", "HYDE", "sec", "p.IMODEC", "p.FGSyn", "p.HYDE",
      "p.sec", "ok");
  std::printf("%s\n", std::string(110, '-').c_str());

  long total_imodec = 0, total_fgsyn = 0, total_hyde = 0;
  long paper_imodec = 0, paper_fgsyn = 0, paper_hyde = 0;
  bool all_verified = report.all_ok();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const auto& imodec = report.jobs[3 * r];
    const auto& fgsyn = report.jobs[3 * r + 1];
    const auto& hyde = report.jobs[3 * r + 2];
    const bool verified = imodec.verified && fgsyn.verified && hyde.verified;
    total_imodec += imodec.clbs;
    total_fgsyn += fgsyn.clbs;
    total_hyde += hyde.clbs;
    if (row.fgsyn_clb >= 0) {
      paper_imodec += row.imodec_clb;
      paper_fgsyn += row.fgsyn_clb;
      paper_hyde += row.hyde_clb;
    }
    std::printf("%-8s | %8d %8d %8d %8.2f | %8s %8s %8s %9.1f | %s\n",
                row.circuit.c_str(), imodec.clbs, fgsyn.clbs, hyde.clbs,
                imodec.seconds + fgsyn.seconds + hyde.seconds,
                paper_cell(row.imodec_clb).c_str(),
                paper_cell(row.fgsyn_clb).c_str(),
                paper_cell(row.hyde_clb).c_str(), row.cpu_seconds,
                verified ? "yes" : "NO");
  }
  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("%-8s | %8ld %8ld %8ld %8s | %8ld %8ld %8ld\n", "Total",
              total_imodec, total_fgsyn, total_hyde, "",
              paper_imodec, paper_fgsyn, paper_hyde);
  std::printf("\n(* simplified reimplementations of the baseline policies; "
              "p.* columns repeat the paper's reported numbers.\n"
              " Paper subtotals over the FGSyn-covered subset: "
              "IMODEC 964, FGSyn 895, HYDE 864.)\n");
  std::printf("\n%zu jobs in %.2fs wall on %d workers; NPN cache: %llu "
              "lookups, %llu unique functions, %.1f%% observed hit rate\n",
              report.jobs.size(), report.wall_seconds, report.workers,
              static_cast<unsigned long long>(report.cache.flow_lookups),
              static_cast<unsigned long long>(report.cache.unique_functions),
              100.0 * report.cache.hit_rate());
  std::printf("\nShape check: HYDE total %s IMODEC-like total; HYDE total %s "
              "FGSyn-like total; all circuits verified: %s\n",
              total_hyde <= total_imodec ? "<=" : ">",
              total_hyde <= total_fgsyn ? "<=" : ">",
              all_verified ? "yes" : "NO");
  return all_verified ? 0 : 1;
}
