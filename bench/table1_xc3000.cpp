/// Reproduces paper Table 1: XC3000 CLB counts of IMODEC [5], FGSyn [4] and
/// HYDE over the MCNC-like suite, plus CPU seconds.
///
/// Absolute counts are not expected to match the 1998 publication (the
/// circuits are documented synthetic stand-ins, see DESIGN.md §3); the claim
/// under reproduction is the *relative* shape: HYDE's total at or below the
/// baselines' on the common subset.

#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using hyde::baseline::System;
  using hyde::benchutil::paper_cell;
  using hyde::benchutil::run;

  std::printf("Table 1: Experimental Results for XC3000 Device (CLB counts)\n");
  std::printf(
      "%-8s | %8s %8s %8s %8s | %8s %8s %8s %9s | %s\n", "circuit",
      "IMODEC*", "FGSyn*", "HYDE", "sec", "p.IMODEC", "p.FGSyn", "p.HYDE",
      "p.sec", "ok");
  std::printf("%s\n", std::string(110, '-').c_str());

  long total_imodec = 0, total_fgsyn = 0, total_hyde = 0;
  long paper_imodec = 0, paper_fgsyn = 0, paper_hyde = 0;
  bool all_verified = true;
  for (const auto& row : hyde::mcnc::paper_table1()) {
    const auto imodec = run(row.circuit, System::kImodecLike, 5);
    const auto fgsyn = run(row.circuit, System::kFgsynLike, 5);
    const auto hyde = run(row.circuit, System::kHyde, 5);
    const bool verified = imodec.verified && fgsyn.verified && hyde.verified;
    all_verified = all_verified && verified;
    total_imodec += imodec.clbs;
    total_fgsyn += fgsyn.clbs;
    total_hyde += hyde.clbs;
    if (row.fgsyn_clb >= 0) {
      paper_imodec += row.imodec_clb;
      paper_fgsyn += row.fgsyn_clb;
      paper_hyde += row.hyde_clb;
    }
    std::printf("%-8s | %8d %8d %8d %8.2f | %8s %8s %8s %9.1f | %s\n",
                row.circuit.c_str(), imodec.clbs, fgsyn.clbs, hyde.clbs,
                imodec.seconds + fgsyn.seconds + hyde.seconds,
                paper_cell(row.imodec_clb).c_str(),
                paper_cell(row.fgsyn_clb).c_str(),
                paper_cell(row.hyde_clb).c_str(), row.cpu_seconds,
                verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("%-8s | %8ld %8ld %8ld %8s | %8ld %8ld %8ld\n", "Total",
              total_imodec, total_fgsyn, total_hyde, "",
              paper_imodec, paper_fgsyn, paper_hyde);
  std::printf("\n(* simplified reimplementations of the baseline policies; "
              "p.* columns repeat the paper's reported numbers.\n"
              " Paper subtotals over the FGSyn-covered subset: "
              "IMODEC 964, FGSyn 895, HYDE 864.)\n");
  std::printf("\nShape check: HYDE total %s IMODEC-like total; HYDE total %s "
              "FGSyn-like total; all circuits verified: %s\n",
              total_hyde <= total_imodec ? "<=" : ">",
              total_hyde <= total_fgsyn ? "<=" : ">",
              all_verified ? "yes" : "NO");
  return all_verified ? 0 : 1;
}
