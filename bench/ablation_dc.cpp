/// Ablation B: don't-care assignment by clique partitioning (Section 3.1)
/// versus treating every distinct column as its own class. The don't cares
/// arise inside the flow itself (unused code words of strict encodings and
/// hyper-function slots), so the whole flow is the right test harness.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/flow.hpp"
#include "mapper/lutmap.hpp"

int main() {
  using namespace hyde;
  const std::vector<std::string> circuits{
      "9sym", "rd84", "5xp1", "clip", "alu2", "sao2", "misex1", "apex4",
      "misex3", "duke2"};
  std::printf("Ablation B: don't-care assignment policy (HYDE flow, k=5)\n");
  std::printf("%-8s | %16s %16s\n", "circuit", "distinct-columns",
              "clique-partition");
  std::printf("%s\n", std::string(48, '-').c_str());
  long total_plain = 0, total_clique = 0;
  for (const auto& name : circuits) {
    const auto input = mcnc::make_circuit(name);
    core::FlowOptions plain_options = core::hyde_options(5);
    plain_options.dc_policy = decomp::DcPolicy::kDistinctColumns;
    auto plain_flow = core::run_flow(input, plain_options);
    mapper::dedup_shared_nodes(plain_flow.network);
    mapper::collapse_into_fanouts(plain_flow.network, 5);

    auto clique_flow = core::run_flow(input, core::hyde_options(5));
    mapper::dedup_shared_nodes(clique_flow.network);
    mapper::collapse_into_fanouts(clique_flow.network, 5);

    const int plain = mapper::lut_count(plain_flow.network);
    const int clique = mapper::lut_count(clique_flow.network);
    total_plain += plain;
    total_clique += clique;
    std::printf("%-8s | %16d %16d\n", name.c_str(), plain, clique);
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(48, '-').c_str());
  std::printf("%-8s | %16ld %16ld   (clique %s distinct)\n", "Total",
              total_plain, total_clique,
              total_clique <= total_plain ? "<=" : ">");
  return 0;
}
