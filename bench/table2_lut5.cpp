/// Reproduces paper Table 2: 5-input 1-output LUT counts of the Sawada et
/// al. [8] flows (without and with resubstitution) and HYDE.
///
/// The paper's third [8] column ("PO") is a stronger variant of [8] that we
/// do not reimplement; its reported numbers are repeated for reference.
/// Shape under reproduction: HYDE competitive with the resubstitution flow
/// while handling the large circuits [8] could not (des, e64, rot, C499,
/// C880 — the '-' rows).

#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using hyde::baseline::System;
  using hyde::benchutil::paper_cell;
  using hyde::benchutil::run;

  std::printf("Table 2: Experimental Results for 5-input 1-output LUTs\n");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s %8s | %s\n", "circuit",
              "noresub*", "resub*", "HYDE", "p.nores", "p.resub", "p.PO",
              "p.HYDE", "ok");
  std::printf("%s\n", std::string(100, '-').c_str());

  long total_noresub = 0, total_resub = 0, total_hyde = 0;
  long common_noresub = 0, common_resub = 0, common_hyde = 0;
  bool all_verified = true;
  for (const auto& row : hyde::mcnc::paper_table2()) {
    const auto noresub = run(row.circuit, System::kSawadaLike, 5);
    const auto resub = run(row.circuit, System::kSawadaResubLike, 5);
    const auto hyde = run(row.circuit, System::kHyde, 5);
    const bool verified = noresub.verified && resub.verified && hyde.verified;
    all_verified = all_verified && verified;
    total_noresub += noresub.luts;
    total_resub += resub.luts;
    total_hyde += hyde.luts;
    if (row.noresub_lut >= 0) {
      common_noresub += noresub.luts;
      common_resub += resub.luts;
      common_hyde += hyde.luts;
    }
    std::printf("%-8s | %8d %8d %8d | %8s %8s %8s %8s | %s\n",
                row.circuit.c_str(), noresub.luts, resub.luts, hyde.luts,
                paper_cell(row.noresub_lut).c_str(),
                paper_cell(row.resub_lut).c_str(),
                paper_cell(row.po_lut).c_str(),
                paper_cell(row.hyde_lut).c_str(), verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("%-8s | %8ld %8ld %8ld |   (paper totals on the same subset: "
              "1578 / 1317 / 1311)\n",
              "Common", common_noresub, common_resub, common_hyde);
  std::printf("%-8s | %8ld %8ld %8ld\n", "Total", total_noresub, total_resub,
              total_hyde);
  std::printf("\n(* simplified reimplementations; see DESIGN.md §3. "
              "'Common' sums rows where [8] reported numbers.)\n");
  std::printf("\nShape check: HYDE common-total %s plain-RK common-total; "
              "all large '-' circuits completed by HYDE: yes; "
              "all circuits verified: %s\n",
              common_hyde <= common_noresub ? "<=" : ">",
              all_verified ? "yes" : "NO");
  return all_verified ? 0 : 1;
}
