/// Reproduces paper Table 2: 5-input 1-output LUT counts of the Sawada et
/// al. [8] flows (without and with resubstitution) and HYDE.
///
/// The paper's third [8] column ("PO") is a stronger variant of [8] that we
/// do not reimplement; its reported numbers are repeated for reference.
/// Shape under reproduction: HYDE competitive with the resubstitution flow
/// while handling the large circuits [8] could not (des, e64, rot, C499,
/// C880 — the '-' rows).
///
/// All (circuit, system) jobs run through the runtime batch scheduler with
/// the shared NPN result cache; per-job results are identical to the former
/// serial loop because job seeds and cache contents never depend on the
/// schedule (see docs/RUNTIME.md).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "runtime/batch.hpp"

int main() {
  using hyde::baseline::System;
  using hyde::benchutil::paper_cell;

  const auto rows = hyde::mcnc::paper_table2();
  std::vector<hyde::runtime::BatchJob> jobs;
  for (const auto& row : rows) {
    for (System system : {System::kSawadaLike, System::kSawadaResubLike,
                          System::kHyde}) {
      jobs.push_back(hyde::runtime::BatchJob{row.circuit, system, 5, 1});
    }
  }
  hyde::runtime::BatchOptions options;
  options.workers = hyde::runtime::default_worker_count();
  const hyde::runtime::RunReport report = hyde::runtime::run_batch(jobs, options);

  std::printf("Table 2: Experimental Results for 5-input 1-output LUTs\n");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s %8s | %s\n", "circuit",
              "noresub*", "resub*", "HYDE", "p.nores", "p.resub", "p.PO",
              "p.HYDE", "ok");
  std::printf("%s\n", std::string(100, '-').c_str());

  long total_noresub = 0, total_resub = 0, total_hyde = 0;
  long common_noresub = 0, common_resub = 0, common_hyde = 0;
  bool all_verified = report.all_ok();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const auto& noresub = report.jobs[3 * r];
    const auto& resub = report.jobs[3 * r + 1];
    const auto& hyde = report.jobs[3 * r + 2];
    const bool verified = noresub.verified && resub.verified && hyde.verified;
    total_noresub += noresub.luts;
    total_resub += resub.luts;
    total_hyde += hyde.luts;
    if (row.noresub_lut >= 0) {
      common_noresub += noresub.luts;
      common_resub += resub.luts;
      common_hyde += hyde.luts;
    }
    std::printf("%-8s | %8d %8d %8d | %8s %8s %8s %8s | %s\n",
                row.circuit.c_str(), noresub.luts, resub.luts, hyde.luts,
                paper_cell(row.noresub_lut).c_str(),
                paper_cell(row.resub_lut).c_str(),
                paper_cell(row.po_lut).c_str(),
                paper_cell(row.hyde_lut).c_str(), verified ? "yes" : "NO");
  }
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("%-8s | %8ld %8ld %8ld |   (paper totals on the same subset: "
              "1578 / 1317 / 1311)\n",
              "Common", common_noresub, common_resub, common_hyde);
  std::printf("%-8s | %8ld %8ld %8ld\n", "Total", total_noresub, total_resub,
              total_hyde);
  std::printf("\n(* simplified reimplementations; see DESIGN.md §3. "
              "'Common' sums rows where [8] reported numbers.)\n");
  std::printf("\n%zu jobs in %.2fs wall on %d workers; NPN cache: %llu "
              "lookups, %llu unique functions, %.1f%% observed hit rate\n",
              report.jobs.size(), report.wall_seconds, report.workers,
              static_cast<unsigned long long>(report.cache.flow_lookups),
              static_cast<unsigned long long>(report.cache.unique_functions),
              100.0 * report.cache.hit_rate());
  std::printf("\nShape check: HYDE common-total %s plain-RK common-total; "
              "all large '-' circuits completed by HYDE: yes; "
              "all circuits verified: %s\n",
              common_hyde <= common_noresub ? "<=" : ">",
              all_verified ? "yes" : "NO");
  return all_verified ? 0 : 1;
}
