/// \file windowed_reorder_test.cpp
/// \brief Windowed flow x reorder x threads: every reorder mode must stay
/// bit-identical across thread counts, reorder must never hurt the fallback
/// ladder under a tight budget, and the manager pool must be result-neutral.

#include "part/windowed.hpp"

#include <string>

#include "baseline/flows.hpp"
#include "bdd/pool.hpp"
#include "gtest/gtest.h"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/verify.hpp"

namespace hyde::part {
namespace {

WindowedFlowOptions reorder_options(bdd::ReorderMode mode, int threads) {
  WindowedFlowOptions options;
  options.flow = baseline::system_flow_options(baseline::System::kHyde, 5);
  options.flow.reorder = mode;
  options.window.max_inputs = 10;
  options.window.max_nodes = 40;
  options.threads = threads;
  return options;
}

TEST(WindowedReorderTest, BitIdenticalAcrossThreadsInEveryMode) {
  const net::Network input = mcnc::make_circuit("apex7");
  for (const bdd::ReorderMode mode :
       {bdd::ReorderMode::kOff, bdd::ReorderMode::kSift,
        bdd::ReorderMode::kAuto}) {
    std::string reference_blif;
    for (int threads : {1, 2, 4}) {
      const WindowedFlowResult result =
          run_windowed_flow(input, reorder_options(mode, threads));
      const std::string blif = net::write_blif_string(result.network);
      if (threads == 1) {
        EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent)
            << "mode " << static_cast<int>(mode);
        reference_blif = blif;
        continue;
      }
      EXPECT_EQ(blif, reference_blif)
          << "mode " << static_cast<int>(mode) << " diverges at threads="
          << threads;
    }
  }
}

TEST(WindowedReorderTest, TightBudgetLadderNeverGetsWorseWithReorder) {
  // Under a per-window node budget, the governance ladder (GC -> sift ->
  // split/pass-through) may rescue windows that blow the budget under the
  // identity order, and must never *create* fallbacks: sifting only shrinks
  // the working set the hard limit sees.
  const net::Network input = mcnc::random_multilevel(
      "ladder", /*num_inputs=*/22, /*num_outputs=*/6, /*num_nodes=*/100,
      /*min_arity=*/4, /*max_arity=*/8, /*seed=*/7);

  WindowedFlowOptions off = reorder_options(bdd::ReorderMode::kOff, 2);
  off.window_bdd_budget = 3000;
  off.max_split_depth = 3;
  const WindowedFlowResult off_result = run_windowed_flow(input, off);
  EXPECT_TRUE(net::check_equivalence(input, off_result.network).equivalent);

  WindowedFlowOptions sift = reorder_options(bdd::ReorderMode::kSift, 2);
  sift.window_bdd_budget = 3000;
  sift.max_split_depth = 3;
  const WindowedFlowResult sift_result = run_windowed_flow(input, sift);
  EXPECT_TRUE(net::check_equivalence(input, sift_result.network).equivalent);

  EXPECT_LE(sift_result.stats.windows_budget_fallbacks,
            off_result.stats.windows_budget_fallbacks);
  EXPECT_LE(sift_result.stats.windows_passthrough +
                sift_result.stats.windows_split,
            off_result.stats.windows_passthrough +
                off_result.stats.windows_split);
}

TEST(WindowedReorderTest, ManagerPoolIsResultNeutral) {
  // The pool recycles warmed managers across windows; it must never change a
  // single bit of the output, with or without reordering in the mix.
  const net::Network input = mcnc::make_circuit("rd84");
  for (const bdd::ReorderMode mode :
       {bdd::ReorderMode::kOff, bdd::ReorderMode::kAuto}) {
    const WindowedFlowResult plain =
        run_windowed_flow(input, reorder_options(mode, 2));

    bdd::ManagerPool pool;
    WindowedFlowOptions pooled_options = reorder_options(mode, 2);
    pooled_options.flow.manager_pool = &pool;
    const WindowedFlowResult pooled = run_windowed_flow(input, pooled_options);

    EXPECT_EQ(net::write_blif_string(plain.network),
              net::write_blif_string(pooled.network))
        << "mode " << static_cast<int>(mode);
    EXPECT_GT(pool.stats().acquires, 0u);
  }
}

}  // namespace
}  // namespace hyde::part
