/// Window extraction invariants: partitioning, budgets, convexity /
/// stitchability, MFFC fanout-freeness and sub-network semantics.

#include "part/window.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/network.hpp"
#include "tt/truth_table.hpp"

namespace hyde::part {
namespace {

/// Simulates every node of \p network under a PI assignment (inputs() order)
/// via the local BDDs, so wide nodes cost nothing exponential.
std::vector<bool> simulate(const net::Network& network,
                           const std::vector<bool>& pi_values) {
  std::vector<bool> value(static_cast<std::size_t>(network.num_nodes()), false);
  for (std::size_t i = 0; i < network.inputs().size(); ++i) {
    value[static_cast<std::size_t>(network.inputs()[i])] = pi_values[i];
  }
  for (net::NodeId id : network.topo_order()) {
    const net::Node& n = network.node(id);
    if (n.kind != net::NodeKind::kLogic) continue;
    std::vector<bool> local(n.fanins.size());
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      local[i] = value[static_cast<std::size_t>(n.fanins[i])];
    }
    value[static_cast<std::size_t>(id)] =
        network.manager().eval(n.local, local);
  }
  return value;
}

/// Checks every documented extraction invariant over \p windows.
void check_invariants(const net::Network& network,
                      const std::vector<Window>& windows,
                      const WindowOptions& options) {
  // Partition: every live logic node in exactly one window.
  std::set<net::NodeId> live;
  for (net::NodeId id : network.topo_order()) {
    if (network.node(id).kind == net::NodeKind::kLogic) live.insert(id);
  }
  std::vector<int> window_of(static_cast<std::size_t>(network.num_nodes()), -1);
  std::set<net::NodeId> seen;
  for (const Window& w : windows) {
    for (net::NodeId m : w.members) {
      EXPECT_TRUE(seen.insert(m).second) << "node in two windows";
      ASSERT_EQ(network.node(m).kind, net::NodeKind::kLogic);
      window_of[static_cast<std::size_t>(m)] = w.index;
    }
  }
  EXPECT_EQ(seen, live);

  for (const Window& w : windows) {
    EXPECT_LE(static_cast<int>(w.members.size()), options.max_nodes);
    if (!w.over_budget) {
      EXPECT_LE(static_cast<int>(w.inputs.size()), options.max_inputs);
    } else {
      EXPECT_EQ(w.members.size(), 1u);
    }
    // Inputs are outside; roots are members.
    for (net::NodeId i : w.inputs) {
      EXPECT_NE(window_of[static_cast<std::size_t>(i)], w.index);
    }
    for (net::NodeId r : w.roots) {
      EXPECT_EQ(window_of[static_cast<std::size_t>(r)], w.index);
    }
    // Stitchability (acyclic condensation): every member fanin is a PI, a
    // member, or a member of an earlier-indexed window.
    bool wide = false;
    for (net::NodeId m : w.members) {
      const net::Node& n = network.node(m);
      if (static_cast<int>(n.fanins.size()) > options.k) wide = true;
      for (net::NodeId f : n.fanins) {
        const int src = window_of[static_cast<std::size_t>(f)];
        EXPECT_TRUE(src == w.index ||
                    (src == -1 &&
                     network.node(f).kind == net::NodeKind::kInput) ||
                    src < w.index)
            << "fanin from a later window breaks the stitch order";
      }
    }
    EXPECT_EQ(w.needs_resynthesis, wide);
    // Every member read from outside (or driving a PO) is a root.
    for (net::NodeId m : w.members) {
      bool outside = false;
      for (const net::Output& o : network.outputs()) {
        if (o.driver == m) outside = true;
      }
      for (net::NodeId id : network.topo_order()) {
        if (window_of[static_cast<std::size_t>(id)] == w.index) continue;
        const net::Node& n = network.node(id);
        if (std::find(n.fanins.begin(), n.fanins.end(), m) != n.fanins.end()) {
          outside = true;
        }
      }
      const bool is_root =
          std::find(w.roots.begin(), w.roots.end(), m) != w.roots.end();
      EXPECT_EQ(is_root, outside);
    }
  }
}

TEST(WindowTest, LevelizeCountsLogicDepth) {
  net::Network n("lvl");
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.manager().ensure_vars(2);
  const auto g1 = n.add_logic("g1", {a, b},
                              n.manager().var(0) & n.manager().var(1));
  const auto g2 = n.add_logic("g2", {g1, a},
                              n.manager().var(0) | n.manager().var(1));
  n.add_output("y", g2);
  const std::vector<int> level = levelize(n);
  EXPECT_EQ(level[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(level[static_cast<std::size_t>(g1)], 1);
  EXPECT_EQ(level[static_cast<std::size_t>(g2)], 2);
}

TEST(WindowTest, MffcIsFanoutFree) {
  for (const char* name : {"rd73", "9sym", "b9", "apex7"}) {
    const net::Network network = mcnc::make_circuit(name);
    for (net::NodeId root : network.topo_order()) {
      if (network.node(root).kind != net::NodeKind::kLogic) continue;
      const std::vector<net::NodeId> cone = mffc(network, root);
      ASSERT_FALSE(cone.empty());
      EXPECT_EQ(cone.back(), root) << name;
      std::set<net::NodeId> in_cone(cone.begin(), cone.end());
      for (net::NodeId m : cone) {
        if (m == root) continue;
        // Fanout-free: every reader of a non-root member is in the cone,
        // and no PO escapes through it.
        for (const net::Output& o : network.outputs()) {
          EXPECT_NE(o.driver, m) << name;
        }
        for (net::NodeId id : network.topo_order()) {
          const net::Node& n = network.node(id);
          if (n.kind != net::NodeKind::kLogic) continue;
          if (std::find(n.fanins.begin(), n.fanins.end(), m) !=
              n.fanins.end()) {
            EXPECT_TRUE(in_cone.count(id)) << name;
          }
        }
      }
    }
  }
}

TEST(WindowTest, ExtractionInvariantsAcrossBudgets) {
  const std::vector<WindowOptions> budgets = {
      {/*max_inputs=*/4, /*max_nodes=*/8, /*k=*/5},
      {/*max_inputs=*/8, /*max_nodes=*/32, /*k=*/5},
      {/*max_inputs=*/12, /*max_nodes=*/64, /*k=*/5},
  };
  for (const char* name : {"rd84", "clip", "b9", "apex7", "count"}) {
    const net::Network network = mcnc::make_circuit(name);
    for (const WindowOptions& options : budgets) {
      const std::vector<Window> windows = extract_windows(network, options);
      ASSERT_FALSE(windows.empty()) << name;
      check_invariants(network, windows, options);
    }
  }
}

TEST(WindowTest, ExtractionIsDeterministic) {
  const net::Network network = mcnc::make_circuit("apex7");
  WindowOptions options;
  const std::vector<Window> a = extract_windows(network, options);
  const std::vector<Window> b = extract_windows(network, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_EQ(a[i].inputs, b[i].inputs);
    EXPECT_EQ(a[i].roots, b[i].roots);
  }
}

TEST(WindowTest, OverBudgetSingletonIsFlagged) {
  net::Network n("wide");
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(n.add_input("i" + std::to_string(i)));
  n.manager().ensure_vars(6);
  bdd::Bdd f = n.manager().one();
  for (int i = 0; i < 6; ++i) f = f & n.manager().var(i);
  const auto g = n.add_logic("g", pis, std::move(f));
  n.add_output("y", g);
  WindowOptions options;
  options.max_inputs = 4;
  options.max_nodes = 8;
  const std::vector<Window> windows = extract_windows(n, options);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].over_budget);
  EXPECT_TRUE(windows[0].needs_resynthesis);
  EXPECT_EQ(windows[0].inputs.size(), 6u);
}

TEST(WindowTest, SubnetworkMatchesHostOnRandomVectors) {
  const net::Network network = mcnc::make_circuit("rd84");
  WindowOptions options;
  options.max_inputs = 6;
  options.max_nodes = 16;
  const std::vector<Window> windows = extract_windows(network, options);
  std::mt19937_64 rng(7);
  for (const Window& w : windows) {
    const net::Network sub = window_subnetwork(network, w);
    ASSERT_EQ(sub.inputs().size(), w.inputs.size());
    ASSERT_EQ(sub.outputs().size(), w.roots.size());
    for (int vec = 0; vec < 16; ++vec) {
      std::vector<bool> pi_values(network.inputs().size());
      for (std::size_t i = 0; i < pi_values.size(); ++i) {
        pi_values[i] = (rng() & 1) != 0;
      }
      const std::vector<bool> host_value = simulate(network, pi_values);
      std::vector<bool> sub_pi(w.inputs.size());
      for (std::size_t i = 0; i < w.inputs.size(); ++i) {
        sub_pi[i] = host_value[static_cast<std::size_t>(w.inputs[i])];
      }
      const std::vector<bool> sub_out = sub.eval(sub_pi);
      for (std::size_t j = 0; j < w.roots.size(); ++j) {
        EXPECT_EQ(sub_out[j],
                  host_value[static_cast<std::size_t>(w.roots[j])]);
      }
    }
  }
}

TEST(WindowTest, SnapshotMaterializesTheExactSubnetwork) {
  // The plain-data snapshot must reproduce window_subnetwork bit for bit —
  // same names, wiring, functions and output order — since the windowed
  // engine materializes it on worker threads in place of a host extraction.
  const net::Network network = mcnc::make_circuit("rd84");
  WindowOptions options;
  options.max_inputs = 6;
  options.max_nodes = 16;
  const std::vector<Window> windows = extract_windows(network, options);
  ASSERT_FALSE(windows.empty());
  for (const Window& w : windows) {
    WindowSnapshot snapshot;
    ASSERT_TRUE(snapshot_window(network, w, &snapshot));
    EXPECT_EQ(snapshot.input_names.size(), w.inputs.size());
    EXPECT_EQ(snapshot.members.size(), w.members.size());
    EXPECT_EQ(snapshot.roots.size(), w.roots.size());
    const net::Network from_snapshot = materialize_snapshot(snapshot);
    const net::Network from_host = window_subnetwork(network, w);
    EXPECT_EQ(net::write_blif_string(from_snapshot),
              net::write_blif_string(from_host));
  }
}

TEST(WindowTest, SnapshotRefusesMembersTooWideForATruthTable) {
  // A member past tt::TruthTable::kMaxVars fanins cannot be captured as a
  // table; the engine must fall back to a prebuilt window_subnetwork clone.
  const int width = tt::TruthTable::kMaxVars + 1;
  net::Network n("toowide");
  std::vector<net::NodeId> pis;
  for (int i = 0; i < width; ++i) {
    pis.push_back(n.add_input("i" + std::to_string(i)));
  }
  n.manager().ensure_vars(width);
  bdd::Bdd f = n.manager().one();
  for (int i = 0; i < width; ++i) f = f & n.manager().var(i);
  const auto g = n.add_logic("g", pis, std::move(f));
  n.add_output("y", g);
  const std::vector<Window> windows = extract_windows(n, WindowOptions{});
  ASSERT_EQ(windows.size(), 1u);
  WindowSnapshot snapshot;
  EXPECT_FALSE(snapshot_window(n, windows[0], &snapshot));
}

TEST(WindowTest, MakeWindowSplitHalvesStayStitchable) {
  const net::Network network = mcnc::make_circuit("apex7");
  WindowOptions options;
  options.max_inputs = 12;
  options.max_nodes = 40;
  const std::vector<Window> windows = extract_windows(network, options);
  const Window* big = nullptr;
  for (const Window& w : windows) {
    if (w.members.size() >= 2 && (big == nullptr ||
                                  w.members.size() > big->members.size())) {
      big = &w;
    }
  }
  ASSERT_NE(big, nullptr);
  const std::size_t mid = big->members.size() / 2;
  std::vector<net::NodeId> lo(big->members.begin(),
                              big->members.begin() +
                                  static_cast<std::ptrdiff_t>(mid));
  std::vector<net::NodeId> hi(big->members.begin() +
                                  static_cast<std::ptrdiff_t>(mid),
                              big->members.end());
  const Window first = make_window(network, lo, big->index, options.k);
  const Window second = make_window(network, hi, big->index, options.k);
  EXPECT_EQ(first.members, lo);
  EXPECT_EQ(second.members, hi);
  // The first half never reads the second: topological halves stay ordered.
  for (net::NodeId i : first.inputs) {
    EXPECT_EQ(std::find(hi.begin(), hi.end(), i), hi.end());
  }
  // Signals crossing the cut show up as the second half's inputs.
  for (net::NodeId i : second.inputs) {
    const bool from_first = std::find(lo.begin(), lo.end(), i) != lo.end();
    const bool from_outside =
        std::find(big->inputs.begin(), big->inputs.end(), i) !=
        big->inputs.end();
    EXPECT_TRUE(from_first || from_outside);
  }
}

}  // namespace
}  // namespace hyde::part
