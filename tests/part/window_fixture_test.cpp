/// Windowed flow over the committed BLIF fixtures (tests/data): file-input
/// path, latch extraction, equivalence of the stitched result and
/// bit-identical output across window thread counts.

#include <fstream>
#include <string>

#include "baseline/flows.hpp"
#include "gtest/gtest.h"
#include "net/blif.hpp"
#include "net/verify.hpp"
#include "part/windowed.hpp"

namespace hyde::part {
namespace {

net::Network load_fixture(const std::string& file, bool latches) {
  const std::string path = std::string(HYDE_BLIF_FIXTURE_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  net::BlifReadOptions options;
  options.latch_combinational = latches;
  return std::move(net::read_blif_model(in, options).network);
}

WindowedFlowOptions fixture_options(int threads) {
  WindowedFlowOptions options;
  options.flow = baseline::system_flow_options(baseline::System::kHyde, 5);
  options.threads = threads;
  return options;
}

TEST(WindowFixtureTest, MidFixtureMapsEquivalentAndThreadIdentical) {
  const net::Network input = load_fixture("win_mid.blif", false);
  EXPECT_FALSE(input.is_k_feasible(5));
  const WindowedFlowResult one = run_windowed_flow(input, fixture_options(1));
  EXPECT_TRUE(one.network.is_k_feasible(5));
  EXPECT_EQ(one.stats.windows_budget_fallbacks, 0);
  EXPECT_TRUE(net::check_equivalence(input, one.network).equivalent);
  const WindowedFlowResult four = run_windowed_flow(input, fixture_options(4));
  EXPECT_EQ(net::write_blif_string(one.network),
            net::write_blif_string(four.network));
}

TEST(WindowFixtureTest, WideFixtureMapsEquivalent) {
  const net::Network input = load_fixture("win_wide.blif", false);
  EXPECT_FALSE(input.is_k_feasible(5));
  const WindowedFlowResult result =
      run_windowed_flow(input, fixture_options(2));
  EXPECT_TRUE(result.network.is_k_feasible(5));
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
}

TEST(WindowFixtureTest, LatchFixtureNeedsTheOption) {
  const std::string path =
      std::string(HYDE_BLIF_FIXTURE_DIR) + "/win_latch.blif";
  std::ifstream strict(path);
  ASSERT_TRUE(strict.good());
  EXPECT_THROW(net::read_blif_model(strict), std::runtime_error);

  const net::Network core = load_fixture("win_latch.blif", true);
  // Combinational core: 5 original PIs + 3 latch outputs, 2 original POs +
  // 3 latch inputs.
  EXPECT_EQ(core.inputs().size(), 8u);
  EXPECT_EQ(core.outputs().size(), 5u);
  const WindowedFlowResult result = run_windowed_flow(core, fixture_options(1));
  EXPECT_TRUE(net::check_equivalence(core, result.network).equivalent);
}

}  // namespace
}  // namespace hyde::part
