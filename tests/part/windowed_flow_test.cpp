/// Windowed decomposition engine: end-to-end equivalence on every registry
/// circuit across window budgets, bit-identical results at every thread
/// count, and graceful budget fallbacks.

#include "part/windowed.hpp"

#include <string>
#include <vector>

#include "baseline/flows.hpp"
#include "gtest/gtest.h"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "net/verify.hpp"
#include "tt/truth_table.hpp"

namespace hyde::part {
namespace {

WindowedFlowOptions engine_options(int max_inputs, int max_nodes,
                                   int threads) {
  WindowedFlowOptions options;
  options.flow = baseline::system_flow_options(baseline::System::kHyde, 5);
  options.window.max_inputs = max_inputs;
  options.window.max_nodes = max_nodes;
  options.threads = threads;
  return options;
}

TEST(WindowedFlowTest, EquivalentAndThreadIdenticalOnRegistry) {
  struct Budget {
    int max_inputs;
    int max_nodes;
  };
  const std::vector<Budget> budgets = {{8, 32}, {12, 64}};
  for (const std::string& name : mcnc::all_circuits()) {
    const net::Network input = mcnc::make_circuit(name);
    for (const Budget& budget : budgets) {
      WindowedFlowResult reference;
      std::string reference_blif;
      for (int threads : {1, 2, 4}) {
        WindowedFlowResult result = run_windowed_flow(
            input, engine_options(budget.max_inputs, budget.max_nodes,
                                  threads));
        const std::string blif = net::write_blif_string(result.network);
        if (threads == 1) {
          // One full equivalence check per (circuit, budget); the other
          // thread counts must reproduce this result bit for bit.
          EXPECT_TRUE(
              net::check_equivalence(input, result.network).equivalent)
              << name << " inputs=" << budget.max_inputs;
          EXPECT_EQ(result.stats.windows_budget_fallbacks, 0) << name;
          EXPECT_TRUE(result.network.is_k_feasible(5)) << name;
          reference = std::move(result);
          reference_blif = blif;
          continue;
        }
        EXPECT_EQ(blif, reference_blif)
            << name << " diverges at threads=" << threads
            << " inputs=" << budget.max_inputs;
        EXPECT_EQ(result.stats.windows_extracted,
                  reference.stats.windows_extracted);
        EXPECT_EQ(result.stats.windows_resynthesized,
                  reference.stats.windows_resynthesized);
        EXPECT_EQ(result.stats.windows_passthrough,
                  reference.stats.windows_passthrough);
      }
    }
  }
}

TEST(WindowedFlowTest, BudgetBlowoutSplitsThenPassesThrough) {
  // Wide-arity DAG plus a BDD budget far too small for any window: every
  // resynthesis attempt must fall back, and the engine must still deliver an
  // equivalent network (pass-through keeps the original wide nodes).
  const net::Network input = mcnc::random_multilevel(
      "blowout", /*num_inputs=*/24, /*num_outputs=*/6, /*num_nodes=*/120,
      /*min_arity=*/4, /*max_arity=*/9, /*seed=*/11);
  WindowedFlowOptions options = engine_options(10, 24, 2);
  options.window_bdd_budget = 16;  // below any real window's working set
  options.max_split_depth = 2;
  WindowedFlowResult result = run_windowed_flow(input, options);
  EXPECT_GT(result.stats.windows_budget_fallbacks, 0);
  EXPECT_GT(result.stats.windows_passthrough, 0);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
}

TEST(WindowedFlowTest, SplitWindowsStillResynthesize) {
  // A budget small enough to force splits but large enough for the halves:
  // splits happen, yet some windows still resynthesize and the result holds.
  const net::Network input = mcnc::random_multilevel(
      "splitter", /*num_inputs=*/20, /*num_outputs=*/5, /*num_nodes=*/90,
      /*min_arity=*/4, /*max_arity=*/8, /*seed=*/3);
  WindowedFlowOptions small = engine_options(12, 48, 1);
  small.window_bdd_budget = 2000;
  small.max_split_depth = 4;
  WindowedFlowResult result = run_windowed_flow(input, small);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
  if (result.stats.windows_split > 0) {
    EXPECT_GT(result.stats.windows_budget_fallbacks, 0);
  }
}

TEST(WindowedFlowTest, PassthroughOnlyNetworkRoundTrips) {
  // Already k-feasible network: nothing to resynthesize; the stitch is a
  // pure clone and must preserve interface names and semantics.
  const net::Network input = mcnc::make_circuit("count");
  ASSERT_TRUE(input.is_k_feasible(5));
  WindowedFlowResult result = run_windowed_flow(input, engine_options(8, 32, 1));
  EXPECT_EQ(result.stats.windows_resynthesized, 0);
  EXPECT_GT(result.stats.windows_passthrough, 0);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
  ASSERT_EQ(result.network.inputs().size(), input.inputs().size());
  for (std::size_t i = 0; i < input.inputs().size(); ++i) {
    EXPECT_EQ(result.network.node(result.network.inputs()[i]).name,
              input.node(input.inputs()[i]).name);
  }
}

TEST(WindowedFlowTest, StatsArePipedThroughBaseline) {
  const net::Network input = mcnc::make_circuit("rd84");
  WindowedFlowOptions options = engine_options(10, 32, 2);
  const baseline::BaselineResult result =
      baseline::run_windowed_system(input, options, /*verify_vectors=*/128);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.luts, 0);
  EXPECT_GT(result.stats.windows_extracted, 0);
  EXPECT_GT(result.stats.window_peak_nodes, 0);
  EXPECT_LE(result.stats.window_peak_inputs, 10);
  EXPECT_TRUE(result.network.is_k_feasible(5));
  EXPECT_GT(result.clbs, 0);
}

TEST(WindowedFlowTest, SplitFallbackIsBitIdenticalAtEveryThreadCount) {
  // The split path re-extracts from the worker's materialized sub-network,
  // never the host; a budget tight enough to force splits must still give
  // the same stitched BLIF at threads 1, 2, 4 and 8.
  const net::Network input = mcnc::random_multilevel(
      "splitmatrix", /*num_inputs=*/20, /*num_outputs=*/5, /*num_nodes=*/90,
      /*min_arity=*/4, /*max_arity=*/8, /*seed=*/3);
  std::string reference_blif;
  int reference_splits = 0;
  for (int threads : {1, 2, 4, 8}) {
    WindowedFlowOptions options = engine_options(12, 48, threads);
    options.window_bdd_budget = 2000;
    options.max_split_depth = 4;
    const WindowedFlowResult result = run_windowed_flow(input, options);
    if (threads == 1) {
      EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
      ASSERT_GT(result.stats.windows_split, 0)
          << "budget no longer forces the split path; tighten it";
      reference_blif = net::write_blif_string(result.network);
      reference_splits = result.stats.windows_split;
      continue;
    }
    EXPECT_EQ(net::write_blif_string(result.network), reference_blif)
        << "diverges at threads=" << threads;
    EXPECT_EQ(result.stats.windows_split, reference_splits);
  }
}

TEST(WindowedFlowTest, SchedulerSkippedWhenOnlyOneWindowNeedsWork) {
  // One wide node == one resynthesis task: --window-threads auto-clamps to
  // the workload, so even threads=8 takes the serial path (no scheduler, no
  // worker-side materialization).
  net::Network input("one_wide");
  std::vector<net::NodeId> fanins;
  for (char c = 'a'; c < 'a' + 7; ++c) {
    fanins.push_back(input.add_input(std::string(1, c)));
  }
  tt::TruthTable parity = tt::TruthTable::zeros(7);
  for (int v = 0; v < 7; ++v) parity ^= tt::TruthTable::var(7, v);
  const net::NodeId wide = input.add_logic_tt("wide", fanins, parity);
  input.add_output("f", wide);

  WindowedFlowResult result = run_windowed_flow(input, engine_options(8, 32, 8));
  EXPECT_EQ(result.stats.windows_resynthesized, 1);
  EXPECT_EQ(result.stats.window_workers, 0);
  EXPECT_EQ(result.stats.windows_extract_parallel, 0);
  EXPECT_EQ(result.stats.window_steals, 0u);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);

  const WindowedFlowResult serial =
      run_windowed_flow(input, engine_options(8, 32, 1));
  EXPECT_EQ(net::write_blif_string(result.network),
            net::write_blif_string(serial.network));
}

TEST(WindowedFlowTest, SchedulingTelemetryReflectsTheParallelPath) {
  // Wide-arity nodes throughout, small windows: many resynthesis tasks, so
  // threads=4 genuinely exercises the scheduler.
  const net::Network input = mcnc::random_multilevel(
      "telemetry", /*num_inputs=*/20, /*num_outputs=*/5, /*num_nodes=*/80,
      /*min_arity=*/6, /*max_arity=*/8, /*seed=*/5);
  const WindowedFlowResult serial =
      run_windowed_flow(input, engine_options(10, 40, 1));
  ASSERT_GT(serial.stats.windows_resynthesized, 1)
      << "workload no longer yields multiple resynthesis tasks";
  EXPECT_EQ(serial.stats.window_workers, 0);
  EXPECT_EQ(serial.stats.windows_extract_parallel, 0);
  // The slowest-window high-water mark is tracked on both paths.
  EXPECT_GT(serial.stats.window_max_seconds, 0.0);
  EXPECT_GE(serial.stats.window_max_index, 0);
  EXPECT_LT(serial.stats.window_max_index, serial.stats.windows_extracted);

  const WindowedFlowResult parallel =
      run_windowed_flow(input, engine_options(10, 40, 4));
  EXPECT_GT(parallel.stats.window_workers, 0);
  EXPECT_LE(parallel.stats.window_workers, 4);
  EXPECT_GT(parallel.stats.windows_extract_parallel, 0);
  EXPECT_LE(parallel.stats.windows_extract_parallel,
            parallel.stats.windows_extracted);
  EXPECT_GT(parallel.stats.window_worker_busy_seconds, 0.0);
  EXPECT_GE(parallel.stats.window_worker_busy_seconds,
            parallel.stats.window_worker_busy_peak_seconds);
  EXPECT_GE(parallel.stats.window_max_index, 0);
}

TEST(WindowedFlowTest, WindowCountersAreThreadInvariant) {
  const net::Network input = mcnc::make_circuit("apex7");
  const WindowedFlowResult one = run_windowed_flow(input, engine_options(10, 40, 1));
  const WindowedFlowResult four = run_windowed_flow(input, engine_options(10, 40, 4));
  EXPECT_EQ(one.stats.windows_extracted, four.stats.windows_extracted);
  EXPECT_EQ(one.stats.windows_resynthesized, four.stats.windows_resynthesized);
  EXPECT_EQ(one.stats.windows_passthrough, four.stats.windows_passthrough);
  EXPECT_EQ(one.stats.windows_split, four.stats.windows_split);
  EXPECT_EQ(one.stats.window_peak_inputs, four.stats.window_peak_inputs);
  EXPECT_EQ(one.stats.window_peak_nodes, four.stats.window_peak_nodes);
  EXPECT_EQ(net::write_blif_string(one.network),
            net::write_blif_string(four.network));
}

}  // namespace
}  // namespace hyde::part
