#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"

#include <gtest/gtest.h>

#include "tt/truth_table.hpp"

namespace hyde::mapper {
namespace {

using net::Network;
using net::NodeId;
using tt::TruthTable;

TEST(Dedup, MergesIdenticalNodes) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const TruthTable xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const NodeId g1 = net.add_logic_tt("g1", {a, b}, and2);
  const NodeId g2 = net.add_logic_tt("g2", {a, b}, and2);  // duplicate
  const NodeId top = net.add_logic_tt("top", {g1, g2}, xor2);
  net.add_output("o", top);
  const int merged = dedup_shared_nodes(net);
  EXPECT_EQ(merged, 1);
  // g1 ^ g1 == 0: the whole network collapses to constant 0.
  EXPECT_FALSE(net.eval({true, true})[0]);
  EXPECT_LE(net.num_logic_nodes(), 1);
}

TEST(Dedup, MergesUnderFaninPermutation) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  // g1 = a & !b over (a,b); g2 = !b & a over (b,a) — same function.
  const TruthTable g1f = TruthTable::var(2, 0) & ~TruthTable::var(2, 1);
  const TruthTable g2f = ~TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const NodeId g1 = net.add_logic_tt("g1", {a, b}, g1f);
  const NodeId g2 = net.add_logic_tt("g2", {b, a}, g2f);
  const NodeId top = net.add_logic_tt(
      "top", {g1, g2}, TruthTable::var(2, 0) | TruthTable::var(2, 1));
  net.add_output("o", top);
  const auto before = net.eval({true, false});
  EXPECT_EQ(dedup_shared_nodes(net), 1);
  EXPECT_EQ(net.eval({true, false}), before);
}

TEST(Dedup, LeavesDistinctNodesAlone) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g1 = net.add_logic_tt(
      "g1", {a, b}, TruthTable::var(2, 0) & TruthTable::var(2, 1));
  const NodeId g2 = net.add_logic_tt(
      "g2", {a, b}, TruthTable::var(2, 0) | TruthTable::var(2, 1));
  net.add_output("o1", g1);
  net.add_output("o2", g2);
  EXPECT_EQ(dedup_shared_nodes(net), 0);
  EXPECT_EQ(net.num_logic_nodes(), 2);
}

TEST(Collapse, MergesChainsIntoOneLut) {
  // A chain of 2-input ANDs over 5 inputs collapses into a single 5-LUT.
  Network net("chain");
  std::vector<NodeId> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  NodeId acc = pis[0];
  for (int i = 1; i < 5; ++i) {
    acc = net.add_logic_tt("n" + std::to_string(i), {acc, pis[static_cast<std::size_t>(i)]}, and2);
  }
  net.add_output("o", acc);
  collapse_into_fanouts(net, 5);
  EXPECT_EQ(net.num_logic_nodes(), 1);
  EXPECT_TRUE(net.eval({true, true, true, true, true})[0]);
  EXPECT_FALSE(net.eval({true, true, false, true, true})[0]);
}

TEST(Collapse, RespectsKLimit) {
  // 6-input AND chain with k=5 cannot fit in a single node.
  Network net("chain6");
  std::vector<NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  NodeId acc = pis[0];
  for (int i = 1; i < 6; ++i) {
    acc = net.add_logic_tt("n" + std::to_string(i), {acc, pis[static_cast<std::size_t>(i)]}, and2);
  }
  net.add_output("o", acc);
  collapse_into_fanouts(net, 5);
  EXPECT_EQ(net.num_logic_nodes(), 2);
  EXPECT_TRUE(net.is_k_feasible(5));
}

TEST(Collapse, KeepsMultiFanoutNodes) {
  Network net("mf");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const TruthTable or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
  const NodeId shared = net.add_logic_tt("sh", {a, b}, and2);
  const NodeId u = net.add_logic_tt("u", {shared, c}, or2);
  const NodeId v = net.add_logic_tt("v", {shared, c}, and2);
  net.add_output("u", u);
  net.add_output("v", v);
  collapse_into_fanouts(net, 5);
  // 'shared' has two fanouts; it must survive (no duplication).
  EXPECT_EQ(net.num_logic_nodes(), 3);
}

TEST(Resub, EliminatesRedundantFanin) {
  // f = x XOR g where g = x XOR y: f depends on x only through g... actually
  // f(x,y,g) = x ^ g = y when g = x^y. Resub should drop x (and then y-based
  // simplification gives a buffer).
  Network net("r");
  const NodeId x = net.add_input("x");
  const NodeId y = net.add_input("y");
  const TruthTable xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const NodeId g = net.add_logic_tt("g", {x, y}, xor2);
  const NodeId f = net.add_logic_tt("f", {x, g}, xor2);
  net.add_output("o", f);
  net.add_output("g", g);
  const int eliminated = resubstitute(net);
  EXPECT_GE(eliminated, 1);
  // Behaviour preserved: o == y.
  for (int xv = 0; xv < 2; ++xv) {
    for (int yv = 0; yv < 2; ++yv) {
      const auto out = net.eval({xv != 0, yv != 0});
      EXPECT_EQ(out[0], yv != 0);
      EXPECT_EQ(out[1], (xv ^ yv) != 0);
    }
  }
}

TEST(Resub, NoChangeWhenNotPossible) {
  Network net("r");
  const NodeId x = net.add_input("x");
  const NodeId y = net.add_input("y");
  const NodeId z = net.add_input("z");
  const TruthTable maj = TruthTable::symmetric(3, {2, 3});
  const NodeId g = net.add_logic_tt("g", {x, y, z}, maj);
  net.add_output("o", g);
  EXPECT_EQ(resubstitute(net), 0);
}

TEST(Xc3000, PairsSmallNodes) {
  Network net("p");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const TruthTable or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
  const NodeId u = net.add_logic_tt("u", {a, b}, and2);
  const NodeId v = net.add_logic_tt("v", {b, c}, or2);
  net.add_output("u", u);
  net.add_output("v", v);
  const auto packing = pack_xc3000(net);
  // Union of inputs {a,b,c} fits a single CLB.
  EXPECT_EQ(packing.num_clbs, 1);
  EXPECT_EQ(packing.paired, 1);
  EXPECT_EQ(packing.singles, 0);
}

TEST(Xc3000, FiveInputNodesStandAlone) {
  Network net("p5");
  std::vector<NodeId> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable f5 = TruthTable::symmetric(5, {2, 3});
  const NodeId u = net.add_logic_tt("u", pis, f5);
  const NodeId v = net.add_logic_tt("v", pis, TruthTable::symmetric(5, {1, 4}));
  net.add_output("u", u);
  net.add_output("v", v);
  const auto packing = pack_xc3000(net);
  EXPECT_EQ(packing.num_clbs, 2);
  EXPECT_EQ(packing.paired, 0);
}

TEST(Xc3000, NoPairWhenInputsExceedFive) {
  Network net("p6");
  std::vector<NodeId> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable and4 = TruthTable::from_lambda(4, [](std::uint64_t m) {
    return m == 15;
  });
  const NodeId u = net.add_logic_tt("u", {pis[0], pis[1], pis[2], pis[3]}, and4);
  const NodeId v = net.add_logic_tt("v", {pis[4], pis[5], pis[6], pis[7]}, and4);
  net.add_output("u", u);
  net.add_output("v", v);
  EXPECT_EQ(pack_xc3000(net).num_clbs, 2);
}

TEST(Xc3000, RejectsWideNodes) {
  Network net("w");
  std::vector<NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  net.add_output("o", net.add_logic_tt("wide", pis,
                                       TruthTable::symmetric(6, {3})));
  EXPECT_THROW(pack_xc3000(net), std::invalid_argument);
}

TEST(Xc3000, NoInternalFeedPairs) {
  // v reads u: they may not share a CLB.
  Network net("feed");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const NodeId u = net.add_logic_tt("u", {a, b}, and2);
  const NodeId v = net.add_logic_tt("v", {u, a}, and2);
  net.add_output("u", u);
  net.add_output("v", v);
  EXPECT_EQ(pack_xc3000(net).num_clbs, 2);
}

TEST(Depth, CountsLevels) {
  Network net("d");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const TruthTable and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
  const NodeId l1 = net.add_logic_tt("l1", {a, b}, and2);
  const NodeId l2 = net.add_logic_tt("l2", {l1, a}, and2);
  const NodeId l3 = net.add_logic_tt("l3", {l2, l1}, and2);
  net.add_output("o", l3);
  EXPECT_EQ(network_depth(net), 3);
  EXPECT_EQ(lut_count(net), 3);
}

}  // namespace
}  // namespace hyde::mapper
