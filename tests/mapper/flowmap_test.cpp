#include "mapper/flowmap.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mapper/lutmap.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/verify.hpp"
#include "tt/truth_table.hpp"

namespace hyde::mapper {
namespace {

using net::Network;
using net::NodeId;
using tt::TruthTable;

Network wide_and_tree(int leaves) {
  Network net("andtree");
  std::vector<NodeId> pis;
  for (int i = 0; i < leaves; ++i) pis.push_back(net.add_input("x" + std::to_string(i)));
  const TruthTable and_all = TruthTable::from_lambda(
      leaves, [leaves](std::uint64_t m) {
        return m == (std::uint64_t{1} << leaves) - 1;
      });
  net.add_output("o", net.add_logic_tt("o", pis, and_all));
  return net;
}

TEST(TechDecompose, ProducesTwoBoundedEquivalent) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 6; ++trial) {
    Network input("t");
    std::vector<NodeId> pis;
    const int n = 5 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) pis.push_back(input.add_input("x" + std::to_string(i)));
    const auto table = TruthTable::from_lambda(
        n, [&rng](std::uint64_t) { return (rng() % 3) == 0; });
    input.add_output("f", input.add_logic_tt("f", pis, table));
    const Network two = tech_decompose(input);
    EXPECT_LE(two.max_fanin(), 2);
    EXPECT_TRUE(net::check_equivalence(input, two).equivalent) << trial;
  }
}

TEST(TechDecompose, HandlesConstantsAndBuffers) {
  Network input("t");
  const NodeId a = input.add_input("a");
  input.add_output("c1", input.add_constant("one", true));
  input.add_output("buf", a);
  input.add_output("inv", input.add_logic_tt("inv", {a}, ~TruthTable::var(1, 0)));
  const Network two = tech_decompose(input);
  EXPECT_TRUE(net::check_equivalence(input, two).equivalent);
}

TEST(FlowMap, AndTreeDepthIsOptimal) {
  // A 16-input AND with k=4: depth-optimal mapping needs exactly 2 levels.
  const Network input = wide_and_tree(16);
  const auto result = flowmap(input, 4);
  EXPECT_TRUE(result.network.is_k_feasible(4));
  EXPECT_EQ(result.depth, 2);
  EXPECT_LE(result.luts, 5);  // 4 leaves + 1 root is the optimum
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
}

TEST(FlowMap, SingleLutWhenItFits) {
  const Network input = wide_and_tree(5);
  const auto result = flowmap(input, 5);
  EXPECT_EQ(result.depth, 1);
  EXPECT_EQ(result.luts, 1);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
}

TEST(FlowMap, RandomNetworksEquivalentAndFeasible) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    const auto input = mcnc::random_multilevel(
        "fm" + std::to_string(trial), 10, 4, 30, 2, 5, 500 + trial);
    for (int k : {3, 4, 5}) {
      const auto result = flowmap(input, k);
      EXPECT_TRUE(result.network.is_k_feasible(k)) << trial << " k" << k;
      EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent)
          << trial << " k" << k;
      EXPECT_EQ(result.luts, result.network.num_logic_nodes());
    }
  }
}

TEST(FlowMap, DepthNeverWorseThanGreedyCovering) {
  // FlowMap's depth optimality: compare against the decomposition flow's
  // covering on tree-ish circuits.
  for (const char* name : {"rd73", "9sym", "misex1"}) {
    const auto input = mcnc::make_circuit(name);
    const auto fm = flowmap(input, 5);
    // The HYDE flow's depth on the same circuit.
    const auto base = mcnc::make_circuit(name);
    auto flow_net = tech_decompose(base);
    collapse_into_fanouts(flow_net, 5);
    EXPECT_LE(fm.depth, network_depth(flow_net)) << name;
    EXPECT_TRUE(net::check_equivalence(input, fm.network).equivalent) << name;
  }
}

TEST(FlowMap, MixedOutputsIncludingPiPassThrough) {
  Network input("t");
  const NodeId a = input.add_input("a");
  const NodeId b = input.add_input("b");
  input.add_output("pass", a);
  input.add_output("and",
                   input.add_logic_tt("g", {a, b},
                                      TruthTable::var(2, 0) & TruthTable::var(2, 1)));
  const auto result = flowmap(input, 4);
  EXPECT_TRUE(net::check_equivalence(input, result.network).equivalent);
}

TEST(FlowMap, RejectsTinyK) {
  const Network input = wide_and_tree(4);
  EXPECT_THROW(flowmap(input, 1), std::invalid_argument);
}

TEST(FlowMap, LabelsMonotoneWithK) {
  // Bigger LUTs can only reduce the optimal depth.
  const auto input = mcnc::make_circuit("rd84");
  int previous = 1 << 20;
  for (int k : {3, 4, 5, 6}) {
    const auto result = flowmap(input, k);
    EXPECT_LE(result.depth, previous) << "k=" << k;
    previous = result.depth;
  }
}

}  // namespace
}  // namespace hyde::mapper
