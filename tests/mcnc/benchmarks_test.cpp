#include "mcnc/benchmarks.hpp"

#include <gtest/gtest.h>

#include <map>

#include "net/blif.hpp"

namespace hyde::mcnc {
namespace {

/// PI/PO counts every generated circuit must reproduce (the MCNC originals).
const std::map<std::string, std::pair<int, int>> kExpectedIo = {
    {"5xp1", {7, 10}},  {"9sym", {9, 1}},    {"alu2", {10, 6}},
    {"alu4", {14, 8}},  {"apex4", {9, 19}},  {"apex6", {135, 99}},
    {"apex7", {49, 37}}, {"b9", {41, 21}},   {"clip", {9, 5}},
    {"count", {35, 16}}, {"des", {256, 245}}, {"duke2", {22, 29}},
    {"e64", {65, 65}},  {"f51m", {8, 8}},    {"misex1", {8, 7}},
    {"misex2", {25, 18}}, {"misex3", {14, 14}}, {"rd73", {7, 3}},
    {"rd84", {8, 4}},   {"rot", {135, 107}}, {"sao2", {10, 4}},
    {"vg2", {25, 8}},   {"z4ml", {7, 4}},    {"C499", {41, 32}},
    {"C880", {60, 26}},
};

TEST(Benchmarks, RegistryCoversBothTables) {
  const auto names = all_circuits();
  EXPECT_EQ(names.size(), kExpectedIo.size());
  for (const auto& row : paper_table1()) {
    EXPECT_NE(std::find(names.begin(), names.end(), row.circuit), names.end())
        << row.circuit;
  }
  for (const auto& row : paper_table2()) {
    EXPECT_NE(std::find(names.begin(), names.end(), row.circuit), names.end())
        << row.circuit;
  }
  EXPECT_THROW(make_circuit("nonexistent"), std::invalid_argument);
}

TEST(Benchmarks, IoCountsMatchOriginals) {
  for (const auto& [name, io] : kExpectedIo) {
    const auto net = make_circuit(name);
    EXPECT_EQ(static_cast<int>(net.inputs().size()), io.first) << name;
    EXPECT_EQ(static_cast<int>(net.outputs().size()), io.second) << name;
  }
}

TEST(Benchmarks, GeneratorsAreDeterministic) {
  for (const std::string name : {"apex7", "duke2", "des", "misex3"}) {
    const auto a = make_circuit(name);
    const auto b = make_circuit(name);
    EXPECT_EQ(net::write_blif_string(a), net::write_blif_string(b)) << name;
  }
}

TEST(Benchmarks, NineSymIsSymmetric) {
  const auto net = make_circuit("9sym");
  // Permuting inputs never changes the output.
  std::vector<bool> v1{true, false, true, true, false, false, true, false, false};
  std::vector<bool> v2{false, false, false, true, true, true, false, true, false};
  EXPECT_EQ(net.eval(v1), net.eval(v2));  // both weight 4
}

TEST(Benchmarks, Rd84CountsOnes) {
  const auto net = make_circuit("rd84");
  for (std::uint64_t m : {0ull, 5ull, 255ull, 170ull}) {
    std::vector<bool> assign(8);
    for (int i = 0; i < 8; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    const auto out = net.eval(assign);
    const int count = std::popcount(m);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(j)], ((count >> j) & 1) != 0) << m;
    }
  }
}

TEST(Benchmarks, Z4mlAdds) {
  const auto net = make_circuit("z4ml");
  for (std::uint64_t m = 0; m < 128; ++m) {
    std::vector<bool> assign(7);
    for (int i = 0; i < 7; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    const auto out = net.eval(assign);
    const std::uint64_t sum = (m & 7) + ((m >> 3) & 7) + ((m >> 6) & 1);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(j)], ((sum >> j) & 1) != 0) << m;
    }
  }
}

TEST(Benchmarks, ClipSaturates) {
  const auto net = make_circuit("clip");
  auto eval_at = [&net](int x) {
    const std::uint64_t m = static_cast<std::uint64_t>(x & 0x1FF);
    std::vector<bool> assign(9);
    for (int i = 0; i < 9; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    const auto out = net.eval(assign);
    int v = 0;
    for (int j = 0; j < 5; ++j) {
      if (out[static_cast<std::size_t>(j)]) v |= 1 << j;
    }
    if (v & 16) v -= 32;
    return v;
  };
  EXPECT_EQ(eval_at(7), 7);
  EXPECT_EQ(eval_at(100), 15);   // saturates high
  EXPECT_EQ(eval_at(-100), -15);  // saturates low
  EXPECT_EQ(eval_at(-3), -3);
}

TEST(Benchmarks, F51mMultiplies) {
  const auto net = make_circuit("f51m");
  for (int a = 0; a < 16; a += 3) {
    for (int b = 0; b < 16; b += 5) {
      const std::uint64_t m = static_cast<std::uint64_t>(a | (b << 4));
      std::vector<bool> assign(8);
      for (int i = 0; i < 8; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
      const auto out = net.eval(assign);
      const int product = a * b;
      for (int j = 0; j < 8; ++j) {
        EXPECT_EQ(out[static_cast<std::size_t>(j)], ((product >> j) & 1) != 0);
      }
    }
  }
}

TEST(Benchmarks, E64IsPriorityEncoder) {
  const auto net = make_circuit("e64");
  std::vector<bool> assign(65, false);
  assign[10] = true;
  assign[40] = true;
  const auto out = net.eval(assign);
  for (int i = 0; i < 65; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i == 10) << i;
  }
}

TEST(Benchmarks, DesHasSharedSupportGroups) {
  const auto net = make_circuit("des");
  // All four outputs of an S-box read exactly the same PIs.
  const auto sb0 = net.find("sb0_0");
  const auto sb3 = net.find("sb0_3");
  ASSERT_NE(sb0, net::kNoNode);
  ASSERT_NE(sb3, net::kNoNode);
  EXPECT_EQ(net.node(sb0).fanins, net.node(sb3).fanins);
  EXPECT_EQ(net.node(sb0).fanins.size(), 6u);
}

TEST(Benchmarks, PaperTablesTotalsMatchPublication) {
  // Cross-check the transcribed paper data against its printed totals.
  int hyde_total1 = 0, imodec_total1 = 0;
  int imodec_sub = 0, fgsyn_sub = 0, hyde_sub = 0;
  for (const auto& row : paper_table1()) {
    hyde_total1 += row.hyde_clb;
    imodec_total1 += row.imodec_clb;
    if (row.fgsyn_clb >= 0) {
      imodec_sub += row.imodec_clb;
      fgsyn_sub += row.fgsyn_clb;
      hyde_sub += row.hyde_clb;
    }
  }
  EXPECT_EQ(hyde_total1, 1272);
  EXPECT_EQ(imodec_total1, 1453);
  EXPECT_EQ(imodec_sub, 964);
  EXPECT_EQ(fgsyn_sub, 895);
  EXPECT_EQ(hyde_sub, 864);

  // Table 2's printed totals cover the rows where [8] reported numbers.
  int noresub_total = 0, hyde_total2 = 0;
  for (const auto& row : paper_table2()) {
    if (row.noresub_lut >= 0) {
      noresub_total += row.noresub_lut;
      hyde_total2 += row.hyde_lut;
    }
  }
  EXPECT_EQ(noresub_total, 1578);
  EXPECT_EQ(hyde_total2, 1311);
}

}  // namespace
}  // namespace hyde::mcnc
