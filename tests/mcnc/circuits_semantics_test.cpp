/// Behavioural checks of the exactly-specified benchmark generators against
/// their arithmetic definitions.

#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "mcnc/benchmarks.hpp"

namespace hyde::mcnc {
namespace {

std::vector<bool> bits_of(std::uint64_t m, int n) {
  std::vector<bool> assign(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
  return assign;
}

std::uint64_t word_of(const std::vector<bool>& bits, int lo, int width) {
  std::uint64_t w = 0;
  for (int i = 0; i < width; ++i) {
    if (bits[static_cast<std::size_t>(lo + i)]) w |= std::uint64_t{1} << i;
  }
  return w;
}

TEST(CircuitSemantics, Alu2ImplementsFourOps) {
  const auto net = make_circuit("alu2");
  std::mt19937_64 rng(1);
  for (int probe = 0; probe < 200; ++probe) {
    const std::uint64_t m = rng() & 0x3FF;
    const auto assign = bits_of(m, 10);
    const auto out = net.eval(assign);
    const std::uint64_t a = m & 15, b = (m >> 4) & 15, op = (m >> 8) & 3;
    std::uint64_t r = 0, cout = 0;
    switch (op) {
      case 0: r = a + b; cout = (r >> 4) & 1; r &= 15; break;
      case 1: r = a & b; break;
      case 2: r = a | b; break;
      case 3: r = a ^ b; break;
    }
    std::uint64_t got_r = 0;
    for (int j = 0; j < 4; ++j) {
      if (out[static_cast<std::size_t>(j)]) got_r |= std::uint64_t{1} << j;
    }
    EXPECT_EQ(got_r, r) << "m=" << m;
    EXPECT_EQ(out[4], cout != 0) << "m=" << m;
    EXPECT_EQ(out[5], r == 0) << "m=" << m;
  }
}

TEST(CircuitSemantics, Alu4ImplementsFourOps) {
  const auto net = make_circuit("alu4");
  std::mt19937_64 rng(2);
  for (int probe = 0; probe < 100; ++probe) {
    const std::uint64_t m = rng() & 0x3FFF;
    const auto out = net.eval(bits_of(m, 14));
    const std::uint64_t a = m & 63, b = (m >> 6) & 63, op = (m >> 12) & 3;
    std::uint64_t r = 0, cout = 0;
    switch (op) {
      case 0: r = a + b; cout = (r >> 6) & 1; r &= 63; break;
      case 1: r = a & b; break;
      case 2: r = a | b; break;
      case 3: r = a ^ b; break;
    }
    std::uint64_t got_r = 0;
    for (int j = 0; j < 6; ++j) {
      if (out[static_cast<std::size_t>(j)]) got_r |= std::uint64_t{1} << j;
    }
    EXPECT_EQ(got_r, r);
    EXPECT_EQ(out[6], cout != 0);
    EXPECT_EQ(out[7], r == 0);
  }
}

TEST(CircuitSemantics, CountChainsCarries) {
  const auto net = make_circuit("count");
  std::mt19937_64 rng(3);
  for (int probe = 0; probe < 100; ++probe) {
    std::vector<bool> assign(35);
    for (auto&& a : assign) a = (rng() & 1) != 0;
    const auto out = net.eval(assign);
    // Reference: out_i = d_i ^ (carry_i & ctl0);
    //            carry_{i+1} = carry_i & (d_i | (en_i & ctl1)).
    const bool cin = assign[32], ctl0 = assign[33], ctl1 = assign[34];
    bool carry = cin;
    for (int i = 0; i < 16; ++i) {
      const bool d = assign[static_cast<std::size_t>(i)];
      const bool en = assign[static_cast<std::size_t>(16 + i)];
      EXPECT_EQ(out[static_cast<std::size_t>(i)], d ^ (carry && ctl0)) << i;
      carry = carry && (d || (en && ctl1));
    }
  }
}

TEST(CircuitSemantics, C880AdderSliceMasksResults) {
  const auto net = make_circuit("C880");
  std::mt19937_64 rng(4);
  for (int probe = 0; probe < 60; ++probe) {
    std::vector<bool> assign(60);
    for (auto&& a : assign) a = (rng() & 1) != 0;
    const auto out = net.eval(assign);
    const std::uint64_t a = word_of(assign, 0, 12);
    const std::uint64_t b = word_of(assign, 12, 12);
    const std::uint64_t m = word_of(assign, 24, 12);
    const bool cin = assign[36 + 3];  // sel3 doubles as carry-in
    const std::uint64_t sum = a + b + (cin ? 1 : 0);
    for (int i = 0; i < 12; ++i) {
      const bool masked = (((sum >> i) & 1) != 0) && (((m >> i) & 1) != 0);
      EXPECT_EQ(out[static_cast<std::size_t>(i)], masked) << i;
    }
    EXPECT_EQ(out[12], ((sum >> 12) & 1) != 0);  // cout
    // par_a output (index 21): parity of a.
    EXPECT_EQ(out[21], (std::popcount(a) % 2) != 0);
    // any_m output (index 22).
    EXPECT_EQ(out[22], m != 0);
  }
}

TEST(CircuitSemantics, C499CorrectsSingleBit) {
  const auto net = make_circuit("C499");
  // With en=0 the outputs are the raw data bits.
  std::mt19937_64 rng(5);
  std::vector<bool> assign(41, false);
  for (int i = 0; i < 32; ++i) assign[static_cast<std::size_t>(i)] = (rng() & 1) != 0;
  assign[40] = false;  // en
  const auto out = net.eval(assign);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], assign[static_cast<std::size_t>(i)]) << i;
  }
  // With en=1 and checks consistent with the data, the syndrome is zero and
  // at most one decoder can fire (pattern 0 if some h(i)==0).
  std::vector<bool> clean = assign;
  clean[40] = true;
  // Set check bits to the parity the tree computes: c_j = XOR of member data.
  // (The check inputs enter the same XOR trees, so choosing c_j equal to the
  // data parity zeroes the syndrome.)
  auto h = [](int i) {
    return static_cast<unsigned>((static_cast<unsigned>(i) * 2654435761u) >> 24) & 0xFFu;
  };
  for (int j = 0; j < 8; ++j) {
    bool parity = false;
    for (int i = 0; i < 32; ++i) {
      if ((h(i) >> j) & 1) parity ^= clean[static_cast<std::size_t>(i)];
    }
    clean[static_cast<std::size_t>(32 + j)] = parity;
  }
  const auto corrected = net.eval(clean);
  int flipped = 0;
  for (int i = 0; i < 32; ++i) {
    if (corrected[static_cast<std::size_t>(i)] != clean[static_cast<std::size_t>(i)]) {
      ++flipped;
    }
  }
  // Zero syndrome: only data bits whose pattern is 0x00 could flip.
  int zero_pattern_bits = 0;
  for (int i = 0; i < 32; ++i) {
    if (h(i) == 0) ++zero_pattern_bits;
  }
  EXPECT_LE(flipped, zero_pattern_bits);
}

TEST(CircuitSemantics, DesSboxOutputsDependOnlyOnTheirBox) {
  const auto net = make_circuit("des");
  std::mt19937_64 rng(6);
  // Flipping an input outside sbox 0's support never changes sb0_* outputs.
  const auto sb0 = net.find("sb0_0");
  ASSERT_NE(sb0, net::kNoNode);
  std::set<net::NodeId> support(net.node(sb0).fanins.begin(),
                                net.node(sb0).fanins.end());
  std::vector<bool> assign(256);
  for (auto&& a : assign) a = (rng() & 1) != 0;
  const auto base = net.eval(assign);
  for (int flip = 0; flip < 20; ++flip) {
    int pi_index = static_cast<int>(rng() % 256);
    if (support.count(net.inputs()[static_cast<std::size_t>(pi_index)]) != 0) {
      continue;
    }
    auto mutated = assign;
    mutated[static_cast<std::size_t>(pi_index)] =
        !mutated[static_cast<std::size_t>(pi_index)];
    const auto out = net.eval(mutated);
    for (int o = 0; o < 4; ++o) {
      EXPECT_EQ(out[static_cast<std::size_t>(o)], base[static_cast<std::size_t>(o)]);
    }
  }
}

TEST(CircuitSemantics, PlaGroupsShareSupports) {
  // Outputs of the same seeded-PLA group read identical PI sets.
  const auto net = make_circuit("duke2");  // group_size 4
  const auto o0 = net.outputs()[0].driver;
  const auto o1 = net.outputs()[1].driver;
  auto sorted_fanins = [&net](net::NodeId id) {
    auto f = net.node(id).fanins;
    std::sort(f.begin(), f.end());
    return f;
  };
  // Same group -> same support universe (post-sweep supports may shrink per
  // output, but they stay inside the group's drawn support).
  const auto f0 = sorted_fanins(o0);
  const auto f1 = sorted_fanins(o1);
  std::vector<net::NodeId> merged;
  std::set_union(f0.begin(), f0.end(), f1.begin(), f1.end(),
                 std::back_inserter(merged));
  EXPECT_LE(merged.size(), 10u);  // duke2's group support size
}

}  // namespace
}  // namespace hyde::mcnc
