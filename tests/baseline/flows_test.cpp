#include "baseline/flows.hpp"

#include <gtest/gtest.h>

#include "mcnc/benchmarks.hpp"

namespace hyde::baseline {
namespace {

TEST(Systems, NamesAreDistinct) {
  EXPECT_EQ(system_name(System::kHyde), "HYDE");
  EXPECT_NE(system_name(System::kImodecLike), system_name(System::kFgsynLike));
  EXPECT_NE(system_name(System::kSawadaLike),
            system_name(System::kSawadaResubLike));
}

class SystemOnCircuit
    : public ::testing::TestWithParam<std::tuple<System, const char*>> {};

TEST_P(SystemOnCircuit, ProducesVerifiedFeasibleNetwork) {
  const auto [system, circuit] = GetParam();
  const auto input = mcnc::make_circuit(circuit);
  const auto result = run_system(input, system, 5, 256);
  EXPECT_TRUE(result.verified) << system_name(system) << " on " << circuit;
  EXPECT_TRUE(result.network.is_k_feasible(5));
  EXPECT_GT(result.luts, 0);
  EXPECT_GT(result.clbs, 0);
  EXPECT_LE(result.clbs, result.luts);
  EXPECT_GT(result.depth, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SmallSuite, SystemOnCircuit,
    ::testing::Combine(::testing::Values(System::kHyde, System::kImodecLike,
                                         System::kFgsynLike, System::kSawadaLike,
                                         System::kSawadaResubLike),
                       ::testing::Values("rd73", "9sym", "misex1", "z4ml")),
    [](const ::testing::TestParamInfo<SystemOnCircuit::ParamType>& param_info) {
      std::string name = system_name(std::get<0>(param_info.param)) + "_" +
                         std::get<1>(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Systems, HydeCompetitiveOnMultiOutput) {
  // On a multi-output arithmetic circuit HYDE (hyper + encoding) should not
  // lose badly to the plain random-encoding flow.
  const auto input = mcnc::make_circuit("rd84");
  const auto hyde = run_system(input, System::kHyde, 5, 0);
  const auto plain = run_system(input, System::kSawadaLike, 5, 0);
  EXPECT_TRUE(hyde.network.is_k_feasible(5));
  EXPECT_LE(hyde.luts, plain.luts + 3);
}

TEST(Systems, K4FlowSkipsClbPacking) {
  const auto input = mcnc::make_circuit("rd73");
  const auto result = run_system(input, System::kHyde, 4, 0);
  EXPECT_TRUE(result.network.is_k_feasible(4));
  EXPECT_EQ(result.clbs, 0);  // CLB metric is XC3000/k=5 only
}

TEST(Systems, TimingIsRecorded) {
  const auto input = mcnc::make_circuit("rd73");
  const auto result = run_system(input, System::kHyde, 5, 0);
  EXPECT_GE(result.seconds, 0.0);
  EXPECT_LT(result.seconds, 60.0);
}

}  // namespace
}  // namespace hyde::baseline
