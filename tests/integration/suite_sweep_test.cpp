/// The big safety net: every circuit of the benchmark registry through the
/// HYDE flow, formally verified (BDD comparison where tractable).

#include <gtest/gtest.h>

#include "baseline/flows.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/verify.hpp"

namespace hyde {
namespace {

class SuiteSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteSweep, HydeFlowVerifies) {
  const auto input = mcnc::make_circuit(GetParam());
  const auto result =
      baseline::run_system(input, baseline::System::kHyde, 5, /*verify=*/0);
  EXPECT_TRUE(result.network.is_k_feasible(5));
  net::EquivalenceOptions options;
  options.random_vectors = 256;
  const auto eq = net::check_equivalence(input, result.network, options);
  EXPECT_TRUE(eq.equivalent) << GetParam() << " failing output "
                             << eq.failing_output;
  EXPECT_GT(result.luts, 0);
  EXPECT_GT(result.clbs, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, SuiteSweep,
                         ::testing::ValuesIn(mcnc::all_circuits()),
                         [](const ::testing::TestParamInfo<std::string>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace hyde
