/// \file parallel_search_test.cpp
/// \brief End-to-end determinism of the parallel bound-set search: the HYDE
/// flow over every registry circuit must produce the bit-identical mapped
/// network — same BLIF text, same LUT/CLB/depth, same deterministic flow
/// counters — at search thread counts 1, 2 and 4, with and without the
/// chart memo and pruning. Runs under TSan in CI (the ParallelSearch name
/// is matched by the sanitizer job's test filter).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/flows.hpp"
#include "core/flow.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"

namespace hyde {
namespace {

std::string mapped_blif(const net::Network& input, int search_threads,
                        bool memo, bool pruning, core::FlowStats* stats) {
  core::FlowOptions options = core::hyde_options(5);
  options.search_threads = search_threads;
  options.search_memo = memo;
  options.search_pruning = pruning;
  core::FlowResult flow = core::run_flow(input, options);
  mapper::dedup_shared_nodes(flow.network);
  mapper::collapse_into_fanouts(flow.network, 5);
  mapper::dedup_shared_nodes(flow.network);
  if (stats != nullptr) *stats = flow.stats;
  std::ostringstream out;
  net::write_blif(flow.network, out);
  return out.str();
}

class ParallelSearchSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelSearchSweep, ThreadCountAndKnobsNeverChangeTheNetwork) {
  const net::Network input = mcnc::make_circuit(GetParam());

  core::FlowStats serial_stats;
  const std::string serial =
      mapped_blif(input, 1, /*memo=*/true, /*pruning=*/true, &serial_stats);

  // The plain configuration (no memo, no pruning, serial) is the historical
  // code path; every accelerated configuration must reproduce it exactly.
  EXPECT_EQ(mapped_blif(input, 1, false, false, nullptr), serial);

  for (int threads : {2, 4}) {
    core::FlowStats parallel_stats;
    const std::string parallel =
        mapped_blif(input, threads, true, true, &parallel_stats);
    ASSERT_EQ(parallel, serial) << GetParam() << " with " << threads
                                << " search threads";
    // Deterministic flow counters agree too (volatile search/bdd counters
    // and timings may differ, which is exactly why they are volatile).
    EXPECT_EQ(parallel_stats.decomposition_steps,
              serial_stats.decomposition_steps);
    EXPECT_EQ(parallel_stats.shannon_fallbacks, serial_stats.shannon_fallbacks);
    EXPECT_EQ(parallel_stats.hyper_groups, serial_stats.hyper_groups);
    EXPECT_EQ(parallel_stats.encoder_runs, serial_stats.encoder_runs);
    EXPECT_EQ(parallel_stats.encoder_random_kept,
              serial_stats.encoder_random_kept);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, ParallelSearchSweep,
                         ::testing::ValuesIn(mcnc::all_circuits()),
                         [](const ::testing::TestParamInfo<std::string>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ParallelSearchSystems, EveryBaselineSystemIsThreadCountInvariant) {
  // The engine also backs the encoder's Step-3 partitioning in the other
  // system presets; sweep one representative circuit through all of them.
  const net::Network input = mcnc::make_circuit("duke2");
  for (const baseline::System system :
       {baseline::System::kHyde, baseline::System::kImodecLike,
        baseline::System::kFgsynLike, baseline::System::kSawadaLike,
        baseline::System::kSawadaResubLike}) {
    const auto serial = baseline::run_system(input, system, 5, /*verify=*/0,
                                             /*seed=*/1, nullptr, 7,
                                             /*search_threads=*/1);
    const auto parallel = baseline::run_system(input, system, 5, /*verify=*/0,
                                               /*seed=*/1, nullptr, 7,
                                               /*search_threads=*/4);
    EXPECT_EQ(serial.luts, parallel.luts)
        << baseline::system_name(system);
    EXPECT_EQ(serial.clbs, parallel.clbs) << baseline::system_name(system);
    EXPECT_EQ(serial.depth, parallel.depth) << baseline::system_name(system);
    std::ostringstream a, b;
    net::write_blif(serial.network, a);
    net::write_blif(parallel.network, b);
    EXPECT_EQ(a.str(), b.str()) << baseline::system_name(system);
  }
}

}  // namespace
}  // namespace hyde
