/// \file parallel_encoder_test.cpp
/// \brief End-to-end determinism of the class-computation and encoder fast
/// paths: the HYDE flow over every registry circuit must produce the
/// bit-identical mapped network — same BLIF text, same deterministic flow
/// counters — with the signature compatibility path on or off and with
/// encoder thread counts 1, 2 and 4. Runs under TSan in CI (the
/// ParallelEncoder name is matched by the sanitizer job's test filter).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/flows.hpp"
#include "core/flow.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"

namespace hyde {
namespace {

std::string mapped_blif(const net::Network& input, int encoder_threads,
                        bool class_signatures, core::FlowStats* stats) {
  core::FlowOptions options = core::hyde_options(5);
  options.encoder_threads = encoder_threads;
  options.class_signatures = class_signatures;
  core::FlowResult flow = core::run_flow(input, options);
  mapper::dedup_shared_nodes(flow.network);
  mapper::collapse_into_fanouts(flow.network, 5);
  mapper::dedup_shared_nodes(flow.network);
  if (stats != nullptr) *stats = flow.stats;
  std::ostringstream out;
  net::write_blif(flow.network, out);
  return out.str();
}

class ParallelEncoderSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelEncoderSweep, EngineKnobsNeverChangeTheNetwork) {
  const net::Network input = mcnc::make_circuit(GetParam());

  core::FlowStats serial_stats;
  const std::string serial =
      mapped_blif(input, 1, /*class_signatures=*/true, &serial_stats);

  // Signatures off + one thread is the historical code path; every
  // accelerated configuration must reproduce it exactly.
  EXPECT_EQ(mapped_blif(input, 1, false, nullptr), serial);

  struct Config {
    int threads;
    bool signatures;
  };
  for (const Config config : {Config{2, true}, Config{4, true},
                              Config{4, false}}) {
    core::FlowStats parallel_stats;
    const std::string parallel =
        mapped_blif(input, config.threads, config.signatures, &parallel_stats);
    ASSERT_EQ(parallel, serial)
        << GetParam() << " with " << config.threads << " encoder threads, "
        << (config.signatures ? "signatures" : "bdd pairs");
    // Deterministic flow counters agree too (the class/encoder counters are
    // volatile by design: they attribute work to whichever path ran).
    EXPECT_EQ(parallel_stats.decomposition_steps,
              serial_stats.decomposition_steps);
    EXPECT_EQ(parallel_stats.shannon_fallbacks, serial_stats.shannon_fallbacks);
    EXPECT_EQ(parallel_stats.hyper_groups, serial_stats.hyper_groups);
    EXPECT_EQ(parallel_stats.encoder_runs, serial_stats.encoder_runs);
    EXPECT_EQ(parallel_stats.encoder_random_kept,
              serial_stats.encoder_random_kept);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, ParallelEncoderSweep,
                         ::testing::ValuesIn(mcnc::all_circuits()),
                         [](const ::testing::TestParamInfo<std::string>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ParallelEncoderSystems, EveryBaselineSystemIsEncoderThreadInvariant) {
  // Every system preset routes through the encoder (directly or via hyper
  // groups); sweep one representative circuit through all of them.
  const net::Network input = mcnc::make_circuit("duke2");
  for (const baseline::System system :
       {baseline::System::kHyde, baseline::System::kImodecLike,
        baseline::System::kFgsynLike, baseline::System::kSawadaLike,
        baseline::System::kSawadaResubLike}) {
    const auto serial = baseline::run_system(input, system, 5, /*verify=*/0,
                                             /*seed=*/1, nullptr, 7,
                                             /*search_threads=*/1,
                                             /*encoder_threads=*/1,
                                             /*class_signatures=*/false);
    const auto parallel = baseline::run_system(input, system, 5, /*verify=*/0,
                                               /*seed=*/1, nullptr, 7,
                                               /*search_threads=*/1,
                                               /*encoder_threads=*/4,
                                               /*class_signatures=*/true);
    EXPECT_EQ(serial.luts, parallel.luts) << baseline::system_name(system);
    EXPECT_EQ(serial.clbs, parallel.clbs) << baseline::system_name(system);
    EXPECT_EQ(serial.depth, parallel.depth) << baseline::system_name(system);
    std::ostringstream a, b;
    net::write_blif(serial.network, a);
    net::write_blif(parallel.network, b);
    EXPECT_EQ(a.str(), b.str()) << baseline::system_name(system);
  }
}

TEST(ParallelEncoderCounters, WorkReachesTheEnginesOnDuke2) {
  // Sanity that the fast paths actually fire (not just agree): duke2's flow
  // decides class pairs by signatures when enabled, by BDDs when not, and
  // dispatches encoder snapshot tasks when threads are available.
  const net::Network input = mcnc::make_circuit("duke2");
  core::FlowStats parallel_stats;
  mapped_blif(input, 4, /*class_signatures=*/true, &parallel_stats);
  EXPECT_GT(parallel_stats.class_signature_pairs, 0u);
  EXPECT_GT(parallel_stats.encoder_parallel_tasks, 0u);

  core::FlowStats serial_stats;
  mapped_blif(input, 1, /*class_signatures=*/false, &serial_stats);
  EXPECT_GT(serial_stats.class_bdd_pairs, 0u);
  EXPECT_EQ(serial_stats.encoder_parallel_tasks, 0u);
}

}  // namespace
}  // namespace hyde
