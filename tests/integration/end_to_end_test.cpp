/// Cross-module integration and property tests: whole-flow equivalence over
/// generated circuits, BLIF round trips through the flow, mapper passes
/// preserving behaviour, and the containment theorems (4.3/4.4) checked
/// semantically against decomposition functions.

#include <gtest/gtest.h>

#include <random>

#include "baseline/flows.hpp"
#include "core/flow.hpp"
#include "decomp/partition.hpp"
#include "mapper/lutmap.hpp"
#include "mapper/xc3000.hpp"
#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"

namespace hyde {
namespace {

std::vector<bool> bits_of(std::uint64_t m, int n) {
  std::vector<bool> assign(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
  return assign;
}

void expect_equiv_random(const net::Network& a, const net::Network& b,
                         int vectors, std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  std::mt19937_64 rng(seed);
  const int n = static_cast<int>(a.inputs().size());
  for (int probe = 0; probe < vectors; ++probe) {
    std::vector<bool> assign(static_cast<std::size_t>(n));
    for (auto&& v : assign) v = (rng() & 1) != 0;
    ASSERT_EQ(a.eval(assign), b.eval(assign)) << "probe " << probe;
  }
}

TEST(EndToEnd, BlifThroughFlowRoundTrip) {
  // Serialize a benchmark to BLIF, parse it back, run the flow on both and
  // get equivalent results.
  const auto original = mcnc::make_circuit("rd73");
  const auto reparsed = net::read_blif_string(net::write_blif_string(original));
  const auto flow_a = core::run_flow(original, core::hyde_options(5));
  const auto flow_b = core::run_flow(reparsed, core::hyde_options(5));
  for (std::uint64_t m = 0; m < 128; ++m) {
    const auto assign = bits_of(m, 7);
    EXPECT_EQ(flow_a.network.eval(assign), flow_b.network.eval(assign));
    EXPECT_EQ(flow_a.network.eval(assign), original.eval(assign));
  }
}

TEST(EndToEnd, MapperPassesPreserveBehaviour) {
  std::mt19937_64 rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    const auto input = mcnc::random_multilevel(
        "t" + std::to_string(trial), 12, 6, 40, 2, 6, 1000 + trial);
    auto flow = core::run_flow(input, core::hyde_options(5));
    net::Network& net = flow.network;
    expect_equiv_random(input, net, 64, trial);
    mapper::dedup_shared_nodes(net);
    expect_equiv_random(input, net, 64, trial + 100);
    mapper::collapse_into_fanouts(net, 5);
    expect_equiv_random(input, net, 64, trial + 200);
    mapper::resubstitute(net);
    expect_equiv_random(input, net, 64, trial + 300);
    EXPECT_TRUE(net.is_k_feasible(5));
  }
}

TEST(EndToEnd, CoveringNeverIncreasesLuts) {
  for (const char* name : {"rd84", "misex1", "sao2", "count"}) {
    auto flow = core::run_flow(mcnc::make_circuit(name), core::hyde_options(5));
    flow.network.sweep();
    const int before = mapper::lut_count(flow.network);
    mapper::collapse_into_fanouts(flow.network, 5);
    EXPECT_LE(mapper::lut_count(flow.network), before) << name;
  }
}

TEST(EndToEnd, ClbPackingBounds) {
  for (const char* name : {"rd84", "9sym", "misex1"}) {
    const auto result =
        baseline::run_system(mcnc::make_circuit(name), baseline::System::kHyde, 5, 64);
    ASSERT_TRUE(result.verified) << name;
    // CLBs in [ceil(luts/2), luts].
    EXPECT_GE(result.clbs, (result.luts + 1) / 2) << name;
    EXPECT_LE(result.clbs, result.luts) << name;
  }
}

TEST(EndToEnd, AllGroupChoicesEquivalent) {
  const auto input = mcnc::make_circuit("rd84");
  for (const auto choice : {core::GroupChoice::kAuto,
                            core::GroupChoice::kAlwaysHyper,
                            core::GroupChoice::kNeverHyper}) {
    core::FlowOptions options = core::hyde_options(5);
    options.group_choice = choice;
    const auto result = core::run_flow(input, options);
    for (std::uint64_t m = 0; m < 256; ++m) {
      const auto assign = bits_of(m, 8);
      ASSERT_EQ(input.eval(assign), result.network.eval(assign))
          << "choice " << static_cast<int>(choice) << " minterm " << m;
    }
  }
}

TEST(EndToEnd, AutoChoiceTracksBetterCandidate) {
  // kAuto's LUT count must be within noise of min(never, always).
  for (const char* name : {"rd84", "z4ml", "clip"}) {
    const auto input = mcnc::make_circuit(name);
    auto luts = [&input](core::GroupChoice choice) {
      core::FlowOptions options = core::hyde_options(5);
      options.group_choice = choice;
      auto flow = core::run_flow(input, options);
      mapper::dedup_shared_nodes(flow.network);
      mapper::collapse_into_fanouts(flow.network, 5);
      return mapper::lut_count(flow.network);
    };
    const int never = luts(core::GroupChoice::kNeverHyper);
    const int always = luts(core::GroupChoice::kAlwaysHyper);
    const int automatic = luts(core::GroupChoice::kAuto);
    EXPECT_LE(automatic, std::max(never, always)) << name;
    // Allow small slack: the auto decision uses created-node counts before
    // dedup/covering, which is a proxy for the final LUT count.
    EXPECT_LE(automatic, std::min(never, always) + 4) << name;
  }
}

TEST(EndToEnd, SeedStability) {
  // Different seeds change random encodings but never correctness, and the
  // default flow is deterministic for a fixed seed.
  const auto input = mcnc::make_circuit("misex1");
  const auto a = core::run_flow(input, core::hyde_options(5));
  const auto b = core::run_flow(input, core::hyde_options(5));
  EXPECT_EQ(net::write_blif_string(a.network), net::write_blif_string(b.network));
  core::FlowOptions other_seed = core::hyde_options(5);
  other_seed.seed = 777;
  const auto c = core::run_flow(input, other_seed);
  for (std::uint64_t m = 0; m < 256; ++m) {
    const auto assign = bits_of(m, 8);
    ASSERT_EQ(input.eval(assign), c.network.eval(assign));
  }
}

// --- Theorems 4.3/4.4: containment = decomposition-function reuse ---------

TEST(Containment, AlphasOfContainingPartitionServeContained) {
  // Build fb (3 distinct column patterns) and fa (a merging of fb's
  // patterns). A = Π(fa) is contained by B = Π(fb); the α's that identify
  // B's columns must also suffice for fa: whenever they agree on two bound
  // minterms, fa's patterns agree too.
  bdd::Manager mgr(8);
  const bdd::Bdd x0 = mgr.var(0), x1 = mgr.var(1);
  const bdd::Bdd y0 = mgr.var(4), y1 = mgr.var(5);
  // fb patterns per (x1 x0): 00 -> y0 ; 01 -> y1 ; 10 -> y0&y1 ; 11 -> y0.
  const bdd::Bdd fb = (~x1 & ~x0 & y0) | (~x1 & x0 & y1) | (x1 & ~x0 & y0 & y1) |
                      (x1 & x0 & y0);
  // fa merges fb's columns {00,11} and {01,10}: 00,11 -> y1 ; 01,10 -> ~y0.
  const bdd::Bdd fa = ((~x1 & ~x0) & y1) | ((x1 & x0) & y1) |
                      ((x0 ^ x1) & ~y0);

  decomp::SymbolTable symbols;
  // Partitions w.r.t. positions = bound set {x0, x1}? No: Definition 3.1's
  // partitions here index bound minterms; use positions {0,1}.
  const auto pa = decomp::make_partition(
      mgr, decomp::IsfBdd{fa, mgr.zero()}, {0, 1}, symbols);
  const auto pb = decomp::make_partition(
      mgr, decomp::IsfBdd{fb, mgr.zero()}, {0, 1}, symbols);
  EXPECT_EQ(pa.multiplicity(), 2);
  EXPECT_EQ(pb.multiplicity(), 3);
  // fa's grouping {00,11}/{01,10} is NOT coarser than fb's {00,11}/{01}/{10},
  // wait: fb groups {00,11},{01},{10}; fa groups {00,11},{01,10}. Every fb
  // group is inside an fa group -> Πa is contained by Πb.
  EXPECT_TRUE(decomp::contained_in(pa, pb));
  EXPECT_FALSE(decomp::contained_in(pb, pa));

  // Semantic check (Theorem 4.4): strict α's of fb (one code per distinct
  // fb-pattern) distinguish enough for fa.
  decomp::DecompSpec spec_b;
  spec_b.mgr = &mgr;
  spec_b.f = decomp::IsfBdd{fb, mgr.zero()};
  spec_b.bound = {0, 1};
  spec_b.free = {4, 5};
  const auto classes_b = decomp::compute_compatible_classes(spec_b);
  ASSERT_EQ(classes_b.num_classes(), 3);
  const auto step_b = decomp::build_step(
      mgr, classes_b, spec_b.bound, spec_b.free,
      decomp::identity_encoding(3), {6, 7});
  // For every pair of bound minterms with equal α values, fa's cofactors
  // must coincide.
  for (std::uint64_t m1 = 0; m1 < 4; ++m1) {
    for (std::uint64_t m2 = 0; m2 < 4; ++m2) {
      auto alpha_at = [&](std::uint64_t m) {
        std::uint32_t value = 0;
        for (std::size_t j = 0; j < step_b.alphas.size(); ++j) {
          std::vector<bool> assign(8, false);
          assign[0] = (m & 1) != 0;
          assign[1] = (m & 2) != 0;
          if (mgr.eval(step_b.alphas[j], assign)) value |= 1u << j;
        }
        return value;
      };
      if (alpha_at(m1) != alpha_at(m2)) continue;
      const bdd::Bdd cof1 = mgr.cofactor_cube(
          fa, {{0, (m1 & 1) != 0}, {1, (m1 & 2) != 0}});
      const bdd::Bdd cof2 = mgr.cofactor_cube(
          fa, {{0, (m2 & 1) != 0}, {1, (m2 & 2) != 0}});
      EXPECT_EQ(cof1, cof2) << m1 << " vs " << m2;
    }
  }
}

TEST(EndToEnd, K4AndK5OnSameSuite) {
  for (const char* name : {"rd73", "misex1"}) {
    const auto input = mcnc::make_circuit(name);
    for (int k : {4, 5}) {
      const auto result = baseline::run_system(input, baseline::System::kHyde,
                                               k, 64);
      EXPECT_TRUE(result.verified) << name << " k=" << k;
      EXPECT_TRUE(result.network.is_k_feasible(k)) << name << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace hyde
