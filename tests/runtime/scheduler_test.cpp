/// Tests for the job scheduler and the scheduling-independence of batch runs.
///
/// The headline acceptance property of the runtime: a batch executed on one
/// worker and the same batch on several workers produce bit-identical
/// deterministic reports (`to_json(report, /*include_volatile=*/false)`) —
/// results depend on the job list and seeds, never on scheduling.

#include "runtime/scheduler.hpp"

#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "runtime/batch.hpp"
#include "runtime/report.hpp"

namespace hyde::runtime {
namespace {

TEST(JobSchedulerTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  JobScheduler pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);

  // The pool stays usable after an idle barrier.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 201);
}

TEST(JobSchedulerTest, WorkerCountClampedToAtLeastOne) {
  JobScheduler pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(JobSchedulerTest, WaitIdleOnEmptyPoolReturns) {
  JobScheduler pool(2);
  pool.wait_idle();
}

TEST(JobSchedulerTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    JobScheduler pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(BatchDeterminismTest, OneWorkerAndFourWorkersAgreeBitForBit) {
  const std::vector<std::string> circuits = {"rd73", "z4ml", "misex1", "f51m"};
  const std::vector<baseline::System> systems = {
      baseline::System::kHyde, baseline::System::kImodecLike};
  const std::vector<BatchJob> jobs = suite_jobs(circuits, systems, 5, 1);
  ASSERT_EQ(jobs.size(), circuits.size() * systems.size());

  BatchOptions serial;
  serial.workers = 1;
  BatchOptions parallel = serial;
  parallel.workers = 4;

  const RunReport a = run_batch(jobs, serial);
  const RunReport b = run_batch(jobs, parallel);
  EXPECT_TRUE(a.all_ok());
  EXPECT_TRUE(b.all_ok());
  EXPECT_GT(a.cache.flow_lookups, 0u);

  // The deterministic JSON subset (results, stats, seeds, cache closure) is
  // bit-identical; only wall-clock/worker/observed-traffic fields may differ.
  EXPECT_EQ(to_json(a, /*include_volatile=*/false),
            to_json(b, /*include_volatile=*/false));
}

TEST(BatchDeterminismTest, CacheOffStillDeterministicAndErrorsAreCaptured) {
  std::vector<BatchJob> jobs = suite_jobs({"rd73"}, {baseline::System::kHyde},
                                          5, 1);
  jobs.push_back(BatchJob{"no_such_circuit", baseline::System::kHyde, 5, 1});

  BatchOptions options;
  options.workers = 2;
  options.use_cache = false;
  const RunReport report = run_batch(jobs, options);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_TRUE(report.jobs[0].error.empty());
  EXPECT_TRUE(report.jobs[0].verified);
  EXPECT_FALSE(report.jobs[1].error.empty());
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.cache.unique_functions, 0u);

  const std::string json = to_json(report, /*include_volatile=*/false);
  EXPECT_NE(json.find("no_such_circuit"), std::string::npos);
  const std::string csv = to_csv(report);
  EXPECT_NE(csv.find("rd73"), std::string::npos);
}

}  // namespace
}  // namespace hyde::runtime
