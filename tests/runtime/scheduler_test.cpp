/// Tests for the job scheduler and the scheduling-independence of batch runs.
///
/// The headline acceptance property of the runtime: a batch executed on one
/// worker and the same batch on several workers produce bit-identical
/// deterministic reports (`to_json(report, /*include_volatile=*/false)`) —
/// results depend on the job list and seeds, never on scheduling.

#include "runtime/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "runtime/batch.hpp"
#include "runtime/report.hpp"

namespace hyde::runtime {
namespace {

TEST(JobSchedulerTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  JobScheduler pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);

  // The pool stays usable after an idle barrier.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 201);
}

TEST(JobSchedulerTest, WorkerCountClampedToAtLeastOne) {
  JobScheduler pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(JobSchedulerTest, WaitIdleOnEmptyPoolReturns) {
  JobScheduler pool(2);
  pool.wait_idle();
}

TEST(JobSchedulerTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    JobScheduler pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(JobSchedulerTest, OrderedSubmitRunsEveryTaskAndAccountsForAll) {
  std::atomic<int> counter{0};
  JobScheduler pool(3);
  std::vector<OrderedTask> tasks;
  for (int i = 0; i < 60; ++i) {
    tasks.push_back(OrderedTask{static_cast<std::uint64_t>(i % 7),
                                [&counter] { counter.fetch_add(1); }});
  }
  pool.submit_ordered(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 60);

  const SchedulerStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 60u);
  EXPECT_EQ(stats.executed, 60u);
  ASSERT_EQ(stats.workers.size(), 3u);
  std::uint64_t worker_tasks = 0;
  std::uint64_t worker_steals = 0;
  for (const WorkerUtilization& u : stats.workers) {
    worker_tasks += u.tasks;
    worker_steals += u.steals;
    EXPECT_GE(u.busy_seconds, 0.0);
  }
  EXPECT_EQ(worker_tasks, 60u);
  EXPECT_EQ(worker_steals, stats.steals);
}

TEST(JobSchedulerTest, ForcedStealsStillFillEveryOutcomeSlotExactlyOnce) {
  // Lie to the scheduler: one "expensive" instant task pins worker A's
  // deque, many "cheap" slow tasks pile onto worker B. A drains instantly
  // and must steal from B's back to stay busy. Outcomes land in per-index
  // slots, so the result is identical no matter who ran what.
  JobScheduler pool(2);
  constexpr int kSlow = 8;
  std::vector<std::atomic<int>> hits(kSlow + 1);
  for (auto& h : hits) h.store(0);
  std::vector<OrderedTask> tasks;
  tasks.push_back(OrderedTask{1000, [&hits] { hits[0].fetch_add(1); }});
  for (int i = 1; i <= kSlow; ++i) {
    tasks.push_back(OrderedTask{10, [&hits, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }});
  }
  pool.submit_ordered(std::move(tasks));
  pool.wait_idle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const SchedulerStats stats = pool.stats();
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kSlow) + 1);
  EXPECT_GE(stats.steals, 1u);
}

TEST(JobSchedulerTest, ThrowingOrderedTaskDoesNotKillItsWorker) {
  std::atomic<int> counter{0};
  JobScheduler pool(2);
  std::vector<OrderedTask> tasks;
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 0) {
      tasks.push_back(OrderedTask{5, [] { throw std::runtime_error("boom"); }});
    } else {
      tasks.push_back(OrderedTask{5, [&counter] { counter.fetch_add(1); }});
    }
  }
  pool.submit_ordered(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 16);
  EXPECT_EQ(pool.stats().executed, 20u);

  // Every worker survived the strays and keeps taking work on both paths.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit_ordered({OrderedTask{1, [&counter] { counter.fetch_add(1); }}});
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 18);
}

TEST(JobSchedulerTest, FifoAndOrderedPathsShareOnePool) {
  std::atomic<int> counter{0};
  JobScheduler pool(2);
  std::vector<OrderedTask> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(OrderedTask{static_cast<std::uint64_t>(10 - i),
                                [&counter] { counter.fetch_add(1); }});
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.submit_ordered(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(pool.stats().submitted, 20u);
}

TEST(BatchDeterminismTest, OneWorkerAndFourWorkersAgreeBitForBit) {
  const std::vector<std::string> circuits = {"rd73", "z4ml", "misex1", "f51m"};
  const std::vector<baseline::System> systems = {
      baseline::System::kHyde, baseline::System::kImodecLike};
  const std::vector<BatchJob> jobs = suite_jobs(circuits, systems, 5, 1);
  ASSERT_EQ(jobs.size(), circuits.size() * systems.size());

  BatchOptions serial;
  serial.workers = 1;
  BatchOptions parallel = serial;
  parallel.workers = 4;

  const RunReport a = run_batch(jobs, serial);
  const RunReport b = run_batch(jobs, parallel);
  EXPECT_TRUE(a.all_ok());
  EXPECT_TRUE(b.all_ok());
  EXPECT_GT(a.cache.flow_lookups, 0u);

  // The deterministic JSON subset (results, stats, seeds, cache closure) is
  // bit-identical; only wall-clock/worker/observed-traffic fields may differ.
  EXPECT_EQ(to_json(a, /*include_volatile=*/false),
            to_json(b, /*include_volatile=*/false));
}

TEST(BatchDeterminismTest, CacheOffStillDeterministicAndErrorsAreCaptured) {
  std::vector<BatchJob> jobs = suite_jobs({"rd73"}, {baseline::System::kHyde},
                                          5, 1);
  jobs.push_back(BatchJob{"no_such_circuit", baseline::System::kHyde, 5, 1});

  BatchOptions options;
  options.workers = 2;
  options.use_cache = false;
  const RunReport report = run_batch(jobs, options);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_TRUE(report.jobs[0].error.empty());
  EXPECT_TRUE(report.jobs[0].verified);
  EXPECT_FALSE(report.jobs[1].error.empty());
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.cache.unique_functions, 0u);

  const std::string json = to_json(report, /*include_volatile=*/false);
  EXPECT_NE(json.find("no_such_circuit"), std::string::npos);
  const std::string csv = to_csv(report);
  EXPECT_NE(csv.find("rd73"), std::string::npos);
}

}  // namespace
}  // namespace hyde::runtime
