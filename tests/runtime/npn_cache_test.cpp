/// Tests for the sharded NPN result cache (src/runtime/npn_cache) and its
/// integration with the synthesis flow.
///
/// The critical property is the determinism contract of
/// core/decomp_cache.hpp: a flow's result must not depend on what the cache
/// already contains (cold vs warm), because in a parallel batch the warm-up
/// order is scheduling-dependent.

#include "runtime/npn_cache.hpp"

#include <cstdint>

#include "baseline/flows.hpp"
#include "gtest/gtest.h"
#include "mcnc/benchmarks.hpp"
#include "tt/npn.hpp"

namespace hyde::runtime {
namespace {

core::NpnCacheKey key_for(const tt::TruthTable& f, std::uint64_t fingerprint) {
  const tt::NpnCanonization canon = tt::npn_canonize(f);
  return core::NpnCacheKey{canon.canonical.on, canon.canonical.dc, fingerprint};
}

core::CachedDecomposition and_template() {
  core::CachedDecomposition value;
  value.num_inputs = 2;
  value.nodes.push_back(core::TemplateNode{
      {0, 1}, tt::TruthTable::from_bits("1000")});
  value.root = 2;
  return value;
}

TEST(NpnResultCacheTest, LookupInsertAndCounters) {
  NpnResultCache cache;
  const tt::TruthTable a = tt::TruthTable::var(2, 0);
  const tt::TruthTable b = tt::TruthTable::var(2, 1);
  const core::NpnCacheKey key = key_for(a & b, 42);

  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  const auto inserted = cache.insert(key, and_template());
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(cache.size(), 1u);

  const auto found = cache.lookup(key);
  EXPECT_EQ(found, inserted);

  // NPN-equivalent function, same fingerprint -> same entry.
  EXPECT_EQ(cache.lookup(key_for(a | b, 42)), inserted);
  // Same function, different options fingerprint -> distinct key.
  EXPECT_EQ(cache.lookup(key_for(a & b, 43)), nullptr);

  const NpnCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.races_lost, 0u);
}

TEST(NpnResultCacheTest, RacingInsertKeepsFirstEntry) {
  NpnResultCache cache;
  const core::NpnCacheKey key =
      key_for(tt::TruthTable::var(3, 0) ^ tt::TruthTable::var(3, 2), 7);
  const auto first = cache.insert(key, and_template());
  // Per the determinism contract a racing insert carries a bit-identical
  // value; the cache must keep the first entry and report the lost race.
  const auto second = cache.insert(key, and_template());
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().races_lost, 1u);
}

TEST(NpnResultCacheTest, FlowWithCacheVerifiesAndConsultsCache) {
  NpnResultCache cache;
  const net::Network input = mcnc::make_circuit("rd73");
  const baseline::BaselineResult result = baseline::run_system(
      input, baseline::System::kHyde, 5, /*verify_vectors=*/128, /*seed=*/1,
      &cache);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.stats.cache_lookups, 0);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.counters().misses, 0u);
}

TEST(NpnResultCacheTest, ColdAndWarmCacheProduceIdenticalResults) {
  const net::Network input = mcnc::make_circuit("5xp1");

  NpnResultCache cold;
  const baseline::BaselineResult first = baseline::run_system(
      input, baseline::System::kHyde, 5, 128, 1, &cold);

  // Warm the second cache with a different circuit first, then run the same
  // job: the pre-existing entries must not change the outcome.
  NpnResultCache warm;
  const net::Network other = mcnc::make_circuit("rd73");
  (void)baseline::run_system(other, baseline::System::kHyde, 5, 0, 1, &warm);
  const std::uint64_t pre_warmed = warm.size();
  EXPECT_GT(pre_warmed, 0u);
  const baseline::BaselineResult second = baseline::run_system(
      input, baseline::System::kHyde, 5, 128, 1, &warm);

  EXPECT_EQ(first.luts, second.luts);
  EXPECT_EQ(first.clbs, second.clbs);
  EXPECT_EQ(first.depth, second.depth);
  EXPECT_EQ(first.stats.cache_lookups, second.stats.cache_lookups);
  EXPECT_EQ(first.stats.decomposition_steps, second.stats.decomposition_steps);
  EXPECT_TRUE(first.verified);
  EXPECT_TRUE(second.verified);

  // Re-running the identical job on the already-warm cache hits.
  const NpnCacheCounters before = warm.counters();
  const baseline::BaselineResult third = baseline::run_system(
      input, baseline::System::kHyde, 5, 0, 1, &warm);
  EXPECT_EQ(third.luts, first.luts);
  EXPECT_GT(warm.counters().hits, before.hits);
}

}  // namespace
}  // namespace hyde::runtime
