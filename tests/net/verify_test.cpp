#include "net/verify.hpp"

#include <gtest/gtest.h>

#include "mcnc/benchmarks.hpp"
#include "tt/truth_table.hpp"

namespace hyde::net {
namespace {

using tt::TruthTable;

Network xor_network(const std::string& model, bool broken) {
  Network net(model);
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const TruthTable x3 = broken
                            ? TruthTable::from_lambda(3, [](std::uint64_t m) {
                                return std::popcount(m) % 2 == 1 || m == 0;
                              })
                            : TruthTable::from_lambda(3, [](std::uint64_t m) {
                                return std::popcount(m) % 2 == 1;
                              });
  net.add_output("y", net.add_logic_tt("y", {a, b, c}, x3));
  return net;
}

TEST(Equivalence, FormalProvesEquality) {
  const Network a = xor_network("a", false);
  // Same function, built differently: chain of 2-input XORs.
  Network b("b");
  const NodeId ba = b.add_input("a");
  const NodeId bb = b.add_input("b");
  const NodeId bc = b.add_input("c");
  const TruthTable x2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const NodeId t = b.add_logic_tt("t", {ba, bb}, x2);
  b.add_output("y", b.add_logic_tt("y", {t, bc}, x2));
  const auto result = check_equivalence(a, b);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.method, EquivalenceMethod::kFormalBdd);
}

TEST(Equivalence, FormalFindsCounterexample) {
  const Network a = xor_network("a", false);
  const Network b = xor_network("b", true);  // differs at minterm 0
  const auto result = check_equivalence(a, b);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.method, EquivalenceMethod::kFormalBdd);
  EXPECT_EQ(result.failing_output, 0);
  ASSERT_EQ(result.counterexample.size(), 3u);
  // The witness must actually expose the difference.
  EXPECT_NE(a.eval(result.counterexample), b.eval(result.counterexample));
}

TEST(Equivalence, MatchesInputsByNameAcrossOrders) {
  Network a("a");
  const NodeId ax = a.add_input("x");
  const NodeId ay = a.add_input("y");
  a.add_output("o", a.add_logic_tt("o", {ax, ay},
                                   TruthTable::var(2, 0) & ~TruthTable::var(2, 1)));
  Network b("b");
  const NodeId by = b.add_input("y");  // swapped declaration order
  const NodeId bx = b.add_input("x");
  b.add_output("o", b.add_logic_tt("o", {by, bx},
                                   ~TruthTable::var(2, 0) & TruthTable::var(2, 1)));
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST(Equivalence, InterfaceMismatchThrows) {
  Network a("a"), b("b");
  a.add_input("x");
  b.add_input("z");
  a.add_output("o", a.inputs()[0]);
  b.add_output("o", b.inputs()[0]);
  EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
  Network c("c");
  c.add_input("x");
  EXPECT_THROW(check_equivalence(a, c), std::invalid_argument);
}

TEST(Equivalence, FallsBackWhenBddBudgetTiny) {
  const Network a = mcnc::make_circuit("rd73");
  const Network b = mcnc::make_circuit("rd73");
  EquivalenceOptions options;
  options.bdd_node_budget = 4;  // force the formal attempt to blow the cap
  const auto result = check_equivalence(a, b, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.method, EquivalenceMethod::kExhaustiveSim);
}

TEST(Equivalence, RandomSimOnWideNetworks) {
  const Network a = mcnc::make_circuit("e64");  // 65 PIs
  const Network b = mcnc::make_circuit("e64");
  EquivalenceOptions options;
  options.bdd_node_budget = 16;  // skip formal
  options.exhaustive_max_inputs = 10;
  options.random_vectors = 64;
  const auto result = check_equivalence(a, b, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.method, EquivalenceMethod::kRandomSim);
}

TEST(Equivalence, FormalHandlesBigButTractableCircuits) {
  // des has 256 PIs but small cones: the formal method stays in budget.
  const Network a = mcnc::make_circuit("des");
  const Network b = mcnc::make_circuit("des");
  const auto result = check_equivalence(a, b);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.method, EquivalenceMethod::kFormalBdd);
}

}  // namespace
}  // namespace hyde::net
