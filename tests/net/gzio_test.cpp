/// Unit tests for net/gzio: gzip round-trips, multi-member archives, and the
/// strict failure modes (trailing garbage, truncation, non-gzip input) whose
/// errors must name the file — never a line number, because a corrupt
/// archive has no lines.

#include "net/gzio.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include <unistd.h>

namespace hyde::net {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const std::string& tag) {
  return fs::temp_directory_path() /
         ("hyde_gzio_" + tag + "_" +
          std::to_string(static_cast<long>(::getpid())) + ".gz");
}

void write_bytes(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Expects gunzip_file to throw, returning the message for content checks.
std::string gunzip_error(const fs::path& path) {
  try {
    gunzip_file(path.string());
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "gunzip_file(" << path << ") did not throw";
  return {};
}

TEST(GzioTest, GzipNameConvention) {
  EXPECT_TRUE(is_gzip_name("circuit.blif.gz"));
  EXPECT_TRUE(is_gzip_name("a.gz"));
  EXPECT_FALSE(is_gzip_name("circuit.blif"));
  EXPECT_FALSE(is_gzip_name(".gz"));  // no stem, not a usable archive name
  EXPECT_FALSE(is_gzip_name(""));
}

TEST(GzioTest, RoundTrip) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string text =
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n";
  const fs::path path = temp_file("roundtrip");
  write_bytes(path, gzip_compress(text));
  EXPECT_EQ(gunzip_file(path.string()), text);
  fs::remove(path);
}

TEST(GzioTest, EmptyPayloadRoundTrips) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const fs::path path = temp_file("empty");
  write_bytes(path, gzip_compress(""));
  EXPECT_EQ(gunzip_file(path.string()), "");
  fs::remove(path);
}

TEST(GzioTest, LargeIncompressiblePayloadRoundTrips) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  std::string text;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 300000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    text.push_back(static_cast<char>(state >> 56));
  }
  const fs::path path = temp_file("large");
  write_bytes(path, gzip_compress(text));
  EXPECT_EQ(gunzip_file(path.string()), text);
  fs::remove(path);
}

TEST(GzioTest, ConcatenatedMembersInflateLikeGzipD) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  auto archive = gzip_compress("first half\n");
  const auto second = gzip_compress("second half\n");
  archive.insert(archive.end(), second.begin(), second.end());
  const fs::path path = temp_file("members");
  write_bytes(path, archive);
  EXPECT_EQ(gunzip_file(path.string()), "first half\nsecond half\n");
  fs::remove(path);
}

TEST(GzioTest, TrailingGarbageIsRejectedNamingTheFile) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  auto archive = gzip_compress("payload\n");
  const std::string junk = "not a gzip member";
  archive.insert(archive.end(), junk.begin(), junk.end());
  const fs::path path = temp_file("trailing");
  write_bytes(path, archive);
  const std::string message = gunzip_error(path);
  EXPECT_NE(message.find(path.string()), std::string::npos) << message;
  EXPECT_NE(message.find("trailing garbage"), std::string::npos) << message;
  // Line-free: a corrupt archive has no lines to blame.
  EXPECT_EQ(message.find("line"), std::string::npos) << message;
  fs::remove(path);
}

TEST(GzioTest, TruncatedArchiveIsRejected) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  auto archive = gzip_compress("a somewhat longer payload to truncate\n");
  archive.resize(archive.size() - 6);  // cut into the CRC/length trailer
  const fs::path path = temp_file("truncated");
  write_bytes(path, archive);
  const std::string message = gunzip_error(path);
  EXPECT_NE(message.find(path.string()), std::string::npos) << message;
  fs::remove(path);
}

TEST(GzioTest, CorruptBodyIsRejected) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  auto archive = gzip_compress("the quick brown fox jumps over the lazy dog\n");
  archive[archive.size() / 2] ^= 0xFF;
  const fs::path path = temp_file("corrupt");
  write_bytes(path, archive);
  const std::string message = gunzip_error(path);
  EXPECT_NE(message.find(path.string()), std::string::npos) << message;
  fs::remove(path);
}

TEST(GzioTest, NonGzipFileIsRejectedAsBadMagic) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const fs::path path = temp_file("notgz");
  const std::string text = ".model m\n.end\n";
  write_bytes(path, std::vector<std::uint8_t>(text.begin(), text.end()));
  const std::string message = gunzip_error(path);
  EXPECT_NE(message.find("not a gzip archive"), std::string::npos) << message;
  fs::remove(path);
}

TEST(GzioTest, MissingFileIsRejected) {
  const fs::path path = temp_file("missing");
  fs::remove(path);
  if (!gzip_available()) {
    // Even without zlib the error must name the file.
    const std::string message = gunzip_error(path);
    EXPECT_NE(message.find(path.string()), std::string::npos) << message;
    return;
  }
  const std::string message = gunzip_error(path);
  EXPECT_NE(message.find("cannot open"), std::string::npos) << message;
}

}  // namespace
}  // namespace hyde::net
