/// Network lifecycle edge cases: sweep idempotence, input retirement,
/// stats, and global-BDD consistency on reconvergent structures.

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mcnc/benchmarks.hpp"
#include "net/blif.hpp"
#include "tt/truth_table.hpp"

namespace hyde::net {
namespace {

using tt::TruthTable;

TEST(NetworkEdge, SweepIsIdempotent) {
  auto net = mcnc::random_multilevel("s", 8, 4, 30, 2, 5, 99);
  net.sweep();
  const std::string once = write_blif_string(net);
  net.sweep();
  EXPECT_EQ(write_blif_string(net), once);
}

TEST(NetworkEdge, SweepPreservesBehaviourOnRandomNets) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 6; ++trial) {
    auto net = mcnc::random_multilevel("s" + std::to_string(trial), 8, 4, 25,
                                       1, 4, 1000 + trial);
    // Record behaviour, sweep, compare.
    std::vector<std::vector<bool>> before;
    std::vector<std::vector<bool>> probes;
    for (int p = 0; p < 32; ++p) {
      std::vector<bool> assign(8);
      for (auto&& v : assign) v = (rng() & 1) != 0;
      probes.push_back(assign);
      before.push_back(net.eval(assign));
    }
    net.sweep();
    for (std::size_t p = 0; p < probes.size(); ++p) {
      EXPECT_EQ(net.eval(probes[p]), before[p]) << trial << " probe " << p;
    }
  }
}

TEST(NetworkEdge, DropUnusedInputsGuards) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const NodeId g = net.add_logic_tt("g", {a},
                                    ~TruthTable::var(1, 0));
  net.add_output("o", g);
  net.add_output("p", b);
  // a is read, b drives a PO, c is free.
  EXPECT_THROW(net.drop_unused_inputs({a}), std::logic_error);
  EXPECT_THROW(net.drop_unused_inputs({b}), std::logic_error);
  EXPECT_THROW(net.drop_unused_inputs({g}), std::logic_error);  // not an input
  net.drop_unused_inputs({c});
  EXPECT_EQ(net.inputs().size(), 2u);
  // eval still works with the reduced PI vector.
  EXPECT_TRUE(net.eval({false, true})[0]);
}

TEST(NetworkEdge, GlobalBddsOnReconvergence) {
  // Diamond: f = (a&b) ^ (a|b) — shared PIs through two paths.
  Network net("d");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId top = net.add_logic_tt("and", {a, b},
                                      TruthTable::var(2, 0) & TruthTable::var(2, 1));
  const NodeId bot = net.add_logic_tt("or", {a, b},
                                      TruthTable::var(2, 0) | TruthTable::var(2, 1));
  const NodeId root = net.add_logic_tt("x", {top, bot},
                                       TruthTable::var(2, 0) ^ TruthTable::var(2, 1));
  net.add_output("o", root);
  bdd::Manager global(2);
  const auto bdds = net.global_bdds({root}, global, {0, 1});
  EXPECT_EQ(bdds[0], global.var(0) ^ global.var(1));
}

TEST(NetworkEdge, StatsMentionEverything) {
  const auto net = mcnc::make_circuit("rd73");
  const std::string stats = net.stats();
  EXPECT_NE(stats.find("rd73"), std::string::npos);
  EXPECT_NE(stats.find("7 PIs"), std::string::npos);
  EXPECT_NE(stats.find("3 POs"), std::string::npos);
}

TEST(NetworkEdge, ReplaceEverywhereOnPo) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_logic_tt("g", {a}, TruthTable::var(1, 0));
  net.add_output("o", g);
  net.replace_everywhere(g, a);
  net.sweep();
  EXPECT_EQ(net.outputs()[0].driver, a);
  EXPECT_EQ(net.num_logic_nodes(), 0);
}

TEST(NetworkEdge, ConstantOnlyNetwork) {
  Network net("c");
  net.add_input("unused");
  net.add_output("t", net.add_constant("one", true));
  net.add_output("f", net.add_constant("zero", false));
  net.sweep();
  const auto out = net.eval({false});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  // BLIF round trip keeps constants.
  const auto reparsed = read_blif_string(write_blif_string(net));
  EXPECT_EQ(reparsed.eval({true}), out);
}

TEST(NetworkEdge, DeepChainTopoOrder) {
  // 500-deep buffer chain: topological order must not overflow or reorder.
  Network net("deep");
  NodeId cur = net.add_input("a");
  for (int i = 0; i < 500; ++i) {
    cur = net.add_logic_tt("n" + std::to_string(i), {cur},
                           ~TruthTable::var(1, 0));
  }
  net.add_output("o", cur);
  const auto order = net.topo_order();
  EXPECT_EQ(order.size(), 501u);
  // 500 inversions = identity.
  EXPECT_TRUE(net.eval({true})[0]);
  EXPECT_FALSE(net.eval({false})[0]);
  net.sweep();  // collapses the inverter chain pairwise
  EXPECT_LE(net.num_logic_nodes(), 1);
}

}  // namespace
}  // namespace hyde::net
