#include "net/pla.hpp"

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "mapper/lutmap.hpp"
#include "net/blif.hpp"

namespace hyde::net {
namespace {

constexpr const char* kSmallPla = R"(
# two-output example
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
11- 10
--1 10
1-1 01
010 01
.e
)";

TEST(PlaReader, ParsesCoverSemantics) {
  const PlaModel model = read_pla_string(kSmallPla);
  EXPECT_FALSE(model.has_dont_cares);
  EXPECT_EQ(model.onset.inputs().size(), 3u);
  EXPECT_EQ(model.onset.outputs().size(), 2u);
  // f = ab + c ; g = ac + a'bc'.
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool a = m & 1, b = m & 2, c = m & 4;
    const auto out = model.onset.eval({a, b, c});
    EXPECT_EQ(out[0], (a && b) || c) << m;
    EXPECT_EQ(out[1], (a && c) || (!a && b && !c)) << m;
  }
}

TEST(PlaReader, DontCareOutputsBecomeDcNetwork) {
  const PlaModel model = read_pla_string(
      ".i 2\n.o 1\n11 1\n0- -\n.e\n");
  EXPECT_TRUE(model.has_dont_cares);
  // Onset: only 11. DC: both a=0 rows.
  EXPECT_TRUE(model.onset.eval({true, true})[0]);
  EXPECT_FALSE(model.onset.eval({false, true})[0]);
  EXPECT_TRUE(model.dont_care.eval({false, true})[0]);
  EXPECT_TRUE(model.dont_care.eval({false, false})[0]);
  EXPECT_FALSE(model.dont_care.eval({true, true})[0]);
}

TEST(PlaReader, TypeFIgnoresDashOutputs) {
  const PlaModel model = read_pla_string(
      ".i 2\n.o 1\n.type f\n11 1\n0- -\n.e\n");
  EXPECT_FALSE(model.has_dont_cares);
}

TEST(PlaReader, RejectsBadInput) {
  EXPECT_THROW(read_pla_string(".o 1\n1 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.type fr\n11 1\n.e\n"),
               std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n111 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n11 11\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n11\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.ilb a\n11 1\n.e\n"),
               std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.kiss\n11 1\n.e\n"),
               std::runtime_error);
}

TEST(PlaRoundTrip, WriteThenReadPreservesFunctions) {
  const PlaModel model = read_pla_string(kSmallPla);
  const std::string text = write_pla_string(model.onset);
  const PlaModel reparsed = read_pla_string(text);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const std::vector<bool> assign{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(model.onset.eval(assign), reparsed.onset.eval(assign)) << m;
  }
}

TEST(PlaRoundTrip, BlifToPlaToBlif) {
  Network net = read_blif_string(
      ".model t\n.inputs a b c d\n.outputs f\n.names a b c d f\n"
      "11-- 1\n--11 1\n.end\n");
  const PlaModel reparsed = read_pla_string(write_pla_string(net));
  for (std::uint64_t m = 0; m < 16; ++m) {
    std::vector<bool> assign(4);
    for (int i = 0; i < 4; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    EXPECT_EQ(net.eval(assign), reparsed.onset.eval(assign)) << m;
  }
}

TEST(BlifExdc, ParsesExternalDontCares) {
  const BlifModel model = read_blif_model_string(
      ".model t\n.inputs a b c\n.outputs f\n"
      ".names a b c f\n111 1\n"
      ".exdc\n.names a f\n0 1\n.end\n");
  EXPECT_TRUE(model.has_dont_cares);
  EXPECT_TRUE(model.network.eval({true, true, true})[0]);
  EXPECT_TRUE(model.dont_care.eval({false, true, true})[0]);
  EXPECT_FALSE(model.dont_care.eval({true, true, true})[0]);
  // Plain read_blif refuses the construct.
  EXPECT_THROW(read_blif_string(".model t\n.inputs a\n.outputs f\n"
                                ".names a f\n1 1\n.exdc\n.names a f\n0 1\n.end\n"),
               std::runtime_error);
}

TEST(BlifExdc, MissingExdcCoverIsConstantZero) {
  const BlifModel model = read_blif_model_string(
      ".model t\n.inputs a\n.outputs f g\n"
      ".names a f\n1 1\n.names a g\n0 1\n"
      ".exdc\n.names a f\n- 1\n.end\n");
  EXPECT_TRUE(model.dont_care.eval({true})[0]);   // f fully DC
  EXPECT_FALSE(model.dont_care.eval({true})[1]);  // g has no DC
}

TEST(ExternalDc, FlowExploitsDontCares) {
  // onset = one lonely minterm of 8 vars; care set = only 4 points.
  // With DCs the function collapses to something tiny; without them the
  // flow must implement the exact indicator.
  Network onset("t");
  std::vector<NodeId> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(onset.add_input("x" + std::to_string(i)));
  const auto indicator = tt::TruthTable::minterm(8, 0xA5);
  onset.add_output("f", onset.add_logic_tt("f", pis, indicator));

  Network dc("t_dc");
  std::vector<NodeId> dc_pis;
  for (int i = 0; i < 8; ++i) dc_pis.push_back(dc.add_input("x" + std::to_string(i)));
  // Care only about minterms 0xA5, 0x00, 0xFF, 0x5A.
  const auto care = tt::TruthTable::minterm(8, 0xA5) |
                    tt::TruthTable::minterm(8, 0x00) |
                    tt::TruthTable::minterm(8, 0xFF) |
                    tt::TruthTable::minterm(8, 0x5A);
  dc.add_output("f", dc.add_logic_tt("f", dc_pis, ~care));

  auto plain = core::run_flow(onset, core::hyde_options(5));
  auto relaxed = core::run_flow(onset, core::hyde_options(5), &dc);
  mapper::dedup_shared_nodes(plain.network);
  mapper::collapse_into_fanouts(plain.network, 5);
  mapper::dedup_shared_nodes(relaxed.network);
  mapper::collapse_into_fanouts(relaxed.network, 5);
  EXPECT_LE(mapper::lut_count(relaxed.network), mapper::lut_count(plain.network));
  // The relaxed network must still be exact on the care set.
  for (std::uint64_t m : {0xA5ull, 0x00ull, 0xFFull, 0x5Aull}) {
    std::vector<bool> assign(8);
    for (int i = 0; i < 8; ++i) assign[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    EXPECT_EQ(relaxed.network.eval(assign)[0], m == 0xA5) << m;
  }
}

TEST(ExternalDc, RejectsUnknownInputName) {
  Network onset("t");
  const NodeId a = onset.add_input("a");
  onset.add_output("f", onset.add_logic_tt("f", {a}, tt::TruthTable::var(1, 0)));
  Network dc("t_dc");
  const NodeId z = dc.add_input("zz");
  dc.add_output("f", dc.add_logic_tt("f", {z}, tt::TruthTable::var(1, 0)));
  EXPECT_THROW(core::run_flow(onset, core::hyde_options(5), &dc),
               std::invalid_argument);
}

}  // namespace
}  // namespace hyde::net
